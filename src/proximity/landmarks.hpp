// Landmark infrastructure (paper Section 4 and Appendix).
//
// A set of m landmark hosts is scattered in the network. Every node
// measures its RTT to each landmark, producing its *landmark vector*
// <l1, ..., lm> — a point in the m-dimensional *landmark space*. Nodes that
// are physically close have nearby landmark vectors (coarsely).
//
// Derived quantities:
//   * landmark ordering — landmarks sorted by increasing RTT (the
//     Topologically-Aware-CAN binning criterion);
//   * landmark number — the Hilbert-curve index of the (quantized) vector,
//     a scalar that preserves locality and is used as the DHT key under
//     which a node's proximity information is stored (Appendix).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/hilbert.hpp"
#include "net/graph.hpp"
#include "net/rtt_oracle.hpp"
#include "util/biguint.hpp"
#include "util/rng.hpp"

namespace topo::proximity {

/// RTTs from one host to each landmark, in ms.
using LandmarkVector = std::vector<double>;

/// Euclidean distance between two landmark vectors.
double vector_distance(const LandmarkVector& a, const LandmarkVector& b);

/// Squared Euclidean distance — the comparison-only variant. Ordering by
/// squared distance equals ordering by distance (sqrt is monotone), so
/// ranking and selection comparators use this and skip the sqrt; keep
/// vector_distance for anything that *reports* a distance.
double squared_distance(const LandmarkVector& a, const LandmarkVector& b);

/// Dense ranking kernel over a dim-major SoA buffer:
/// out[i] = sum_d (soa[d * count + i] - query[d])^2 for i < count. Each
/// dimension's pass is a contiguous streaming loop over `count` lanes
/// (auto-vectorizable), and the per-candidate accumulation order matches
/// squared_distance(), so the results are bit-identical to the scalar
/// calls.
void squared_distances_soa(std::span<const double> soa, std::size_t count,
                           const LandmarkVector& query,
                           std::span<double> out);

struct LandmarkConfig {
  int bits_per_dim = 6;  // grid resolution per landmark-space axis ("x")
  /// Number of leading vector components used to compute the landmark
  /// number (the Appendix's "landmark vector index" optimization);
  /// 0 = use the full vector.
  int vector_index_size = 0;
  /// Latency that maps to the far edge of the landmark-space grid; larger
  /// RTTs are clamped. Set from the topology diameter by the experiment
  /// drivers.
  double scale_ms = 400.0;
};

class LandmarkSet {
 public:
  LandmarkSet(std::vector<net::HostId> landmark_hosts,
              LandmarkConfig config);

  /// Picks `count` distinct random hosts from the topology as landmarks.
  static LandmarkSet choose_random(const net::Topology& topology, int count,
                                   util::Rng& rng, LandmarkConfig config);

  int count() const { return static_cast<int>(hosts_.size()); }
  const std::vector<net::HostId>& hosts() const { return hosts_; }
  const LandmarkConfig& config() const { return config_; }

  /// Measures the landmark vector of `host`. Costs count() RTT probes on
  /// the oracle (the paper treats these as the fixed joining overhead,
  /// separate from the candidate-probe budget).
  LandmarkVector measure(net::RttOracle& oracle, net::HostId host) const;

  /// Bulk measurement for a join wave: probes landmark-major, so the
  /// oracle's engine walks its per-landmark state once per landmark
  /// instead of once per (host, landmark) pair. `out[i]` receives
  /// hosts[i]'s vector (each element is resized in place, reusing its
  /// heap buffer); `column_arena` is the caller-owned scratch column.
  /// Probe counts and values match per-host measure() calls exactly —
  /// callers needing scalar-identical measurement-noise draws must keep
  /// the scalar loop (the facade's join_many does).
  void measure_many(net::RttOracle& oracle,
                    std::span<const net::HostId> hosts,
                    std::span<LandmarkVector> out,
                    std::vector<double>& column_arena) const;

  /// Landmarks sorted by increasing RTT: the landmark ordering.
  std::vector<int> ordering(const LandmarkVector& vector) const;

  /// Scalar landmark number: Hilbert index of the quantized vector (or of
  /// its leading vector_index_size components).
  util::BigUint landmark_number(const LandmarkVector& vector) const;

  /// Allocation-free variant: `coords_scratch` (size >= curve dims) holds
  /// the quantized coordinates and is clobbered by the in-place encode.
  util::BigUint landmark_number(const LandmarkVector& vector,
                                std::span<std::uint32_t> coords_scratch) const;

  /// Grid dimensionality of the landmark-number curve (min(m,
  /// vector_index_size) when the index optimization is on, m otherwise) —
  /// the per-tuple width of the bulk-encode arenas below.
  int number_dims() const { return curve_.dims(); }

  /// Quantizes `vector`'s leading number_dims() components onto the
  /// landmark-space grid.
  void quantize_into(const LandmarkVector& vector,
                     std::span<std::uint32_t> out) const;

  /// Bulk encode for a join wave: quantizes every vector into
  /// `coords_arena` (resized to vectors.size() * number_dims()) and
  /// Hilbert-encodes the whole wave through HilbertCurve::index_many.
  /// out[i] == landmark_number(vectors[i]), with zero per-node
  /// allocations once the arena has warmed up.
  void landmark_numbers(std::span<const LandmarkVector> vectors,
                        std::vector<std::uint32_t>& coords_arena,
                        std::span<util::BigUint> out) const;

  /// Total bits of a landmark number.
  int number_bits() const { return curve_.index_bits(); }

  /// Landmark number scaled to [0, 1) — handy as a 1-d locality key.
  double unit_number(const LandmarkVector& vector) const;

 private:
  std::vector<net::HostId> hosts_;
  LandmarkConfig config_;
  geom::HilbertCurve curve_;
};

/// Lehmer rank of a landmark ordering in [0, m!), used to bin nodes with
/// similar orderings (Topologically-Aware CAN layout). m <= 20.
std::uint64_t ordering_rank(const std::vector<int>& ordering);

/// m! for m <= 20.
std::uint64_t factorial(int m);

}  // namespace topo::proximity
