// Landmark infrastructure (paper Section 4 and Appendix).
//
// A set of m landmark hosts is scattered in the network. Every node
// measures its RTT to each landmark, producing its *landmark vector*
// <l1, ..., lm> — a point in the m-dimensional *landmark space*. Nodes that
// are physically close have nearby landmark vectors (coarsely).
//
// Derived quantities:
//   * landmark ordering — landmarks sorted by increasing RTT (the
//     Topologically-Aware-CAN binning criterion);
//   * landmark number — the Hilbert-curve index of the (quantized) vector,
//     a scalar that preserves locality and is used as the DHT key under
//     which a node's proximity information is stored (Appendix).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/hilbert.hpp"
#include "net/graph.hpp"
#include "net/rtt_oracle.hpp"
#include "util/biguint.hpp"
#include "util/rng.hpp"

namespace topo::proximity {

/// RTTs from one host to each landmark, in ms.
using LandmarkVector = std::vector<double>;

/// Euclidean distance between two landmark vectors.
double vector_distance(const LandmarkVector& a, const LandmarkVector& b);

struct LandmarkConfig {
  int bits_per_dim = 6;  // grid resolution per landmark-space axis ("x")
  /// Number of leading vector components used to compute the landmark
  /// number (the Appendix's "landmark vector index" optimization);
  /// 0 = use the full vector.
  int vector_index_size = 0;
  /// Latency that maps to the far edge of the landmark-space grid; larger
  /// RTTs are clamped. Set from the topology diameter by the experiment
  /// drivers.
  double scale_ms = 400.0;
};

class LandmarkSet {
 public:
  LandmarkSet(std::vector<net::HostId> landmark_hosts,
              LandmarkConfig config);

  /// Picks `count` distinct random hosts from the topology as landmarks.
  static LandmarkSet choose_random(const net::Topology& topology, int count,
                                   util::Rng& rng, LandmarkConfig config);

  int count() const { return static_cast<int>(hosts_.size()); }
  const std::vector<net::HostId>& hosts() const { return hosts_; }
  const LandmarkConfig& config() const { return config_; }

  /// Measures the landmark vector of `host`. Costs count() RTT probes on
  /// the oracle (the paper treats these as the fixed joining overhead,
  /// separate from the candidate-probe budget).
  LandmarkVector measure(net::RttOracle& oracle, net::HostId host) const;

  /// Landmarks sorted by increasing RTT: the landmark ordering.
  std::vector<int> ordering(const LandmarkVector& vector) const;

  /// Scalar landmark number: Hilbert index of the quantized vector (or of
  /// its leading vector_index_size components).
  util::BigUint landmark_number(const LandmarkVector& vector) const;

  /// Total bits of a landmark number.
  int number_bits() const { return curve_.index_bits(); }

  /// Landmark number scaled to [0, 1) — handy as a 1-d locality key.
  double unit_number(const LandmarkVector& vector) const;

 private:
  std::vector<net::HostId> hosts_;
  LandmarkConfig config_;
  geom::HilbertCurve curve_;
};

/// Lehmer rank of a landmark ordering in [0, m!), used to bin nodes with
/// similar orderings (Topologically-Aware CAN layout). m <= 20.
std::uint64_t ordering_rank(const std::vector<int>& ordering);

/// m! for m <= 20.
std::uint64_t factorial(int m);

}  // namespace topo::proximity
