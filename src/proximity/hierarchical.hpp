// Two-tier hierarchical landmark spaces (paper Section 5.4, second
// optimization): "A small number of widely scattered landmarks are used to
// do a preselection, and localized landmarks are then used to refine the
// result."
//
// Tier 1: global landmarks scattered across the whole network (preferably
// on the backbone) — every node measures them; coarse positioning.
// Tier 2: per-region (transit-domain) local landmarks — a node measures
// only its own region's set; fine positioning among regional peers, where
// the global tier cannot differentiate ("the landmark technique cannot
// differentiate nodes in stubs that are close by").
//
// A node knows its region the way a real host knows its ISP/AS.
#pragma once

#include <vector>

#include "net/rtt_oracle.hpp"
#include "proximity/nn_search.hpp"

namespace topo::proximity {

struct HierarchicalVector {
  LandmarkVector global;  // RTTs to the global tier
  int region = -1;        // transit domain
  LandmarkVector local;   // RTTs to the region's local tier
};

class HierarchicalLandmarks {
 public:
  /// Picks `global_count` landmarks network-wide (transit nodes first, the
  /// natural "widely scattered" choice) and `locals_per_region` landmarks
  /// inside every transit domain.
  static HierarchicalLandmarks build(const net::Topology& topology,
                                     int global_count,
                                     int locals_per_region, util::Rng& rng);

  int global_count() const { return static_cast<int>(global_.size()); }
  int regions() const { return static_cast<int>(local_.size()); }
  const std::vector<net::HostId>& global_landmarks() const { return global_; }
  const std::vector<net::HostId>& local_landmarks(int region) const {
    TO_EXPECTS(region >= 0 && region < regions());
    return local_[static_cast<std::size_t>(region)];
  }

  /// Measures both tiers for `host`: global_count() + locals_per_region
  /// probes — the per-node landmark overhead the paper trades against
  /// accuracy.
  HierarchicalVector measure(net::RttOracle& oracle, net::HostId host) const;

  struct Record {
    net::HostId host = net::kInvalidHost;
    HierarchicalVector vector;
  };

  /// Two-stage nearest-neighbor search: preselect `preselect` candidates
  /// by global-tier distance; re-rank the preselection so that same-region
  /// candidates come first in local-tier order; probe the top rtt_budget.
  NnResult search(net::RttOracle& oracle, net::HostId query_host,
                  const HierarchicalVector& query,
                  const std::vector<Record>& database, std::size_t preselect,
                  std::size_t rtt_budget) const;

 private:
  HierarchicalLandmarks(const net::Topology* topology,
                        std::vector<net::HostId> global,
                        std::vector<std::vector<net::HostId>> local)
      : topology_(topology), global_(std::move(global)),
        local_(std::move(local)) {}

  const net::Topology* topology_;
  std::vector<net::HostId> global_;
  std::vector<std::vector<net::HostId>> local_;  // per transit domain
};

}  // namespace topo::proximity
