#include "proximity/hierarchical.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace topo::proximity {

HierarchicalLandmarks HierarchicalLandmarks::build(
    const net::Topology& topology, int global_count, int locals_per_region,
    util::Rng& rng) {
  TO_EXPECTS(global_count >= 1);
  TO_EXPECTS(locals_per_region >= 1);

  // Global tier: transit nodes first (widely scattered by construction),
  // topped up with random stub hosts if the backbone is too small.
  std::vector<net::HostId> global =
      topology.hosts_of_kind(net::HostKind::kTransit);
  rng.shuffle(global);
  if (static_cast<int>(global.size()) > global_count)
    global.resize(static_cast<std::size_t>(global_count));
  while (static_cast<int>(global.size()) < global_count) {
    const auto host =
        static_cast<net::HostId>(rng.next_u64(topology.host_count()));
    if (std::find(global.begin(), global.end(), host) == global.end())
      global.push_back(host);
  }

  // Local tier: group hosts by transit domain, sample inside each.
  int max_domain = -1;
  for (net::HostId h = 0; h < topology.host_count(); ++h)
    max_domain = std::max(max_domain, topology.host(h).transit_domain);
  std::vector<std::vector<net::HostId>> domain_hosts(
      static_cast<std::size_t>(max_domain + 1));
  for (net::HostId h = 0; h < topology.host_count(); ++h)
    domain_hosts[static_cast<std::size_t>(topology.host(h).transit_domain)]
        .push_back(h);

  std::vector<std::vector<net::HostId>> local(domain_hosts.size());
  for (std::size_t d = 0; d < domain_hosts.size(); ++d) {
    auto& hosts = domain_hosts[d];
    rng.shuffle(hosts);
    const auto take = std::min<std::size_t>(
        static_cast<std::size_t>(locals_per_region), hosts.size());
    local[d].assign(hosts.begin(), hosts.begin() + static_cast<long>(take));
    TO_ENSURES(!local[d].empty());
  }
  return HierarchicalLandmarks(&topology, std::move(global),
                               std::move(local));
}

HierarchicalVector HierarchicalLandmarks::measure(net::RttOracle& oracle,
                                                  net::HostId host) const {
  HierarchicalVector vector;
  vector.global.reserve(global_.size());
  for (const net::HostId landmark : global_)
    vector.global.push_back(oracle.probe_rtt(host, landmark));
  vector.region = topology_->host(host).transit_domain;
  const auto& locals = local_landmarks(vector.region);
  vector.local.reserve(locals.size());
  for (const net::HostId landmark : locals)
    vector.local.push_back(oracle.probe_rtt(host, landmark));
  return vector;
}

NnResult HierarchicalLandmarks::search(net::RttOracle& oracle,
                                       net::HostId query_host,
                                       const HierarchicalVector& query,
                                       const std::vector<Record>& database,
                                       std::size_t preselect,
                                       std::size_t rtt_budget) const {
  TO_EXPECTS(rtt_budget >= 1);
  // Stage 1: coarse preselection on the global tier.
  std::vector<std::size_t> order(database.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t keep = std::min(preselect, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return vector_distance(database[a].vector.global,
                                             query.global) <
                             vector_distance(database[b].vector.global,
                                             query.global);
                    });
  order.resize(keep);

  // Stage 2: same-region candidates first, refined by the local tier
  // (comparable because they share the local landmark set); cross-region
  // candidates follow in global-tier order.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const bool a_same = database[a].vector.region ==
                                         query.region;
                     const bool b_same = database[b].vector.region ==
                                         query.region;
                     if (a_same != b_same) return a_same;
                     if (a_same) {
                       return vector_distance(database[a].vector.local,
                                              query.local) <
                              vector_distance(database[b].vector.local,
                                              query.local);
                     }
                     return vector_distance(database[a].vector.global,
                                            query.global) <
                            vector_distance(database[b].vector.global,
                                            query.global);
                   });

  NnResult result;
  double best = std::numeric_limits<double>::infinity();
  for (const std::size_t index : order) {
    if (result.probes >= rtt_budget) break;
    const double rtt = oracle.probe_rtt(query_host, database[index].host);
    ++result.probes;
    if (rtt < best) {
      best = rtt;
      result.host = database[index].host;
      result.rtt_ms = rtt;
    }
  }
  return result;
}

}  // namespace topo::proximity
