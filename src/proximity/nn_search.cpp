#include "proximity/nn_search.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <unordered_set>

namespace topo::proximity {

std::vector<net::HostId> rank_by_landmark_distance(
    const ProximityDatabase& database, const LandmarkVector& query_vector,
    std::size_t limit) {
  std::vector<std::size_t> order(database.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t keep = std::min(limit, database.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      // Comparison-only ranking: squared distances give
                      // the same order without the sqrt per comparison.
                      return squared_distance(database[a].vector,
                                              query_vector) <
                             squared_distance(database[b].vector,
                                              query_vector);
                    });
  std::vector<net::HostId> hosts;
  hosts.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i)
    hosts.push_back(database[order[i]].host);
  return hosts;
}

NnResult hybrid_nn_search(net::RttOracle& oracle, net::HostId query_host,
                          const LandmarkVector& query_vector,
                          const ProximityDatabase& database,
                          std::size_t rtt_budget) {
  TO_EXPECTS(rtt_budget >= 1);
  NnResult result;
  const auto candidates =
      rank_by_landmark_distance(database, query_vector, rtt_budget);
  double best = std::numeric_limits<double>::infinity();
  for (const net::HostId candidate : candidates) {
    const double rtt = oracle.probe_rtt(query_host, candidate);
    ++result.probes;
    if (rtt < best) {
      best = rtt;
      result.host = candidate;
      result.rtt_ms = rtt;
    }
  }
  return result;
}

std::vector<double> ers_best_rtt_curve(const overlay::CanNetwork& can,
                                       net::RttOracle& oracle,
                                       net::HostId query_host,
                                       overlay::NodeId start,
                                       std::size_t max_probes,
                                       util::Rng& rng) {
  TO_EXPECTS(can.alive(start));
  std::vector<double> best_after;
  best_after.reserve(max_probes);
  double best = std::numeric_limits<double>::infinity();

  // Ring-by-ring BFS over overlay neighbor links; random order inside each
  // ring models the unordered flood.
  std::unordered_set<overlay::NodeId> visited = {start};
  std::vector<overlay::NodeId> ring = {start};
  while (!ring.empty() && best_after.size() < max_probes) {
    std::vector<overlay::NodeId> shuffled = ring;
    rng.shuffle(shuffled);
    for (const overlay::NodeId node : shuffled) {
      if (best_after.size() >= max_probes) break;
      const double rtt = oracle.probe_rtt(query_host, can.node(node).host);
      best = std::min(best, rtt);
      best_after.push_back(best);
    }
    std::vector<overlay::NodeId> next_ring;
    for (const overlay::NodeId node : ring)
      for (const overlay::NodeId nb : can.node(node).neighbors)
        if (can.alive(nb) && visited.insert(nb).second)
          next_ring.push_back(nb);
    ring = std::move(next_ring);
  }
  // If the overlay is exhausted before the budget, pad with the final best.
  while (best_after.size() < max_probes && !best_after.empty())
    best_after.push_back(best);
  return best_after;
}

}  // namespace topo::proximity
