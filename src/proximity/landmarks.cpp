#include "proximity/landmarks.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "geom/zone.hpp"
#include "util/assert.hpp"

namespace topo::proximity {

double vector_distance(const LandmarkVector& a, const LandmarkVector& b) {
  TO_EXPECTS(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double squared_distance(const LandmarkVector& a, const LandmarkVector& b) {
  TO_EXPECTS(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void squared_distances_soa(std::span<const double> soa, std::size_t count,
                           const LandmarkVector& query,
                           std::span<double> out) {
  TO_EXPECTS(soa.size() == count * query.size());
  TO_EXPECTS(out.size() >= count);
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(count),
            0.0);
  // Dim-major passes: each inner loop reads/writes `count` contiguous
  // doubles with a broadcast query component — the shape compilers turn
  // into packed fused multiply-adds. Accumulating dimension-by-dimension
  // per candidate matches squared_distance()'s summation order, so the
  // two paths agree bit-for-bit.
  for (std::size_t d = 0; d < query.size(); ++d) {
    const double q = query[d];
    const double* lane = soa.data() + d * count;
    for (std::size_t i = 0; i < count; ++i) {
      const double diff = lane[i] - q;
      out[i] += diff * diff;
    }
  }
}

LandmarkSet::LandmarkSet(std::vector<net::HostId> landmark_hosts,
                         LandmarkConfig config)
    : hosts_(std::move(landmark_hosts)),
      config_(config),
      curve_(config.vector_index_size > 0
                 ? std::min<int>(config.vector_index_size,
                                 static_cast<int>(hosts_.size()))
                 : static_cast<int>(hosts_.size()),
             config.bits_per_dim) {
  TO_EXPECTS(!hosts_.empty());
  TO_EXPECTS(config_.bits_per_dim >= 1);
  TO_EXPECTS(config_.scale_ms > 0.0);
}

LandmarkSet LandmarkSet::choose_random(const net::Topology& topology,
                                       int count, util::Rng& rng,
                                       LandmarkConfig config) {
  TO_EXPECTS(count >= 1);
  TO_EXPECTS(static_cast<std::size_t>(count) <= topology.host_count());
  const auto indices =
      rng.sample_indices(topology.host_count(), static_cast<std::size_t>(count));
  std::vector<net::HostId> hosts;
  hosts.reserve(indices.size());
  for (const std::size_t i : indices)
    hosts.push_back(static_cast<net::HostId>(i));
  return LandmarkSet(std::move(hosts), config);
}

LandmarkVector LandmarkSet::measure(net::RttOracle& oracle,
                                    net::HostId host) const {
  LandmarkVector vector;
  vector.reserve(hosts_.size());
  for (const net::HostId landmark : hosts_)
    vector.push_back(oracle.probe_rtt(host, landmark));
  return vector;
}

void LandmarkSet::measure_many(net::RttOracle& oracle,
                               std::span<const net::HostId> hosts,
                               std::span<LandmarkVector> out,
                               std::vector<double>& column_arena) const {
  TO_EXPECTS(out.size() >= hosts.size());
  const std::size_t m = hosts_.size();
  for (std::size_t i = 0; i < hosts.size(); ++i) out[i].resize(m);
  column_arena.resize(hosts.size());
  for (std::size_t l = 0; l < m; ++l) {
    oracle.probe_rtt_many(hosts, hosts_[l], column_arena);
    for (std::size_t i = 0; i < hosts.size(); ++i)
      out[i][l] = column_arena[i];
  }
}

std::vector<int> LandmarkSet::ordering(const LandmarkVector& vector) const {
  TO_EXPECTS(vector.size() == hosts_.size());
  std::vector<int> order(vector.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return vector[static_cast<std::size_t>(a)] <
           vector[static_cast<std::size_t>(b)];
  });
  return order;
}

void LandmarkSet::quantize_into(const LandmarkVector& vector,
                                std::span<std::uint32_t> out) const {
  TO_EXPECTS(vector.size() == hosts_.size());
  const auto dims = static_cast<std::size_t>(curve_.dims());
  TO_EXPECTS(out.size() >= dims);
  for (std::size_t i = 0; i < dims; ++i) {
    const double unit =
        std::min(vector[i] / config_.scale_ms, std::nextafter(1.0, 0.0));
    out[i] = geom::grid_coord(unit, curve_.bits());
  }
}

util::BigUint LandmarkSet::landmark_number(
    const LandmarkVector& vector) const {
  const auto dims = static_cast<std::size_t>(curve_.dims());
  std::vector<std::uint32_t> coords(dims);
  quantize_into(vector, coords);
  return curve_.index(coords);
}

util::BigUint LandmarkSet::landmark_number(
    const LandmarkVector& vector,
    std::span<std::uint32_t> coords_scratch) const {
  const auto dims = static_cast<std::size_t>(curve_.dims());
  TO_EXPECTS(coords_scratch.size() >= dims);
  const std::span<std::uint32_t> coords = coords_scratch.first(dims);
  quantize_into(vector, coords);
  // Aliased call: the quantized coords double as the encoder's working
  // buffer, so the whole derivation is allocation-free.
  return curve_.index(coords, coords);
}

void LandmarkSet::landmark_numbers(std::span<const LandmarkVector> vectors,
                                   std::vector<std::uint32_t>& coords_arena,
                                   std::span<util::BigUint> out) const {
  TO_EXPECTS(out.size() >= vectors.size());
  const auto dims = static_cast<std::size_t>(curve_.dims());
  coords_arena.resize(vectors.size() * dims);
  for (std::size_t i = 0; i < vectors.size(); ++i)
    quantize_into(vectors[i],
                  std::span(coords_arena).subspan(i * dims, dims));
  curve_.index_many(coords_arena, out.first(vectors.size()));
}

double LandmarkSet::unit_number(const LandmarkVector& vector) const {
  return landmark_number(vector).to_unit(curve_.index_bits());
}

std::uint64_t factorial(int m) {
  TO_EXPECTS(m >= 0 && m <= 20);
  std::uint64_t f = 1;
  for (int i = 2; i <= m; ++i) f *= static_cast<std::uint64_t>(i);
  return f;
}

std::uint64_t ordering_rank(const std::vector<int>& ordering) {
  const auto m = static_cast<int>(ordering.size());
  TO_EXPECTS(m <= 20);
  std::uint64_t rank = 0;
  for (int i = 0; i < m; ++i) {
    // Count smaller elements to the right (Lehmer code digit).
    int smaller = 0;
    for (int j = i + 1; j < m; ++j)
      if (ordering[static_cast<std::size_t>(j)] <
          ordering[static_cast<std::size_t>(i)])
        ++smaller;
    rank += static_cast<std::uint64_t>(smaller) * factorial(m - 1 - i);
  }
  return rank;
}

}  // namespace topo::proximity
