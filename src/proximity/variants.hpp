// Section 5.4 "Pushing Limits of Overlay Performance" — the paper sketches
// three optimizations to close the gap between the hybrid lmk+RTT result
// and the optimal neighbor. bench/ablation_landmark_opts compares them.
//
//   1. Landmark groups: divide the landmarks into g groups; rank candidates
//      per group and join (union) the groups' shortlists, reducing false
//      clustering by requiring agreement across groups.
//   2. Hierarchical landmark spaces: a few widely-scattered landmarks
//      pre-select coarsely, then the remaining (localized) components
//      refine among the preselected candidates.
//   3. SVD denoising: with many landmarks, project the RTT vectors onto
//      the top-k singular directions and rank in the projected space,
//      suppressing measurement noise.
#pragma once

#include <cstddef>
#include <vector>

#include "proximity/nn_search.hpp"

namespace topo::proximity {

/// Variant 1 — landmark groups. Splits vector components into
/// `group_count` contiguous groups; takes the top `per_group` candidates by
/// per-group distance; probes the union (capped at rtt_budget).
NnResult grouped_nn_search(net::RttOracle& oracle, net::HostId query_host,
                           const LandmarkVector& query_vector,
                           const ProximityDatabase& database,
                           std::size_t group_count, std::size_t rtt_budget);

/// Variant 2 — hierarchical landmarks. The first `coarse_count` components
/// act as the widely-scattered global landmarks: preselect
/// `preselect` candidates by coarse distance, re-rank them by
/// full-vector distance, probe the top rtt_budget.
NnResult hierarchical_nn_search(net::RttOracle& oracle,
                                net::HostId query_host,
                                const LandmarkVector& query_vector,
                                const ProximityDatabase& database,
                                std::size_t coarse_count,
                                std::size_t preselect,
                                std::size_t rtt_budget);

/// Variant 3 — SVD denoising. Projects database + query vectors onto the
/// top `components` singular directions of the database matrix and ranks by
/// projected distance; probes the top rtt_budget.
NnResult svd_nn_search(net::RttOracle& oracle, net::HostId query_host,
                       const LandmarkVector& query_vector,
                       const ProximityDatabase& database,
                       std::size_t components, std::size_t rtt_budget);

}  // namespace topo::proximity
