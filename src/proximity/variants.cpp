#include "proximity/variants.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "util/svd.hpp"

namespace topo::proximity {

namespace {

NnResult probe_candidates(net::RttOracle& oracle, net::HostId query_host,
                          std::span<const net::HostId> candidates,
                          std::size_t rtt_budget) {
  NnResult result;
  double best = std::numeric_limits<double>::infinity();
  for (const net::HostId candidate : candidates) {
    if (result.probes >= rtt_budget) break;
    const double rtt = oracle.probe_rtt(query_host, candidate);
    ++result.probes;
    if (rtt < best) {
      best = rtt;
      result.host = candidate;
      result.rtt_ms = rtt;
    }
  }
  return result;
}

double subvector_distance(const LandmarkVector& a, const LandmarkVector& b,
                          std::size_t begin, std::size_t end) {
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

NnResult grouped_nn_search(net::RttOracle& oracle, net::HostId query_host,
                           const LandmarkVector& query_vector,
                           const ProximityDatabase& database,
                           std::size_t group_count,
                           std::size_t rtt_budget) {
  TO_EXPECTS(group_count >= 1);
  TO_EXPECTS(rtt_budget >= 1);
  const std::size_t m = query_vector.size();
  const std::size_t groups = std::min(group_count, m);
  const std::size_t per_group =
      std::max<std::size_t>(1, (rtt_budget + groups - 1) / groups);

  // Union of per-group shortlists, in interleaved rank order so each group
  // contributes its best candidates first.
  std::vector<std::vector<std::size_t>> ranked(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t begin = g * m / groups;
    const std::size_t end = (g + 1) * m / groups;
    std::vector<std::size_t> order(database.size());
    std::iota(order.begin(), order.end(), 0);
    const std::size_t keep = std::min(per_group, order.size());
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                      order.end(), [&](std::size_t x, std::size_t y) {
                        return subvector_distance(database[x].vector,
                                                  query_vector, begin, end) <
                               subvector_distance(database[y].vector,
                                                  query_vector, begin, end);
                      });
    order.resize(keep);
    ranked[g] = std::move(order);
  }
  std::vector<net::HostId> candidates;
  std::unordered_set<std::size_t> seen;
  for (std::size_t rank = 0; candidates.size() < rtt_budget; ++rank) {
    bool any = false;
    for (std::size_t g = 0; g < groups && candidates.size() < rtt_budget;
         ++g) {
      if (rank >= ranked[g].size()) continue;
      any = true;
      const std::size_t idx = ranked[g][rank];
      if (seen.insert(idx).second)
        candidates.push_back(database[idx].host);
    }
    if (!any) break;
  }
  return probe_candidates(oracle, query_host, candidates, rtt_budget);
}

NnResult hierarchical_nn_search(net::RttOracle& oracle,
                                net::HostId query_host,
                                const LandmarkVector& query_vector,
                                const ProximityDatabase& database,
                                std::size_t coarse_count,
                                std::size_t preselect,
                                std::size_t rtt_budget) {
  TO_EXPECTS(coarse_count >= 1);
  TO_EXPECTS(rtt_budget >= 1);
  const std::size_t m = query_vector.size();
  const std::size_t coarse = std::min(coarse_count, m);

  // Stage 1: coarse preselection on the global landmarks.
  std::vector<std::size_t> order(database.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t keep = std::min(preselect, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                    order.end(), [&](std::size_t x, std::size_t y) {
                      return subvector_distance(database[x].vector,
                                                query_vector, 0, coarse) <
                             subvector_distance(database[y].vector,
                                                query_vector, 0, coarse);
                    });
  order.resize(keep);

  // Stage 2: refine with the full vector among the preselected.
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return vector_distance(database[x].vector, query_vector) <
           vector_distance(database[y].vector, query_vector);
  });
  std::vector<net::HostId> candidates;
  candidates.reserve(order.size());
  for (const std::size_t idx : order)
    candidates.push_back(database[idx].host);
  return probe_candidates(oracle, query_host, candidates, rtt_budget);
}

NnResult svd_nn_search(net::RttOracle& oracle, net::HostId query_host,
                       const LandmarkVector& query_vector,
                       const ProximityDatabase& database,
                       std::size_t components, std::size_t rtt_budget) {
  TO_EXPECTS(components >= 1);
  TO_EXPECTS(rtt_budget >= 1);
  const std::size_t m = query_vector.size();
  const std::size_t n = database.size();
  if (n == 0) return {};
  const std::size_t k = std::min(components, m);

  // Stack the database vectors and the query as the last row, so both are
  // projected into the same basis.
  util::Matrix a(n + 1, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j)
      a.at(i, j) = database[i].vector[j];
  for (std::size_t j = 0; j < m; ++j) a.at(n, j) = query_vector[j];
  if (a.rows() < a.cols()) {
    // Degenerate tiny databases: fall back to the plain hybrid ranking.
    return hybrid_nn_search(oracle, query_host, query_vector, database,
                            rtt_budget);
  }
  const util::Matrix projected = util::svd_project(a, k);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  auto projected_distance = [&](std::size_t row) {
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double d = projected.at(row, j) - projected.at(n, j);
      sum += d * d;
    }
    return sum;
  };
  const std::size_t keep = std::min(rtt_budget, n);
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                    order.end(), [&](std::size_t x, std::size_t y) {
                      return projected_distance(x) < projected_distance(y);
                    });
  std::vector<net::HostId> candidates;
  for (std::size_t i = 0; i < keep; ++i)
    candidates.push_back(database[order[i]].host);
  return probe_candidates(oracle, query_host, candidates, rtt_budget);
}

}  // namespace topo::proximity
