// Nearest-neighbor discovery strategies (paper Section 4).
//
// Given a *proximity database* — the list of known nodes with their landmark
// vectors (in the full system this is the content of a soft-state map) — a
// joining node wants the physically closest node. Strategies:
//
//   * hybrid landmark + RTT (the paper's): rank candidates by landmark-space
//     distance, RTT-probe the top X, keep the closest;
//   * landmark ordering only: the X=1 point of the hybrid curve;
//   * expanding-ring search baseline: flood the overlay neighborhood ring
//     by ring, probing every visited node.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/rtt_oracle.hpp"
#include "overlay/can.hpp"
#include "proximity/landmarks.hpp"
#include "util/rng.hpp"

namespace topo::proximity {

/// The information a soft-state map exposes about known nodes.
struct ProximityRecord {
  net::HostId host = net::kInvalidHost;
  LandmarkVector vector;
};

using ProximityDatabase = std::vector<ProximityRecord>;

struct NnResult {
  net::HostId host = net::kInvalidHost;
  double rtt_ms = 0.0;
  std::size_t probes = 0;
};

/// Ranks `database` entries by landmark-vector distance to `query_vector`
/// and returns up to `limit` hosts, closest-in-landmark-space first.
/// This is what a map owner computes when answering a lookup (Appendix:
/// "the full landmark vector of the requesting node is used to sort the
/// information of nodes published on that node").
std::vector<net::HostId> rank_by_landmark_distance(
    const ProximityDatabase& database, const LandmarkVector& query_vector,
    std::size_t limit);

/// Hybrid search: probe the `rtt_budget` best-ranked candidates, return the
/// one with minimum measured RTT. rtt_budget == 1 degenerates to
/// landmark-clustering-only selection.
NnResult hybrid_nn_search(net::RttOracle& oracle, net::HostId query_host,
                          const LandmarkVector& query_vector,
                          const ProximityDatabase& database,
                          std::size_t rtt_budget);

/// Expanding-ring search over the overlay: starting from `start` (the
/// bootstrap node), visit overlay neighbors ring by ring (random order
/// within a ring), probing each visited node's host. Returns the best RTT
/// found after each probe, so best_rtt_after[k] is the result with budget
/// k+1. Stops after `max_probes` probes.
std::vector<double> ers_best_rtt_curve(const overlay::CanNetwork& can,
                                       net::RttOracle& oracle,
                                       net::HostId query_host,
                                       overlay::NodeId start,
                                       std::size_t max_probes,
                                       util::Rng& rng);

}  // namespace topo::proximity
