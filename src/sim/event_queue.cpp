#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace topo::sim {

void EventQueue::schedule_at(Time at, Callback fn) {
  TO_EXPECTS(at >= now_);
  heap_.push_back(Item{at, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventQueue::Item EventQueue::pop_earliest() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Item item = std::move(heap_.back());
  heap_.pop_back();
  return item;
}

void EventQueue::run_until(Time until) {
  TO_EXPECTS(until >= now_);
  while (!heap_.empty() && heap_.front().at <= until) {
    // Extract before running: the callback may schedule new events.
    const Item item = pop_earliest();
    now_ = item.at;
    item.fn();
  }
  now_ = until;
}

void EventQueue::run_all() {
  while (!heap_.empty()) {
    const Item item = pop_earliest();
    now_ = item.at;
    item.fn();
  }
}

void EventQueue::clear() { heap_.clear(); }

}  // namespace topo::sim
