#include "sim/event_queue.hpp"

#include <utility>

namespace topo::sim {

void EventQueue::schedule_at(Time at, Callback fn) {
  TO_EXPECTS(at >= now_);
  heap_.push(Item{at, next_seq_++, std::move(fn)});
}

void EventQueue::run_until(Time until) {
  TO_EXPECTS(until >= now_);
  while (!heap_.empty() && heap_.top().at <= until) {
    // Copy out before pop: the callback may schedule new events.
    Item item = std::move(const_cast<Item&>(heap_.top()));
    heap_.pop();
    now_ = item.at;
    item.fn();
  }
  now_ = until;
}

void EventQueue::run_all() {
  while (!heap_.empty()) {
    Item item = std::move(const_cast<Item&>(heap_.top()));
    heap_.pop();
    now_ = item.at;
    item.fn();
  }
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace topo::sim
