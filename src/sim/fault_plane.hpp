// Unified fault-injection plane.
//
// The paper's central claim is that global soft-state maps stay useful
// *because* they are soft state: TTL decay plus periodic republish is
// supposed to ride out message loss, crashed hosts and stale entries. To
// demonstrate that, failure has to be a first-class, measurable input to
// the system rather than a per-component afterthought — this component is
// the single place every message-bearing path (map publish/refresh, map
// lookup fetch, pub/sub notify, lazy repair) consults before a simulated
// message is considered delivered.
//
// Fault classes modelled:
//   * per-message loss — every message is dropped with a configurable
//     probability (plus an extra publish-only probability, the legacy
//     MapService::inject_faults knob folded in here);
//   * per-stub extra delay — a seeded fraction of stub domains is marked
//     "slow"; messages touching a slow stub (and optionally all messages)
//     carry extra one-way delay, surfaced to the retry/backoff machinery
//     and accounted in the stats;
//   * host crash-stops — a crashed host neither sends nor receives until
//     restarted, while the overlay structures keep pointing at it (the
//     silent-failure window before any membership protocol notices);
//   * stub-level partitions — a partitioned stub domain is cut off from
//     every host outside it (its intra-stub traffic still flows),
//     exploiting the transit-stub structure the hierarchical RTT engine
//     already surfaces: cutting the access links isolates the whole stub.
//
// Determinism: all decisions are drawn from one seeded RNG in call order.
// A trial owns its plane and runs on one thread (the bench harness
// parallelises across trials, never within one), so the same seed yields
// the same verdict sequence — and therefore the same event trace — at any
// THREADS setting. An inactive plane (no loss, no delay, no crashes, no
// partitions) makes no RNG draws and no stats updates at all, so a system
// built with the plane installed but idle is bit-identical to one without
// it; callers gate their per-message bookkeeping on active().
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "net/graph.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace topo::sim {

/// Message classes, for per-class accounting (and the publish-only legacy
/// loss knob). kData covers application-level DHT put/get traffic.
enum class MessageKind : std::uint8_t {
  kPublish = 0,  // map publish / periodic republish
  kLookup,       // map candidate fetch (request/response pair)
  kNotify,       // pub/sub notification, owner -> subscriber
  kRepair,       // lazy-repair "dead" report, requester -> owner
  kData,         // application object traffic
};
constexpr std::size_t kMessageKindCount = 5;

const char* message_kind_name(MessageKind kind);

struct FaultConfig {
  /// Per-message drop probability, all message kinds.
  double message_loss = 0.0;
  /// Extra drop probability applied to kPublish only — the legacy
  /// MapService::inject_faults knob, kept as its own dial so loss-rate
  /// sweeps can stress the publish path in isolation.
  double publish_loss = 0.0;
  /// Flat extra one-way delay added to every delivered message.
  double extra_delay_ms = 0.0;
  /// Extra one-way delay for messages with an endpoint in a "slow" stub.
  double stub_delay_ms = 0.0;
  /// Fraction of stub domains marked slow (seeded draw at bind_topology).
  double slow_stub_fraction = 0.0;
  /// RNG seed for every fault decision; latched at construction.
  std::uint64_t seed = 0;

  bool any_loss() const { return message_loss > 0.0 || publish_loss > 0.0; }
  bool any_delay() const {
    return extra_delay_ms > 0.0 ||
           (stub_delay_ms > 0.0 && slow_stub_fraction > 0.0);
  }
};

enum class DeliveryOutcome : std::uint8_t {
  kDelivered,
  kLost,              // random loss: transient, a retry can win
  kCrashBlocked,      // an endpoint host is crash-stopped
  kPartitionBlocked,  // endpoints on opposite sides of a stub partition
};

struct Verdict {
  DeliveryOutcome outcome = DeliveryOutcome::kDelivered;
  /// Extra one-way delay carried by a delivered message.
  double delay_ms = 0.0;

  bool delivered() const { return outcome == DeliveryOutcome::kDelivered; }
  /// Loss is transient — retrying the same destination can succeed.
  /// Crash/partition blocks persist until healed; callers should fail
  /// over (next replica, degraded mode) instead of burning retries.
  bool retryable() const { return outcome == DeliveryOutcome::kLost; }
};

struct FaultPlaneStats {
  std::uint64_t messages = 0;  // messages gated while the plane was active
  std::uint64_t lost = 0;
  std::uint64_t crash_blocked = 0;
  std::uint64_t partition_blocked = 0;
  std::uint64_t delayed = 0;
  double added_delay_ms = 0.0;
  /// Non-delivered messages by kind (loss + crash + partition).
  std::array<std::uint64_t, kMessageKindCount> dropped_by_kind{};

  std::uint64_t dropped() const {
    return lost + crash_blocked + partition_blocked;
  }
};

class FaultPlane {
 public:
  /// Default-constructed plane is inactive: every message is delivered,
  /// nothing is drawn or counted.
  FaultPlane() : rng_(0) {}
  explicit FaultPlane(const FaultConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Binds the transit-stub structure: required before stub partitions or
  /// slow-stub delay are used; harmless otherwise. Marks the slow stubs
  /// (seeded, independent of the per-message draw stream).
  void bind_topology(const net::Topology* topology);

  const FaultConfig& config() const { return config_; }
  /// Loss/delay knobs are runtime-tunable (a sweep raises loss mid-run);
  /// `seed` is latched at construction and changing it here has no
  /// effect. slow_stub_fraction is latched at bind_topology.
  FaultConfig& mutable_config() { return config_; }

  /// True when any fault is configured or injected. Hot paths gate their
  /// per-message call on this so an idle plane costs one branch.
  bool active() const {
    return config_.any_loss() || config_.any_delay() ||
           !crashed_.empty() || !partitioned_stubs_.empty();
  }

  /// The single delivery gate. Draws (at most one) loss decision from the
  /// seeded RNG; crash and partition checks are pure lookups.
  Verdict message(MessageKind kind, net::HostId from, net::HostId to);

  /// Convenience wrapper when the caller only needs delivered-or-not.
  bool deliver(MessageKind kind, net::HostId from, net::HostId to) {
    return message(kind, from, to).delivered();
  }

  /// Delivery gate for a message forwarded along a routed overlay path
  /// (a sequence of node hops; `host_of` maps a hop to its host). Crash
  /// and partition checks apply to every forwarding hop — a crashed
  /// intermediate node silently swallows the message, and a hop into or
  /// out of a partitioned stub dies at the cut — while the loss draw
  /// stays per-message (one draw), matching message(). A single-element
  /// path is a self-delivery: it still traverses the local stack, so the
  /// loss draw applies (legacy inject_faults semantics).
  template <typename Path, typename HostOf>
  Verdict message_via(MessageKind kind, const Path& path, HostOf&& host_of) {
    TO_EXPECTS(!path.empty());
    ++stats_.messages;
    net::HostId prev = host_of(path.front());
    if (host_crashed(prev)) return block_(DeliveryOutcome::kCrashBlocked, kind);
    const bool check_hops = !crashed_.empty() || !partitioned_stubs_.empty();
    if (check_hops) {
      for (std::size_t i = 1; i < path.size(); ++i) {
        const net::HostId host = host_of(path[i]);
        if (host_crashed(host))
          return block_(DeliveryOutcome::kCrashBlocked, kind);
        if (partitioned(prev, host))
          return block_(DeliveryOutcome::kPartitionBlocked, kind);
        prev = host;
      }
    }
    return finish_(kind, host_of(path.front()), host_of(path.back()));
  }

  // -- Host crash-stops --------------------------------------------------

  void crash_host(net::HostId host) { crashed_.insert(host); }
  void restart_host(net::HostId host) { crashed_.erase(host); }
  void restart_all_hosts() { crashed_.clear(); }
  bool host_crashed(net::HostId host) const {
    return !crashed_.empty() && crashed_.count(host) != 0;
  }
  std::size_t crashed_host_count() const { return crashed_.size(); }

  // -- Stub-level partitions ---------------------------------------------

  void partition_stub(std::int32_t stub);
  void heal_stub(std::int32_t stub) { partitioned_stubs_.erase(stub); }
  void heal_all_partitions() { partitioned_stubs_.clear(); }
  bool stub_partitioned(std::int32_t stub) const {
    return stub >= 0 && partitioned_stubs_.count(stub) != 0;
  }
  std::size_t partitioned_stub_count() const {
    return partitioned_stubs_.size();
  }

  /// Partitions round(fraction * stub_count) stubs, chosen by a seeded
  /// shuffle; returns the chosen stub domains. Requires bind_topology.
  std::vector<std::int32_t> partition_stub_fraction(double fraction);

  /// True when `a` and `b` are on opposite sides of a partition (either
  /// endpoint's stub is partitioned and they are not in the same stub).
  bool partitioned(net::HostId a, net::HostId b) const {
    if (partitioned_stubs_.empty()) return false;
    const std::int32_t sa = stub_of(a);
    const std::int32_t sb = stub_of(b);
    if (sa == sb) return false;  // intra-stub traffic always flows
    return stub_partitioned(sa) || stub_partitioned(sb);
  }

  /// Crash- and partition-reachability (no loss draw, no accounting):
  /// lets callers probe "would a message get through right now".
  bool reachable(net::HostId a, net::HostId b) const {
    return !host_crashed(a) && !host_crashed(b) && !partitioned(a, b);
  }

  // -- Topology introspection --------------------------------------------

  std::int32_t stub_of(net::HostId host) const {
    if (topology_ == nullptr) return -1;
    TO_EXPECTS(host < topology_->host_count());
    return topology_->host(host).stub_domain;
  }
  std::size_t stub_count() const { return stub_count_; }
  bool stub_slow(std::int32_t stub) const {
    return stub >= 0 && static_cast<std::size_t>(stub) < slow_stub_.size() &&
           slow_stub_[static_cast<std::size_t>(stub)];
  }

  const FaultPlaneStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  Verdict block_(DeliveryOutcome outcome, MessageKind kind);
  /// Loss draw + delay computation for a message that passed the
  /// crash/partition checks.
  Verdict finish_(MessageKind kind, net::HostId from, net::HostId to);

  FaultConfig config_;
  const net::Topology* topology_ = nullptr;
  std::size_t stub_count_ = 0;
  std::vector<bool> slow_stub_;
  std::unordered_set<net::HostId> crashed_;
  std::unordered_set<std::int32_t> partitioned_stubs_;
  util::Rng rng_;
  FaultPlaneStats stats_;
};

}  // namespace topo::sim
