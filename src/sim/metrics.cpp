#include "sim/metrics.hpp"

namespace topo::sim {

double path_latency_ms(const overlay::CanNetwork& can, net::RttOracle& oracle,
                       std::span<const overlay::NodeId> path) {
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i)
    total += oracle.latency_ms(can.node(path[i - 1]).host,
                               can.node(path[i]).host);
  return total;
}

namespace {

template <typename RouteFn>
RoutingSample measure_routing(const overlay::CanNetwork& can,
                              net::RttOracle& oracle, std::size_t queries,
                              util::Rng& rng, RouteFn route) {
  RoutingSample sample;
  const auto& live = can.live_view();
  TO_EXPECTS(!live.empty());
  for (std::size_t q = 0; q < queries; ++q) {
    const overlay::NodeId source = live[rng.next_u64(live.size())];
    const geom::Point key = geom::Point::random(can.dims(), rng);
    const overlay::RouteResult result = route(source, key);
    if (!result.success) {
      ++sample.failures;
      continue;
    }
    if (result.path.size() < 2) continue;  // source owns the key
    const overlay::NodeId destination = result.path.back();
    const double direct = oracle.latency_ms(can.node(source).host,
                                            can.node(destination).host);
    if (direct <= 0.0) continue;  // co-located hosts: stretch undefined
    sample.stretch.add(path_latency_ms(can, oracle, result.path) / direct);
    sample.logical_hops.add(static_cast<double>(result.hops()));
  }
  return sample;
}

}  // namespace

RoutingSample measure_ecan_routing(const overlay::EcanNetwork& ecan,
                                   net::RttOracle& oracle,
                                   std::size_t queries, util::Rng& rng) {
  return measure_routing(
      ecan, oracle, queries, rng,
      [&](overlay::NodeId source, const geom::Point& key) {
        return ecan.route_ecan(source, key);
      });
}

RoutingSample measure_can_routing(const overlay::CanNetwork& can,
                                  net::RttOracle& oracle,
                                  std::size_t queries, util::Rng& rng) {
  return measure_routing(can, oracle, queries, rng,
                         [&](overlay::NodeId source, const geom::Point& key) {
                           return can.route(source, key);
                         });
}

}  // namespace topo::sim
