// Experiment metrics shared by the benches: routing stretch and hop counts.
#pragma once

#include <cstddef>

#include "net/rtt_oracle.hpp"
#include "overlay/ecan.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace topo::sim {

struct RoutingSample {
  util::Samples stretch;        // path latency / direct shortest-path latency
  util::Samples logical_hops;   // overlay hops per query
  std::size_t failures = 0;     // routes that did not reach the owner
};

/// Latency of an overlay path: the sum of underlay latencies between
/// consecutive members' hosts.
double path_latency_ms(const overlay::CanNetwork& can, net::RttOracle& oracle,
                       std::span<const overlay::NodeId> path);

/// Runs `queries` random lookups: a random live source routes to the owner
/// of a uniformly random key, via eCAN expressway routing. Queries whose
/// source owns the key are skipped (stretch undefined).
RoutingSample measure_ecan_routing(const overlay::EcanNetwork& ecan,
                                   net::RttOracle& oracle,
                                   std::size_t queries, util::Rng& rng);

/// Same workload over plain CAN greedy routing (Figure 2 baseline).
RoutingSample measure_can_routing(const overlay::CanNetwork& can,
                                  net::RttOracle& oracle,
                                  std::size_t queries, util::Rng& rng);

}  // namespace topo::sim
