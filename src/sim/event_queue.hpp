// Discrete-event simulation kernel: a virtual clock plus an ordered queue
// of callbacks. Drives the soft-state dynamics (TTL expiry, republish
// timers) and the pub/sub churn scenarios.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/assert.hpp"

namespace topo::sim {

/// Simulated milliseconds.
using Time = double;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  Time now() const { return now_; }
  std::size_t pending() const { return heap_.size(); }

  /// Schedules `fn` at absolute time `at` (>= now).
  void schedule_at(Time at, Callback fn);
  /// Schedules `fn` `delay` ms from now.
  void schedule_in(Time delay, Callback fn) {
    TO_EXPECTS(delay >= 0.0);
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events up to and including time `until`; the clock ends at
  /// `until` even if the queue drains early.
  void run_until(Time until);

  /// Runs everything (use only when the event set is finite).
  void run_all();

  /// Drops all pending events (teardown).
  void clear();

 private:
  struct Item {
    Time at;
    std::uint64_t seq;  // FIFO tie-break for same-time events
    Callback fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Moves the earliest item out of the heap (std::pop_heap shifts it to
  /// the back first, so the heap never compares a moved-from item).
  Item pop_earliest();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  // An explicit binary heap (std::push_heap/pop_heap over a vector)
  // instead of std::priority_queue: priority_queue::top() is const, and
  // moving the callback out through const_cast mutates the heap's top
  // while it is still inside the heap ordering.
  std::vector<Item> heap_;
};

}  // namespace topo::sim
