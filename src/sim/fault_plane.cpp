#include "sim/fault_plane.hpp"

#include <algorithm>
#include <numeric>

namespace topo::sim {

const char* message_kind_name(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPublish: return "publish";
    case MessageKind::kLookup: return "lookup";
    case MessageKind::kNotify: return "notify";
    case MessageKind::kRepair: return "repair";
    case MessageKind::kData: return "data";
  }
  return "unknown";
}

void FaultPlane::bind_topology(const net::Topology* topology) {
  topology_ = topology;
  stub_count_ = 0;
  slow_stub_.clear();
  if (topology_ == nullptr) return;
  for (net::HostId h = 0; h < topology_->host_count(); ++h) {
    const std::int32_t stub = topology_->host(h).stub_domain;
    if (stub >= 0)
      stub_count_ = std::max(stub_count_, static_cast<std::size_t>(stub) + 1);
  }
  if (config_.slow_stub_fraction > 0.0) {
    // Dedicated RNG stream so marking slow stubs does not shift the
    // per-message loss draws (the verdict sequence for a given seed must
    // not depend on whether delay is also configured).
    util::Rng slow_rng(config_.seed ^ 0x510b510b510b510bull);
    slow_stub_.assign(stub_count_, false);
    for (std::size_t s = 0; s < stub_count_; ++s)
      slow_stub_[s] = slow_rng.next_bool(config_.slow_stub_fraction);
  }
}

void FaultPlane::partition_stub(std::int32_t stub) {
  TO_EXPECTS(stub >= 0);
  TO_EXPECTS(topology_ != nullptr);
  TO_EXPECTS(static_cast<std::size_t>(stub) < stub_count_);
  partitioned_stubs_.insert(stub);
}

std::vector<std::int32_t> FaultPlane::partition_stub_fraction(
    double fraction) {
  TO_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  TO_EXPECTS(topology_ != nullptr);
  std::vector<std::int32_t> stubs(stub_count_);
  std::iota(stubs.begin(), stubs.end(), 0);
  rng_.shuffle(stubs);
  const auto count = static_cast<std::size_t>(
      fraction * static_cast<double>(stub_count_) + 0.5);
  stubs.resize(std::min(count, stubs.size()));
  for (const std::int32_t stub : stubs) partitioned_stubs_.insert(stub);
  return stubs;
}

Verdict FaultPlane::block_(DeliveryOutcome outcome, MessageKind kind) {
  Verdict verdict;
  verdict.outcome = outcome;
  if (outcome == DeliveryOutcome::kCrashBlocked) ++stats_.crash_blocked;
  if (outcome == DeliveryOutcome::kPartitionBlocked) ++stats_.partition_blocked;
  if (outcome == DeliveryOutcome::kLost) ++stats_.lost;
  ++stats_.dropped_by_kind[static_cast<std::size_t>(kind)];
  return verdict;
}

Verdict FaultPlane::finish_(MessageKind kind, net::HostId from,
                            net::HostId to) {
  double loss = config_.message_loss;
  if (kind == MessageKind::kPublish) loss += config_.publish_loss;
  if (loss > 0.0 && rng_.next_bool(std::min(loss, 1.0)))
    return block_(DeliveryOutcome::kLost, kind);

  Verdict verdict;
  double delay = config_.extra_delay_ms;
  if (config_.stub_delay_ms > 0.0 && !slow_stub_.empty() &&
      (stub_slow(stub_of(from)) || stub_slow(stub_of(to))))
    delay += config_.stub_delay_ms;
  if (delay > 0.0) {
    verdict.delay_ms = delay;
    ++stats_.delayed;
    stats_.added_delay_ms += delay;
  }
  return verdict;
}

Verdict FaultPlane::message(MessageKind kind, net::HostId from,
                            net::HostId to) {
  ++stats_.messages;
  if (host_crashed(from) || host_crashed(to))
    return block_(DeliveryOutcome::kCrashBlocked, kind);
  if (partitioned(from, to))
    return block_(DeliveryOutcome::kPartitionBlocked, kind);
  return finish_(kind, from, to);
}

}  // namespace topo::sim
