#include "sim/lifecycle.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace topo::sim {

LifecycleEngine::LifecycleEngine(LifecycleHooks& hooks,
                                 LifecycleConfig config, EventQueue* queue)
    : hooks_(&hooks),
      config_(config),
      queue_(queue != nullptr ? queue : &owned_),
      rng_(config.seed) {
  TO_EXPECTS(config_.republish_interval_ms > 0.0);
  TO_EXPECTS(config_.republish_jitter >= 0.0 &&
             config_.republish_jitter < 1.0);
  TO_EXPECTS(config_.expiry_sweep_interval_ms >= 0.0);
  TO_EXPECTS(config_.crash_fraction >= 0.0 && config_.crash_fraction <= 1.0);
  schedule_expiry_sweep();
  schedule_next_join();
  schedule_next_departure();
}

Time LifecycleEngine::exponential_ms(double rate_hz) {
  TO_EXPECTS(rate_hz > 0.0);
  // Inverse-CDF sampling; 1 - U keeps the argument strictly positive.
  return -std::log(1.0 - rng_.next_double()) / rate_hz * 1000.0;
}

Time LifecycleEngine::jittered_interval() {
  const double swing = config_.republish_jitter;
  return config_.republish_interval_ms *
         (1.0 + (swing > 0.0 ? rng_.next_double(-swing, swing) : 0.0));
}

void LifecycleEngine::adopt(overlay::NodeId id) {
  TO_EXPECTS(id != overlay::kInvalidNode);
  TO_EXPECTS(hooks_->alive(id));
  live_.push_back(id);
  schedule_republish(id, /*first=*/true);
}

void LifecycleEngine::schedule_republish(overlay::NodeId id, bool first) {
  // Stagger the first firing over one period (desynchronizes a batch
  // bootstrap); afterwards each period carries its own jitter.
  const Time delay = first
                         ? rng_.next_double() * config_.republish_interval_ms
                         : jittered_interval();
  queue_->schedule_in(delay, [this, id] {
    if (!hooks_->alive(id)) return;  // departed: the chain ends here
    hooks_->republish(id);
    ++stats_.republishes;
    schedule_republish(id, /*first=*/false);
  });
}

void LifecycleEngine::schedule_expiry_sweep() {
  if (config_.expiry_sweep_interval_ms <= 0.0) return;
  queue_->schedule_in(config_.expiry_sweep_interval_ms, [this] {
    stats_.swept_entries += hooks_->expire(queue_->now());
    ++stats_.expiry_sweeps;
    schedule_expiry_sweep();
  });
}

void LifecycleEngine::schedule_next_join() {
  if (config_.join_rate_hz <= 0.0) return;
  const std::uint64_t epoch = churn_epoch_;
  queue_->schedule_in(exponential_ms(config_.join_rate_hz), [this, epoch] {
    if (epoch != churn_epoch_) return;  // churn was re-armed
    const overlay::NodeId id = hooks_->spawn_node();
    if (id != overlay::kInvalidNode) {
      ++stats_.joins;
      live_.push_back(id);
      schedule_republish(id, /*first=*/true);
    } else {
      ++stats_.rejected_joins;
    }
    schedule_next_join();
  });
}

void LifecycleEngine::schedule_next_departure() {
  if (config_.departure_rate_hz <= 0.0) return;
  const std::uint64_t epoch = churn_epoch_;
  queue_->schedule_in(exponential_ms(config_.departure_rate_hz),
                      [this, epoch] {
                        if (epoch != churn_epoch_) return;
                        depart_one();
                        schedule_next_departure();
                      });
}

void LifecycleEngine::depart_one() {
  // Prune stale ids (nodes departed outside the engine) as we draw.
  while (!live_.empty()) {
    const std::size_t pick = rng_.next_u64(live_.size());
    const overlay::NodeId id = live_[pick];
    if (!hooks_->alive(id)) {
      drop_live(id);
      continue;
    }
    if (live_.size() <= config_.min_population) {
      ++stats_.suppressed_departures;
      return;
    }
    if (rng_.next_bool(config_.crash_fraction)) {
      hooks_->crash_node(id);
      ++stats_.crashes;
    } else {
      hooks_->graceful_leave(id);
      ++stats_.graceful_leaves;
    }
    drop_live(id);
    return;
  }
}

void LifecycleEngine::drop_live(overlay::NodeId id) {
  const auto it = std::find(live_.begin(), live_.end(), id);
  if (it == live_.end()) return;
  *it = live_.back();
  live_.pop_back();
}

void LifecycleEngine::run_for(Time ms) {
  TO_EXPECTS(ms >= 0.0);
  queue_->run_until(queue_->now() + ms);
}

void LifecycleEngine::set_churn(double join_rate_hz,
                                double departure_rate_hz) {
  TO_EXPECTS(join_rate_hz >= 0.0 && departure_rate_hz >= 0.0);
  ++churn_epoch_;  // pending arrivals captured the old epoch and no-op
  config_.join_rate_hz = join_rate_hz;
  config_.departure_rate_hz = departure_rate_hz;
  schedule_next_join();
  schedule_next_departure();
}

}  // namespace topo::sim
