// Event-driven soft-state lifecycle engine (paper Sections 5-6).
//
// The soft-state design only works as a *process*: entries decay (TTL),
// periodic republish refills them, owners sweep out expired records, and
// churn continuously perturbs the map while pub/sub notifications repair
// neighbor choices. This engine closes that loop: it owns a discrete-event
// queue and schedules, per live node, a jittered republish timer
// (republish interval < TTL), periodic owner-side expiry sweeps, and a
// configurable churn process — Poisson joins, graceful leaves (proactive
// map update + store handoff) and crashes (nothing scrubbed; lazy repair
// and TTL decay must recover).
//
// The engine is layered below the system facade: it drives an abstract
// LifecycleHooks so `sim` does not depend on `core`. The facade-side
// adapter is core::OverlayLifecycle.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "overlay/node.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace topo::sim {

/// What the engine needs from the system under simulation. All calls
/// happen inside the engine's event callbacks, at the engine's now().
class LifecycleHooks {
 public:
  virtual ~LifecycleHooks() = default;

  /// Joins a fresh node (Poisson arrival); returns its id, or
  /// overlay::kInvalidNode if the system cannot admit one right now.
  virtual overlay::NodeId spawn_node() = 0;

  /// Graceful departure: proactive map scrub, store handoff, watcher
  /// notification (SoftStateOverlay::leave).
  virtual void graceful_leave(overlay::NodeId id) = 0;

  /// Ungraceful departure: the node vanishes with its hosted map piece;
  /// recovery is lazy repair plus TTL decay (SoftStateOverlay::crash).
  virtual void crash_node(overlay::NodeId id) = 0;

  /// Refreshes the node's soft-state records (and its load figures).
  virtual void republish(overlay::NodeId id) = 0;

  /// Owner-side expiry sweep; returns the number of entries dropped.
  virtual std::size_t expire(Time now) = 0;

  /// Liveness check (a node may have departed outside the engine).
  virtual bool alive(overlay::NodeId id) const = 0;
};

struct LifecycleConfig {
  /// Per-node republish period; must stay below the map TTL or records
  /// decay between refreshes.
  Time republish_interval_ms = 30'000.0;
  /// Each period is drawn from interval * (1 ± jitter); the first firing
  /// is additionally staggered uniformly over one period so a batch
  /// bootstrap does not republish in lockstep. In [0, 1).
  double republish_jitter = 0.2;
  /// Cadence of owner-side expiry sweeps (0 disables; on-access pruning
  /// still happens inside the map service).
  Time expiry_sweep_interval_ms = 5'000.0;
  /// Poisson churn rates, events per simulated second (0 disables).
  double join_rate_hz = 0.0;
  double departure_rate_hz = 0.0;
  /// Fraction of departures that are crashes (the rest leave gracefully).
  double crash_fraction = 0.5;
  /// Departures are suppressed while the population is at or below this
  /// (the paper's experiments never drain the overlay).
  std::size_t min_population = 8;
  std::uint64_t seed = 1;
};

struct LifecycleStats {
  std::uint64_t joins = 0;
  std::uint64_t graceful_leaves = 0;
  std::uint64_t crashes = 0;
  std::uint64_t republishes = 0;
  std::uint64_t expiry_sweeps = 0;
  std::uint64_t swept_entries = 0;
  std::uint64_t suppressed_departures = 0;  // min_population floor hit
  std::uint64_t rejected_joins = 0;         // spawn_node returned invalid
};

class LifecycleEngine {
 public:
  /// With `queue == nullptr` the engine owns its event queue; passing an
  /// external queue shares one virtual clock with the system facade
  /// (whose own timers, e.g. SoftStateOverlay's republish chains, live
  /// on the same queue).
  LifecycleEngine(LifecycleHooks& hooks, LifecycleConfig config,
                  EventQueue* queue = nullptr);

  LifecycleEngine(const LifecycleEngine&) = delete;
  LifecycleEngine& operator=(const LifecycleEngine&) = delete;

  /// Registers an already-joined node (bootstrap population) and starts
  /// its jittered republish timer.
  void adopt(overlay::NodeId id);

  /// Advances the virtual clock by `ms`, firing every due timer.
  void run_for(Time ms);

  /// Re-arms (or, with both rates 0, stops) the churn process; takes
  /// effect immediately, cancelling pending churn arrivals.
  void set_churn(double join_rate_hz, double departure_rate_hz);

  Time now() const { return queue_->now(); }
  EventQueue& events() { return *queue_; }
  const LifecycleConfig& config() const { return config_; }
  const LifecycleStats& stats() const { return stats_; }

  /// Live nodes as tracked by the engine (pruned lazily against hooks).
  std::span<const overlay::NodeId> live() const { return live_; }
  std::size_t population() const { return live_.size(); }

 private:
  void schedule_republish(overlay::NodeId id, bool first);
  void schedule_expiry_sweep();
  void schedule_next_join();
  void schedule_next_departure();
  void depart_one();
  void drop_live(overlay::NodeId id);

  /// Exponential inter-arrival delay for a Poisson process, in ms.
  Time exponential_ms(double rate_hz);
  /// One republish period with multiplicative jitter.
  Time jittered_interval();

  LifecycleHooks* hooks_;
  LifecycleConfig config_;
  EventQueue owned_;
  EventQueue* queue_;
  util::Rng rng_;
  LifecycleStats stats_;
  std::vector<overlay::NodeId> live_;
  /// Bumped by set_churn; pending churn events captured the old epoch
  /// and no-op when they fire.
  std::uint64_t churn_epoch_ = 0;
};

}  // namespace topo::sim
