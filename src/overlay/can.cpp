#include "overlay/can.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace topo::overlay {

namespace {

// Does subtree zone `z` touch (overlap or abut, torus-aware) query zone `q`
// in every axis? Used to prune the partition-tree walk that finds the
// owners geometrically adjacent to a zone.
bool touches(const geom::Zone& z, const geom::Zone& q) {
  for (std::size_t d = 0; d < z.dims(); ++d) {
    const bool overlap = z.lo(d) < q.hi(d) && q.lo(d) < z.hi(d);
    const bool abut = z.hi(d) == q.lo(d) || q.hi(d) == z.lo(d) ||
                      (z.hi(d) == 1.0 && q.lo(d) == 0.0) ||
                      (q.hi(d) == 1.0 && z.lo(d) == 0.0);
    if (!overlap && !abut) return false;
  }
  return true;
}

}  // namespace

CanNetwork::CanNetwork(std::size_t dims) : dims_(dims) {
  TO_EXPECTS(dims >= 1 && dims <= geom::Point::kMaxDims);
}

int CanNetwork::leaf_containing(const geom::Point& p) const {
  TO_EXPECTS(!tree_.empty());
  int current = 0;
  while (!tree_[static_cast<std::size_t>(current)].is_leaf()) {
    const TreeNode& t = tree_[static_cast<std::size_t>(current)];
    const int lo_child = t.child[0];
    current = tree_[static_cast<std::size_t>(lo_child)].zone.contains(p)
                  ? lo_child
                  : t.child[1];
  }
  return current;
}

NodeId CanNetwork::join(net::HostId host, const geom::Point& at,
                        NodeId* split_peer) {
  TO_EXPECTS(at.dims() == dims_);
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(CanNode{host, geom::Zone(), {}, true});
  leaf_of_node_.push_back(-1);
  live_.push_back(id);  // ids are monotonic, so the list stays sorted

  if (tree_.empty()) {
    tree_.push_back(TreeNode{geom::Zone::whole(dims_), 0, -1, {-1, -1}, id});
    leaf_of_node_[id] = 0;
    nodes_[id].zone = tree_[0].zone;
    if (split_peer != nullptr) *split_peer = kInvalidNode;
    on_join(id, kInvalidNode);
    return id;
  }

  const int leaf = leaf_containing(at);
  const NodeId peer = tree_[static_cast<std::size_t>(leaf)].owner;
  split_leaf(leaf, id, at);
  set_neighbors_after_split(peer, id);
  if (split_peer != nullptr) *split_peer = peer;
  on_join(id, peer);
  return id;
}

NodeId CanNetwork::join_random(net::HostId host, util::Rng& rng) {
  return join(host, geom::Point::random(dims_, rng));
}

void CanNetwork::split_leaf(int leaf, NodeId new_owner,
                            const geom::Point& at) {
  auto& t = tree_[static_cast<std::size_t>(leaf)];
  const NodeId old_owner = t.owner;
  const std::size_t dim = t.zone.longest_dim();
  const auto [lo_zone, hi_zone] = t.zone.split(dim);

  const auto lo_index = static_cast<int>(tree_.size());
  tree_.push_back(TreeNode{lo_zone, 0, leaf, {-1, -1}, kInvalidNode});
  const auto hi_index = static_cast<int>(tree_.size());
  tree_.push_back(TreeNode{hi_zone, 0, leaf, {-1, -1}, kInvalidNode});

  auto& parent = tree_[static_cast<std::size_t>(leaf)];  // re-fetch: push_back
  parent.split_dim = dim;
  parent.child[0] = lo_index;
  parent.child[1] = hi_index;
  parent.owner = kInvalidNode;

  // The joiner takes the half containing its chosen point.
  const bool joiner_takes_lo =
      tree_[static_cast<std::size_t>(lo_index)].zone.contains(at);
  const int joiner_leaf = joiner_takes_lo ? lo_index : hi_index;
  const int old_leaf = joiner_takes_lo ? hi_index : lo_index;

  tree_[static_cast<std::size_t>(joiner_leaf)].owner = new_owner;
  tree_[static_cast<std::size_t>(old_leaf)].owner = old_owner;
  leaf_of_node_[new_owner] = joiner_leaf;
  leaf_of_node_[old_owner] = old_leaf;
  nodes_[new_owner].zone = tree_[static_cast<std::size_t>(joiner_leaf)].zone;
  nodes_[old_owner].zone = tree_[static_cast<std::size_t>(old_leaf)].zone;
}

NodeId CanNetwork::owner_of(const geom::Point& p) const {
  TO_EXPECTS(!tree_.empty());
  return tree_[static_cast<std::size_t>(leaf_containing(p))].owner;
}

std::vector<NodeId> CanNetwork::geometric_neighbors(NodeId n) const {
  // Walk the tree collecting live leaf owners whose zones CAN-neighbor n.
  std::vector<NodeId> fresh;
  const geom::Zone& q = nodes_[n].zone;
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    const int idx = stack.back();
    stack.pop_back();
    const TreeNode& t = tree_[static_cast<std::size_t>(idx)];
    if (!touches(t.zone, q)) continue;
    if (t.is_leaf()) {
      if (t.owner != n && t.owner != kInvalidNode && nodes_[t.owner].alive &&
          q.is_can_neighbor(nodes_[t.owner].zone))
        fresh.push_back(t.owner);
    } else {
      stack.push_back(t.child[0]);
      stack.push_back(t.child[1]);
    }
  }
  std::sort(fresh.begin(), fresh.end());
  return fresh;
}

void CanNetwork::set_neighbors_after_split(NodeId old_node, NodeId new_node) {
  // Recompute the two affected neighbor lists from geometry (tree walk),
  // then patch the symmetric sides.
  auto update = [&](NodeId n) {
    std::vector<NodeId> fresh = geometric_neighbors(n);
    auto& mine = nodes_[n].neighbors;
    std::sort(mine.begin(), mine.end());
    // Removed neighbors: drop `n` from their lists.
    for (const NodeId v : mine)
      if (!std::binary_search(fresh.begin(), fresh.end(), v))
        std::erase(nodes_[v].neighbors, n);
    // Added neighbors: insert `n` into their lists.
    for (const NodeId v : fresh)
      if (!std::binary_search(mine.begin(), mine.end(), v))
        nodes_[v].neighbors.push_back(n);
    mine = std::move(fresh);
  };
  update(old_node);
  update(new_node);
}

void CanNetwork::rewire_after_merge(NodeId surviving) {
  set_neighbors_after_split(surviving, surviving);  // single-node update
}

void CanNetwork::remove_from_neighbors(NodeId gone) {
  for (const NodeId v : nodes_[gone].neighbors)
    std::erase(nodes_[v].neighbors, gone);
  nodes_[gone].neighbors.clear();
}

int CanNetwork::deepest_buddy_parent(int root) const {
  // DFS for the deepest internal node whose children are both leaves.
  int best = -1;
  int best_depth = -1;
  std::vector<std::pair<int, int>> stack = {{root, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const TreeNode& t = tree_[static_cast<std::size_t>(idx)];
    if (t.is_leaf()) continue;
    const bool both_leaves =
        tree_[static_cast<std::size_t>(t.child[0])].is_leaf() &&
        tree_[static_cast<std::size_t>(t.child[1])].is_leaf();
    if (both_leaves) {
      if (depth > best_depth) {
        best_depth = depth;
        best = idx;
      }
    } else {
      stack.emplace_back(t.child[0], depth + 1);
      stack.emplace_back(t.child[1], depth + 1);
    }
  }
  return best;
}

void CanNetwork::merge_buddies(int parent_index, NodeId surviving) {
  auto& parent = tree_[static_cast<std::size_t>(parent_index)];
  TO_EXPECTS(!parent.is_leaf());
  TO_EXPECTS(tree_[static_cast<std::size_t>(parent.child[0])].is_leaf());
  TO_EXPECTS(tree_[static_cast<std::size_t>(parent.child[1])].is_leaf());
  parent.child[0] = -1;
  parent.child[1] = -1;
  parent.owner = surviving;
  leaf_of_node_[surviving] = parent_index;
  nodes_[surviving].zone = parent.zone;
}

CanNetwork::LeaveReport CanNetwork::leave(NodeId id) {
  TO_EXPECTS(alive(id));
  const int leaf = leaf_of_node_[id];
  NodeId taker = kInvalidNode;
  NodeId moved = kInvalidNode;

  remove_from_neighbors(id);
  nodes_[id].alive = false;
  leaf_of_node_[id] = -1;
  live_.erase(std::lower_bound(live_.begin(), live_.end(), id));

  const TreeNode& l = tree_[static_cast<std::size_t>(leaf)];
  if (l.parent < 0) {
    // Last node: the partition tree becomes empty.
    tree_.clear();
    on_leave(id, kInvalidNode, kInvalidNode);
    return {};
  }

  const int parent = l.parent;
  const TreeNode& p = tree_[static_cast<std::size_t>(parent)];
  const int buddy = p.child[0] == leaf ? p.child[1] : p.child[0];

  if (tree_[static_cast<std::size_t>(buddy)].is_leaf()) {
    // Buddy takes over the merged (parent) zone.
    taker = tree_[static_cast<std::size_t>(buddy)].owner;
    merge_buddies(parent, taker);
    rewire_after_merge(taker);
  } else {
    // Deepest buddy pair under the buddy subtree: one of them hands its
    // zone to its own buddy and takes over the departed zone (CAN's
    // defragmented takeover, keeping one zone per node).
    const int q = deepest_buddy_parent(buddy);
    TO_ASSERT(q >= 0);
    const auto& qt = tree_[static_cast<std::size_t>(q)];
    moved = tree_[static_cast<std::size_t>(qt.child[0])].owner;
    taker = tree_[static_cast<std::size_t>(qt.child[1])].owner;
    merge_buddies(q, taker);
    // `moved` takes the departed leaf.
    tree_[static_cast<std::size_t>(leaf)].owner = moved;
    leaf_of_node_[moved] = leaf;
    nodes_[moved].zone = tree_[static_cast<std::size_t>(leaf)].zone;
    rewire_after_merge(taker);
    rewire_after_merge(moved);
  }
  on_leave(id, taker, moved);
  return LeaveReport{taker, moved};
}

NodeId CanNetwork::greedy_next_hop(NodeId from,
                                   const geom::Point& target) const {
  TO_EXPECTS(alive(from));
  const CanNode& n = nodes_[from];
  if (n.zone.contains(target)) return kInvalidNode;
  NodeId best = kInvalidNode;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const NodeId v : n.neighbors) {
    const double d = nodes_[v].zone.distance_to(target);
    if (d < best_dist) {
      best_dist = d;
      best = v;
    }
  }
  return best;
}

RouteResult CanNetwork::route(NodeId from, const geom::Point& target) const {
  TO_EXPECTS(alive(from));
  RouteResult result;
  result.path.push_back(from);
  NodeId current = from;
  const std::size_t max_hops = 4 * nodes_.size() + 16;
  while (result.path.size() <= max_hops) {
    if (nodes_[current].zone.contains(target)) {
      result.success = true;
      return result;
    }
    const NodeId next = greedy_next_hop(current, target);
    if (next == kInvalidNode) return result;  // no live neighbor: fail
    result.path.push_back(next);
    current = next;
  }
  return result;  // loop guard tripped
}

bool CanNetwork::check_invariants() const {
  // 1. The incremental live list agrees exactly with the alive flags
  //    (ascending, no gaps, no stale entries).
  std::vector<NodeId> scanned;
  for (NodeId id = 0; id < nodes_.size(); ++id)
    if (nodes_[id].alive) scanned.push_back(id);
  if (scanned != live_) return false;

  // 2. Zone volumes of live nodes sum to 1 (exact for dyadic splits).
  double volume = 0.0;
  for (const auto& n : nodes_)
    if (n.alive) volume += n.zone.volume();
  if (!live_.empty() && std::abs(volume - 1.0) > 1e-9) return false;

  // 3. Neighbor lists match geometry. Each node's stored list is compared
  //    against a fresh geometric recomputation (pruned tree walk), which
  //    also covers symmetry — the geometric relation is symmetric, so two
  //    lists that both match it agree pairwise. O(n (log n + k)) rather
  //    than the all-pairs O(n^2) scan, so scale sweeps can keep this on.
  for (const NodeId a : live_) {
    std::vector<NodeId> listed = nodes_[a].neighbors;
    std::sort(listed.begin(), listed.end());
    if (listed != geometric_neighbors(a)) return false;
  }
  return true;
}

}  // namespace topo::overlay
