// Chord (Stoica et al., SIGCOMM'01), the second overlay family the paper
// targets: "In the case of Chord, we can simply use the landmark number as
// the key to store the information of an expressway node on a node whose
// ID is equal to or greater than the landmark number" (Appendix).
//
// This is a single-process simulation of the protocol's steady state: a
// sorted ring with successor pointers and finger tables. Like Pastry's
// routing-table entries and eCAN's expressway links, a finger has
// *selection freedom*: finger i of node n may point at ANY node in
// [n + 2^i, n + 2^(i+1)) — the classic protocol takes the first one
// (successor of n + 2^i), proximity-neighbor selection takes the
// physically closest. That freedom is what the soft-state maps exploit.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "net/graph.hpp"
#include "overlay/node.hpp"
#include "util/rng.hpp"

namespace topo::overlay {

using ChordId = std::uint64_t;

/// Strategy for picking a finger among the members of its interval
/// (mirror of overlay::RepresentativeSelector for the CAN family).
class FingerSelector {
 public:
  virtual ~FingerSelector() = default;

  /// Picks finger `index` of `for_node` among `candidates`, the live nodes
  /// whose ids fall in the finger's interval, in ring order (never empty).
  virtual NodeId select(NodeId for_node, int finger_index,
                        std::span<const NodeId> candidates) = 0;
};

class ChordNetwork {
 public:
  /// Ring of size 2^id_bits, id_bits <= 62.
  explicit ChordNetwork(int id_bits = 32);

  ChordNetwork(const ChordNetwork&) = delete;
  ChordNetwork& operator=(const ChordNetwork&) = delete;

  int id_bits() const { return id_bits_; }
  ChordId ring_size() const { return ring_size_; }
  std::size_t size() const { return ring_.size(); }

  struct ChordNode {
    net::HostId host = net::kInvalidHost;
    ChordId id = 0;
    bool alive = false;
    std::vector<NodeId> fingers;  // id_bits entries; kInvalidNode = unset
  };

  const ChordNode& node(NodeId n) const {
    TO_EXPECTS(n < nodes_.size());
    return nodes_[n];
  }
  bool alive(NodeId n) const {
    return n < nodes_.size() && nodes_[n].alive;
  }

  /// Joins with an explicit ring id (ids must be unique).
  NodeId join(net::HostId host, ChordId id);
  /// Joins at a random unoccupied id.
  NodeId join_random(net::HostId host, util::Rng& rng);
  void leave(NodeId n);

  /// The node responsible for `key`: first node with id >= key (wrapping).
  NodeId successor_of(ChordId key) const;
  /// The live successor node on the ring after node `n` itself.
  NodeId successor_node(NodeId n) const;

  /// All live nodes whose ids lie in the wrap-aware interval [lo, hi).
  /// Ring order starting at lo; `limit` caps the result (0 = no cap).
  std::vector<NodeId> nodes_in_interval(ChordId lo, ChordId hi,
                                        std::size_t limit = 0) const;

  /// Finger i's interval of node n: [id + 2^i, id + 2^(i+1)) mod ring.
  std::pair<ChordId, ChordId> finger_interval(NodeId n, int finger) const;

  /// (Re)builds node n's finger table with `selector`.
  void build_fingers(NodeId n, FingerSelector& selector);
  void build_all_fingers(FingerSelector& selector);

  /// Re-selects a single finger (pub/sub-driven or lazy repair).
  void refresh_finger(NodeId n, int finger, FingerSelector& selector);

  /// Greedy Chord routing: forward to the closest preceding alive finger
  /// of the key; falls back to successor walking (always terminates).
  /// path.back() is the key's owner.
  RouteResult route(NodeId from, ChordId key) const;

  /// Like route(), but a finger found dead is re-selected on the spot with
  /// `selector` (reactive repair, mirroring EcanNetwork::route_ecan_repair).
  RouteResult route_repair(NodeId from, ChordId key,
                           FingerSelector& selector);
  std::uint64_t lazy_repairs() const { return lazy_repairs_; }

  std::vector<NodeId> live_nodes() const;

  /// Ring-distance from a to b going clockwise.
  ChordId clockwise_distance(ChordId a, ChordId b) const {
    return (b - a) & (ring_size_ - 1);
  }

  /// True iff `x` is in the wrap-aware half-open arc [lo, hi).
  bool in_arc(ChordId x, ChordId lo, ChordId hi) const {
    return clockwise_distance(lo, x) < clockwise_distance(lo, hi);
  }

  /// Ring-consistency check (holds at all times, churn included).
  bool check_ring_consistency() const;

  /// Full invariant check for tests: ring consistency plus fingers inside
  /// their intervals — the latter only holds right after tables are
  /// (re)built; under churn a finger may legally sit outside an interval
  /// that was empty at selection time and has since gained members.
  bool check_invariants() const;

  std::uint64_t broken_finger_encounters() const {
    return broken_finger_encounters_;
  }

 private:
  int id_bits_;
  ChordId ring_size_;
  std::vector<ChordNode> nodes_;
  std::map<ChordId, NodeId> ring_;  // live nodes sorted by id
  mutable std::uint64_t broken_finger_encounters_ = 0;
  std::uint64_t lazy_repairs_ = 0;
};

}  // namespace topo::overlay
