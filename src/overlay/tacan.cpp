#include "overlay/tacan.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace topo::overlay {

NodeId join_binned(CanNetwork& can, net::HostId host, std::size_t bin,
                   std::size_t bin_count, util::Rng& rng) {
  TO_EXPECTS(bin_count > 0 && bin < bin_count);
  geom::Point p = geom::Point::random(can.dims(), rng);
  const double width = 1.0 / static_cast<double>(bin_count);
  p[0] = (static_cast<double>(bin) + p[0]) * width;
  if (p[0] >= 1.0) p[0] = std::nextafter(1.0, 0.0);
  return can.join(host, p);
}

ImbalanceReport measure_imbalance(const CanNetwork& can) {
  ImbalanceReport report;
  std::vector<double> volumes;
  util::Samples neighbor_counts;
  for (const NodeId id : can.live_view()) {
    volumes.push_back(can.node(id).zone.volume());
    neighbor_counts.add(static_cast<double>(can.node(id).neighbors.size()));
  }
  if (volumes.empty()) return report;

  report.volume_gini = util::gini_coefficient(volumes);
  std::sort(volumes.begin(), volumes.end(), std::greater<>());
  auto top_fraction = [&](double pct) {
    const auto k = std::max<std::size_t>(
        1, static_cast<std::size_t>(pct * static_cast<double>(volumes.size())));
    double sum = 0.0;
    for (std::size_t i = 0; i < k && i < volumes.size(); ++i)
      sum += volumes[i];
    return sum;  // total volume is 1
  };
  report.top1pct_volume = top_fraction(0.01);
  report.top5pct_volume = top_fraction(0.05);
  report.top10pct_volume = top_fraction(0.10);
  report.max_neighbors = neighbor_counts.max();
  report.mean_neighbors = neighbor_counts.mean();
  report.p99_neighbors = neighbor_counts.percentile(99);
  return report;
}

}  // namespace topo::overlay
