// eCAN: CAN augmented with "expressway" routing tables of larger span
// (Xu & Zhang, "Building Low-maintenance Expressways for P2P Systems").
//
// The space is recursively divided into a nested 2^d-ary grid: an order-h
// cell has side 2^-h per axis. A node whose CAN zone fits inside its order-h
// cell is a *member* of that cell; per order it keeps one representative
// link into each of the 2d abutting cells. Routing fixes the coarsest
// differing grid level first (one "digit" per level, like Pastry prefix
// routing), then finishes with plain CAN greedy hops — O(log N) hops total,
// which Figure 2 of the paper demonstrates against plain CAN.
//
// Which member of the adjacent cell becomes the representative is delegated
// to a RepresentativeSelector — the knob the whole paper is about.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/rtt_oracle.hpp"
#include "overlay/can.hpp"
#include "overlay/selector.hpp"

namespace topo::overlay {

/// Reusable routing scratch (the DijkstraScratch pattern): callers that
/// route many messages keep one of these so the hop path buffer is
/// allocated once and reused, making each route_ecan call allocation-free.
struct RouteScratch {
  std::vector<NodeId> path;
};

class EcanNetwork : public CanNetwork {
 public:
  /// `max_level` caps the expressway depth (order-h cells exist for
  /// h = 1..max_level); memory is only spent on cells that have members.
  explicit EcanNetwork(std::size_t dims, int max_level = 14);

  int max_level() const { return max_level_; }

  /// Deepest order whose cell still encloses the node's zone.
  int node_level(NodeId id) const;

  /// Grid cell (coords per axis) of a node's zone / of a point at `level`.
  std::vector<std::uint32_t> cell_of_node(NodeId id, int level) const;
  /// Allocation-free variant for hot paths (`out` must have size dims()).
  void cell_of_node_into(NodeId id, int level,
                         std::span<std::uint32_t> out) const;
  std::vector<std::uint32_t> cell_of_point(const geom::Point& p,
                                           int level) const;

  geom::Zone cell_zone(int level,
                       std::span<const std::uint32_t> coords) const;

  /// Canonical 64-bit key of a (level, cell) pair; shared with the
  /// soft-state map layer so stored entries can be tagged by map.
  std::uint64_t pack_cell(int level,
                          std::span<const std::uint32_t> coords) const;

  /// Abutting cell at `level` in direction (dim, dir); torus wrap.
  /// dir is 0 (towards lower coords) or 1 (towards higher).
  std::vector<std::uint32_t> adjacent_cell(
      std::span<const std::uint32_t> coords, int level, std::size_t dim,
      int dir) const;

  /// Live members of a cell (nodes whose zone fits inside it).
  std::span<const NodeId> members_of_cell(
      int level, std::span<const std::uint32_t> coords) const;

  // -- Expressway routing tables --------------------------------------

  /// (Re)builds the full expressway table of one node with `selector`.
  void build_table(NodeId id, RepresentativeSelector& selector);
  /// Builds every live node's table (static-experiment bootstrap).
  void build_all_tables(RepresentativeSelector& selector);

  /// Re-selects a single entry (pub/sub driven maintenance, lazy repair).
  void refresh_entry(NodeId id, int level, std::size_t dim, int dir,
                     RepresentativeSelector& selector);

  /// Current representative for (level, dim, dir), if the node has that
  /// level. dir is 0 (towards lower coords) or 1 (towards higher).
  NodeId table_entry(NodeId id, int level, std::size_t dim, int dir) const;

  /// Replaces every table entry pointing at `gone` using `selector`
  /// (eager repair used by the maintenance experiments).
  void repair_entries_to(NodeId gone, RepresentativeSelector& selector);

  /// Expressway routing: coarsest-differing-level-first, CAN greedy tail.
  /// Dead table entries are skipped (and counted) — the lazy-repair path.
  ///
  /// The scratch overload is the fast path: the hop sequence lands in
  /// `scratch.path` (cleared first) and nothing is allocated per hop —
  /// cell coordinates come from the per-node cache and next-hop candidates
  /// from the flattened tables. Returns whether the owner of `target` was
  /// reached. The RouteResult overload wraps it for callers that route
  /// occasionally and don't keep a scratch.
  bool route_ecan(NodeId from, const geom::Point& target,
                  RouteScratch& scratch) const;
  RouteResult route_ecan(NodeId from, const geom::Point& target) const;

  /// Pre-fast-path implementation, kept verbatim: re-derives cell
  /// coordinates per level and allocates per hop. The fast path is tested
  /// to produce byte-identical hop sequences (and identical
  /// broken_entry_encounters accounting) against this; the scale bench's
  /// seed-comparison mode routes through it.
  RouteResult route_ecan_reference(NodeId from, const geom::Point& target) const;

  /// *Proximity routing* (the second technique in Castro et al.'s
  /// taxonomy, paper Section 1): the overlay is built without proximity
  /// knowledge, but each hop forwards to the topologically closest
  /// next-hop candidate in the routing table — here, the closest (by RTT
  /// from the current node) among all table entries and CAN neighbors
  /// whose zone is strictly closer to the target. A real node knows these
  /// RTTs from keep-alive measurements; the oracle models them (they are
  /// not charged as probes). bench/taxonomy_techniques compares this
  /// against proximity-neighbor selection.
  RouteResult route_ecan_proximity(NodeId from, const geom::Point& target,
                                   net::RttOracle& oracle) const;

  /// Like route_ecan, but a table entry found pointing at a dead node is
  /// re-selected on the spot with `selector` before continuing — the
  /// paper's reactive repair ("departed nodes are deleted from the global
  /// state only when they are selected as routing neighbor replacements
  /// and later found un-reachable" — the selector's soft-state lookup
  /// performs that deletion).
  RouteResult route_ecan_repair(NodeId from, const geom::Point& target,
                                RepresentativeSelector& selector);

  std::uint64_t broken_entry_encounters() const {
    return broken_entry_encounters_;
  }
  std::uint64_t lazy_repairs() const { return lazy_repairs_; }

  /// Verifies membership-index consistency (tests).
  bool check_membership_index() const;

 protected:
  void on_join(NodeId joined, NodeId split_peer) override;
  void on_leave(NodeId leaver, NodeId taker, NodeId moved) override;

 private:
  void register_membership(NodeId id);
  void unregister_membership(NodeId id);

  int max_level_;
  std::unordered_map<std::uint64_t, std::vector<NodeId>> cell_members_;
  // Zone each node registered its membership with (needed to unregister
  // after the zone has already changed).
  std::vector<std::optional<geom::Zone>> registered_zone_;

  // Flattened expressway table of one node: `levels` built levels, each
  // holding dims()*2 representatives, slot (h, dim, dir) at index
  // (h-1)*dims()*2 + dim*2 + dir. One contiguous buffer per node instead
  // of a vector-of-vectors keeps routing reads on one cache line per
  // level and lets build_table reuse the allocation across rebuilds.
  struct FlatTable {
    int levels = 0;
    std::vector<NodeId> reps;
  };
  std::vector<FlatTable> tables_;

  // Grid coordinates of each live node's cell at its deepest level,
  // refreshed by register_membership whenever the zone changes. The cell
  // at any coarser level h is coords >> (level - h) — exact, because
  // grid_coord scales by a power of two — so routing never re-derives
  // coordinates from the zone.
  struct CellCache {
    int level = 0;
    std::array<std::uint32_t, geom::Point::kMaxDims> coords{};
  };
  std::vector<CellCache> cell_cache_;

  mutable std::uint64_t broken_entry_encounters_ = 0;
  std::uint64_t lazy_repairs_ = 0;
};

}  // namespace topo::overlay
