#include "overlay/chord.hpp"

#include <algorithm>

namespace topo::overlay {

ChordNetwork::ChordNetwork(int id_bits) : id_bits_(id_bits) {
  TO_EXPECTS(id_bits >= 3 && id_bits <= 62);
  ring_size_ = 1ULL << id_bits;
}

NodeId ChordNetwork::join(net::HostId host, ChordId id) {
  TO_EXPECTS(id < ring_size_);
  TO_EXPECTS(ring_.find(id) == ring_.end());
  const auto n = static_cast<NodeId>(nodes_.size());
  ChordNode node;
  node.host = host;
  node.id = id;
  node.alive = true;
  node.fingers.assign(static_cast<std::size_t>(id_bits_), kInvalidNode);
  nodes_.push_back(std::move(node));
  ring_.emplace(id, n);
  return n;
}

NodeId ChordNetwork::join_random(net::HostId host, util::Rng& rng) {
  ChordId id = rng.next_u64(ring_size_);
  while (ring_.find(id) != ring_.end()) id = rng.next_u64(ring_size_);
  return join(host, id);
}

void ChordNetwork::leave(NodeId n) {
  TO_EXPECTS(alive(n));
  ring_.erase(nodes_[n].id);
  nodes_[n].alive = false;
  nodes_[n].fingers.clear();
}

NodeId ChordNetwork::successor_of(ChordId key) const {
  TO_EXPECTS(!ring_.empty());
  const auto it = ring_.lower_bound(key);
  return it == ring_.end() ? ring_.begin()->second : it->second;
}

NodeId ChordNetwork::successor_node(NodeId n) const {
  TO_EXPECTS(alive(n));
  return successor_of((nodes_[n].id + 1) & (ring_size_ - 1));
}

std::vector<NodeId> ChordNetwork::nodes_in_interval(ChordId lo, ChordId hi,
                                                    std::size_t limit) const {
  std::vector<NodeId> out;
  if (ring_.empty()) return out;
  auto it = ring_.lower_bound(lo);
  for (std::size_t scanned = 0; scanned < ring_.size(); ++scanned) {
    if (it == ring_.end()) it = ring_.begin();
    if (!in_arc(it->first, lo, hi)) break;
    out.push_back(it->second);
    if (limit != 0 && out.size() >= limit) break;
    ++it;
  }
  return out;
}

std::pair<ChordId, ChordId> ChordNetwork::finger_interval(NodeId n,
                                                          int finger) const {
  TO_EXPECTS(alive(n));
  TO_EXPECTS(finger >= 0 && finger < id_bits_);
  const ChordId lo = (nodes_[n].id + (ChordId{1} << finger)) &
                     (ring_size_ - 1);
  // For the top finger, 2^(finger+1) == ring size, so hi wraps to the
  // node's own id (the half-ring interval) — handled by the mask.
  const ChordId hi = (nodes_[n].id + (ChordId{1} << (finger + 1))) &
                     (ring_size_ - 1);
  return {lo, hi};
}

void ChordNetwork::build_fingers(NodeId n, FingerSelector& selector) {
  TO_EXPECTS(alive(n));
  auto& fingers = nodes_[n].fingers;
  fingers.assign(static_cast<std::size_t>(id_bits_), kInvalidNode);
  for (int i = 0; i < id_bits_; ++i) {
    const auto [lo, hi] = finger_interval(n, i);
    const auto candidates = nodes_in_interval(lo, hi);
    if (candidates.empty()) {
      // Classic Chord: the finger is the successor of the interval start,
      // even when it lies beyond the interval; no selection freedom here.
      const NodeId successor = successor_of(lo);
      fingers[static_cast<std::size_t>(i)] =
          successor == n ? kInvalidNode : successor;
    } else {
      fingers[static_cast<std::size_t>(i)] =
          selector.select(n, i, candidates);
    }
  }
}

void ChordNetwork::build_all_fingers(FingerSelector& selector) {
  for (const NodeId n : live_nodes()) build_fingers(n, selector);
}

void ChordNetwork::refresh_finger(NodeId n, int finger,
                                  FingerSelector& selector) {
  TO_EXPECTS(alive(n));
  TO_EXPECTS(finger >= 0 && finger < id_bits_);
  const auto [lo, hi] = finger_interval(n, finger);
  const auto candidates = nodes_in_interval(lo, hi);
  auto& slot = nodes_[n].fingers[static_cast<std::size_t>(finger)];
  if (candidates.empty()) {
    const NodeId successor = successor_of(lo);
    slot = successor == n ? kInvalidNode : successor;
  } else {
    slot = selector.select(n, finger, candidates);
  }
}

RouteResult ChordNetwork::route(NodeId from, ChordId key) const {
  TO_EXPECTS(alive(from));
  RouteResult result;
  result.path.push_back(from);
  NodeId current = from;
  const std::size_t max_hops = 2 * ring_.size() + 16;

  while (result.path.size() <= max_hops) {
    if (successor_of(key) == current) {  // current is responsible
      result.success = true;
      return result;
    }
    const NodeId succ = successor_node(current);
    const ChordId current_id = nodes_[current].id;
    // Deliver to the immediate successor if it is responsible.
    if (in_arc(key, (current_id + 1) & (ring_size_ - 1),
               (nodes_[succ].id + 1) & (ring_size_ - 1))) {
      result.path.push_back(succ);
      result.success = true;
      return result;
    }
    // Closest preceding alive finger of the key.
    NodeId next = kInvalidNode;
    const auto& fingers = nodes_[current].fingers;
    for (int i = id_bits_ - 1; i >= 0; --i) {
      const NodeId candidate = fingers[static_cast<std::size_t>(i)];
      if (candidate == kInvalidNode) continue;
      if (!alive(candidate)) {
        ++broken_finger_encounters_;
        continue;
      }
      if (in_arc(nodes_[candidate].id, (current_id + 1) & (ring_size_ - 1),
                 key)) {
        next = candidate;
        break;
      }
    }
    if (next == kInvalidNode) next = succ;  // successor walk: always progress
    result.path.push_back(next);
    current = next;
  }
  return result;
}

RouteResult ChordNetwork::route_repair(NodeId from, ChordId key,
                                       FingerSelector& selector) {
  TO_EXPECTS(alive(from));
  RouteResult result;
  result.path.push_back(from);
  NodeId current = from;
  const std::size_t max_hops = 2 * ring_.size() + 16;

  while (result.path.size() <= max_hops) {
    if (successor_of(key) == current) {
      result.success = true;
      return result;
    }
    const NodeId succ = successor_node(current);
    const ChordId current_id = nodes_[current].id;
    if (in_arc(key, (current_id + 1) & (ring_size_ - 1),
               (nodes_[succ].id + 1) & (ring_size_ - 1))) {
      result.path.push_back(succ);
      result.success = true;
      return result;
    }
    NodeId next = kInvalidNode;
    for (int i = id_bits_ - 1; i >= 0; --i) {
      NodeId candidate = nodes_[current].fingers[static_cast<std::size_t>(i)];
      if (candidate != kInvalidNode && !alive(candidate)) {
        ++broken_finger_encounters_;
        ++lazy_repairs_;
        refresh_finger(current, i, selector);
        candidate = nodes_[current].fingers[static_cast<std::size_t>(i)];
      }
      if (candidate == kInvalidNode || !alive(candidate)) continue;
      if (in_arc(nodes_[candidate].id, (current_id + 1) & (ring_size_ - 1),
                 key)) {
        next = candidate;
        break;
      }
    }
    if (next == kInvalidNode) next = succ;
    result.path.push_back(next);
    current = next;
  }
  return result;
}

std::vector<NodeId> ChordNetwork::live_nodes() const {
  std::vector<NodeId> out;
  out.reserve(ring_.size());
  for (const auto& [id, n] : ring_) {
    (void)id;
    out.push_back(n);
  }
  return out;
}

bool ChordNetwork::check_ring_consistency() const {
  for (const auto& [id, n] : ring_) {
    if (!alive(n)) return false;
    if (nodes_[n].id != id) return false;
  }
  for (NodeId n = 0; n < nodes_.size(); ++n)
    if (nodes_[n].alive && ring_.find(nodes_[n].id) == ring_.end())
      return false;
  return true;
}

bool ChordNetwork::check_invariants() const {
  if (!check_ring_consistency()) return false;
  // Fingers lie in their intervals when the interval is occupied.
  for (const auto& [id, n] : ring_) {
    (void)id;
    const auto& fingers = nodes_[n].fingers;
    for (int i = 0; i < static_cast<int>(fingers.size()); ++i) {
      const NodeId finger = fingers[static_cast<std::size_t>(i)];
      if (finger == kInvalidNode || !alive(finger)) continue;
      const auto [lo, hi] = finger_interval(n, i);
      const bool interval_occupied = !nodes_in_interval(lo, hi, 1).empty();
      if (interval_occupied && !in_arc(nodes_[finger].id, lo, hi))
        return false;
    }
  }
  return true;
}

}  // namespace topo::overlay
