// Pastry (Rowstron & Druschel, Middleware'01) — the overlay the paper
// most often contrasts with: prefix routing over a circular id space,
// with *proximity-neighbor selection* freedom in every routing-table slot
// ("in Pastry, the constraint is the nodeId prefix").
//
// Simulated steady state: node ids are id_bits-bit integers read as
// digits of digit_bits bits. Entry (row r, column c) of a node's routing
// table may be ANY node whose id shares the node's first r digits and has
// c as digit r — a dyadic id range, which is exactly the "region" the
// paper attaches a proximity map to ("for Pastry, a region is a set of
// nodes sharing a particular prefix ... there is one map for each nodeId
// prefix").
//
// Routing: resolve one digit per hop via the routing table; when the slot
// is empty/dead, fall back to any known node sharing at least as long a
// prefix and numerically closer; deliver through the leaf set (the L ring
// neighbors) once the key's owner is in sight. The owner of a key is the
// numerically closest node (ring-wrap-aware).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "net/graph.hpp"
#include "overlay/node.hpp"
#include "util/rng.hpp"

namespace topo::overlay {

using PastryId = std::uint64_t;

/// Strategy for filling one routing-table slot from the members of its
/// prefix region.
class RoutingSlotSelector {
 public:
  virtual ~RoutingSlotSelector() = default;

  /// Picks the entry for (row, column) of `for_node` among `candidates`,
  /// the live nodes of the slot's prefix region (never empty), in id order.
  virtual NodeId select(NodeId for_node, int row, int column,
                        std::span<const NodeId> candidates) = 0;
};

class PastryNetwork {
 public:
  /// id_bits must be a multiple of digit_bits; base = 2^digit_bits.
  explicit PastryNetwork(int id_bits = 32, int digit_bits = 4,
                         int leaf_set_half = 4);

  PastryNetwork(const PastryNetwork&) = delete;
  PastryNetwork& operator=(const PastryNetwork&) = delete;

  int id_bits() const { return id_bits_; }
  int digit_bits() const { return digit_bits_; }
  int digits() const { return id_bits_ / digit_bits_; }
  int base() const { return 1 << digit_bits_; }
  PastryId ring_size() const { return ring_size_; }
  std::size_t size() const { return ring_.size(); }

  struct PastryNode {
    net::HostId host = net::kInvalidHost;
    PastryId id = 0;
    bool alive = false;
    // table[row * base + column]; kInvalidNode = empty slot.
    std::vector<NodeId> table;
  };

  const PastryNode& node(NodeId n) const {
    TO_EXPECTS(n < nodes_.size());
    return nodes_[n];
  }
  bool alive(NodeId n) const { return n < nodes_.size() && nodes_[n].alive; }

  NodeId join(net::HostId host, PastryId id);
  NodeId join_random(net::HostId host, util::Rng& rng);
  void leave(NodeId n);

  /// Digit `index` (0 = most significant) of an id.
  int digit(PastryId id, int index) const;
  /// Number of leading digits `a` and `b` share.
  int shared_prefix_digits(PastryId a, PastryId b) const;
  /// Id range [lo, hi) of the region "first `row` digits of `id`, then
  /// digit `column`".
  std::pair<PastryId, PastryId> slot_range(PastryId id, int row,
                                           int column) const;
  /// Live nodes in [lo, hi) in id order (no wrap: slot ranges never wrap).
  std::vector<NodeId> nodes_in_range(PastryId lo, PastryId hi) const;

  /// The key's owner: numerically closest node, ring-aware
  /// (ties broken toward the lower id).
  NodeId numerically_closest(PastryId key) const;

  /// Ring-aware numeric distance |a - b|.
  PastryId numeric_distance(PastryId a, PastryId b) const;

  /// The leaf set of `n`: up to leaf_set_half ring neighbors per side.
  std::vector<NodeId> leaf_set(NodeId n) const;

  void build_table(NodeId n, RoutingSlotSelector& selector);
  void build_all_tables(RoutingSlotSelector& selector);
  void refresh_slot(NodeId n, int row, int column,
                    RoutingSlotSelector& selector);
  NodeId table_entry(NodeId n, int row, int column) const;

  /// Prefix routing with leaf-set delivery; path.back() owns the key.
  RouteResult route(NodeId from, PastryId key) const;

  /// Like route(), but a routing-table slot found dead is re-selected on
  /// the spot with `selector` (reactive repair).
  RouteResult route_repair(NodeId from, PastryId key,
                           RoutingSlotSelector& selector);
  std::uint64_t lazy_repairs() const { return lazy_repairs_; }

  std::vector<NodeId> live_nodes() const;

  /// Invariants: ring consistency; every filled slot's entry lies in the
  /// slot's region.
  bool check_invariants() const;

  std::uint64_t broken_slot_encounters() const {
    return broken_slot_encounters_;
  }

 private:
  std::size_t slot_index(int row, int column) const {
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(base()) +
           static_cast<std::size_t>(column);
  }

  int id_bits_;
  int digit_bits_;
  int leaf_set_half_;
  PastryId ring_size_;
  std::vector<PastryNode> nodes_;
  std::map<PastryId, NodeId> ring_;
  mutable std::uint64_t broken_slot_encounters_ = 0;
  std::uint64_t lazy_repairs_ = 0;
};

}  // namespace topo::overlay
