// Topologically-Aware CAN baseline (Ratnasamy et al., Infocom'02):
// *geographic layout*, where the overlay position of a node is constrained
// by its physical position — nodes with the same landmark ordering join
// inside the same portion of the Cartesian space.
//
// The paper's introduction measures the cost of this layout: with node
// density following physical clustering, zone volumes and neighbor counts
// become highly skewed ("a few % of nodes can occupy 80-98% of the entire
// Cartesian space, and some nodes have to maintain dozens of neighbors").
// bench/tacan_imbalance reproduces that claim.
#pragma once

#include <cstddef>

#include "overlay/can.hpp"
#include "util/rng.hpp"

namespace topo::overlay {

/// Joins `host` into the slice of the space reserved for `bin` out of
/// `bin_count` bins (bins partition axis 0; the position inside the slice
/// is uniform). The caller derives `bin` from the node's landmark ordering.
NodeId join_binned(CanNetwork& can, net::HostId host, std::size_t bin,
                   std::size_t bin_count, util::Rng& rng);

struct ImbalanceReport {
  double volume_gini = 0.0;      // inequality of zone volumes
  double top1pct_volume = 0.0;   // fraction of space held by top 1% nodes
  double top5pct_volume = 0.0;
  double top10pct_volume = 0.0;
  double max_neighbors = 0.0;
  double mean_neighbors = 0.0;
  double p99_neighbors = 0.0;
};

/// Zone-volume / neighbor-count skew of the current overlay.
ImbalanceReport measure_imbalance(const CanNetwork& can);

}  // namespace topo::overlay
