// Overlay node identifiers and records shared by CAN/eCAN.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/zone.hpp"
#include "net/graph.hpp"

namespace topo::overlay {

/// Dense index into the network's node table (simulator-level identity).
using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = ~0u;

struct CanNode {
  net::HostId host = net::kInvalidHost;  // physical attachment
  geom::Zone zone;                        // owned region of the key space
  std::vector<NodeId> neighbors;          // CAN (order-0) neighbors
  bool alive = false;
};

/// Result of routing a message across the overlay.
struct RouteResult {
  bool success = false;
  std::vector<NodeId> path;  // path[0] == source, path.back() == final owner
  std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
};

}  // namespace topo::overlay
