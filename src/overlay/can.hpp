// CAN: a content-addressable network over the unit d-torus
// (Ratnasamy et al., SIGCOMM'01), simulated in one process.
//
// The Cartesian space is partitioned into zones, one owner per zone. A key
// is a point; the owner of the zone containing the point stores the value.
// Join: pick a point, route to its owner, split that owner's zone in half.
// Leave: the zone is merged with its partition-tree buddy (with the
// standard "deepest buddy pair" handoff when the buddy is not a leaf).
// Routing: greedy forwarding to the neighbor zone closest to the target.
//
// The class keeps the full binary partition tree, which gives the simulator
// O(depth) owner lookup and exact zone-merge semantics; real CAN nodes
// need none of this global state, and the message-visible behaviour
// (hops, neighbor sets) matches the protocol.
#pragma once

#include <cstddef>
#include <vector>

#include "overlay/node.hpp"
#include "util/rng.hpp"

namespace topo::overlay {

class CanNetwork {
 public:
  explicit CanNetwork(std::size_t dims);
  virtual ~CanNetwork() = default;

  CanNetwork(const CanNetwork&) = delete;
  CanNetwork& operator=(const CanNetwork&) = delete;

  std::size_t dims() const { return dims_; }
  std::size_t size() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

  /// Total node slots ever allocated (dead ones included); NodeIds are
  /// stable across departures and never reused.
  std::size_t slot_count() const { return nodes_.size(); }

  const CanNode& node(NodeId id) const {
    TO_EXPECTS(id < nodes_.size());
    return nodes_[id];
  }
  bool alive(NodeId id) const { return id < nodes_.size() && nodes_[id].alive; }

  /// Joins `host` at point `at`: splits the zone owning `at`.
  /// The first join takes the whole space. If `split_peer` is non-null it
  /// receives the node whose zone was split (kInvalidNode for the first
  /// join) — the soft-state layer migrates stored entries based on it.
  NodeId join(net::HostId host, const geom::Point& at,
              NodeId* split_peer = nullptr);
  NodeId join_random(net::HostId host, util::Rng& rng);

  /// Who inherited responsibility after a departure; layers above (the
  /// soft-state store) re-home their state based on this.
  struct LeaveReport {
    NodeId taker = kInvalidNode;  // owner of the merged/departed zone
    NodeId moved = kInvalidNode;  // node relocated by a deepest-buddy swap
  };

  /// Node departure with buddy-merge takeover. The zone invariants
  /// (exact tiling of the space) hold before and after.
  LeaveReport leave(NodeId id);

  /// Owner of the zone containing `p` (simulator-level lookup).
  NodeId owner_of(const geom::Point& p) const;

  /// Greedy CAN routing from node `from` to the owner of `target`.
  RouteResult route(NodeId from, const geom::Point& target) const;

  /// One greedy step: the neighbor of `from` whose zone is closest to
  /// `target`, or kInvalidNode if `from` already owns `target`.
  NodeId greedy_next_hop(NodeId from, const geom::Point& target) const;

  /// All currently-live node ids, ascending. Maintained incrementally
  /// (joins append — NodeIds are monotonic — and leaves erase in place),
  /// so this is a straight copy, not an O(slot_count) scan.
  std::vector<NodeId> live_nodes() const { return live_; }

  /// Allocation-free view of the live list for read-only hot paths
  /// (metrics sweeps, membership audits). Ascending; invalidated by any
  /// join/leave — copy via live_nodes() if mutating while iterating.
  const std::vector<NodeId>& live_view() const { return live_; }

  /// Expensive full-invariant check for tests: zones tile the space, the
  /// neighbor relation matches geom::Zone::is_can_neighbor and is
  /// symmetric.
  bool check_invariants() const;

 protected:
  /// Hooks for subclasses (eCAN) to maintain auxiliary structures. Called
  /// after the node table and neighbor lists are consistent.
  virtual void on_join(NodeId joined, NodeId split_peer) {
    (void)joined;
    (void)split_peer;
  }
  /// `leaver` has been removed; `taker` now owns `leaver`'s former zone (or
  /// the merged zone). `moved` is the node whose zone changed as part of a
  /// deepest-buddy handoff, or kInvalidNode.
  virtual void on_leave(NodeId leaver, NodeId taker, NodeId moved) {
    (void)leaver;
    (void)taker;
    (void)moved;
  }

 private:
  // Binary partition tree. Leaves own zones; internal nodes record splits.
  struct TreeNode {
    geom::Zone zone;
    std::size_t split_dim = 0;
    int parent = -1;
    int child[2] = {-1, -1};  // -1 for leaves
    NodeId owner = kInvalidNode;
    bool is_leaf() const { return child[0] < 0; }
  };

  int leaf_containing(const geom::Point& p) const;
  void split_leaf(int leaf, NodeId new_owner, const geom::Point& at);
  /// Collapse the parent of two leaf buddies; `surviving` keeps the merged
  /// zone.
  void merge_buddies(int parent_index, NodeId surviving);
  /// Deepest leaf pair under subtree `root`.
  int deepest_buddy_parent(int root) const;

  void set_neighbors_after_split(NodeId old_node, NodeId new_node);
  void rewire_after_merge(NodeId surviving);
  void remove_from_neighbors(NodeId gone);

  /// Live nodes whose zones CAN-neighbor `n`'s zone, sorted ascending —
  /// computed from the partition tree with geometric pruning, so it costs
  /// O(log n + neighbors) rather than a scan over all nodes.
  std::vector<NodeId> geometric_neighbors(NodeId n) const;

  std::size_t dims_;
  std::vector<CanNode> nodes_;
  std::vector<TreeNode> tree_;
  std::vector<int> leaf_of_node_;  // NodeId -> tree index (-1 if dead)
  std::vector<NodeId> live_;       // live ids, ascending
};

}  // namespace topo::overlay
