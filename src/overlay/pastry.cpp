#include "overlay/pastry.hpp"

#include <algorithm>

namespace topo::overlay {

PastryNetwork::PastryNetwork(int id_bits, int digit_bits, int leaf_set_half)
    : id_bits_(id_bits),
      digit_bits_(digit_bits),
      leaf_set_half_(leaf_set_half) {
  TO_EXPECTS(digit_bits >= 1 && digit_bits <= 8);
  TO_EXPECTS(id_bits >= digit_bits && id_bits <= 62);
  TO_EXPECTS(id_bits % digit_bits == 0);
  TO_EXPECTS(leaf_set_half >= 1);
  ring_size_ = PastryId{1} << id_bits_;
}

NodeId PastryNetwork::join(net::HostId host, PastryId id) {
  TO_EXPECTS(id < ring_size_);
  TO_EXPECTS(ring_.find(id) == ring_.end());
  const auto n = static_cast<NodeId>(nodes_.size());
  PastryNode node;
  node.host = host;
  node.id = id;
  node.alive = true;
  node.table.assign(static_cast<std::size_t>(digits()) *
                        static_cast<std::size_t>(base()),
                    kInvalidNode);
  nodes_.push_back(std::move(node));
  ring_.emplace(id, n);
  return n;
}

NodeId PastryNetwork::join_random(net::HostId host, util::Rng& rng) {
  PastryId id = rng.next_u64(ring_size_);
  while (ring_.find(id) != ring_.end()) id = rng.next_u64(ring_size_);
  return join(host, id);
}

void PastryNetwork::leave(NodeId n) {
  TO_EXPECTS(alive(n));
  ring_.erase(nodes_[n].id);
  nodes_[n].alive = false;
  nodes_[n].table.clear();
}

int PastryNetwork::digit(PastryId id, int index) const {
  TO_EXPECTS(index >= 0 && index < digits());
  const int shift = id_bits_ - (index + 1) * digit_bits_;
  return static_cast<int>((id >> shift) & (static_cast<PastryId>(base()) - 1));
}

int PastryNetwork::shared_prefix_digits(PastryId a, PastryId b) const {
  for (int i = 0; i < digits(); ++i)
    if (digit(a, i) != digit(b, i)) return i;
  return digits();
}

std::pair<PastryId, PastryId> PastryNetwork::slot_range(PastryId id, int row,
                                                        int column) const {
  TO_EXPECTS(row >= 0 && row < digits());
  TO_EXPECTS(column >= 0 && column < base());
  const int tail_bits = id_bits_ - (row + 1) * digit_bits_;
  const PastryId block = PastryId{1} << tail_bits;
  // Keep the first `row` digits of id, set digit `row` to column.
  const int keep_shift = id_bits_ - row * digit_bits_;
  const PastryId prefix =
      keep_shift >= id_bits_ ? 0
                             : (id >> keep_shift) << keep_shift;
  const PastryId lo = prefix | (static_cast<PastryId>(column) << tail_bits);
  return {lo, lo + block};
}

std::vector<NodeId> PastryNetwork::nodes_in_range(PastryId lo,
                                                  PastryId hi) const {
  std::vector<NodeId> out;
  for (auto it = ring_.lower_bound(lo); it != ring_.end() && it->first < hi;
       ++it)
    out.push_back(it->second);
  return out;
}

PastryId PastryNetwork::numeric_distance(PastryId a, PastryId b) const {
  const PastryId clockwise = (b - a) & (ring_size_ - 1);
  const PastryId counter = (a - b) & (ring_size_ - 1);
  return std::min(clockwise, counter);
}

NodeId PastryNetwork::numerically_closest(PastryId key) const {
  TO_EXPECTS(!ring_.empty());
  // Candidates: successor (wrapping) and predecessor (wrapping).
  auto succ_it = ring_.lower_bound(key);
  if (succ_it == ring_.end()) succ_it = ring_.begin();
  auto pred_it = succ_it == ring_.begin() ? std::prev(ring_.end())
                                          : std::prev(succ_it);
  const PastryId ds = numeric_distance(succ_it->first, key);
  const PastryId dp = numeric_distance(pred_it->first, key);
  if (ds < dp) return succ_it->second;
  if (dp < ds) return pred_it->second;
  return std::min(succ_it->first, pred_it->first) == succ_it->first
             ? succ_it->second
             : pred_it->second;
}

std::vector<NodeId> PastryNetwork::leaf_set(NodeId n) const {
  TO_EXPECTS(alive(n));
  std::vector<NodeId> out;
  if (ring_.size() <= 1) return out;
  const PastryId id = nodes_[n].id;
  auto forward = ring_.find(id);
  TO_ASSERT(forward != ring_.end());
  auto backward = forward;
  for (int i = 0; i < leaf_set_half_; ++i) {
    ++forward;
    if (forward == ring_.end()) forward = ring_.begin();
    if (forward->second == n) break;  // wrapped all the way
    out.push_back(forward->second);
  }
  for (int i = 0; i < leaf_set_half_; ++i) {
    if (backward == ring_.begin()) backward = ring_.end();
    --backward;
    if (backward->second == n) break;
    if (std::find(out.begin(), out.end(), backward->second) != out.end())
      break;  // tiny ring: sides met
    out.push_back(backward->second);
  }
  return out;
}

void PastryNetwork::build_table(NodeId n, RoutingSlotSelector& selector) {
  TO_EXPECTS(alive(n));
  auto& table = nodes_[n].table;
  table.assign(static_cast<std::size_t>(digits()) *
                   static_cast<std::size_t>(base()),
               kInvalidNode);
  const PastryId id = nodes_[n].id;
  for (int row = 0; row < digits(); ++row) {
    for (int column = 0; column < base(); ++column) {
      if (column == digit(id, row)) continue;  // own branch: next row
      const auto [lo, hi] = slot_range(id, row, column);
      auto candidates = nodes_in_range(lo, hi);
      std::erase(candidates, n);
      if (candidates.empty()) continue;
      table[slot_index(row, column)] =
          selector.select(n, row, column, candidates);
    }
  }
}

void PastryNetwork::build_all_tables(RoutingSlotSelector& selector) {
  for (const NodeId n : live_nodes()) build_table(n, selector);
}

void PastryNetwork::refresh_slot(NodeId n, int row, int column,
                                 RoutingSlotSelector& selector) {
  TO_EXPECTS(alive(n));
  const auto [lo, hi] = slot_range(nodes_[n].id, row, column);
  auto candidates = nodes_in_range(lo, hi);
  std::erase(candidates, n);
  nodes_[n].table[slot_index(row, column)] =
      candidates.empty() ? kInvalidNode
                         : selector.select(n, row, column, candidates);
}

NodeId PastryNetwork::table_entry(NodeId n, int row, int column) const {
  TO_EXPECTS(alive(n));
  return nodes_[n].table[slot_index(row, column)];
}

RouteResult PastryNetwork::route(NodeId from, PastryId key) const {
  TO_EXPECTS(alive(from));
  RouteResult result;
  result.path.push_back(from);
  NodeId current = from;
  const NodeId owner = numerically_closest(key);
  const std::size_t max_hops = 2 * ring_.size() + 16;

  while (result.path.size() <= max_hops) {
    if (current == owner) {
      result.success = true;
      return result;
    }
    // Leaf-set delivery: the owner is directly known once it is a leaf.
    const auto leaves = leaf_set(current);
    if (std::find(leaves.begin(), leaves.end(), owner) != leaves.end()) {
      result.path.push_back(owner);
      result.success = true;
      return result;
    }

    const PastryId current_id = nodes_[current].id;
    const int l = shared_prefix_digits(current_id, key);
    NodeId next = kInvalidNode;

    // 1. Prefix hop: resolve digit l via the routing table.
    if (l < digits()) {
      const NodeId entry =
          nodes_[current].table[slot_index(l, digit(key, l))];
      if (entry != kInvalidNode) {
        if (alive(entry)) {
          next = entry;
        } else {
          ++broken_slot_encounters_;
        }
      }
    }

    // 2. Fallback: any known node (leaf set or table) sharing >= l digits
    //    and numerically closer to the key.
    if (next == kInvalidNode) {
      const PastryId current_distance = numeric_distance(current_id, key);
      PastryId best_distance = current_distance;
      auto consider = [&](NodeId candidate) {
        if (candidate == kInvalidNode || !alive(candidate)) return;
        const PastryId cid = nodes_[candidate].id;
        if (shared_prefix_digits(cid, key) < l) return;
        const PastryId d = numeric_distance(cid, key);
        if (d < best_distance) {
          best_distance = d;
          next = candidate;
        }
      };
      for (const NodeId leaf : leaves) consider(leaf);
      for (const NodeId entry : nodes_[current].table) consider(entry);
    }

    // 3. Last resort: step through the leaf set purely by numeric
    //    distance (models leaf-set routing when tables are stale).
    if (next == kInvalidNode) {
      PastryId best_distance = numeric_distance(current_id, key);
      for (const NodeId leaf : leaves) {
        const PastryId d = numeric_distance(nodes_[leaf].id, key);
        if (d < best_distance) {
          best_distance = d;
          next = leaf;
        }
      }
    }
    if (next == kInvalidNode) return result;  // isolated
    result.path.push_back(next);
    current = next;
  }
  return result;
}

RouteResult PastryNetwork::route_repair(NodeId from, PastryId key,
                                        RoutingSlotSelector& selector) {
  TO_EXPECTS(alive(from));
  RouteResult result;
  result.path.push_back(from);
  NodeId current = from;
  const NodeId owner = numerically_closest(key);
  const std::size_t max_hops = 2 * ring_.size() + 16;

  while (result.path.size() <= max_hops) {
    if (current == owner) {
      result.success = true;
      return result;
    }
    const auto leaves = leaf_set(current);
    if (std::find(leaves.begin(), leaves.end(), owner) != leaves.end()) {
      result.path.push_back(owner);
      result.success = true;
      return result;
    }

    const PastryId current_id = nodes_[current].id;
    const int l = shared_prefix_digits(current_id, key);
    NodeId next = kInvalidNode;

    if (l < digits()) {
      const int column = digit(key, l);
      NodeId entry = nodes_[current].table[slot_index(l, column)];
      if (entry != kInvalidNode && !alive(entry)) {
        ++broken_slot_encounters_;
        ++lazy_repairs_;
        refresh_slot(current, l, column, selector);
        entry = nodes_[current].table[slot_index(l, column)];
      }
      if (entry != kInvalidNode && alive(entry)) next = entry;
    }

    if (next == kInvalidNode) {
      const PastryId current_distance = numeric_distance(current_id, key);
      PastryId best_distance = current_distance;
      auto consider = [&](NodeId candidate) {
        if (candidate == kInvalidNode || !alive(candidate)) return;
        const PastryId cid = nodes_[candidate].id;
        if (shared_prefix_digits(cid, key) < l) return;
        const PastryId d = numeric_distance(cid, key);
        if (d < best_distance) {
          best_distance = d;
          next = candidate;
        }
      };
      for (const NodeId leaf : leaves) consider(leaf);
      for (const NodeId entry : nodes_[current].table) consider(entry);
    }
    if (next == kInvalidNode) {
      PastryId best_distance = numeric_distance(current_id, key);
      for (const NodeId leaf : leaves) {
        const PastryId d = numeric_distance(nodes_[leaf].id, key);
        if (d < best_distance) {
          best_distance = d;
          next = leaf;
        }
      }
    }
    if (next == kInvalidNode) return result;
    result.path.push_back(next);
    current = next;
  }
  return result;
}

std::vector<NodeId> PastryNetwork::live_nodes() const {
  std::vector<NodeId> out;
  out.reserve(ring_.size());
  for (const auto& [id, n] : ring_) {
    (void)id;
    out.push_back(n);
  }
  return out;
}

bool PastryNetwork::check_invariants() const {
  for (const auto& [id, n] : ring_) {
    if (!alive(n) || nodes_[n].id != id) return false;
    for (int row = 0; row < digits(); ++row) {
      for (int column = 0; column < base(); ++column) {
        const NodeId entry = nodes_[n].table[slot_index(row, column)];
        if (entry == kInvalidNode || !alive(entry)) continue;
        const auto [lo, hi] = slot_range(id, row, column);
        if (nodes_[entry].id < lo || nodes_[entry].id >= hi) return false;
      }
    }
  }
  return true;
}

}  // namespace topo::overlay
