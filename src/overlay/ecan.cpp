#include "overlay/ecan.hpp"

#include <algorithm>
#include <cmath>

namespace topo::overlay {

namespace {

/// Exact dyadic level of a zone side: side == 2^-k -> k.
int side_level(double side) {
  int exponent = 0;
  const double mantissa = std::frexp(side, &exponent);  // side = m * 2^e
  TO_ASSERT(mantissa == 0.5);  // dyadic power of two
  return 1 - exponent;         // side = 2^(e-1) as frexp gives m in [0.5,1)
}

}  // namespace

EcanNetwork::EcanNetwork(std::size_t dims, int max_level)
    : CanNetwork(dims), max_level_(max_level) {
  TO_EXPECTS(max_level >= 1 && max_level <= 20);
  // Cell keys pack level*dims coordinate bits into 58 bits.
  max_level_ = std::min(max_level_, static_cast<int>(58 / dims));
}

int EcanNetwork::node_level(NodeId id) const {
  TO_EXPECTS(alive(id));
  const geom::Zone& zone = node(id).zone;
  int level = max_level_;
  for (std::size_t d = 0; d < dims(); ++d)
    level = std::min(level, side_level(zone.side(d)));
  return std::max(level, 0);
}

std::vector<std::uint32_t> EcanNetwork::cell_of_node(NodeId id,
                                                     int level) const {
  std::vector<std::uint32_t> coords(dims());
  cell_of_node_into(id, level, coords);
  return coords;
}

void EcanNetwork::cell_of_node_into(NodeId id, int level,
                                    std::span<std::uint32_t> out) const {
  TO_EXPECTS(level <= node_level(id));
  TO_EXPECTS(out.size() == dims());
  const geom::Zone& zone = node(id).zone;
  for (std::size_t d = 0; d < dims(); ++d)
    out[d] = geom::grid_coord(zone.lo(d), level);
}

std::vector<std::uint32_t> EcanNetwork::cell_of_point(const geom::Point& p,
                                                      int level) const {
  std::vector<std::uint32_t> coords(dims());
  for (std::size_t d = 0; d < dims(); ++d)
    coords[d] = geom::grid_coord(p[d], level);
  return coords;
}

geom::Zone EcanNetwork::cell_zone(
    int level, std::span<const std::uint32_t> coords) const {
  geom::Point lo(dims());
  const double cell = std::ldexp(1.0, -level);
  for (std::size_t d = 0; d < dims(); ++d)
    lo[d] = static_cast<double>(coords[d]) * cell + cell / 2.0;
  return geom::Zone::grid_cell_containing(lo, level);
}

std::uint64_t EcanNetwork::pack_cell(
    int level, std::span<const std::uint32_t> coords) const {
  TO_EXPECTS(level >= 0 && level <= max_level_);
  TO_EXPECTS(static_cast<std::size_t>(level) * dims() <= 58);
  std::uint64_t key = static_cast<std::uint64_t>(level) << 58;
  for (std::size_t d = 0; d < dims(); ++d)
    key |= static_cast<std::uint64_t>(coords[d])
           << (static_cast<std::size_t>(level) * d);
  return key;
}

std::span<const NodeId> EcanNetwork::members_of_cell(
    int level, std::span<const std::uint32_t> coords) const {
  const auto it = cell_members_.find(pack_cell(level, coords));
  if (it == cell_members_.end()) return {};
  return it->second;
}

void EcanNetwork::register_membership(NodeId id) {
  if (registered_zone_.size() <= id) registered_zone_.resize(id + 1);
  if (tables_.size() <= id) tables_.resize(id + 1);
  if (cell_cache_.size() <= id) cell_cache_.resize(id + 1);
  const int levels = node_level(id);
  for (int h = 1; h <= levels; ++h)
    cell_members_[pack_cell(h, cell_of_node(id, h))].push_back(id);
  registered_zone_[id] = node(id).zone;

  CellCache& cache = cell_cache_[id];
  cache.level = levels;
  const geom::Zone& zone = node(id).zone;
  for (std::size_t d = 0; d < dims(); ++d)
    cache.coords[d] = geom::grid_coord(zone.lo(d), levels);
}

void EcanNetwork::unregister_membership(NodeId id) {
  if (registered_zone_.size() <= id || !registered_zone_[id]) return;
  const geom::Zone& zone = *registered_zone_[id];
  int levels = max_level_;
  for (std::size_t d = 0; d < dims(); ++d)
    levels = std::min(levels, side_level(zone.side(d)));
  std::vector<std::uint32_t> coords(dims());
  for (int h = 1; h <= levels; ++h) {
    for (std::size_t d = 0; d < dims(); ++d)
      coords[d] = geom::grid_coord(zone.lo(d), h);
    auto it = cell_members_.find(pack_cell(h, coords));
    TO_ASSERT(it != cell_members_.end());
    std::erase(it->second, id);
    if (it->second.empty()) cell_members_.erase(it);
  }
  registered_zone_[id] = std::nullopt;
}

void EcanNetwork::on_join(NodeId joined, NodeId split_peer) {
  if (split_peer != kInvalidNode) {
    unregister_membership(split_peer);
    register_membership(split_peer);
  }
  register_membership(joined);
}

void EcanNetwork::on_leave(NodeId leaver, NodeId taker, NodeId moved) {
  unregister_membership(leaver);
  if (leaver < tables_.size()) {
    tables_[leaver].levels = 0;
    tables_[leaver].reps.clear();
  }
  if (taker != kInvalidNode) {
    unregister_membership(taker);
    register_membership(taker);
  }
  if (moved != kInvalidNode) {
    unregister_membership(moved);
    register_membership(moved);
  }
}

std::vector<std::uint32_t> EcanNetwork::adjacent_cell(
    std::span<const std::uint32_t> coords, int level, std::size_t dim,
    int dir) const {
  std::vector<std::uint32_t> adj(coords.begin(), coords.end());
  const std::uint32_t cells = 1u << level;
  adj[dim] = dir == 1 ? (adj[dim] + 1) % cells
                      : (adj[dim] + cells - 1) % cells;
  return adj;
}

void EcanNetwork::build_table(NodeId id, RepresentativeSelector& selector) {
  TO_EXPECTS(alive(id));
  if (tables_.size() <= id) tables_.resize(id + 1);
  const int levels = node_level(id);
  const std::size_t stride = dims() * 2;
  FlatTable& table = tables_[id];
  table.levels = levels;
  // assign() reuses the existing buffer, so periodic rebuilds of an
  // unchanged-level node allocate nothing.
  table.reps.assign(static_cast<std::size_t>(levels) * stride, kInvalidNode);
  for (int h = 1; h <= levels; ++h) {
    const auto my_cell = cell_of_node(id, h);
    for (std::size_t dim = 0; dim < dims(); ++dim) {
      for (int dir = 0; dir < 2; ++dir) {
        const auto adj = adjacent_cell(my_cell, h, dim, dir);
        const auto members = members_of_cell(h, adj);
        if (members.empty()) continue;  // stays kInvalidNode
        table.reps[static_cast<std::size_t>(h - 1) * stride + dim * 2 +
                   static_cast<std::size_t>(dir)] =
            selector.select(id, h, cell_zone(h, adj), members);
      }
    }
  }
}

void EcanNetwork::build_all_tables(RepresentativeSelector& selector) {
  for (const NodeId id : live_view()) build_table(id, selector);
}

void EcanNetwork::refresh_entry(NodeId id, int level, std::size_t dim,
                                int dir, RepresentativeSelector& selector) {
  TO_EXPECTS(alive(id));
  TO_EXPECTS(level >= 1 && level <= node_level(id));
  TO_EXPECTS(id < tables_.size());
  FlatTable& table = tables_[id];
  if (table.levels < level) return;  // not built yet
  const auto my_cell = cell_of_node(id, level);
  const auto adj = adjacent_cell(my_cell, level, dim, dir);
  const auto members = members_of_cell(level, adj);
  table.reps[static_cast<std::size_t>(level - 1) * dims() * 2 + dim * 2 +
             static_cast<std::size_t>(dir)] =
      members.empty()
          ? kInvalidNode
          : selector.select(id, level, cell_zone(level, adj), members);
}

NodeId EcanNetwork::table_entry(NodeId id, int level, std::size_t dim,
                                int dir) const {
  if (id >= tables_.size()) return kInvalidNode;
  const FlatTable& table = tables_[id];
  if (level < 1 || level > table.levels) return kInvalidNode;
  return table.reps[static_cast<std::size_t>(level - 1) * dims() * 2 +
                    dim * 2 + static_cast<std::size_t>(dir)];
}

void EcanNetwork::repair_entries_to(NodeId gone,
                                    RepresentativeSelector& selector) {
  // Runs on every departure; live_view() avoids an O(slot_count) scan +
  // allocation per leave (refresh_entry never changes membership).
  const std::size_t stride = dims() * 2;
  for (const NodeId id : live_view()) {
    if (id >= tables_.size()) continue;
    const FlatTable& table = tables_[id];
    for (int h = 1; h <= table.levels; ++h)
      for (std::size_t slot = 0; slot < stride; ++slot)
        if (table.reps[static_cast<std::size_t>(h - 1) * stride + slot] ==
            gone)
          refresh_entry(id, h, slot / 2, static_cast<int>(slot % 2),
                        selector);
  }
}

bool EcanNetwork::route_ecan(NodeId from, const geom::Point& target,
                             RouteScratch& scratch) const {
  TO_EXPECTS(alive(from));
  scratch.path.clear();
  scratch.path.push_back(from);

  // Target grid coordinates, derived once at the deepest level; the cell
  // at any coarser level h is a right shift (exact: grid_coord scales by
  // a power of two, so floor-then-shift equals flooring at level h).
  std::array<std::uint32_t, geom::Point::kMaxDims> tcoords{};
  for (std::size_t d = 0; d < dims(); ++d)
    tcoords[d] = geom::grid_coord(target[d], max_level_);

  NodeId current = from;
  bool greedy_only = false;  // sticky fallback: provably terminating
  const std::size_t max_hops = 4 * slot_count() + 16;
  const std::size_t stride = dims() * 2;

  while (scratch.path.size() <= max_hops) {
    if (node(current).zone.contains(target)) return true;
    NodeId next = kInvalidNode;

    if (!greedy_only) {
      // Coarsest differing grid level first. Own-cell coordinates come
      // from the membership-maintained cache and candidates from the flat
      // table — no allocation, no zone arithmetic per level.
      const CellCache& cache = cell_cache_[current];
      const FlatTable& table = tables_[current];
      const int levels = cache.level;
      for (int h = 1; h <= levels && next == kInvalidNode; ++h) {
        bool differs = false;
        for (std::size_t dim = 0; dim < dims(); ++dim) {
          const std::uint32_t mine = cache.coords[dim] >> (levels - h);
          const std::uint32_t tc = tcoords[dim] >> (max_level_ - h);
          if (mine == tc) continue;
          differs = true;
          const std::uint32_t cells = 1u << h;
          const std::uint32_t forward_gap = (tc + cells - mine) % cells;
          const int dir = forward_gap <= cells - forward_gap ? 1 : 0;
          const NodeId candidate =
              h <= table.levels
                  ? table.reps[static_cast<std::size_t>(h - 1) * stride +
                               dim * 2 + static_cast<std::size_t>(dir)]
                  : kInvalidNode;
          if (candidate != kInvalidNode && alive(candidate)) {
            next = candidate;
            break;
          }
          if (candidate != kInvalidNode) ++broken_entry_encounters_;
        }
        if (differs && next == kInvalidNode) {
          // The level that must be fixed has no usable expressway link;
          // finish with plain CAN greedy (always terminates).
          greedy_only = true;
          break;
        }
      }
    }

    if (next == kInvalidNode) {
      greedy_only = true;
      next = greedy_next_hop(current, target);
    }
    if (next == kInvalidNode) return false;  // isolated: fail
    scratch.path.push_back(next);
    current = next;
  }
  return false;
}

RouteResult EcanNetwork::route_ecan(NodeId from,
                                    const geom::Point& target) const {
  RouteScratch scratch;
  RouteResult result;
  result.success = route_ecan(from, target, scratch);
  result.path = std::move(scratch.path);
  return result;
}

RouteResult EcanNetwork::route_ecan_reference(
    NodeId from, const geom::Point& target) const {
  TO_EXPECTS(alive(from));
  RouteResult result;
  result.path.push_back(from);
  NodeId current = from;
  bool greedy_only = false;  // sticky fallback: provably terminating
  const std::size_t max_hops = 4 * slot_count() + 16;

  while (result.path.size() <= max_hops) {
    if (node(current).zone.contains(target)) {
      result.success = true;
      return result;
    }
    NodeId next = kInvalidNode;

    if (!greedy_only) {
      // Coarsest differing grid level first.
      const int levels = node_level(current);
      for (int h = 1; h <= levels && next == kInvalidNode; ++h) {
        const auto my_cell = cell_of_node(current, h);
        const auto target_cell = cell_of_point(target, h);
        bool differs = false;
        for (std::size_t dim = 0; dim < dims(); ++dim) {
          if (my_cell[dim] == target_cell[dim]) continue;
          differs = true;
          const std::uint32_t cells = 1u << h;
          const std::uint32_t forward_gap =
              (target_cell[dim] + cells - my_cell[dim]) % cells;
          const int dir = forward_gap <= cells - forward_gap ? 1 : 0;
          const NodeId candidate = table_entry(current, h, dim, dir);
          if (candidate != kInvalidNode && alive(candidate)) {
            next = candidate;
            break;
          }
          if (candidate != kInvalidNode) ++broken_entry_encounters_;
        }
        if (differs && next == kInvalidNode) {
          // The level that must be fixed has no usable expressway link;
          // finish with plain CAN greedy (always terminates).
          greedy_only = true;
          break;
        }
      }
    }

    if (next == kInvalidNode) {
      greedy_only = true;
      next = greedy_next_hop(current, target);
    }
    if (next == kInvalidNode) return result;  // isolated: fail
    result.path.push_back(next);
    current = next;
  }
  return result;
}

RouteResult EcanNetwork::route_ecan_proximity(NodeId from,
                                              const geom::Point& target,
                                              net::RttOracle& oracle) const {
  TO_EXPECTS(alive(from));
  RouteResult result;
  result.path.push_back(from);
  NodeId current = from;
  const std::size_t max_hops = 4 * slot_count() + 16;

  while (result.path.size() <= max_hops) {
    const CanNode& here = node(current);
    if (here.zone.contains(target)) {
      result.success = true;
      return result;
    }
    const double current_distance = here.zone.distance_to(target);

    // Candidate set: CAN neighbors plus every expressway entry, filtered
    // to those strictly closer to the target (termination guarantee).
    NodeId best = kInvalidNode;
    double best_rtt = std::numeric_limits<double>::infinity();
    auto consider = [&](NodeId candidate) {
      if (candidate == kInvalidNode || !alive(candidate)) return;
      if (node(candidate).zone.distance_to(target) >= current_distance)
        return;
      const double rtt =
          oracle.latency_ms(here.host, node(candidate).host);
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best = candidate;
      }
    };
    for (const NodeId neighbor : here.neighbors) consider(neighbor);
    const int levels = node_level(current);
    for (int h = 1; h <= levels; ++h)
      for (std::size_t dim = 0; dim < dims(); ++dim)
        for (int dir = 0; dir < 2; ++dir)
          consider(table_entry(current, h, dim, dir));

    if (best == kInvalidNode) {
      // No latency-attractive candidate: plain greedy step.
      best = greedy_next_hop(current, target);
      if (best == kInvalidNode) return result;
    }
    result.path.push_back(best);
    current = best;
  }
  return result;
}

RouteResult EcanNetwork::route_ecan_repair(NodeId from,
                                           const geom::Point& target,
                                           RepresentativeSelector& selector) {
  TO_EXPECTS(alive(from));
  RouteResult result;
  result.path.push_back(from);
  NodeId current = from;
  bool greedy_only = false;
  const std::size_t max_hops = 4 * slot_count() + 16;

  while (result.path.size() <= max_hops) {
    if (node(current).zone.contains(target)) {
      result.success = true;
      return result;
    }
    NodeId next = kInvalidNode;

    if (!greedy_only) {
      const int levels = node_level(current);
      for (int h = 1; h <= levels && next == kInvalidNode; ++h) {
        const auto my_cell = cell_of_node(current, h);
        const auto target_cell = cell_of_point(target, h);
        bool differs = false;
        for (std::size_t dim = 0; dim < dims(); ++dim) {
          if (my_cell[dim] == target_cell[dim]) continue;
          differs = true;
          const std::uint32_t cells = 1u << h;
          const std::uint32_t forward_gap =
              (target_cell[dim] + cells - my_cell[dim]) % cells;
          const int dir = forward_gap <= cells - forward_gap ? 1 : 0;
          NodeId candidate = table_entry(current, h, dim, dir);
          if (candidate != kInvalidNode && !alive(candidate)) {
            // Reactive repair: re-select the broken entry now.
            ++broken_entry_encounters_;
            ++lazy_repairs_;
            refresh_entry(current, h, dim, dir, selector);
            candidate = table_entry(current, h, dim, dir);
          }
          if (candidate != kInvalidNode && alive(candidate)) {
            next = candidate;
            break;
          }
        }
        if (differs && next == kInvalidNode) {
          greedy_only = true;
          break;
        }
      }
    }

    if (next == kInvalidNode) {
      greedy_only = true;
      next = greedy_next_hop(current, target);
    }
    if (next == kInvalidNode) return result;
    result.path.push_back(next);
    current = next;
  }
  return result;
}

bool EcanNetwork::check_membership_index() const {
  // Every live node appears exactly in the cells enclosing its zone.
  for (const NodeId id : live_view()) {
    const int levels = node_level(id);
    for (int h = 1; h <= levels; ++h) {
      const auto members = members_of_cell(h, cell_of_node(id, h));
      if (std::count(members.begin(), members.end(), id) != 1) return false;
    }
  }
  // And no dead node appears anywhere.
  for (const auto& [key, members] : cell_members_) {
    (void)key;
    for (const NodeId id : members)
      if (!alive(id)) return false;
  }
  // The routing fast path trusts two derived structures; audit both.
  // Cell caches must mirror a fresh derivation from the current zone...
  for (const NodeId id : live_view()) {
    if (id >= cell_cache_.size()) return false;
    const CellCache& cache = cell_cache_[id];
    if (cache.level != node_level(id)) return false;
    const auto cell = cell_of_node(id, cache.level);
    for (std::size_t d = 0; d < dims(); ++d)
      if (cache.coords[d] != cell[d]) return false;
    // ...and flat tables must be dimensioned for their recorded level
    // count (slot arithmetic in route_ecan indexes without bounds checks).
    // A table with MORE levels than the node's current level is legal —
    // zones can grow on a merge before the next table rebuild; routing
    // only ever reads up to the fresh node level.
    if (id < tables_.size()) {
      const FlatTable& table = tables_[id];
      if (table.reps.size() !=
          static_cast<std::size_t>(table.levels) * dims() * 2)
        return false;
    }
  }
  return true;
}

}  // namespace topo::overlay
