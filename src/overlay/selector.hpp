// Strategy interface for proximity-neighbor selection.
//
// eCAN (like Pastry) has freedom in choosing which member of a neighboring
// high-order zone to use as the routing representative. The paper compares
// four policies, implemented in src/core on top of this interface:
//   * random member (the baseline the paper improves on),
//   * landmark-ordering only,
//   * global soft-state maps + RTT probes (the paper's contribution),
//   * oracle-optimal (the "infinite RTT measurements" line).
#pragma once

#include <span>

#include "geom/zone.hpp"
#include "overlay/node.hpp"

namespace topo::overlay {

class RepresentativeSelector {
 public:
  virtual ~RepresentativeSelector() = default;

  /// Picks the routing representative for `for_node` in the high-order cell
  /// `cell` at grid level `level`. `members` lists the cell's current live
  /// members (never empty). Implementations that model real protocols must
  /// not inspect `members` beyond what their information source would
  /// reveal (e.g. the soft-state selector consults the distributed map
  /// service instead).
  virtual NodeId select(NodeId for_node, int level, const geom::Zone& cell,
                        std::span<const NodeId> members) = 0;
};

}  // namespace topo::overlay
