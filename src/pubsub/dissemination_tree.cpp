#include "pubsub/dissemination_tree.hpp"

#include <algorithm>
#include <unordered_map>

namespace topo::pubsub {

namespace {

// Recursively wires recipients[lo, hi) under `parent`: the median becomes
// the child, halves recurse under it.
void wire(std::vector<TreeRecipient>& recipients, std::size_t lo,
          std::size_t hi, overlay::NodeId parent, std::size_t depth,
          DisseminationPlan& plan) {
  if (lo >= hi) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  const overlay::NodeId child = recipients[mid].node;
  plan.edges.push_back(DisseminationEdge{parent, child});
  plan.depth = std::max(plan.depth, depth + 1);
  wire(recipients, lo, mid, child, depth + 1, plan);
  wire(recipients, mid + 1, hi, child, depth + 1, plan);
}

}  // namespace

DisseminationPlan build_dissemination_tree(
    overlay::NodeId root, std::vector<TreeRecipient> recipients) {
  std::sort(recipients.begin(), recipients.end(),
            [](const TreeRecipient& a, const TreeRecipient& b) {
              return a.order_key < b.order_key;
            });
  DisseminationPlan plan;
  plan.edges.reserve(recipients.size());
  wire(recipients, 0, recipients.size(), root, 0, plan);

  std::unordered_map<overlay::NodeId, std::size_t> fanout;
  for (const DisseminationEdge& edge : plan.edges) ++fanout[edge.from];
  for (const auto& [node, count] : fanout) {
    (void)node;
    plan.max_fanout = std::max(plan.max_fanout, count);
  }
  return plan;
}

DisseminationCost measure_plan(const overlay::EcanNetwork& ecan,
                               const DisseminationPlan& plan) {
  DisseminationCost cost;
  cost.messages = plan.edges.size();
  cost.max_fanout = plan.max_fanout;
  for (const DisseminationEdge& edge : plan.edges) {
    if (!ecan.alive(edge.from) || !ecan.alive(edge.to)) continue;
    const overlay::RouteResult route =
        ecan.route_ecan(edge.from, ecan.node(edge.to).zone.center());
    cost.total_overlay_hops += route.hops();
  }
  return cost;
}

DisseminationCost measure_unicast(
    const overlay::EcanNetwork& ecan, overlay::NodeId root,
    const std::vector<TreeRecipient>& recipients) {
  DisseminationCost cost;
  cost.messages = recipients.size();
  cost.max_fanout = recipients.size();
  for (const TreeRecipient& recipient : recipients) {
    if (!ecan.alive(root) || !ecan.alive(recipient.node)) continue;
    const overlay::RouteResult route =
        ecan.route_ecan(root, ecan.node(recipient.node).zone.center());
    cost.total_overlay_hops += route.hops();
  }
  return cost;
}

}  // namespace topo::pubsub
