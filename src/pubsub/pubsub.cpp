#include "pubsub/pubsub.hpp"

#include <algorithm>

namespace topo::pubsub {

PubSubService::PubSubService(overlay::EcanNetwork& ecan,
                             softstate::MapService& maps)
    : ecan_(&ecan), maps_(&maps) {
  maps_->set_publish_observer(
      [this](overlay::NodeId owner, const softstate::StoredEntry& entry) {
        on_publish(owner, entry);
      });
}

SubscriptionId PubSubService::subscribe(Subscription subscription) {
  TO_EXPECTS(subscription.subscriber != overlay::kInvalidNode);
  const SubscriptionId id = next_id_++;
  by_cell_[subscription.cell_key].push_back(id);
  subscriptions_.emplace(id, std::move(subscription));
  ++stats_.subscriptions;
  return id;
}

void PubSubService::unsubscribe(SubscriptionId id) {
  const auto it = subscriptions_.find(id);
  if (it != subscriptions_.end()) {
    const auto bucket = by_cell_.find(it->second.cell_key);
    if (bucket != by_cell_.end()) {
      std::erase(bucket->second, id);
      if (bucket->second.empty()) by_cell_.erase(bucket);
    }
    subscriptions_.erase(it);
  }
  seen_.erase(id);
}

void PubSubService::update_watch(SubscriptionId id, overlay::NodeId watched,
                                 double best_distance) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  // Moving to a new representative re-arms the load alarm — the new
  // watch starts fresh. Re-selecting the *same* representative (the
  // fallback when no better candidate exists) keeps the alarm latched,
  // otherwise a still-saturated rep would re-notify on every republish
  // and the re-selection loop would spin.
  if (it->second.watched != watched) it->second.load_alarmed = false;
  it->second.watched = watched;
  it->second.current_best_distance = best_distance;
}

Subscription* PubSubService::find(SubscriptionId id) {
  const auto it = subscriptions_.find(id);
  return it == subscriptions_.end() ? nullptr : &it->second;
}

void PubSubService::deliver(overlay::NodeId from, overlay::NodeId subscriber,
                            Notification notification) {
  // The notification travels from the map owner to the subscriber over the
  // overlay; account the hops. The route scratch is done with before the
  // handler runs, so a handler that republishes can safely reuse it.
  if (ecan_->alive(from) && ecan_->alive(subscriber)) {
    const bool success = ecan_->route_ecan(
        from, ecan_->node(subscriber).zone.center(), route_scratch_);
    (void)success;
    stats_.route_hops += route_scratch_.path.empty()
                             ? 0
                             : route_scratch_.path.size() - 1;
    if (fault_plane_ != nullptr && fault_plane_->active() &&
        !route_scratch_.path.empty()) {
      const auto verdict = fault_plane_->message_via(
          sim::MessageKind::kNotify, route_scratch_.path,
          [&](overlay::NodeId id) { return ecan_->node(id).host; });
      if (!verdict.delivered()) {
        // A missed notification is not an error in the soft-state model:
        // the subscriber keeps its current neighbor until the next
        // publish or its own periodic re-selection.
        ++stats_.dropped_notifications;
        return;
      }
    }
    if (traffic_plane_ != nullptr && traffic_plane_->active() &&
        !route_scratch_.path.empty() &&
        !traffic_plane_
             ->message_via(route_scratch_.path,
                           [&](overlay::NodeId id) {
                             return ecan_->node(id).host;
                           })
             .delivered) {
      // Congestion swallows the notification the same way loss does.
      ++stats_.dropped_notifications;
      return;
    }
  }
  ++stats_.notifications;
  if (handler_) handler_(subscriber, notification);
}

void PubSubService::match_one(
    SubscriptionId id, Subscription& subscription,
    const softstate::StoredEntry& stored,
    std::vector<std::pair<overlay::NodeId, Notification>>& matched) {
  if (subscription.level != stored.level ||
      subscription.cell_key != stored.cell_key)
    return;
  if (stored.entry.node == subscription.subscriber) return;
  ++stats_.predicate_evaluations;

  // Load watch on the current representative: edge-triggered. Crossing
  // the threshold fires exactly once; while the load stays high the alarm
  // is latched and republishes stay silent. The alarm re-arms once
  // utilization falls below the hysteresis band (below which the same
  // subscription may fire again on a later crossing).
  if (stored.entry.node == subscription.watched &&
      stored.entry.capacity > 0.0) {
    const double utilization = stored.entry.load / stored.entry.capacity;
    if (utilization >= subscription.load_threshold) {
      if (!subscription.load_alarmed) {
        subscription.load_alarmed = true;
        ++stats_.load_exceeded;
        Notification n;
        n.reason = Notification::Reason::kLoadExceeded;
        n.subscription = id;
        n.entry = stored.entry;
        matched.emplace_back(subscription.subscriber, std::move(n));
      }
      return;
    }
    if (utilization < subscription.load_threshold *
                          (1.0 - subscription.load_hysteresis))
      subscription.load_alarmed = false;
    // In or below the band: fall through to the other predicates.
  }

  // New-node watch.
  if (subscription.notify_on_new_node) {
    if (seen_[id].insert(stored.entry.node).second) {
      Notification n;
      n.reason = Notification::Reason::kNewNode;
      n.subscription = id;
      n.entry = stored.entry;
      matched.emplace_back(subscription.subscriber, std::move(n));
      return;
    }
  }

  // Closer-candidate watch. Full (not squared) distance: the threshold is
  // the reported distance the subscriber stored via update_watch.
  const double distance =
      proximity::vector_distance(stored.entry.vector, subscription.vector);
  if (distance <
      subscription.current_best_distance * subscription.closer_margin) {
    Notification n;
    n.reason = Notification::Reason::kCloserCandidate;
    n.subscription = id;
    n.entry = stored.entry;
    matched.emplace_back(subscription.subscriber, std::move(n));
  }
}

void PubSubService::on_publish(overlay::NodeId owner,
                               const softstate::StoredEntry& stored) {
  // Two phases: match first, deliver after — the handler may mutate the
  // subscription table (re-subscribe, update_watch), which must not happen
  // while iterating it. The match buffer is a member reused across
  // publishes; a handler that republishes re-enters here and falls back to
  // a local buffer.
  std::vector<std::pair<overlay::NodeId, Notification>> local;
  auto& matched = match_depth_ == 0 ? matched_scratch_ : local;
  ++match_depth_;
  matched.clear();

  if (reference_matcher_) {
    // Seed-era cost model: every publish scans the whole table. Matches
    // are sorted into ascending-id order, which is exactly the order the
    // per-map index below produces.
    for (auto& [id, subscription] : subscriptions_)
      match_one(id, subscription, stored, matched);
    std::sort(matched.begin(), matched.end(),
              [](const auto& a, const auto& b) {
                return a.second.subscription < b.second.subscription;
              });
  } else {
    // One-traversal-many-subscribers: only the published map's own bucket
    // is evaluated. Buckets hold ids in ascending order (monotone next_id_,
    // appended on subscribe), so no sort is needed — delivery order is
    // identical to the reference matcher.
    const auto bucket = by_cell_.find(stored.cell_key);
    if (bucket != by_cell_.end())
      for (const SubscriptionId id : bucket->second)
        match_one(id, subscriptions_.at(id), stored, matched);
  }

  for (auto& [subscriber, notification] : matched)
    deliver(owner, subscriber, std::move(notification));
  --match_depth_;
}

void PubSubService::notify_departure(overlay::NodeId departed) {
  // Forget the departed node in every new-node watch: if it rejoins, its
  // first publish must count as new again.
  for (auto& [id, seen] : seen_) {
    (void)id;
    seen.erase(departed);
  }
  // Two-phase for the same reason as on_publish. Departure watches are
  // keyed by the watched node, not by map, so this stays a full scan.
  std::vector<std::pair<overlay::NodeId, Notification>> matched;
  for (auto& [id, subscription] : subscriptions_) {
    if (subscription.watched != departed) continue;
    Notification n;
    n.reason = Notification::Reason::kWatchedDeparted;
    n.subscription = id;
    matched.emplace_back(subscription.subscriber, std::move(n));
  }
  std::sort(matched.begin(), matched.end(),
            [](const auto& a, const auto& b) {
              return a.second.subscription < b.second.subscription;
            });
  // Delivered as part of the departure protocol (the proactive map update);
  // one message per watcher, no extra routing charged beyond the publish.
  for (auto& [subscriber, notification] : matched) {
    ++stats_.notifications;
    if (handler_) handler_(subscriber, notification);
  }
}

}  // namespace topo::pubsub
