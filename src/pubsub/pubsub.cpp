#include "pubsub/pubsub.hpp"

#include <algorithm>

namespace topo::pubsub {

PubSubService::PubSubService(overlay::EcanNetwork& ecan,
                             softstate::MapService& maps)
    : ecan_(&ecan), maps_(&maps) {
  maps_->set_publish_observer(
      [this](overlay::NodeId owner, const softstate::StoredEntry& entry) {
        on_publish(owner, entry);
      });
}

SubscriptionId PubSubService::subscribe(Subscription subscription) {
  TO_EXPECTS(subscription.subscriber != overlay::kInvalidNode);
  const SubscriptionId id = next_id_++;
  subscriptions_.emplace(id, std::move(subscription));
  ++stats_.subscriptions;
  return id;
}

void PubSubService::unsubscribe(SubscriptionId id) {
  subscriptions_.erase(id);
  seen_.erase(id);
}

void PubSubService::update_watch(SubscriptionId id, overlay::NodeId watched,
                                 double best_distance) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  it->second.watched = watched;
  it->second.current_best_distance = best_distance;
}

Subscription* PubSubService::find(SubscriptionId id) {
  const auto it = subscriptions_.find(id);
  return it == subscriptions_.end() ? nullptr : &it->second;
}

void PubSubService::deliver(overlay::NodeId from,
                            const Subscription& subscription,
                            Notification notification) {
  // The notification travels from the map owner to the subscriber over the
  // overlay; account the hops.
  if (ecan_->alive(from) && ecan_->alive(subscription.subscriber)) {
    const overlay::RouteResult route = ecan_->route_ecan(
        from, ecan_->node(subscription.subscriber).zone.center());
    stats_.route_hops += route.hops();
    if (fault_plane_ != nullptr && fault_plane_->active() &&
        !route.path.empty()) {
      const auto verdict = fault_plane_->message_via(
          sim::MessageKind::kNotify, route.path,
          [&](overlay::NodeId id) { return ecan_->node(id).host; });
      if (!verdict.delivered()) {
        // A missed notification is not an error in the soft-state model:
        // the subscriber keeps its current neighbor until the next
        // publish or its own periodic re-selection.
        ++stats_.dropped_notifications;
        return;
      }
    }
  }
  ++stats_.notifications;
  if (handler_) handler_(subscription.subscriber, notification);
}

void PubSubService::on_publish(overlay::NodeId owner,
                               const softstate::StoredEntry& stored) {
  // Two phases: match first, deliver after — the handler may mutate the
  // subscription table (re-subscribe, update_watch), which must not happen
  // while iterating it.
  std::vector<std::pair<Subscription, Notification>> matched;
  for (auto& [id, subscription] : subscriptions_) {
    if (subscription.level != stored.level ||
        subscription.cell_key != stored.cell_key)
      continue;
    if (stored.entry.node == subscription.subscriber) continue;
    ++stats_.predicate_evaluations;

    // Load watch on the current representative.
    if (stored.entry.node == subscription.watched &&
        stored.entry.capacity > 0.0 &&
        stored.entry.load / stored.entry.capacity >=
            subscription.load_threshold) {
      Notification n;
      n.reason = Notification::Reason::kLoadExceeded;
      n.subscription = id;
      n.entry = stored.entry;
      matched.emplace_back(subscription, std::move(n));
      continue;
    }

    // New-node watch.
    if (subscription.notify_on_new_node) {
      if (seen_[id].insert(stored.entry.node).second) {
        Notification n;
        n.reason = Notification::Reason::kNewNode;
        n.subscription = id;
        n.entry = stored.entry;
        matched.emplace_back(subscription, std::move(n));
        continue;
      }
    }

    // Closer-candidate watch.
    const double distance = proximity::vector_distance(
        stored.entry.vector, subscription.vector);
    if (distance <
        subscription.current_best_distance * subscription.closer_margin) {
      Notification n;
      n.reason = Notification::Reason::kCloserCandidate;
      n.subscription = id;
      n.entry = stored.entry;
      matched.emplace_back(subscription, std::move(n));
    }
  }
  for (auto& [subscription, notification] : matched)
    deliver(owner, subscription, std::move(notification));
}

void PubSubService::notify_departure(overlay::NodeId departed) {
  // Forget the departed node in every new-node watch: if it rejoins, its
  // first publish must count as new again.
  for (auto& [id, seen] : seen_) {
    (void)id;
    seen.erase(departed);
  }
  // Two-phase for the same reason as on_publish.
  std::vector<std::pair<overlay::NodeId, Notification>> matched;
  for (auto& [id, subscription] : subscriptions_) {
    if (subscription.watched != departed) continue;
    Notification n;
    n.reason = Notification::Reason::kWatchedDeparted;
    n.subscription = id;
    matched.emplace_back(subscription.subscriber, std::move(n));
  }
  // Delivered as part of the departure protocol (the proactive map update);
  // one message per watcher, no extra routing charged beyond the publish.
  for (auto& [subscriber, notification] : matched) {
    ++stats_.notifications;
    if (handler_) handler_(subscriber, notification);
  }
}

}  // namespace topo::pubsub
