// Publish/subscribe over the global soft-state (paper Section 5.2).
//
// A node that selected its high-order neighbors by consulting a map
// subscribes to that map: "notify me when the state changes necessitate
// neighbor re-selection". Subscriptions live with the map pieces; when a
// publish lands on an owner, the owner evaluates the stored predicates and
// routes notifications to matching subscribers through the overlay.
//
// Predicates supported (the paper's examples):
//   * a new/updated record is closer (in landmark space) than the
//     subscriber's current representative — re-selection may help;
//   * more nodes have joined the zone (entry-count watch);
//   * the watched representative's published load crossed a threshold
//     (Section 6 QoS: "the selected neighbor is handling 80% of its
//     maximum capacity");
//   * the watched representative departed.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "softstate/map_service.hpp"

namespace topo::pubsub {

using SubscriptionId = std::uint64_t;

struct Subscription {
  overlay::NodeId subscriber = overlay::kInvalidNode;
  proximity::LandmarkVector vector;  // subscriber's landmark vector
  int level = 0;
  std::uint64_t cell_key = 0;

  /// Landmark-space distance to the subscriber's current representative;
  /// records closer than margin * this trigger kCloserCandidate.
  double current_best_distance = std::numeric_limits<double>::infinity();
  double closer_margin = 0.95;

  /// Section 6: notify when watched's load/capacity crosses this.
  double load_threshold = std::numeric_limits<double>::infinity();
  /// The load watch is edge-triggered: crossing the threshold notifies
  /// once, then the alarm stays latched while the load remains high — a
  /// representative stuck at 90% must not re-notify on every republish.
  /// The alarm re-arms only after utilization drops below
  /// load_threshold * (1 - load_hysteresis) (the hysteresis band keeps a
  /// load hovering at the threshold from flapping).
  double load_hysteresis = 0.1;
  /// Latched edge-trigger state; reset when the watch moves to a new
  /// representative (update_watch) or the load falls below the band.
  bool load_alarmed = false;
  /// The representative currently in use (load / departure watch).
  overlay::NodeId watched = overlay::kInvalidNode;

  /// Notify whenever the map piece gains a record for a previously-unseen
  /// node ("notify me when more nodes have joined the zone").
  bool notify_on_new_node = false;
};

struct Notification {
  enum class Reason {
    kCloserCandidate,
    kNewNode,
    kLoadExceeded,
    kWatchedDeparted,
  };
  Reason reason = Reason::kCloserCandidate;
  SubscriptionId subscription = 0;
  softstate::MapEntry entry;  // triggering record (empty for departures)
};

struct PubSubStats {
  std::uint64_t subscriptions = 0;
  std::uint64_t notifications = 0;
  std::uint64_t route_hops = 0;
  std::uint64_t predicate_evaluations = 0;
  /// Notifications the fault plane dropped en route to the subscriber
  /// (the subscriber simply re-selects later — soft state absorbs it).
  std::uint64_t dropped_notifications = 0;
  /// kLoadExceeded edge-trigger firings (before delivery gating) — the
  /// Section 6 QoS alarms driving load-aware re-selection.
  std::uint64_t load_exceeded = 0;
};

class PubSubService {
 public:
  /// Handler invoked at the *subscriber* when a notification arrives; the
  /// facade uses it to re-run neighbor selection.
  using Handler =
      std::function<void(overlay::NodeId subscriber, const Notification&)>;

  PubSubService(overlay::EcanNetwork& ecan, softstate::MapService& maps);

  /// Registers `subscription`; hooks the map service's publish stream.
  SubscriptionId subscribe(Subscription subscription);
  void unsubscribe(SubscriptionId id);

  /// Updates the re-selection state after the subscriber picked a new
  /// representative.
  void update_watch(SubscriptionId id, overlay::NodeId watched,
                    double best_distance);

  Subscription* find(SubscriptionId id);

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Installs the shared fault plane: notifications become kNotify
  /// messages subject to loss/crash/partition along their routed path.
  void set_fault_plane(sim::FaultPlane* plane) { fault_plane_ = plane; }

  /// Installs the shared traffic plane: while active, notifications also
  /// cross the congestion gate and can be dropped under saturation.
  void set_traffic_plane(net::TrafficPlane* plane) { traffic_plane_ = plane; }

  /// Called by the departure protocol (proactive update): notifies every
  /// subscriber watching `departed` and forgets the node in every
  /// new-node watch, so a leave-then-rejoin retriggers kNewNode.
  void notify_departure(overlay::NodeId departed);

  const PubSubStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  std::size_t active_subscriptions() const { return subscriptions_.size(); }

  /// Visits every live subscription as (id, Subscription); unspecified
  /// order. The equivalence tests use this to compare full subscription
  /// tables across systems.
  template <typename Fn>
  void for_each_subscription(Fn&& fn) const {
    for (const auto& [id, subscription] : subscriptions_)
      fn(id, subscription);
  }

  /// Match each publish by scanning the whole subscription table (the
  /// seed-era cost model) instead of the per-map index. Delivery order and
  /// every notification are identical either way — ascending subscription
  /// id — so this knob exists for the matcher-equivalence tests and the
  /// join bench's scalar-reference mode, exactly like
  /// MapConfig::use_reference_router.
  void set_reference_matcher(bool on) { reference_matcher_ = on; }
  bool reference_matcher() const { return reference_matcher_; }

 private:
  void on_publish(overlay::NodeId owner, const softstate::StoredEntry& entry);
  /// Evaluates one subscription's predicates against a placed entry,
  /// appending to `matched` (subscriber + ready notification) on a hit.
  void match_one(SubscriptionId id, Subscription& subscription,
                 const softstate::StoredEntry& stored,
                 std::vector<std::pair<overlay::NodeId, Notification>>&
                     matched);
  void deliver(overlay::NodeId from, overlay::NodeId subscriber,
               Notification notification);

  overlay::EcanNetwork* ecan_;
  softstate::MapService* maps_;
  sim::FaultPlane* fault_plane_ = nullptr;
  net::TrafficPlane* traffic_plane_ = nullptr;
  Handler handler_;
  std::unordered_map<SubscriptionId, Subscription> subscriptions_;
  /// One-traversal-many-subscribers fan-out: subscription ids bucketed by
  /// the map they watch (the packed cell key encodes level + cell), so a
  /// placed entry touches exactly its own map's subscribers instead of
  /// scanning the whole table. Ids are appended in creation order and ids
  /// are monotone, so each bucket is already in ascending-id (delivery)
  /// order.
  std::unordered_map<std::uint64_t, std::vector<SubscriptionId>> by_cell_;
  // Which nodes each new-node watch has already seen. Departed nodes are
  // purged in notify_departure so a rejoin counts as new again.
  std::unordered_map<SubscriptionId, std::unordered_set<overlay::NodeId>>
      seen_;
  SubscriptionId next_id_ = 1;
  PubSubStats stats_;
  bool reference_matcher_ = false;
  /// Scratch reused across publishes (guarded for re-entrant publishes:
  /// a handler that republishes falls back to a local buffer).
  std::vector<std::pair<overlay::NodeId, Notification>> matched_scratch_;
  int match_depth_ = 0;
  overlay::RouteScratch route_scratch_;
};

}  // namespace topo::pubsub
