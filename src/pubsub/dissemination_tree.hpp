// Notification dissemination trees (paper Section 5.2): "when the
// conditions are triggered, the notifications can be efficiently
// disseminated to all subscribers through distribution trees embedded in
// the overlay."
//
// Instead of the root unicasting to each of k subscribers (k messages all
// leaving one node), subscribers are arranged into a binary tree ordered by
// their landmark numbers (so adjacent tree nodes tend to be physically
// close) and every parent forwards to at most two children. Message count
// stays k, but the per-node fan-out drops from k to <= 2 and the total
// overlay-hop cost typically shrinks because edges connect nearby nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/ecan.hpp"
#include "util/biguint.hpp"

namespace topo::pubsub {

struct TreeRecipient {
  overlay::NodeId node = overlay::kInvalidNode;
  util::BigUint order_key;  // landmark number: sort key for locality
};

struct DisseminationEdge {
  overlay::NodeId from = overlay::kInvalidNode;
  overlay::NodeId to = overlay::kInvalidNode;
};

struct DisseminationPlan {
  std::vector<DisseminationEdge> edges;  // one per recipient
  std::size_t depth = 0;                 // longest root-to-leaf edge chain
  std::size_t max_fanout = 0;            // messages sent by busiest node
};

/// Builds the balanced binary dissemination tree rooted at `root` over
/// `recipients` (sorted internally by order_key).
DisseminationPlan build_dissemination_tree(
    overlay::NodeId root, std::vector<TreeRecipient> recipients);

struct DisseminationCost {
  std::size_t messages = 0;
  std::size_t total_overlay_hops = 0;
  std::size_t max_fanout = 0;
};

/// Cost of executing `plan` on the overlay (each edge routed via eCAN).
DisseminationCost measure_plan(const overlay::EcanNetwork& ecan,
                               const DisseminationPlan& plan);

/// Baseline: the root unicasts to every recipient directly.
DisseminationCost measure_unicast(const overlay::EcanNetwork& ecan,
                                  overlay::NodeId root,
                                  const std::vector<TreeRecipient>& recipients);

}  // namespace topo::pubsub
