#include "core/pastry_selectors.hpp"

#include <limits>

namespace topo::core {

overlay::NodeId OracleSlotSelector::select(
    overlay::NodeId for_node, int, int,
    std::span<const overlay::NodeId> candidates) {
  TO_EXPECTS(!candidates.empty());
  const net::HostId from = pastry_->node(for_node).host;
  overlay::NodeId best = overlay::kInvalidNode;
  double best_latency = std::numeric_limits<double>::infinity();
  for (const overlay::NodeId candidate : candidates) {
    const double latency =
        oracle_->latency_ms(from, pastry_->node(candidate).host);
    if (latency < best_latency) {
      best_latency = latency;
      best = candidate;
    }
  }
  return best;
}

overlay::NodeId SoftStateSlotSelector::select(
    overlay::NodeId for_node, int row, int column,
    std::span<const overlay::NodeId> candidates) {
  TO_EXPECTS(!candidates.empty());
  const auto vector_it = vectors_->find(for_node);
  if (vector_it == vectors_->end())
    return candidates[rng_.next_u64(candidates.size())];

  // The slot's prefix region has a map; the region of slot (row, column)
  // is a prefix of length row+1.
  const auto [lo, hi] =
      pastry_->slot_range(pastry_->node(for_node).id, row, column);
  softstate::PastryLookupMeta meta;
  const auto entries = maps_->lookup(for_node, vector_it->second, row + 1,
                                     lo, hi, 0.0, &meta);

  overlay::NodeId best = overlay::kInvalidNode;
  double best_rtt = std::numeric_limits<double>::infinity();
  std::size_t probes = 0;
  const net::HostId from = pastry_->node(for_node).host;
  for (const auto& entry : entries) {
    if (probes >= rtt_budget_) break;
    if (!pastry_->alive(entry.node)) {
      maps_->report_dead(meta.owner, entry.node);  // lazy deletion
      continue;
    }
    const double rtt = oracle_->probe_rtt(from, entry.host);
    ++probes;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = entry.node;
    }
  }
  if (best == overlay::kInvalidNode)
    return candidates[rng_.next_u64(candidates.size())];
  return best;
}

}  // namespace topo::core
