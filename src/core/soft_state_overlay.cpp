#include "core/soft_state_overlay.hpp"

#include <chrono>

namespace topo::core {

namespace {

using WaveClock = std::chrono::steady_clock;

double wave_elapsed_ms(WaveClock::time_point since) {
  return std::chrono::duration<double, std::milli>(WaveClock::now() - since)
      .count();
}

}  // namespace

SoftStateOverlay::SoftStateOverlay(const net::Topology& topology,
                                   SystemConfig config)
    : config_(config),
      rng_(config.seed),
      oracle_(topology, config.rtt_engine),
      landmarks_(proximity::LandmarkSet::choose_random(
          topology, config.landmark_count, rng_, config.landmark)),
      ecan_(config.dims, config.max_level) {
  // A zero fault seed derives from the system seed so each trial of a
  // sweep gets an independent but reproducible fault stream.
  if (config_.fault.seed == 0)
    config_.fault.seed = config_.seed ^ 0xfa417b145eull;
  faults_ = std::make_unique<sim::FaultPlane>(config_.fault);
  faults_->bind_topology(&topology);
  // Same derivation for the traffic plane's drop-draw stream.
  if (config_.traffic.seed == 0)
    config_.traffic.seed = config_.seed ^ 0x10adf10b5ull;
  traffic_ = std::make_unique<net::TrafficPlane>(config_.traffic);
  traffic_->bind_topology(&topology);
  // While active, every RTT the oracle reports carries the queuing-delay
  // term — landmark vectors, selection probes and hop costs all see load.
  oracle_.set_traffic_plane(traffic_.get());
  maps_ = std::make_unique<softstate::MapService>(ecan_, landmarks_,
                                                  config.map);
  maps_->set_fault_plane(faults_.get());
  maps_->set_traffic_plane(traffic_.get());
  if (config_.retry.enabled())
    maps_->set_retry(&events_, config_.retry,
                     config_.seed ^ 0x7e7521ull);
  pubsub_ = std::make_unique<pubsub::PubSubService>(ecan_, *maps_);
  pubsub_->set_fault_plane(faults_.get());
  pubsub_->set_traffic_plane(traffic_.get());
  pubsub_->set_handler(
      [this](overlay::NodeId subscriber, const pubsub::Notification& n) {
        on_notification(subscriber, n);
      });
  if (config_.load_weight > 0.0) {
    selector_ = std::make_unique<LoadAwareSelector>(
        ecan_, *maps_, oracle_, vectors_, config_.rtt_budget,
        config_.load_weight, rng_.fork(), &events_);
  } else {
    selector_ = std::make_unique<SoftStateSelector>(
        ecan_, *maps_, oracle_, vectors_, config_.rtt_budget, rng_.fork(),
        &events_);
  }
  selector_->set_fault_plane(faults_.get());
}

overlay::NodeId SoftStateOverlay::join(net::HostId host) {
  // 1. Landmark measurement.
  const proximity::LandmarkVector vector = landmarks_.measure(oracle_, host);

  // 2. Uniform-layout eCAN join (no geographic constraint).
  overlay::NodeId split_peer = overlay::kInvalidNode;
  const overlay::NodeId id =
      ecan_.join(host, geom::Point::random(config_.dims, rng_), &split_peer);
  vectors_[id] = vector;
  if (split_peer != overlay::kInvalidNode) {
    maps_->migrate_after_join(id, split_peer);
    migrate_objects_after_split(id, split_peer);
  }

  // 3. Publish the proximity record into every enclosing zone's map. The
  // published load comes from the probe / traffic plane, not a hardcoded
  // zero: threshold subscriptions and the load-aware selector must see a
  // loaded node as loaded from its very first record, not only after the
  // first republish.
  const double capacity =
      capacities_.count(id) != 0 ? capacities_[id] : 1.0;
  maps_->publish(id, vector, events_.now(), node_load(id), capacity);

  // 4. Proximity-neighbor selection via the global soft state.
  ecan_.build_table(id, *selector_);
  if (split_peer != overlay::kInvalidNode) {
    // The split peer's zone shrank: deeper levels appeared.
    ecan_.build_table(split_peer, *selector_);
  }

  // 5. Subscriptions on the consulted maps.
  if (config_.subscribe_on_join) {
    subscribe_entries(id);
    if (split_peer != overlay::kInvalidNode) {
      unsubscribe_all(split_peer);
      subscribe_entries(split_peer);
    }
  }

  if (config_.auto_republish) schedule_republish(id);
  ++stats_.joins;
  return id;
}

std::vector<overlay::NodeId> SoftStateOverlay::join_many(
    std::span<const net::HostId> hosts, JoinWaveStats* wave_stats) {
  JoinWaveStats local_stats;
  JoinWaveStats& ws = wave_stats != nullptr ? *wave_stats : local_stats;
  ws = JoinWaveStats{};
  ws.wave_size = hosts.size();
  std::vector<overlay::NodeId> ids;
  ids.reserve(hosts.size());
  if (hosts.empty()) return ids;

  // Stages 1-2, hoisted: landmark measurement and number derivation are
  // pure (no overlay state, no facade RNG), so the whole wave's vectors
  // and numbers can be produced by the bulk kernels up front. Measurement
  // noise shares the oracle's noise stream with the selector's candidate
  // probes, so hoisting would permute the draws relative to the scalar
  // sequence — measure per node inside the loop instead (values then
  // match N scalar joins draw for draw).
  const bool bulk = oracle_.measurement_noise() == 0.0;
  ws.bulk_measured = bulk;
  wave_vectors_.resize(hosts.size());
  wave_numbers_.resize(hosts.size());
  if (bulk) {
    const auto probe_start = WaveClock::now();
    landmarks_.measure_many(oracle_, hosts, wave_vectors_, wave_column_);
    ws.probe_ms = wave_elapsed_ms(probe_start);

    const auto encode_start = WaveClock::now();
    landmarks_.landmark_numbers(wave_vectors_, wave_coords_, wave_numbers_);
    ws.encode_ms = wave_elapsed_ms(encode_start);
  }

  selector_->reset_stage_timing();
  selector_->set_stage_timing(true);

  // Per-node protocol, in wave order: exactly the scalar join() sequence
  // (same operations, same order, same RNG draws), with the measured
  // vector taken from the wave arena and the publish handed the wave's
  // pre-derived landmark number (identical value, so identical routing
  // and placement).
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const net::HostId host = hosts[i];
    if (!bulk) {
      const auto probe_start = WaveClock::now();
      wave_vectors_[i] = landmarks_.measure(oracle_, host);
      ws.probe_ms += wave_elapsed_ms(probe_start);
    }
    const proximity::LandmarkVector& vector = wave_vectors_[i];

    const auto split_start = WaveClock::now();
    overlay::NodeId split_peer = overlay::kInvalidNode;
    const overlay::NodeId id = ecan_.join(
        host, geom::Point::random(config_.dims, rng_), &split_peer);
    vectors_[id] = vector;
    if (split_peer != overlay::kInvalidNode) {
      maps_->migrate_after_join(id, split_peer);
      migrate_objects_after_split(id, split_peer);
    }
    ws.split_ms += wave_elapsed_ms(split_start);

    const auto publish_start = WaveClock::now();
    const double capacity =
        capacities_.count(id) != 0 ? capacities_[id] : 1.0;
    // Same probed load as the scalar join (node_load is a pure function
    // of the probe / traffic state, so scalar ≡ batched state holds).
    const double load = node_load(id);
    if (bulk) {
      maps_->publish(id, vector, wave_numbers_[i], events_.now(), load,
                     capacity);
    } else {
      maps_->publish(id, vector, events_.now(), load, capacity);
    }
    ws.publish_ms += wave_elapsed_ms(publish_start);

    const auto select_start = WaveClock::now();
    ecan_.build_table(id, *selector_);
    if (split_peer != overlay::kInvalidNode)
      ecan_.build_table(split_peer, *selector_);
    ws.select_ms += wave_elapsed_ms(select_start);

    const auto subscribe_start = WaveClock::now();
    if (config_.subscribe_on_join) {
      subscribe_entries(id);
      if (split_peer != overlay::kInvalidNode) {
        unsubscribe_all(split_peer);
        subscribe_entries(split_peer);
      }
    }
    ws.subscribe_ms += wave_elapsed_ms(subscribe_start);

    if (config_.auto_republish) schedule_republish(id);
    ++stats_.joins;
    ids.push_back(id);
  }

  selector_->set_stage_timing(false);
  ws.map_fetch_ms = selector_->stage_timing().map_fetch_ms;
  ws.rank_ms = selector_->stage_timing().rank_ms;
  return ids;
}

void SoftStateOverlay::leave(overlay::NodeId id) {
  TO_EXPECTS(ecan_.alive(id));
  unsubscribe_all(id);

  // Proactive map update: scrub the departing node's records first so
  // re-selections triggered below can never hand it out.
  maps_->remove_everywhere(id);
  std::vector<softstate::StoredEntry> hosted = maps_->extract_store(id);

  const auto report = ecan_.leave(id);
  vectors_.erase(id);
  maps_->rehome(std::move(hosted));
  if (ecan_.size() > 0)
    migrate_objects_from(id);  // stored application objects follow the zone
  else
    objects_.erase(id);

  // Zone changes from the takeover: migrate the swapped node's store and
  // refresh both nodes' tables and subscriptions.
  for (const overlay::NodeId changed : {report.taker, report.moved}) {
    if (changed == overlay::kInvalidNode || !ecan_.alive(changed)) continue;
    maps_->rehome(maps_->extract_store(changed));
    migrate_objects_from(changed);
    ecan_.build_table(changed, *selector_);
    if (config_.subscribe_on_join) {
      unsubscribe_all(changed);
      subscribe_entries(changed);
    }
  }

  // Watchers of the departed representative re-select now.
  pubsub_->notify_departure(id);
  ++stats_.leaves;
}

void SoftStateOverlay::crash(overlay::NodeId id) {
  TO_EXPECTS(ecan_.alive(id));
  unsubscribe_all(id);
  // Hosted map state AND stored application objects die with the node.
  (void)maps_->extract_store(id);
  objects_.erase(id);

  const auto report = ecan_.leave(id);  // models the CAN takeover protocol
  vectors_.erase(id);

  for (const overlay::NodeId changed : {report.taker, report.moved}) {
    if (changed == overlay::kInvalidNode || !ecan_.alive(changed)) continue;
    maps_->rehome(maps_->extract_store(changed));
    migrate_objects_from(changed);
    ecan_.build_table(changed, *selector_);
    if (config_.subscribe_on_join) {
      unsubscribe_all(changed);
      subscribe_entries(changed);
    }
  }
  // No proactive scrub and no notifications: records pointing at the dead
  // node are discovered and deleted lazily, tables repair on first use.
  ++stats_.crashes;
}

overlay::RouteResult SoftStateOverlay::lookup(overlay::NodeId from,
                                              const geom::Point& key) {
  overlay::RouteResult route = ecan_.route_ecan_repair(from, key, *selector_);
  // Application data travels the same links as everything else: a routed
  // request still fails when the fault plane drops or blocks it.
  if (route.success && faults_->active() &&
      !faults_
           ->message_via(sim::MessageKind::kData, route.path,
                         [&](overlay::NodeId id) { return ecan_.node(id).host; })
           .delivered()) {
    route.success = false;
  }
  // ... and through saturated links: congestion drops data the same way.
  if (route.success && traffic_->active() &&
      !traffic_
           ->message_via(route.path,
                         [&](overlay::NodeId id) { return ecan_.node(id).host; })
           .delivered) {
    route.success = false;
  }
  return route;
}

overlay::RouteResult SoftStateOverlay::put(overlay::NodeId from,
                                           const geom::Point& key,
                                           std::string value) {
  overlay::RouteResult route = lookup(from, key);
  if (!route.success) return route;
  auto& store = objects_[route.path.back()];
  for (StoredObject& object : store) {
    if (object.key == key) {
      object.value = std::move(value);  // overwrite semantics
      return route;
    }
  }
  store.push_back(StoredObject{key, std::move(value)});
  return route;
}

std::optional<std::string> SoftStateOverlay::get(
    overlay::NodeId from, const geom::Point& key,
    overlay::RouteResult* route) {
  overlay::RouteResult local_route = lookup(from, key);
  if (route != nullptr) *route = local_route;
  if (!local_route.success) return std::nullopt;
  const auto it = objects_.find(local_route.path.back());
  if (it == objects_.end()) return std::nullopt;
  for (const StoredObject& object : it->second)
    if (object.key == key) return object.value;
  return std::nullopt;
}

std::size_t SoftStateOverlay::object_count(overlay::NodeId node) const {
  const auto it = objects_.find(node);
  return it == objects_.end() ? 0 : it->second.size();
}

std::size_t SoftStateOverlay::total_objects() const {
  std::size_t total = 0;
  for (const auto& [node, store] : objects_) {
    (void)node;
    total += store.size();
  }
  return total;
}

void SoftStateOverlay::migrate_objects_from(overlay::NodeId node) {
  const auto it = objects_.find(node);
  if (it == objects_.end()) return;
  std::vector<StoredObject> moving = std::move(it->second);
  objects_.erase(it);
  for (StoredObject& object : moving) {
    const overlay::NodeId owner = ecan_.owner_of(object.key);
    objects_[owner].push_back(std::move(object));
  }
}

void SoftStateOverlay::migrate_objects_after_split(
    overlay::NodeId joined, overlay::NodeId split_peer) {
  const auto it = objects_.find(split_peer);
  if (it == objects_.end()) return;
  const geom::Zone& new_zone = ecan_.node(joined).zone;
  auto& target = objects_[joined];
  std::erase_if(it->second, [&](StoredObject& object) {
    if (!new_zone.contains(object.key)) return false;
    target.push_back(std::move(object));
    return true;
  });
}

void SoftStateOverlay::run_for(sim::Time ms) {
  events_.run_until(events_.now() + ms);
  maps_->expire_before(events_.now());
  // Fold the window's gated messages into measured link rates so the
  // system's own control traffic shows up as utilization.
  if (traffic_->active()) traffic_->advance_to(events_.now());
}

void SoftStateOverlay::set_capacity(overlay::NodeId id, double capacity) {
  TO_EXPECTS(capacity > 0.0);
  capacities_[id] = capacity;
}

void SoftStateOverlay::republish_now(overlay::NodeId id) {
  if (!ecan_.alive(id)) return;
  const auto it = vectors_.find(id);
  if (it == vectors_.end()) return;
  const double capacity =
      capacities_.count(id) != 0 ? capacities_[id] : 1.0;
  maps_->publish(id, it->second, events_.now(), node_load(id), capacity);
  ++stats_.republishes;
}

double SoftStateOverlay::node_load(overlay::NodeId id) const {
  if (load_probe_) return load_probe_(id);
  if (traffic_->active()) return traffic_->host_utilization(ecan_.node(id).host);
  return 0.0;
}

void SoftStateOverlay::schedule_republish(overlay::NodeId id) {
  events_.schedule_in(config_.republish_interval_ms, [this, id] {
    if (!ecan_.alive(id)) return;  // departed: stop the refresh chain
    republish_now(id);
    schedule_republish(id);
  });
}

void SoftStateOverlay::subscribe_entries(overlay::NodeId id) {
  const auto vector_it = vectors_.find(id);
  if (vector_it == vectors_.end()) return;
  const int levels = ecan_.node_level(id);
  auto& records = subs_[id];
  for (int h = 1; h <= levels; ++h) {
    const auto my_cell = ecan_.cell_of_node(id, h);
    for (std::size_t dim = 0; dim < ecan_.dims(); ++dim) {
      for (int dir = 0; dir < 2; ++dir) {
        const overlay::NodeId rep = ecan_.table_entry(id, h, dim, dir);
        if (rep == overlay::kInvalidNode) continue;
        const auto adj = ecan_.adjacent_cell(my_cell, h, dim, dir);

        pubsub::Subscription subscription;
        subscription.subscriber = id;
        subscription.vector = vector_it->second;
        subscription.level = h;
        subscription.cell_key = ecan_.pack_cell(h, adj);
        subscription.closer_margin = config_.closer_margin;
        subscription.load_threshold = config_.load_threshold;
        subscription.watched = rep;
        const auto rep_vector = vectors_.find(rep);
        subscription.current_best_distance =
            rep_vector == vectors_.end()
                ? std::numeric_limits<double>::infinity()
                : proximity::vector_distance(vector_it->second,
                                             rep_vector->second);
        const pubsub::SubscriptionId sub_id =
            pubsub_->subscribe(std::move(subscription));
        records.push_back(SubRecord{sub_id, h, dim, dir});
      }
    }
  }
}

void SoftStateOverlay::unsubscribe_all(overlay::NodeId id) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return;
  for (const SubRecord& record : it->second)
    pubsub_->unsubscribe(record.id);
  subs_.erase(it);
}

void SoftStateOverlay::on_notification(
    overlay::NodeId subscriber, const pubsub::Notification& notification) {
  if (!ecan_.alive(subscriber)) return;
  const auto it = subs_.find(subscriber);
  if (it == subs_.end()) return;
  const auto record_it =
      std::find_if(it->second.begin(), it->second.end(),
                   [&](const SubRecord& r) {
                     return r.id == notification.subscription;
                   });
  if (record_it == it->second.end()) return;

  // Demand-driven re-selection of exactly the affected entry.
  if (record_it->level > ecan_.node_level(subscriber)) return;
  ecan_.refresh_entry(subscriber, record_it->level, record_it->dim,
                      record_it->dir, *selector_);
  ++stats_.reselections;
  const SelectionInfo& info = selector_->last_selection();

  // The triggering candidate has now been evaluated; lower the
  // notification threshold to cover it even when it lost the RTT probe,
  // otherwise the same record re-triggers on every republish.
  double threshold = info.landmark_distance;
  const auto my_vector = vectors_.find(subscriber);
  if (!notification.entry.vector.empty() && my_vector != vectors_.end()) {
    threshold = std::min(
        threshold, proximity::vector_distance(notification.entry.vector,
                                              my_vector->second));
  }
  pubsub_->update_watch(notification.subscription, info.chosen, threshold);
}

}  // namespace topo::core
