// Glue between sim::LifecycleEngine and the SoftStateOverlay facade: the
// engine drives the full maintenance loop (jittered republish, expiry
// sweeps, Poisson churn) through these hooks, while the facade's pub/sub
// notifications keep re-probing and rewiring proximity neighbors as the
// maps change underneath.
#pragma once

#include "core/soft_state_overlay.hpp"
#include "sim/lifecycle.hpp"

namespace topo::core {

class OverlayLifecycle final : public sim::LifecycleHooks {
 public:
  /// Spawned nodes join from a uniformly random host in [0, host_count).
  OverlayLifecycle(SoftStateOverlay& system, std::size_t host_count,
                   util::Rng rng);

  overlay::NodeId spawn_node() override;
  void graceful_leave(overlay::NodeId id) override;
  void crash_node(overlay::NodeId id) override;
  void republish(overlay::NodeId id) override;
  std::size_t expire(sim::Time now) override;
  bool alive(overlay::NodeId id) const override;

 private:
  SoftStateOverlay* system_;
  std::size_t host_count_;
  util::Rng rng_;
};

/// A SoftStateOverlay put under lifecycle control: the engine shares the
/// system's event queue (one virtual clock for the engine's timers and
/// any facade-scheduled events). Build the system with
/// `SystemConfig::auto_republish = false` — the engine owns the republish
/// timers, jitter included; leaving both active would double the refresh
/// traffic.
class LifecycleRuntime {
 public:
  LifecycleRuntime(SoftStateOverlay& system, std::size_t host_count,
                   sim::LifecycleConfig config)
      : hooks_(system, host_count, util::Rng(config.seed).fork()),
        engine_(hooks_, config, &system.events()) {}

  sim::LifecycleEngine& engine() { return engine_; }
  OverlayLifecycle& hooks() { return hooks_; }

 private:
  OverlayLifecycle hooks_;
  sim::LifecycleEngine engine_;
};

}  // namespace topo::core
