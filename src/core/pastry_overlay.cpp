#include "core/pastry_overlay.hpp"

namespace topo::core {

PastrySoftStateOverlay::PastrySoftStateOverlay(const net::Topology& topology,
                                               PastrySystemConfig config)
    : config_(config),
      rng_(config.seed),
      oracle_(topology),
      landmarks_(proximity::LandmarkSet::choose_random(
          topology, config.landmark_count, rng_, config.landmark)),
      pastry_(config.id_bits, config.digit_bits, config.leaf_set_half) {
  oracle_.warm(landmarks_.hosts());
  softstate::PastryMapConfig map_config;
  map_config.ttl_ms = config_.ttl_ms;
  maps_ = std::make_unique<softstate::PastryMapService>(pastry_, landmarks_,
                                                        map_config);
  selector_ = std::make_unique<SoftStateSlotSelector>(
      pastry_, *maps_, oracle_, vectors_, config_.rtt_budget, rng_.fork());
}

overlay::NodeId PastrySoftStateOverlay::join(net::HostId host) {
  const proximity::LandmarkVector vector = landmarks_.measure(oracle_, host);
  const overlay::NodeId id = pastry_.join_random(host, rng_);
  vectors_[id] = vector;

  // The new node takes over the keys numerically closest to its id from
  // its ring neighbors: both re-home (records still theirs stay put).
  for (const overlay::NodeId neighbor : pastry_.leaf_set(id))
    maps_->rehome_from(neighbor);

  maps_->publish(id, vector, events_.now());
  pastry_.build_table(id, *selector_);

  schedule_republish(id);
  ++stats_.joins;
  return id;
}

void PastrySoftStateOverlay::leave(overlay::NodeId id) {
  TO_EXPECTS(pastry_.alive(id));
  maps_->remove_everywhere(id);
  const bool last = pastry_.size() == 1;
  pastry_.leave(id);
  vectors_.erase(id);
  if (last)
    maps_->drop_store(id);
  else
    maps_->rehome_from(id);
  ++stats_.leaves;
}

void PastrySoftStateOverlay::crash(overlay::NodeId id) {
  TO_EXPECTS(pastry_.alive(id));
  pastry_.leave(id);
  vectors_.erase(id);
  maps_->drop_store(id);
  ++stats_.crashes;
}

overlay::RouteResult PastrySoftStateOverlay::lookup(overlay::NodeId from,
                                                    overlay::PastryId key) {
  return pastry_.route_repair(from, key, *selector_);
}

void PastrySoftStateOverlay::run_for(sim::Time ms) {
  events_.run_until(events_.now() + ms);
  maps_->expire_before(events_.now());
}

void PastrySoftStateOverlay::republish_now(overlay::NodeId id) {
  if (!pastry_.alive(id)) return;
  const auto it = vectors_.find(id);
  if (it == vectors_.end()) return;
  maps_->publish(id, it->second, events_.now());
  ++stats_.republishes;
}

void PastrySoftStateOverlay::schedule_republish(overlay::NodeId id) {
  events_.schedule_in(config_.republish_interval_ms, [this, id] {
    if (!pastry_.alive(id)) return;
    republish_now(id);
    schedule_republish(id);
  });
}

}  // namespace topo::core
