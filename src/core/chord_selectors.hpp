// Finger-selection strategies for Chord (mirroring core/selectors.hpp):
//
//   * ClassicFingerSelector  — the original protocol: successor(n + 2^i),
//                              i.e. the first node in the interval;
//   * RandomFingerSelector   — uniform member of the interval (the same
//                              baseline Figures 14-15 use for eCAN);
//   * OracleFingerSelector   — physically closest member (optimal PNS);
//   * SoftStateFingerSelector — the paper: one lookup into the
//                              landmark-number-keyed ring map per table
//                              build, candidates filtered per interval and
//                              RTT-probed within a budget.
#pragma once

#include <unordered_map>

#include "net/rtt_oracle.hpp"
#include "overlay/chord.hpp"
#include "softstate/chord_maps.hpp"
#include "util/rng.hpp"

namespace topo::core {

class ClassicFingerSelector final : public overlay::FingerSelector {
 public:
  overlay::NodeId select(overlay::NodeId, int,
                         std::span<const overlay::NodeId> candidates) override {
    return candidates.front();  // ring order: successor of interval start
  }
};

class RandomFingerSelector final : public overlay::FingerSelector {
 public:
  explicit RandomFingerSelector(util::Rng rng) : rng_(rng) {}

  overlay::NodeId select(overlay::NodeId, int,
                         std::span<const overlay::NodeId> candidates) override {
    return candidates[rng_.next_u64(candidates.size())];
  }

 private:
  util::Rng rng_;
};

class OracleFingerSelector final : public overlay::FingerSelector {
 public:
  OracleFingerSelector(const overlay::ChordNetwork& chord,
                       net::RttOracle& oracle)
      : chord_(&chord), oracle_(&oracle) {}

  overlay::NodeId select(overlay::NodeId for_node, int,
                         std::span<const overlay::NodeId> candidates) override;

 private:
  const overlay::ChordNetwork* chord_;
  net::RttOracle* oracle_;
};

/// Chord landmark vectors, measured at join time (same role as
/// core::VectorStore for the CAN family).
using ChordVectorStore =
    std::unordered_map<overlay::NodeId, proximity::LandmarkVector>;

class SoftStateFingerSelector final : public overlay::FingerSelector {
 public:
  SoftStateFingerSelector(overlay::ChordNetwork& chord,
                          softstate::ChordMapService& maps,
                          net::RttOracle& oracle,
                          const ChordVectorStore& vectors,
                          std::size_t rtt_budget, util::Rng rng)
      : chord_(&chord),
        maps_(&maps),
        oracle_(&oracle),
        vectors_(&vectors),
        rtt_budget_(rtt_budget),
        rng_(rng) {}

  overlay::NodeId select(overlay::NodeId for_node, int finger_index,
                         std::span<const overlay::NodeId> candidates) override;

  /// Map lookups performed (one per table build thanks to caching).
  std::uint64_t map_lookups() const { return map_lookups_; }

 private:
  struct CachedCandidate {
    softstate::ChordMapEntry entry;
    double rtt_ms = -1.0;  // probed lazily, at most once per table build
  };

  overlay::ChordNetwork* chord_;
  softstate::ChordMapService* maps_;
  net::RttOracle* oracle_;
  const ChordVectorStore* vectors_;
  std::size_t rtt_budget_;
  util::Rng rng_;

  // One cached map lookup per node whose table is being built; selections
  // for that node's fingers share it (and its probe budget).
  overlay::NodeId cached_for_ = overlay::kInvalidNode;
  std::vector<CachedCandidate> cached_;
  std::size_t probes_spent_ = 0;
  std::uint64_t map_lookups_ = 0;
};

}  // namespace topo::core
