#include "core/lifecycle_adapter.hpp"

namespace topo::core {

OverlayLifecycle::OverlayLifecycle(SoftStateOverlay& system,
                                   std::size_t host_count, util::Rng rng)
    : system_(&system), host_count_(host_count), rng_(rng) {
  TO_EXPECTS(host_count_ > 0);
}

overlay::NodeId OverlayLifecycle::spawn_node() {
  const auto host = static_cast<net::HostId>(rng_.next_u64(host_count_));
  return system_->join(host);
}

void OverlayLifecycle::graceful_leave(overlay::NodeId id) {
  system_->leave(id);
}

void OverlayLifecycle::crash_node(overlay::NodeId id) { system_->crash(id); }

void OverlayLifecycle::republish(overlay::NodeId id) {
  system_->republish_now(id);
}

std::size_t OverlayLifecycle::expire(sim::Time now) {
  return system_->maps().expire_before(now);
}

bool OverlayLifecycle::alive(overlay::NodeId id) const {
  return system_->ecan().alive(id);
}

}  // namespace topo::core
