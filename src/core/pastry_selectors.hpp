// Routing-slot selection strategies for Pastry (the third overlay family,
// mirroring core/selectors.hpp and core/chord_selectors.hpp):
//
//   * FirstSlotSelector     — lowest id in the region (no proximity);
//   * RandomSlotSelector    — uniform member (baseline);
//   * OracleSlotSelector    — physically closest member (optimal PNS);
//   * SoftStateSlotSelector — the paper: consult the prefix region's map
//                             keyed by the node's landmark number, probe
//                             the top candidates, keep the closest.
#pragma once

#include <unordered_map>

#include "net/rtt_oracle.hpp"
#include "overlay/pastry.hpp"
#include "softstate/pastry_maps.hpp"
#include "util/rng.hpp"

namespace topo::core {

class FirstSlotSelector final : public overlay::RoutingSlotSelector {
 public:
  overlay::NodeId select(overlay::NodeId, int, int,
                         std::span<const overlay::NodeId> candidates) override {
    return candidates.front();
  }
};

class RandomSlotSelector final : public overlay::RoutingSlotSelector {
 public:
  explicit RandomSlotSelector(util::Rng rng) : rng_(rng) {}

  overlay::NodeId select(overlay::NodeId, int, int,
                         std::span<const overlay::NodeId> candidates) override {
    return candidates[rng_.next_u64(candidates.size())];
  }

 private:
  util::Rng rng_;
};

class OracleSlotSelector final : public overlay::RoutingSlotSelector {
 public:
  OracleSlotSelector(const overlay::PastryNetwork& pastry,
                     net::RttOracle& oracle)
      : pastry_(&pastry), oracle_(&oracle) {}

  overlay::NodeId select(overlay::NodeId for_node, int, int,
                         std::span<const overlay::NodeId> candidates) override;

 private:
  const overlay::PastryNetwork* pastry_;
  net::RttOracle* oracle_;
};

using PastryVectorStore =
    std::unordered_map<overlay::NodeId, proximity::LandmarkVector>;

class SoftStateSlotSelector final : public overlay::RoutingSlotSelector {
 public:
  SoftStateSlotSelector(overlay::PastryNetwork& pastry,
                        softstate::PastryMapService& maps,
                        net::RttOracle& oracle,
                        const PastryVectorStore& vectors,
                        std::size_t rtt_budget, util::Rng rng)
      : pastry_(&pastry),
        maps_(&maps),
        oracle_(&oracle),
        vectors_(&vectors),
        rtt_budget_(rtt_budget),
        rng_(rng) {}

  overlay::NodeId select(overlay::NodeId for_node, int row, int column,
                         std::span<const overlay::NodeId> candidates) override;

 private:
  overlay::PastryNetwork* pastry_;
  softstate::PastryMapService* maps_;
  net::RttOracle* oracle_;
  const PastryVectorStore* vectors_;
  std::size_t rtt_budget_;
  util::Rng rng_;
};

}  // namespace topo::core
