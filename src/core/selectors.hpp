// The proximity-neighbor-selection strategies the paper compares
// (Section 5.3), as RepresentativeSelector implementations:
//
//   * RandomSelector       — "routing neighbor is selected randomly", the
//                            baseline of Figures 14-15;
//   * OracleSelector       — "the optimal value corresponds to the results
//                            when the number of RTT measurements is
//                            infinity": the physically closest member;
//   * SoftStateSelector    — the paper's system: consult the global
//                            soft-state map keyed by the node's landmark
//                            number, RTT-probe the top candidates, keep the
//                            closest. Budget 1 degenerates to landmark
//                            clustering alone;
//   * LoadAwareSelector    — Section 6: trade network distance against
//                            published load/capacity.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/rtt_oracle.hpp"
#include "overlay/selector.hpp"
#include "sim/event_queue.hpp"
#include "softstate/map_service.hpp"
#include "util/rng.hpp"

namespace topo::core {

/// Landmark vectors of every live node, measured at join time and shared
/// by the selectors that model information a node legitimately has.
using VectorStore =
    std::unordered_map<overlay::NodeId, proximity::LandmarkVector>;

class RandomSelector final : public overlay::RepresentativeSelector {
 public:
  explicit RandomSelector(util::Rng rng) : rng_(rng) {}

  overlay::NodeId select(overlay::NodeId for_node, int level,
                         const geom::Zone& cell,
                         std::span<const overlay::NodeId> members) override;

 private:
  util::Rng rng_;
};

class OracleSelector final : public overlay::RepresentativeSelector {
 public:
  OracleSelector(const overlay::CanNetwork& can, net::RttOracle& oracle)
      : can_(&can), oracle_(&oracle) {}

  overlay::NodeId select(overlay::NodeId for_node, int level,
                         const geom::Zone& cell,
                         std::span<const overlay::NodeId> members) override;

 private:
  const overlay::CanNetwork* can_;
  net::RttOracle* oracle_;
};

/// Bookkeeping of the most recent soft-state selection, used by the facade
/// to parameterize the follow-up subscription.
struct SelectionInfo {
  overlay::NodeId chosen = overlay::kInvalidNode;
  double landmark_distance = 0.0;  // landmark-space distance to chosen
  std::size_t probes = 0;
  std::size_t candidates = 0;
  bool fell_back_to_random = false;
};

class SoftStateSelector : public overlay::RepresentativeSelector {
 public:
  /// `clock` may be null (static experiments run at t=0).
  SoftStateSelector(overlay::EcanNetwork& ecan, softstate::MapService& maps,
                    net::RttOracle& oracle, const VectorStore& vectors,
                    std::size_t rtt_budget, util::Rng rng,
                    const sim::EventQueue* clock = nullptr)
      : ecan_(&ecan),
        maps_(&maps),
        oracle_(&oracle),
        vectors_(&vectors),
        rtt_budget_(rtt_budget),
        rng_(rng),
        clock_(clock) {}

  overlay::NodeId select(overlay::NodeId for_node, int level,
                         const geom::Zone& cell,
                         std::span<const overlay::NodeId> members) override;

  const SelectionInfo& last_selection() const { return last_; }
  void set_rtt_budget(std::size_t budget) { rtt_budget_ = budget; }
  std::size_t rtt_budget() const { return rtt_budget_; }

 protected:
  /// Score to minimize; the base class uses the probed RTT alone.
  virtual double score(const softstate::MapEntry& entry, double rtt_ms) const {
    (void)entry;
    return rtt_ms;
  }

  sim::Time now() const { return clock_ == nullptr ? 0.0 : clock_->now(); }

  overlay::EcanNetwork* ecan_;
  softstate::MapService* maps_;
  net::RttOracle* oracle_;
  const VectorStore* vectors_;
  std::size_t rtt_budget_;
  util::Rng rng_;
  const sim::EventQueue* clock_;
  SelectionInfo last_;
};

/// Section 6: rank candidates by RTT inflated by their load; a node at
/// full load looks (1 + load_weight) times farther than it is.
class LoadAwareSelector final : public SoftStateSelector {
 public:
  LoadAwareSelector(overlay::EcanNetwork& ecan, softstate::MapService& maps,
                    net::RttOracle& oracle, const VectorStore& vectors,
                    std::size_t rtt_budget, double load_weight,
                    util::Rng rng, const sim::EventQueue* clock = nullptr)
      : SoftStateSelector(ecan, maps, oracle, vectors, rtt_budget, rng,
                          clock),
        load_weight_(load_weight) {}

 protected:
  double score(const softstate::MapEntry& entry, double rtt_ms) const override {
    const double utilization =
        entry.capacity > 0.0 ? entry.load / entry.capacity : 1.0;
    return rtt_ms * (1.0 + load_weight_ * utilization);
  }

 private:
  double load_weight_;
};

}  // namespace topo::core
