// The proximity-neighbor-selection strategies the paper compares
// (Section 5.3), as RepresentativeSelector implementations:
//
//   * RandomSelector       — "routing neighbor is selected randomly", the
//                            baseline of Figures 14-15;
//   * OracleSelector       — "the optimal value corresponds to the results
//                            when the number of RTT measurements is
//                            infinity": the physically closest member;
//   * SoftStateSelector    — the paper's system: consult the global
//                            soft-state map keyed by the node's landmark
//                            number, RTT-probe the top candidates, keep the
//                            closest. Budget 1 degenerates to landmark
//                            clustering alone;
//   * LoadAwareSelector    — Section 6: trade network distance against
//                            published load/capacity.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/rtt_oracle.hpp"
#include "overlay/selector.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_plane.hpp"
#include "softstate/map_service.hpp"
#include "util/rng.hpp"

namespace topo::core {

/// Landmark vectors of every live node, measured at join time and shared
/// by the selectors that model information a node legitimately has.
using VectorStore =
    std::unordered_map<overlay::NodeId, proximity::LandmarkVector>;

class RandomSelector final : public overlay::RepresentativeSelector {
 public:
  explicit RandomSelector(util::Rng rng) : rng_(rng) {}

  overlay::NodeId select(overlay::NodeId for_node, int level,
                         const geom::Zone& cell,
                         std::span<const overlay::NodeId> members) override;

 private:
  util::Rng rng_;
};

class OracleSelector final : public overlay::RepresentativeSelector {
 public:
  OracleSelector(const overlay::CanNetwork& can, net::RttOracle& oracle)
      : can_(&can), oracle_(&oracle) {}

  overlay::NodeId select(overlay::NodeId for_node, int level,
                         const geom::Zone& cell,
                         std::span<const overlay::NodeId> members) override;

 private:
  const overlay::CanNetwork* can_;
  net::RttOracle* oracle_;
};

/// Bookkeeping of the most recent soft-state selection, used by the facade
/// to parameterize the follow-up subscription.
struct SelectionInfo {
  overlay::NodeId chosen = overlay::kInvalidNode;
  double landmark_distance = 0.0;  // landmark-space distance to chosen
  std::size_t probes = 0;
  std::size_t candidates = 0;
  bool fell_back_to_random = false;
  /// The map was unreachable under faults (fetch blocked, or every
  /// candidate unreachable), so the selector degraded to landmark-only
  /// pre-selection instead of a blind random pick.
  bool fell_back_to_landmark = false;
};

/// Degradation-ladder accounting across a selector's lifetime: how many
/// selections were map-backed vs. degraded, and to which rung.
struct SelectorFallbackStats {
  std::uint64_t selections = 0;
  std::uint64_t map_backed = 0;
  /// Landmark-only pre-selection (map unreachable under faults).
  std::uint64_t landmark_fallbacks = 0;
  /// Blind random pick (no landmark information either).
  std::uint64_t random_fallbacks = 0;
};

/// Wall-clock split of a selection: fetching candidates from the soft
/// state vs. ranking/probing them. Accumulated only while stage timing is
/// enabled (the join bench's per-stage breakdown); off by default.
struct SelectorStageTiming {
  double map_fetch_ms = 0.0;
  double rank_ms = 0.0;
};

class SoftStateSelector : public overlay::RepresentativeSelector {
 public:
  /// `clock` may be null (static experiments run at t=0).
  SoftStateSelector(overlay::EcanNetwork& ecan, softstate::MapService& maps,
                    net::RttOracle& oracle, const VectorStore& vectors,
                    std::size_t rtt_budget, util::Rng rng,
                    const sim::EventQueue* clock = nullptr)
      : ecan_(&ecan),
        maps_(&maps),
        oracle_(&oracle),
        vectors_(&vectors),
        rtt_budget_(rtt_budget),
        rng_(rng),
        clock_(clock) {}

  overlay::NodeId select(overlay::NodeId for_node, int level,
                         const geom::Zone& cell,
                         std::span<const overlay::NodeId> members) override;

  const SelectionInfo& last_selection() const { return last_; }
  void set_rtt_budget(std::size_t budget) { rtt_budget_ = budget; }
  std::size_t rtt_budget() const { return rtt_budget_; }

  /// Installs the shared fault plane: candidates on crashed/partitioned
  /// hosts are treated as unreachable (crashed ones are lazily reported
  /// dead), and a fault-blocked map fetch degrades to landmark-only
  /// pre-selection instead of a random pick.
  void set_fault_plane(const sim::FaultPlane* plane) { faults_ = plane; }

  const SelectorFallbackStats& fallback_stats() const {
    return fallback_stats_;
  }
  void reset_fallback_stats() { fallback_stats_ = {}; }

  /// Per-stage wall-clock accounting (fetch vs. rank); the timing calls
  /// only run while enabled, so steady-state selection stays clock-free.
  void set_stage_timing(bool on) { stage_timing_enabled_ = on; }
  const SelectorStageTiming& stage_timing() const { return stage_timing_; }
  void reset_stage_timing() { stage_timing_ = {}; }

 protected:
  /// Score to minimize; the base class uses the probed RTT alone.
  virtual double score(const softstate::MapEntry& entry, double rtt_ms) const {
    (void)entry;
    return rtt_ms;
  }

  sim::Time now() const { return clock_ == nullptr ? 0.0 : clock_->now(); }

  /// The paper's own baseline, used as the degraded mode: the member
  /// whose landmark vector is closest to `my_vector` (no map, no probes).
  overlay::NodeId landmark_only_pick(
      overlay::NodeId for_node, const proximity::LandmarkVector& my_vector,
      std::span<const overlay::NodeId> members) const;

  overlay::EcanNetwork* ecan_;
  softstate::MapService* maps_;
  net::RttOracle* oracle_;
  const VectorStore* vectors_;
  std::size_t rtt_budget_;
  util::Rng rng_;
  const sim::EventQueue* clock_;
  const sim::FaultPlane* faults_ = nullptr;
  SelectionInfo last_;
  SelectorFallbackStats fallback_stats_;
  SelectorStageTiming stage_timing_;
  bool stage_timing_enabled_ = false;
  /// Reused per-selection scratch (cell coordinates + candidate buffer):
  /// steady-state selections allocate nothing once these have warmed up.
  std::vector<std::uint32_t> cell_coords_scratch_;
  std::vector<softstate::MapEntry> entries_scratch_;
};

/// Section 6: rank candidates by RTT inflated by their load; a node at
/// full load looks (1 + load_weight) times farther than it is.
class LoadAwareSelector final : public SoftStateSelector {
 public:
  LoadAwareSelector(overlay::EcanNetwork& ecan, softstate::MapService& maps,
                    net::RttOracle& oracle, const VectorStore& vectors,
                    std::size_t rtt_budget, double load_weight,
                    util::Rng rng, const sim::EventQueue* clock = nullptr)
      : SoftStateSelector(ecan, maps, oracle, vectors, rtt_budget, rng,
                          clock),
        load_weight_(load_weight) {}

 protected:
  double score(const softstate::MapEntry& entry, double rtt_ms) const override {
    const double utilization =
        entry.capacity > 0.0 ? entry.load / entry.capacity : 1.0;
    return rtt_ms * (1.0 + load_weight_ * utilization);
  }

 private:
  double load_weight_;
};

}  // namespace topo::core
