// PastrySoftStateOverlay — dynamic facade for the Pastry port (§5.1):
// join / publish-into-prefix-maps / slot selection / republish / TTL /
// reactive repair, mirroring SoftStateOverlay (eCAN) and
// ChordSoftStateOverlay.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/pastry_selectors.hpp"
#include "sim/event_queue.hpp"

namespace topo::core {

struct PastrySystemConfig {
  int id_bits = 32;
  int digit_bits = 4;
  int leaf_set_half = 4;
  int landmark_count = 15;
  proximity::LandmarkConfig landmark;
  std::size_t rtt_budget = 10;
  sim::Time ttl_ms = 60'000.0;
  sim::Time republish_interval_ms = 30'000.0;
  std::uint64_t seed = 42;
};

struct PastrySystemStats {
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t crashes = 0;
  std::uint64_t republishes = 0;
};

class PastrySoftStateOverlay {
 public:
  PastrySoftStateOverlay(const net::Topology& topology,
                         PastrySystemConfig config);

  PastrySoftStateOverlay(const PastrySoftStateOverlay&) = delete;
  PastrySoftStateOverlay& operator=(const PastrySoftStateOverlay&) = delete;

  overlay::NodeId join(net::HostId host);
  void leave(overlay::NodeId id);
  void crash(overlay::NodeId id);

  overlay::RouteResult lookup(overlay::NodeId from, overlay::PastryId key);

  void run_for(sim::Time ms);
  void republish_now(overlay::NodeId id);

  overlay::PastryNetwork& pastry() { return pastry_; }
  softstate::PastryMapService& maps() { return *maps_; }
  net::RttOracle& oracle() { return oracle_; }
  const proximity::LandmarkSet& landmarks() const { return landmarks_; }
  const PastryVectorStore& vectors() const { return vectors_; }
  const PastrySystemStats& stats() const { return stats_; }

 private:
  void schedule_republish(overlay::NodeId id);

  PastrySystemConfig config_;
  util::Rng rng_;
  net::RttOracle oracle_;
  proximity::LandmarkSet landmarks_;
  overlay::PastryNetwork pastry_;
  std::unique_ptr<softstate::PastryMapService> maps_;
  std::unique_ptr<SoftStateSlotSelector> selector_;
  sim::EventQueue events_;
  PastryVectorStore vectors_;
  PastrySystemStats stats_;
};

}  // namespace topo::core
