// SoftStateOverlay — the public facade tying the whole system together:
// the paper's topology-aware overlay with global soft-state.
//
// A node joining the system:
//   1. measures its RTT to the landmark set (landmark vector),
//   2. joins the eCAN at a uniformly random point (no geographic layout —
//      the paper's key departure from Topologically-Aware CAN),
//   3. publishes its proximity record into the map of every high-order
//      zone it belongs to, keyed by its landmark number,
//   4. selects its expressway representatives by consulting those maps and
//      RTT-probing the top candidates (proximity-neighbor selection),
//   5. subscribes to the consulted maps so it is notified when a closer
//      candidate appears, its representative departs, or the
//      representative's load crosses a threshold (Section 6).
//
// Maintenance is soft-state: records expire unless republished; departed
// nodes are scrubbed lazily when handed out and found unreachable; routing
// repairs broken expressway entries on the spot via the same maps.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/selectors.hpp"
#include "net/rtt_oracle.hpp"
#include "net/graph.hpp"
#include "net/traffic_plane.hpp"
#include "overlay/ecan.hpp"
#include "proximity/landmarks.hpp"
#include "pubsub/pubsub.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_plane.hpp"
#include "softstate/map_service.hpp"
#include "util/retry_policy.hpp"
#include "util/rng.hpp"

namespace topo::core {

struct SystemConfig {
  std::size_t dims = 2;
  int landmark_count = 15;
  proximity::LandmarkConfig landmark;
  softstate::MapConfig map;
  std::size_t rtt_budget = 10;

  /// Soft-state refresh: every node republishes its record at this period;
  /// must be < map.ttl_ms or records decay between refreshes.
  sim::Time republish_interval_ms = 30'000.0;

  /// When false, join() does not start the node's republish chain — an
  /// external driver (sim::LifecycleEngine via core::OverlayLifecycle)
  /// owns the refresh timers instead, with per-period jitter.
  bool auto_republish = true;

  bool subscribe_on_join = true;
  double closer_margin = 0.95;

  /// > 0 enables the Section 6 load-aware selector with this weight.
  double load_weight = 0.0;
  /// Load threshold for QoS subscriptions (fraction of capacity).
  double load_threshold = std::numeric_limits<double>::infinity();

  int max_level = 14;
  std::uint64_t seed = 42;

  /// Unified fault plane (message loss, crash-stops, stub partitions,
  /// extra delay). All-zero by default: the plane stays inactive and every
  /// code path is bit-identical to the fault-free system. `fault.seed` of 0
  /// derives from `seed` so sweeps stay deterministic per trial.
  sim::FaultConfig fault;

  /// Traffic plane (link capacities, queuing delay, congestion drops).
  /// Disabled by default: the plane is never consulted and every code
  /// path — including every RTT the oracle reports — is bit-identical to
  /// the load-free system. `traffic.seed` of 0 derives from `seed`.
  net::TrafficConfig traffic;

  /// Bounded retry with exponential backoff for lost publish/lookup
  /// messages, driven by the facade's event queue. Disabled by default
  /// (max_attempts = 1).
  util::RetryPolicy retry;

  /// Latency backend for the oracle (see net/rtt_engine.hpp). Defaults to
  /// the RTT_ENGINE env var; kAuto picks the hierarchical engine whenever
  /// the topology carries transit-stub metadata. Results are bit-identical
  /// either way — this only trades precompute for per-query cost.
  net::RttEngineKind rtt_engine = net::rtt_engine_kind_from_env();
};

struct SystemStats {
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t crashes = 0;
  std::uint64_t reselections = 0;  // pub/sub-driven entry refreshes
  std::uint64_t republishes = 0;
};

/// Per-stage wall-clock breakdown of one join_many wave. The probe and
/// encode stages are the hoisted bulk microkernels; the remaining stages
/// accumulate across the per-node protocol loop. map_fetch/rank come from
/// the selector's stage timing (enabled for the duration of the wave).
struct JoinWaveStats {
  std::size_t wave_size = 0;
  /// False when measurement noise forced the scalar per-node measurement
  /// fallback (bulk probing would permute the oracle's noise draws).
  bool bulk_measured = false;
  double probe_ms = 0.0;      // landmark-vector measurement
  double encode_ms = 0.0;     // bulk Hilbert encode of landmark numbers
  double split_ms = 0.0;      // eCAN join, zone split, state migration
  double publish_ms = 0.0;    // soft-state publishes
  double select_ms = 0.0;     // table builds (includes fetch + rank below)
  double map_fetch_ms = 0.0;  // selector: candidate fetch from the maps
  double rank_ms = 0.0;       // selector: ranking + RTT probing
  double subscribe_ms = 0.0;  // pub/sub subscriptions
};

class SoftStateOverlay {
 public:
  SoftStateOverlay(const net::Topology& topology, SystemConfig config);

  SoftStateOverlay(const SoftStateOverlay&) = delete;
  SoftStateOverlay& operator=(const SoftStateOverlay&) = delete;

  // -- Membership --------------------------------------------------------

  /// Full join protocol (steps 1-5 above). Returns the overlay node id.
  overlay::NodeId join(net::HostId host);

  /// Batched join: processes a whole wave of joiners through the bulk
  /// microkernels — one RTT-engine walk per landmark for the wave's
  /// vectors (instead of one per host × landmark), one bulk Hilbert
  /// encode for the wave's landmark numbers, and cached-number publishes
  /// — then runs the per-node protocol (eCAN join, publish, selection,
  /// subscription) in wave order. Only the pure stages are hoisted, so
  /// the final overlay state (zones, tables, map contents, subscriptions,
  /// stats) is identical to calling join(hosts[0]), join(hosts[1]), ...
  /// in sequence. With measurement noise enabled the measurement stage
  /// falls back to the scalar per-node loop to keep the oracle's noise
  /// draws in scalar order. `wave_stats` (optional) receives the
  /// per-stage wall-clock breakdown.
  std::vector<overlay::NodeId> join_many(std::span<const net::HostId> hosts,
                                         JoinWaveStats* wave_stats = nullptr);

  /// Graceful departure: proactive map update, watcher notification, state
  /// handoff, zone merge.
  void leave(overlay::NodeId id);

  /// Ungraceful departure: the node vanishes. Its hosted map pieces are
  /// lost (they decay back via republish), records pointing at it are
  /// scrubbed lazily, broken expressway entries repair on first use.
  void crash(overlay::NodeId id);

  // -- Use ---------------------------------------------------------------

  /// DHT lookup with reactive repair of broken expressway entries.
  overlay::RouteResult lookup(overlay::NodeId from, const geom::Point& key);

  // -- Application storage: the "storage space that maps keys to values"
  //    the DHT exists for. Objects live at the key's owner and follow zone
  //    ownership through joins and graceful leaves; a crash loses the
  //    crashed node's objects (no replication — the paper's systems layer
  //    its own replication on top).

  /// Stores `value` under `key` at the key's owner; returns the routed
  /// path (path.back() is the storing node).
  overlay::RouteResult put(overlay::NodeId from, const geom::Point& key,
                           std::string value);

  /// Fetches the value under `key`, if present. `route` (optional)
  /// receives the lookup path.
  std::optional<std::string> get(overlay::NodeId from,
                                 const geom::Point& key,
                                 overlay::RouteResult* route = nullptr);

  /// Objects currently stored on a node / in total.
  std::size_t object_count(overlay::NodeId node) const;
  std::size_t total_objects() const;

  /// Advances the virtual clock: republish timers and TTL expiry run.
  void run_for(sim::Time ms);

  /// Section 6: install a per-node load probe; the value is published with
  /// each republish and drives load-threshold subscriptions.
  using LoadProbe = std::function<double(overlay::NodeId)>;
  void set_load_probe(LoadProbe probe) { load_probe_ = std::move(probe); }
  void set_capacity(overlay::NodeId id, double capacity);

  /// Force an immediate republish (tests / examples).
  void republish_now(overlay::NodeId id);

  /// The load published with `id`'s record: the installed probe if any,
  /// else the traffic plane's utilization of the node's host (max over
  /// its attached links) while the plane is active, else 0. Used by join
  /// and republish alike, so maps carry real load from the first publish.
  double node_load(overlay::NodeId id) const;

  // -- Component access ---------------------------------------------------

  overlay::EcanNetwork& ecan() { return ecan_; }
  const overlay::EcanNetwork& ecan() const { return ecan_; }
  softstate::MapService& maps() { return *maps_; }
  pubsub::PubSubService& pubsub() { return *pubsub_; }
  net::RttOracle& oracle() { return oracle_; }
  const proximity::LandmarkSet& landmarks() const { return landmarks_; }
  sim::EventQueue& events() { return events_; }
  /// The shared fault plane: crash/restart hosts and partition stubs here;
  /// every map, pub/sub, and data message consults it.
  sim::FaultPlane& faults() { return *faults_; }
  const sim::FaultPlane& faults() const { return *faults_; }
  /// The shared traffic plane: offer background flows here; while active
  /// it queues and drops every map, pub/sub, and data message, and its
  /// per-host utilization is the default published load.
  net::TrafficPlane& traffic() { return *traffic_; }
  const net::TrafficPlane& traffic() const { return *traffic_; }
  SoftStateSelector& selector() { return *selector_; }
  const VectorStore& vectors() const { return vectors_; }
  const SystemConfig& config() const { return config_; }
  const SystemStats& stats() const { return stats_; }

 private:
  void subscribe_entries(overlay::NodeId id);
  void unsubscribe_all(overlay::NodeId id);
  void on_notification(overlay::NodeId subscriber,
                       const pubsub::Notification& notification);
  void schedule_republish(overlay::NodeId id);

  SystemConfig config_;
  util::Rng rng_;
  net::RttOracle oracle_;
  proximity::LandmarkSet landmarks_;
  overlay::EcanNetwork ecan_;
  std::unique_ptr<sim::FaultPlane> faults_;
  std::unique_ptr<net::TrafficPlane> traffic_;
  std::unique_ptr<softstate::MapService> maps_;
  std::unique_ptr<pubsub::PubSubService> pubsub_;
  sim::EventQueue events_;
  VectorStore vectors_;
  std::unordered_map<overlay::NodeId, double> capacities_;
  std::unique_ptr<SoftStateSelector> selector_;
  LoadProbe load_probe_;

  struct SubRecord {
    pubsub::SubscriptionId id = 0;
    int level = 0;
    std::size_t dim = 0;
    int dir = 0;
  };
  std::unordered_map<overlay::NodeId, std::vector<SubRecord>> subs_;

  struct StoredObject {
    geom::Point key;
    std::string value;
  };
  std::unordered_map<overlay::NodeId, std::vector<StoredObject>> objects_;

  /// Wave arenas for join_many: vectors, landmark numbers, quantized
  /// coordinates, and the measurement column, all reused across waves so a
  /// steady stream of join waves allocates nothing once warmed up.
  std::vector<proximity::LandmarkVector> wave_vectors_;
  std::vector<util::BigUint> wave_numbers_;
  std::vector<std::uint32_t> wave_coords_;
  std::vector<double> wave_column_;

  /// Moves objects to the current owner of their key (zone changes).
  void migrate_objects_from(overlay::NodeId node);
  void migrate_objects_after_split(overlay::NodeId joined,
                                   overlay::NodeId split_peer);

  SystemStats stats_;
};

}  // namespace topo::core
