#include "core/chord_selectors.hpp"

#include <limits>

namespace topo::core {

overlay::NodeId OracleFingerSelector::select(
    overlay::NodeId for_node, int,
    std::span<const overlay::NodeId> candidates) {
  TO_EXPECTS(!candidates.empty());
  const net::HostId from = chord_->node(for_node).host;
  overlay::NodeId best = overlay::kInvalidNode;
  double best_latency = std::numeric_limits<double>::infinity();
  for (const overlay::NodeId candidate : candidates) {
    const double latency =
        oracle_->latency_ms(from, chord_->node(candidate).host);
    if (latency < best_latency) {
      best_latency = latency;
      best = candidate;
    }
  }
  return best;
}

overlay::NodeId SoftStateFingerSelector::select(
    overlay::NodeId for_node, int finger_index,
    std::span<const overlay::NodeId> candidates) {
  TO_EXPECTS(!candidates.empty());
  (void)finger_index;

  // Refresh the cached map lookup when switching to a new node's table.
  if (cached_for_ != for_node) {
    cached_.clear();
    cached_for_ = for_node;
    probes_spent_ = 0;
    const auto vector_it = vectors_->find(for_node);
    if (vector_it != vectors_->end()) {
      ++map_lookups_;
      softstate::ChordLookupMeta meta;
      for (auto& entry :
           maps_->lookup(for_node, vector_it->second, 0.0, &meta)) {
        if (!chord_->alive(entry.node)) {
          maps_->report_dead(meta.owner, entry.node);  // lazy deletion
          continue;
        }
        cached_.push_back(CachedCandidate{std::move(entry), -1.0});
      }
    }
  }

  // Candidates from the map that fall in this finger's interval, in
  // landmark-distance order (the cache is already sorted); probe each at
  // most once, sharing the per-table budget.
  overlay::NodeId best = overlay::kInvalidNode;
  double best_rtt = std::numeric_limits<double>::infinity();
  const net::HostId from = chord_->node(for_node).host;
  const auto [lo, hi] = chord_->finger_interval(for_node, finger_index);
  for (CachedCandidate& candidate : cached_) {
    if (!chord_->alive(candidate.entry.node)) continue;
    // Interval membership is decided by the candidate's actual ring id
    // (entry.key is where the record is *stored*, not where the node is).
    if (!chord_->in_arc(chord_->node(candidate.entry.node).id, lo, hi))
      continue;
    if (candidate.rtt_ms < 0.0) {
      if (probes_spent_ >= rtt_budget_) continue;
      candidate.rtt_ms = oracle_->probe_rtt(from, candidate.entry.host);
      ++probes_spent_;
    }
    if (candidate.rtt_ms < best_rtt) {
      best_rtt = candidate.rtt_ms;
      best = candidate.entry.node;
    }
  }

  if (best == overlay::kInvalidNode) {
    // No known-close candidate in this interval: classic Chord choice.
    return candidates.front();
  }
  return best;
}

}  // namespace topo::core
