// Experiment parameters (paper Table 2) and system-wide configuration.
//
// The OCR of the paper dropped the numeric values of Table 2; the defaults
// and ranges below are reconstructed from the surviving prose (topologies
// of ~10,000 hosts, "randomly choose [15] nodes ... as the landmarks",
// figures sweeping two landmark counts plus an optimal line, RTT budgets
// swept from 1 to a few tens, "measurements are made for twice the number
// of nodes in the overlay") and recorded here as the single source of
// truth for every bench.
#pragma once

#include <cstddef>

namespace topo::core {

struct TableTwoParams {
  // "# nodes"        default / range
  int overlay_nodes = 1024;            // swept 256 .. 8192
  // "# landmarks"
  int landmarks = 15;                  // swept 5 .. 30
  // "# RTTs"
  int rtt_probes = 10;                 // swept 1 .. 30
  // "Map condense rate"
  double condense_rate = 1.0;          // swept over Fig 16

  // Fixed by prose:
  std::size_t overlay_dims = 2;        // "a [2]-dimensional ecan"
  int queries_factor = 2;              // "twice the number of nodes"
};

}  // namespace topo::core
