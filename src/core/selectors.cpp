#include "core/selectors.hpp"

#include <chrono>
#include <limits>

#include "geom/zone.hpp"

namespace topo::core {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

overlay::NodeId RandomSelector::select(
    overlay::NodeId for_node, int level, const geom::Zone& cell,
    std::span<const overlay::NodeId> members) {
  (void)for_node;
  (void)level;
  (void)cell;
  TO_EXPECTS(!members.empty());
  return members[rng_.next_u64(members.size())];
}

overlay::NodeId OracleSelector::select(
    overlay::NodeId for_node, int level, const geom::Zone& cell,
    std::span<const overlay::NodeId> members) {
  (void)level;
  (void)cell;
  TO_EXPECTS(!members.empty());
  const net::HostId from = can_->node(for_node).host;
  overlay::NodeId best = overlay::kInvalidNode;
  double best_latency = std::numeric_limits<double>::infinity();
  for (const overlay::NodeId member : members) {
    const double latency = oracle_->latency_ms(from, can_->node(member).host);
    if (latency < best_latency) {
      best_latency = latency;
      best = member;
    }
  }
  return best;
}

overlay::NodeId SoftStateSelector::landmark_only_pick(
    overlay::NodeId for_node, const proximity::LandmarkVector& my_vector,
    std::span<const overlay::NodeId> members) const {
  overlay::NodeId best = overlay::kInvalidNode;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const overlay::NodeId member : members) {
    if (member == for_node) continue;
    const auto it = vectors_->find(member);
    if (it == vectors_->end()) continue;
    // Comparison-only: squared distance picks the same argmin without the
    // per-member sqrt (callers that report a distance re-derive it).
    const double distance = proximity::squared_distance(it->second, my_vector);
    if (distance < best_distance ||
        (distance == best_distance && member < best)) {
      best_distance = distance;
      best = member;
    }
  }
  return best;
}

overlay::NodeId SoftStateSelector::select(
    overlay::NodeId for_node, int level, const geom::Zone& cell,
    std::span<const overlay::NodeId> members) {
  TO_EXPECTS(!members.empty());
  last_ = SelectionInfo{};
  ++fallback_stats_.selections;

  const auto vector_it = vectors_->find(for_node);
  if (vector_it == vectors_->end()) {
    // Node has not measured landmarks (bootstrap): random fallback.
    last_.fell_back_to_random = true;
    ++fallback_stats_.random_fallbacks;
    last_.chosen = members[rng_.next_u64(members.size())];
    return last_.chosen;
  }
  const proximity::LandmarkVector& my_vector = vector_it->second;

  // Cell coordinates from the cell zone's low corner.
  cell_coords_scratch_.resize(ecan_->dims());
  for (std::size_t d = 0; d < ecan_->dims(); ++d)
    cell_coords_scratch_[d] = geom::grid_coord(cell.lo(d), level);

  // Allocation-free fetch: the candidate buffer and its elements' heap
  // blocks are reused across every selection this selector runs.
  const bool timed = stage_timing_enabled_;
  const auto fetch_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
  softstate::LookupResult meta;
  const std::size_t entry_count = maps_->lookup_entries_into(
      for_node, my_vector, level, cell_coords_scratch_, now(),
      entries_scratch_, &meta);
  const std::span<const softstate::MapEntry> entries(entries_scratch_.data(),
                                                     entry_count);
  last_.candidates = entries.size();
  const auto rank_start = timed ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
  if (timed) stage_timing_.map_fetch_ms += elapsed_ms(fetch_start);

  const net::HostId my_host = ecan_->node(for_node).host;
  const bool gated = faults_ != nullptr && faults_->active();
  bool fault_starved = meta.fault_blocked;
  overlay::NodeId best = overlay::kInvalidNode;
  double best_score = std::numeric_limits<double>::infinity();
  double best_distance = 0.0;
  for (const softstate::MapEntry& entry : entries) {
    if (last_.probes >= rtt_budget_) break;
    if (!ecan_->alive(entry.node)) {
      // Lazy deletion: found un-reachable after being handed out.
      maps_->report_dead(meta.owner, entry.node, now(), for_node);
      continue;
    }
    if (gated && !faults_->reachable(my_host, entry.host)) {
      // The probe cannot get through right now. A crash-stopped candidate
      // is indistinguishable from a departed one — report it dead so the
      // map heals lazily; a partitioned one is left alone (the partition
      // heals, eviction would only blank the map).
      fault_starved = true;
      if (faults_->host_crashed(entry.host))
        maps_->report_dead(meta.owner, entry.node, now(), for_node);
      continue;
    }
    const double rtt =
        oracle_->probe_rtt(ecan_->node(for_node).host, entry.host);
    ++last_.probes;
    const double s = score(entry, rtt);
    if (s < best_score) {
      best_score = s;
      best = entry.node;
      best_distance = proximity::vector_distance(entry.vector, my_vector);
    }
  }

  if (best == overlay::kInvalidNode && fault_starved) {
    // Graceful degradation: the map is unreachable under faults, but the
    // node still knows its own landmark vector and its zone members —
    // fall back to pure landmark-clustering pre-selection (the paper's
    // baseline) rather than a blind random pick. The join proceeds.
    best = landmark_only_pick(for_node, my_vector, members);
    if (best != overlay::kInvalidNode) {
      last_.fell_back_to_landmark = true;
      ++fallback_stats_.landmark_fallbacks;
      last_.chosen = best;
      last_.landmark_distance =
          proximity::vector_distance(vectors_->at(best), my_vector);
      if (timed) stage_timing_.rank_ms += elapsed_ms(rank_start);
      return best;
    }
  }
  if (best == overlay::kInvalidNode) {
    // Empty or fully-stale map piece: the node has no information and
    // falls back to a random member, exactly like the baseline system.
    last_.fell_back_to_random = true;
    ++fallback_stats_.random_fallbacks;
    best = members[rng_.next_u64(members.size())];
    best_distance = std::numeric_limits<double>::infinity();
  } else {
    ++fallback_stats_.map_backed;
  }
  last_.chosen = best;
  last_.landmark_distance = best_distance;
  if (timed) stage_timing_.rank_ms += elapsed_ms(rank_start);
  return best;
}

}  // namespace topo::core
