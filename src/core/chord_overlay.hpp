// ChordSoftStateOverlay — the dynamic facade for the Chord port
// (Appendix): the same join / republish / TTL / reactive-repair lifecycle
// SoftStateOverlay gives eCAN, over the landmark-number-keyed ring map.
//
// Join: measure landmarks, take a random ring id, migrate the records the
// new id becomes responsible for, publish, select fingers through the map
// with RTT probes. Leave: scrub proactively and hand stored records to
// the successor. Crash: hosted records vanish; everything pointing at the
// dead node repairs lazily or decays via TTL.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/chord_selectors.hpp"
#include "sim/event_queue.hpp"

namespace topo::core {

struct ChordSystemConfig {
  int id_bits = 30;
  int landmark_count = 15;
  proximity::LandmarkConfig landmark;
  std::size_t rtt_budget = 16;
  sim::Time ttl_ms = 60'000.0;
  sim::Time republish_interval_ms = 30'000.0;
  std::uint64_t seed = 42;
};

struct ChordSystemStats {
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t crashes = 0;
  std::uint64_t republishes = 0;
};

class ChordSoftStateOverlay {
 public:
  ChordSoftStateOverlay(const net::Topology& topology,
                        ChordSystemConfig config);

  ChordSoftStateOverlay(const ChordSoftStateOverlay&) = delete;
  ChordSoftStateOverlay& operator=(const ChordSoftStateOverlay&) = delete;

  overlay::NodeId join(net::HostId host);
  void leave(overlay::NodeId id);
  void crash(overlay::NodeId id);

  /// Key lookup with reactive finger repair.
  overlay::RouteResult lookup(overlay::NodeId from, overlay::ChordId key);

  void run_for(sim::Time ms);
  void republish_now(overlay::NodeId id);

  overlay::ChordNetwork& chord() { return chord_; }
  softstate::ChordMapService& maps() { return *maps_; }
  net::RttOracle& oracle() { return oracle_; }
  const proximity::LandmarkSet& landmarks() const { return landmarks_; }
  sim::EventQueue& events() { return events_; }
  const ChordVectorStore& vectors() const { return vectors_; }
  const ChordSystemStats& stats() const { return stats_; }

 private:
  void schedule_republish(overlay::NodeId id);

  ChordSystemConfig config_;
  util::Rng rng_;
  net::RttOracle oracle_;
  proximity::LandmarkSet landmarks_;
  overlay::ChordNetwork chord_;
  std::unique_ptr<softstate::ChordMapService> maps_;
  std::unique_ptr<SoftStateFingerSelector> selector_;
  sim::EventQueue events_;
  ChordVectorStore vectors_;
  ChordSystemStats stats_;
};

}  // namespace topo::core
