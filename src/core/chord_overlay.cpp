#include "core/chord_overlay.hpp"

namespace topo::core {

ChordSoftStateOverlay::ChordSoftStateOverlay(const net::Topology& topology,
                                             ChordSystemConfig config)
    : config_(config),
      rng_(config.seed),
      oracle_(topology),
      landmarks_(proximity::LandmarkSet::choose_random(
          topology, config.landmark_count, rng_, config.landmark)),
      chord_(config.id_bits) {
  oracle_.warm(landmarks_.hosts());
  softstate::ChordMapConfig map_config;
  map_config.ttl_ms = config_.ttl_ms;
  maps_ = std::make_unique<softstate::ChordMapService>(chord_, landmarks_,
                                                       map_config);
  selector_ = std::make_unique<SoftStateFingerSelector>(
      chord_, *maps_, oracle_, vectors_, config_.rtt_budget, rng_.fork());
}

overlay::NodeId ChordSoftStateOverlay::join(net::HostId host) {
  // 1. Landmark measurement.
  const proximity::LandmarkVector vector = landmarks_.measure(oracle_, host);

  // 2. Random ring id (no geographic constraint, as for eCAN).
  const overlay::NodeId id = chord_.join_random(host, rng_);
  vectors_[id] = vector;

  // 3. The new node is now the successor for part of its old successor's
  //    range: that node re-homes its store (records that still belong to
  //    it stay put).
  const overlay::NodeId successor = chord_.successor_node(id);
  if (successor != id) maps_->rehome_from(successor);

  // 4. Publish and select fingers through the map.
  maps_->publish(id, vector, events_.now());
  chord_.build_fingers(id, *selector_);

  schedule_republish(id);
  ++stats_.joins;
  return id;
}

void ChordSoftStateOverlay::leave(overlay::NodeId id) {
  TO_EXPECTS(chord_.alive(id));
  // Proactive update: scrub own records, hand hosted records over.
  maps_->remove_everywhere(id);
  const overlay::NodeId successor = chord_.successor_node(id);
  chord_.leave(id);
  vectors_.erase(id);
  if (successor != id && chord_.alive(successor))
    maps_->rehome_from(id);
  else
    maps_->drop_store(id);  // last node out: nowhere to hand the state
  ++stats_.leaves;
}

void ChordSoftStateOverlay::crash(overlay::NodeId id) {
  TO_EXPECTS(chord_.alive(id));
  chord_.leave(id);
  vectors_.erase(id);
  // Hosted records die with the node (they decay back via republish);
  // records pointing at the dead node are scrubbed lazily by the selector
  // and its fingers repair on first use.
  maps_->drop_store(id);
  ++stats_.crashes;
}

overlay::RouteResult ChordSoftStateOverlay::lookup(overlay::NodeId from,
                                                   overlay::ChordId key) {
  return chord_.route_repair(from, key, *selector_);
}

void ChordSoftStateOverlay::run_for(sim::Time ms) {
  events_.run_until(events_.now() + ms);
  maps_->expire_before(events_.now());
}

void ChordSoftStateOverlay::republish_now(overlay::NodeId id) {
  if (!chord_.alive(id)) return;
  const auto it = vectors_.find(id);
  if (it == vectors_.end()) return;
  maps_->publish(id, it->second, events_.now());
  ++stats_.republishes;
}

void ChordSoftStateOverlay::schedule_republish(overlay::NodeId id) {
  events_.schedule_in(config_.republish_interval_ms, [this, id] {
    if (!chord_.alive(id)) return;
    republish_now(id);
    schedule_republish(id);
  });
}

}  // namespace topo::core
