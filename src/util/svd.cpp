#include "util/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace topo::util {

Matrix Matrix::multiply(const Matrix& other) const {
  TO_EXPECTS(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j)
        out.at(i, j) += aik * other.at(k, j);
    }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  return out;
}

SvdResult svd(const Matrix& a, int max_sweeps) {
  TO_EXPECTS(a.rows() >= a.cols());
  TO_EXPECTS(a.cols() > 0);
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Work on a copy whose columns we orthogonalize; V accumulates rotations.
  Matrix u = a;
  Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v.at(i, i) = 1.0;

  const double eps = 1e-15;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          alpha += u.at(i, p) * u.at(i, p);
          beta += u.at(i, q) * u.at(i, q);
          gamma += u.at(i, p) * u.at(i, q);
        }
        if (std::abs(gamma) <= eps * std::sqrt(alpha * beta)) continue;
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double up = u.at(i, p);
          const double uq = u.at(i, q);
          u.at(i, p) = c * up - s * uq;
          u.at(i, q) = s * up + c * uq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v.at(i, p);
          const double vq = v.at(i, q);
          v.at(i, p) = c * vp - s * vq;
          v.at(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Column norms are the singular values; normalize U's columns.
  SvdResult result;
  result.singular.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += u.at(i, j) * u.at(i, j);
    result.singular[j] = std::sqrt(norm);
  }

  // Sort by descending singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return result.singular[x] > result.singular[y];
  });

  Matrix u_sorted(m, n);
  Matrix v_sorted(n, n);
  std::vector<double> s_sorted(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    const double sv = result.singular[src];
    s_sorted[j] = sv;
    for (std::size_t i = 0; i < m; ++i)
      u_sorted.at(i, j) = sv > 0.0 ? u.at(i, src) / sv : 0.0;
    for (std::size_t i = 0; i < n; ++i) v_sorted.at(i, j) = v.at(i, src);
  }
  result.u = std::move(u_sorted);
  result.v = std::move(v_sorted);
  result.singular = std::move(s_sorted);
  return result;
}

Matrix svd_project(const Matrix& a, std::size_t k) {
  TO_EXPECTS(k > 0 && k <= a.cols());
  const SvdResult decomposition = svd(a);
  Matrix out(a.rows(), k);
  // Row i projected onto top-k right singular vectors: (A v_j) for j < k,
  // which equals u_ij * s_j.
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < k; ++j)
      out.at(i, j) = decomposition.u.at(i, j) * decomposition.singular[j];
  return out;
}

}  // namespace topo::util
