// Streaming and batch statistics used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace topo::util {

/// Streaming accumulator (Welford) for mean/variance plus min/max.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  void merge(const Accumulator& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch summary with percentiles; keeps all samples.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// p in [0, 100]; linear interpolation between closest ranks.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& values() const { return values_; }

  /// One-line human-readable summary.
  std::string describe() const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Gini coefficient of a set of non-negative values (load-imbalance metric
/// for the Topologically-Aware CAN study). Returns 0 for empty input.
double gini_coefficient(std::vector<double> values);

}  // namespace topo::util
