// Bounded retry with exponential backoff + jitter.
//
// Protocol hardening against the fault plane's transient message loss:
// a lost publish is re-sent after base_delay_ms, then 2x, 4x, ... up to
// max_delay_ms, each delay multiplicatively jittered so a burst of losses
// does not resynchronise every sender into a retry storm. The policy is
// pure arithmetic — the map service drives the actual re-sends through
// the shared sim::EventQueue (publishes asynchronously; lookups fail over
// to the next replica inline and account the backoff they would have
// waited).
#pragma once

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace topo::util {

struct RetryPolicy {
  /// Total send attempts including the first; 1 disables retries.
  int max_attempts = 1;
  double base_delay_ms = 250.0;
  double multiplier = 2.0;
  double max_delay_ms = 8'000.0;
  /// Each delay is drawn from delay * (1 ± jitter); in [0, 1).
  double jitter = 0.2;

  bool enabled() const { return max_attempts > 1; }
  int retries() const { return max_attempts > 1 ? max_attempts - 1 : 0; }

  /// Backoff before retry number `retry` (1-based: the delay between the
  /// initial attempt and the first retry is delay_ms(1, ...)).
  double delay_ms(int retry, Rng& rng) const {
    TO_EXPECTS(retry >= 1);
    TO_EXPECTS(jitter >= 0.0 && jitter < 1.0);
    const double raw =
        base_delay_ms * std::pow(multiplier, static_cast<double>(retry - 1));
    const double capped = std::min(raw, max_delay_ms);
    if (jitter == 0.0) return capped;
    return capped * rng.next_double(1.0 - jitter, 1.0 + jitter);
  }

  /// Worst-case total backoff across every retry (jitter at +jitter);
  /// callers use it to bound how much simulated time a retry chain can
  /// still add after its first attempt.
  double max_total_delay_ms() const {
    double total = 0.0;
    for (int r = 1; r <= retries(); ++r) {
      const double raw =
          base_delay_ms * std::pow(multiplier, static_cast<double>(r - 1));
      total += std::min(raw, max_delay_ms) * (1.0 + jitter);
    }
    return total;
  }
};

}  // namespace topo::util
