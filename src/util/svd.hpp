// Small dense singular value decomposition (one-sided Jacobi).
//
// Used by the paper's Section 5.4 extension: take a large set of landmark
// RTT vectors, extract the dominant components with SVD to suppress
// measurement noise, and use the projected coordinates for clustering.
// Matrices here are tiny (hundreds of rows x tens of columns), so a simple
// O(iterations * n^2 * m) Jacobi sweep is more than adequate.
#pragma once

#include <cstddef>
#include <vector>

namespace topo::util {

/// Row-major dense matrix, minimal interface for the SVD use-case.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// this * other
  Matrix multiply(const Matrix& other) const;
  Matrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

struct SvdResult {
  Matrix u;                       // rows x k (left singular vectors)
  std::vector<double> singular;   // k values, descending
  Matrix v;                       // cols x k (right singular vectors)
};

/// Thin SVD of `a` (rows >= cols required) via one-sided Jacobi rotations.
/// k = cols. Accurate to ~1e-12 for well-conditioned inputs.
SvdResult svd(const Matrix& a, int max_sweeps = 60);

/// Project each row of `a` onto the top `k` right singular vectors:
/// returns a rows x k matrix of denoised coordinates.
Matrix svd_project(const Matrix& a, std::size_t k);

}  // namespace topo::util
