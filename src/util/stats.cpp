#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace topo::util {

void Accumulator::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double total = 0.0;
  for (double v : values_) total += v;
  return total / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double v : values_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  TO_EXPECTS(!values_.empty());
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  TO_EXPECTS(!values_.empty());
  ensure_sorted();
  return values_.back();
}

double Samples::percentile(double p) const {
  TO_EXPECTS(p >= 0.0 && p <= 100.0);
  TO_EXPECTS(!values_.empty());
  ensure_sorted();
  if (values_.size() == 1) return values_.front();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

std::string Samples::describe() const {
  if (values_.empty()) return "(no samples)";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4g p50=%.4g p90=%.4g p99=%.4g min=%.4g max=%.4g",
                count(), mean(), percentile(50), percentile(90),
                percentile(99), min(), max());
  return buf;
}

double gini_coefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double cumulative = 0.0;
  double weighted = 0.0;
  const auto n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    cumulative += values[i];
    weighted += static_cast<double>(i + 1) * values[i];
  }
  if (cumulative == 0.0) return 0.0;
  return (2.0 * weighted) / (n * cumulative) - (n + 1.0) / n;
}

}  // namespace topo::util
