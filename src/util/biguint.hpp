// Fixed-width 256-bit unsigned integer.
//
// Hilbert indices over an n-dimensional landmark grid need n*b bits
// (e.g. 30 landmarks x 8 bits/dim = 240 bits), which exceeds any builtin
// integer. BigUint supports exactly the operations the space-filling-curve
// code and the soft-state key layer need: bit access, shifts, bitwise ops,
// ordering, and narrowing views.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace topo::util {

class BigUint {
 public:
  static constexpr int kWords = 4;
  static constexpr int kBits = kWords * 64;

  constexpr BigUint() : words_{} {}
  constexpr explicit BigUint(std::uint64_t low) : words_{low, 0, 0, 0} {}

  static BigUint zero() { return BigUint(); }
  static BigUint one() { return BigUint(1); }

  /// 2^bit; bit must be < kBits.
  static BigUint pow2(int bit);

  bool bit(int i) const;
  void set_bit(int i, bool value);

  BigUint operator<<(int shift) const;
  BigUint operator>>(int shift) const;
  BigUint operator|(const BigUint& o) const;
  BigUint operator&(const BigUint& o) const;
  BigUint operator^(const BigUint& o) const;
  BigUint operator~() const;
  BigUint operator+(const BigUint& o) const;
  BigUint operator-(const BigUint& o) const;

  BigUint& operator|=(const BigUint& o) { return *this = *this | o; }
  BigUint& operator&=(const BigUint& o) { return *this = *this & o; }
  BigUint& operator^=(const BigUint& o) { return *this = *this ^ o; }
  BigUint& operator<<=(int s) { return *this = *this << s; }
  BigUint& operator>>=(int s) { return *this = *this >> s; }

  bool operator==(const BigUint& o) const { return words_ == o.words_; }
  bool operator!=(const BigUint& o) const { return !(*this == o); }
  bool operator<(const BigUint& o) const;
  bool operator<=(const BigUint& o) const { return !(o < *this); }
  bool operator>(const BigUint& o) const { return o < *this; }
  bool operator>=(const BigUint& o) const { return !(*this < o); }

  /// Lowest 64 bits.
  std::uint64_t low64() const { return words_[0]; }

  /// Index of the highest set bit, or -1 for zero.
  int highest_bit() const;

  /// Value scaled to [0, 1): this / 2^total_bits. total_bits in (0, kBits].
  double to_unit(int total_bits) const;

  /// The top `count` bits of a `total_bits`-wide value, as uint64
  /// (count <= 64). Preserves ordering, used to coarsen SFC keys.
  std::uint64_t top_bits(int total_bits, int count) const;

  std::string to_hex() const;

 private:
  std::array<std::uint64_t, kWords> words_;  // little-endian words
};

}  // namespace topo::util
