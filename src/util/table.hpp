// ASCII table rendering for the figure-reproduction benches.
//
// Each bench prints the series of the corresponding paper figure as a table:
// one column per series, one row per x value, so the "shape" (who wins,
// crossovers) can be read directly from the terminal or parsed as TSV.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace topo::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string integer(long long v);

  std::size_t rows() const { return rows_.size(); }

  /// Render with aligned columns.
  std::string to_string() const;
  /// Render as tab-separated values (machine-readable).
  std::string to_tsv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints "== <title> ==" banner used by every bench.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace topo::util
