// Fixed-size worker pool for the simulation engine.
//
// The design goal is *deterministic parallelism*: a bench must print the
// same numbers at THREADS=1 and THREADS=16. The pool therefore exposes
// index-based primitives only — `parallel_for(begin, end, chunk, fn)` runs
// `fn(i)` for every index exactly once, and any randomness a body needs is
// derived from `rng_for_index(seed, i)`, never from which worker happened
// to pick the chunk. Work is distributed dynamically (atomic chunk
// counter), so scheduling varies run to run, but outputs are keyed by
// index and so cannot.
//
// The calling thread participates in the loop, which makes nested
// `parallel_for` calls safe: even if every worker is busy, the caller
// drains its own range and the posted helper tasks simply find the range
// exhausted when they eventually run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace topo::util {

/// Deterministic per-index RNG stream: the same (seed, index) pair yields
/// the same stream at any thread count. Derived from `seed ^ index` with a
/// SplitMix64 finalizer so adjacent indices are decorrelated.
inline Rng rng_for_index(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t s = seed ^ index;
  return Rng(splitmix64(s));
}

class ThreadPool {
 public:
  /// `threads` counts the calling thread too: a pool of size 1 spawns no
  /// workers and runs everything inline. 0 means `configured_threads()`.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the participating caller).
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs `fn(i)` exactly once for every i in [begin, end), distributing
  /// contiguous chunks of `chunk` indices across the pool. Blocks until the
  /// whole range is done. `fn` must be safe to call concurrently; the first
  /// exception thrown by any invocation is rethrown here (remaining chunks
  /// are abandoned, in-flight ones finish).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t chunk,
                    const std::function<void(std::size_t)>& fn);

  /// Thread count from the `THREADS` env var, or hardware concurrency when
  /// unset/0. Read once and cached (the global pool is sized with it).
  static unsigned configured_threads();

  /// Process-wide pool shared by the oracle and the bench drivers.
  static ThreadPool& global();

 private:
  struct Job;

  void worker_loop();
  static void run_chunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job*> queue_;  // borrowed; owned by the parallel_for frame
  bool stopping_ = false;
};

}  // namespace topo::util
