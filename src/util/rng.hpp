// Deterministic random number generation.
//
// All randomness in the library flows through explicitly-passed Rng
// instances so that every experiment is reproducible from a printed seed.
// The generator is xoshiro256** (Blackman & Vigna) seeded via SplitMix64,
// which is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace topo::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Copyable: forking an Rng gives an independent
/// deterministic stream (used to give each subsystem its own stream).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_u64(std::uint64_t bound) {
    TO_EXPECTS(bound > 0);
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    TO_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    TO_EXPECTS(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  /// True with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Fork a statistically-independent child stream.
  Rng fork() { return Rng((*this)()); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[next_u64(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace topo::util
