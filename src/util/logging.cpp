#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace topo::util {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("TOPO_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogLevel& level_storage() {
  static LogLevel level = initial_level();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage(); }
void set_log_level(LogLevel level) { level_storage() = level; }

void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace topo::util
