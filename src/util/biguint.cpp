#include "util/biguint.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace topo::util {

BigUint BigUint::pow2(int bit) {
  TO_EXPECTS(bit >= 0 && bit < kBits);
  BigUint r;
  r.set_bit(bit, true);
  return r;
}

bool BigUint::bit(int i) const {
  TO_EXPECTS(i >= 0 && i < kBits);
  return (words_[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1ULL;
}

void BigUint::set_bit(int i, bool value) {
  TO_EXPECTS(i >= 0 && i < kBits);
  const auto word = static_cast<std::size_t>(i / 64);
  const std::uint64_t mask = 1ULL << (i % 64);
  if (value)
    words_[word] |= mask;
  else
    words_[word] &= ~mask;
}

BigUint BigUint::operator<<(int shift) const {
  TO_EXPECTS(shift >= 0);
  if (shift >= kBits) return BigUint();
  BigUint r;
  const int word_shift = shift / 64;
  const int bit_shift = shift % 64;
  for (int i = kWords - 1; i >= word_shift; --i) {
    const auto src = static_cast<std::size_t>(i - word_shift);
    std::uint64_t v = words_[src] << bit_shift;
    if (bit_shift != 0 && src > 0) v |= words_[src - 1] >> (64 - bit_shift);
    r.words_[static_cast<std::size_t>(i)] = v;
  }
  return r;
}

BigUint BigUint::operator>>(int shift) const {
  TO_EXPECTS(shift >= 0);
  if (shift >= kBits) return BigUint();
  BigUint r;
  const int word_shift = shift / 64;
  const int bit_shift = shift % 64;
  for (int i = 0; i < kWords - word_shift; ++i) {
    const auto src = static_cast<std::size_t>(i + word_shift);
    std::uint64_t v = words_[src] >> bit_shift;
    if (bit_shift != 0 && src + 1 < kWords)
      v |= words_[src + 1] << (64 - bit_shift);
    r.words_[static_cast<std::size_t>(i)] = v;
  }
  return r;
}

BigUint BigUint::operator|(const BigUint& o) const {
  BigUint r;
  for (std::size_t i = 0; i < kWords; ++i) r.words_[i] = words_[i] | o.words_[i];
  return r;
}

BigUint BigUint::operator&(const BigUint& o) const {
  BigUint r;
  for (std::size_t i = 0; i < kWords; ++i) r.words_[i] = words_[i] & o.words_[i];
  return r;
}

BigUint BigUint::operator^(const BigUint& o) const {
  BigUint r;
  for (std::size_t i = 0; i < kWords; ++i) r.words_[i] = words_[i] ^ o.words_[i];
  return r;
}

BigUint BigUint::operator~() const {
  BigUint r;
  for (std::size_t i = 0; i < kWords; ++i) r.words_[i] = ~words_[i];
  return r;
}

BigUint BigUint::operator+(const BigUint& o) const {
  BigUint r;
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < kWords; ++i) {
    const unsigned __int128 sum =
        static_cast<unsigned __int128>(words_[i]) + o.words_[i] + carry;
    r.words_[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  return r;  // wraps modulo 2^256 by design
}

BigUint BigUint::operator-(const BigUint& o) const {
  return *this + (~o + BigUint(1));
}

bool BigUint::operator<(const BigUint& o) const {
  for (int i = kWords - 1; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    if (words_[idx] != o.words_[idx]) return words_[idx] < o.words_[idx];
  }
  return false;
}

int BigUint::highest_bit() const {
  for (int i = kWords - 1; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    if (words_[idx] != 0)
      return i * 64 + 63 - __builtin_clzll(words_[idx]);
  }
  return -1;
}

double BigUint::to_unit(int total_bits) const {
  TO_EXPECTS(total_bits > 0 && total_bits <= kBits);
  // Fold the top 53 significant bits into a double mantissa.
  double result = 0.0;
  const int top = total_bits - 1;
  const int bottom = total_bits > 53 ? total_bits - 53 : 0;
  double weight = 0.5;  // bit `top` has weight 2^-1
  for (int i = top; i >= bottom; --i, weight *= 0.5)
    if (bit(i)) result += weight;
  return result;
}

std::uint64_t BigUint::top_bits(int total_bits, int count) const {
  TO_EXPECTS(total_bits > 0 && total_bits <= kBits);
  TO_EXPECTS(count > 0 && count <= 64);
  if (count >= total_bits) return (*this >> 0).low64();
  return (*this >> (total_bits - count)).low64();
}

std::string BigUint::to_hex() const {
  char buf[2 * kBits / 8 + 1];
  char* p = buf;
  for (int i = kWords - 1; i >= 0; --i)
    p += std::snprintf(p, 17, "%016llx",
                       static_cast<unsigned long long>(
                           words_[static_cast<std::size_t>(i)]));
  return std::string(buf);
}

}  // namespace topo::util
