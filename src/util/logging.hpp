// Minimal leveled logging.
//
// Benches and examples print their results via util::Table; the logger is
// for diagnostics (soft-state expiry decisions, pub/sub notifications, ...)
// and is silent at the default level so test output stays clean.
#pragma once

#include <cstdarg>
#include <string>

namespace topo::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Defaults to kWarn,
/// overridable with the TOPO_LOG env var (debug|info|warn|error|off).
LogLevel log_level();
void set_log_level(LogLevel level);

void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace topo::util

#define TO_LOG_DEBUG(...) ::topo::util::log(::topo::util::LogLevel::kDebug, __VA_ARGS__)
#define TO_LOG_INFO(...) ::topo::util::log(::topo::util::LogLevel::kInfo, __VA_ARGS__)
#define TO_LOG_WARN(...) ::topo::util::log(::topo::util::LogLevel::kWarn, __VA_ARGS__)
#define TO_LOG_ERROR(...) ::topo::util::log(::topo::util::LogLevel::kError, __VA_ARGS__)
