#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/flags.hpp"

namespace topo::util {

/// One parallel_for invocation. Lives on the caller's stack; workers only
/// ever borrow a pointer, and the caller does not return before every
/// borrowed pointer is either finished or reclaimed from the queue.
struct ThreadPool::Job {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::mutex mutex;
  std::condition_variable done_cv;
  int pending = 0;  // queue entries not yet finished (guarded by mutex)
  std::exception_ptr error;  // first exception (guarded by mutex)
};

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = configured_threads();
  for (unsigned i = 1; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_chunks(Job& job) {
  const std::size_t chunk = job.chunk;
  for (;;) {
    const std::size_t start = job.next.fetch_add(chunk);
    if (start >= job.end) break;
    const std::size_t stop = std::min(start + chunk, job.end);
    try {
      for (std::size_t i = start; i < stop; ++i) (*job.fn)(i);
    } catch (...) {
      std::lock_guard lock(job.mutex);
      if (!job.error) job.error = std::current_exception();
      job.next.store(job.end);  // abandon the rest of the range
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = queue_.front();
      queue_.pop_front();
    }
    run_chunks(*job);
    {
      std::lock_guard lock(job->mutex);
      --job->pending;
      if (job->pending == 0) job->done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t chunk,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (chunk == 0) chunk = 1;

  Job job;
  job.next.store(begin);
  job.end = end;
  job.chunk = chunk;
  job.fn = &fn;

  // One helper entry per worker that could usefully participate.
  const std::size_t chunks = (end - begin + chunk - 1) / chunk;
  const std::size_t helpers =
      std::min<std::size_t>(workers_.size(), chunks > 0 ? chunks - 1 : 0);
  if (helpers > 0) {
    {
      std::lock_guard lock(queue_mutex_);
      for (std::size_t i = 0; i < helpers; ++i) queue_.push_back(&job);
      job.pending = static_cast<int>(helpers);
    }
    queue_cv_.notify_all();
  }

  // The caller drives the range too — this is what makes nested calls and
  // a fully-busy pool safe (progress never depends on a free worker).
  run_chunks(job);

  if (helpers > 0) {
    // Reclaim helper entries nobody picked up (the range is already done),
    // then wait for the ones that are mid-chunk.
    {
      std::lock_guard lock(queue_mutex_);
      const auto removed =
          std::count(queue_.begin(), queue_.end(), &job);
      queue_.erase(std::remove(queue_.begin(), queue_.end(), &job),
                   queue_.end());
      std::lock_guard job_lock(job.mutex);
      job.pending -= static_cast<int>(removed);
    }
    std::unique_lock lock(job.mutex);
    job.done_cv.wait(lock, [&job] { return job.pending == 0; });
  }

  if (job.error) std::rethrow_exception(job.error);
}

unsigned ThreadPool::configured_threads() {
  static const unsigned count = [] {
    const auto requested = env_int("THREADS", 0);
    if (requested > 0) return static_cast<unsigned>(requested);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1u;
  }();
  return count;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_threads());
  return pool;
}

}  // namespace topo::util
