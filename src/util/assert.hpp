// Contract-checking macros (C++ Core Guidelines I.6/I.8 style).
//
// TO_EXPECTS / TO_ENSURES abort with a message on violation; they stay active
// in release builds because every caller of this library is a simulator or
// test where silent corruption is far worse than the branch cost.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace topo::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violated: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace topo::util

#define TO_EXPECTS(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::topo::util::contract_failure("Precondition", #cond, __FILE__,     \
                                     __LINE__);                           \
  } while (false)

#define TO_ENSURES(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::topo::util::contract_failure("Postcondition", #cond, __FILE__,    \
                                     __LINE__);                           \
  } while (false)

#define TO_ASSERT(cond)                                                   \
  do {                                                                    \
    if (!(cond))                                                          \
      ::topo::util::contract_failure("Invariant", #cond, __FILE__,        \
                                     __LINE__);                           \
  } while (false)
