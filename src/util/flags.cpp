#include "util/flags.hpp"

#include <cstdlib>
#include <cstring>

namespace topo::util {

std::int64_t env_int(const char* name, std::int64_t def) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return def;
  char* end = nullptr;
  const long long value = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0') return def;
  return value;
}

double env_double(const char* name, double def) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return def;
  char* end = nullptr;
  const double value = std::strtod(env, &end);
  if (end == env || *end != '\0') return def;
  return value;
}

bool env_bool(const char* name, bool def) {
  const char* env = std::getenv(name);
  if (env == nullptr) return def;
  if (*env == '\0' || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "false") == 0)
    return false;
  return true;
}

std::string env_string(const char* name, const std::string& def) {
  const char* env = std::getenv(name);
  return env == nullptr ? def : std::string(env);
}

}  // namespace topo::util
