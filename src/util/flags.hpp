// Tiny environment-variable flag helpers for benches and examples.
//
// Every bench runs meaningfully with no arguments; env vars scale it up:
//   FULL=1        -> paper-scale sweeps (slower)
//   SEED=12345    -> alternate RNG seed
//   QUERIES=2000  -> override query counts, etc.
#pragma once

#include <cstdint>
#include <string>

namespace topo::util {

/// Integer env var with default; accepts decimal. Returns `def` when unset
/// or malformed.
std::int64_t env_int(const char* name, std::int64_t def);

/// Floating-point env var with default.
double env_double(const char* name, double def);

/// Boolean env var: unset/"0"/"false" -> false, anything else -> true.
bool env_bool(const char* name, bool def = false);

/// String env var with default.
std::string env_string(const char* name, const std::string& def);

}  // namespace topo::util
