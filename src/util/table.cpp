#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace topo::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TO_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  TO_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = headers_.size() > 0 ? 2 * (headers_.size() - 1) : 0;
  for (auto w : widths) total += w;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_tsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      out << (c == 0 ? "" : "\t") << cells[c];
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace topo::util
