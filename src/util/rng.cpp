#include "util/rng.hpp"

#include <unordered_set>

namespace topo::util {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  TO_EXPECTS(k <= n);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an explicit index vector.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + next_u64(n - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  } else {
    // Sparse case: rejection sampling.
    std::unordered_set<std::size_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
      const std::size_t candidate = next_u64(n);
      if (seen.insert(candidate).second) out.push_back(candidate);
    }
  }
  return out;
}

}  // namespace topo::util
