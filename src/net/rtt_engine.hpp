// Pluggable exact-latency engines behind net::RttOracle.
//
// Both engines answer the same contract — latency_ms(a, b) is the exact
// shortest-path latency over the physical topology, bit-for-bit identical
// between them (link weights are quantized to the 2^-20 ms grid, so every
// path sum is exact in double arithmetic regardless of summation order):
//
//  * kDijkstra     — the classic per-source row cache: one full-graph
//    Dijkstra per distinct source, memoized, optionally bounded
//    (DijkstraRttEngine). Works on any topology.
//  * kHierarchical — exploits the transit-stub structure every paper
//    experiment runs on: per-stub all-pairs distances, APSP over the small
//    transit core, and per-host gateway vectors are precomputed once, after
//    which ANY pair is answered in O(1) with no per-row caching
//    (HierarchicalRttEngine). Requires complete domain metadata.
//
// Selection: the RTT_ENGINE env var (`auto` | `hierarchical` | `dijkstra`,
// default `auto`) or an explicit RttEngineKind passed to RttOracle /
// core::SystemConfig. `auto` picks the hierarchical engine whenever the
// topology carries usable metadata and falls back to Dijkstra otherwise —
// e.g. for topologies loaded via topology_io from files that predate the
// domain annotations, or hand-built graphs without them.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "net/graph.hpp"

namespace topo::util {
class ThreadPool;
}  // namespace topo::util

namespace topo::net {

enum class RttEngineKind { kAuto, kDijkstra, kHierarchical };

const char* rtt_engine_kind_name(RttEngineKind kind);

/// Parses "auto" / "dijkstra" / "hierarchical"; anything else logs a
/// warning and yields kAuto.
RttEngineKind rtt_engine_kind_from_string(const std::string& name);

/// The RTT_ENGINE env var, parsed as above; unset -> kAuto.
RttEngineKind rtt_engine_kind_from_env();

/// Exact-latency backend. Implementations must be safe to query from many
/// threads at once; all answers are exact shortest-path latencies, so
/// results never depend on engine choice, cache state or interleaving.
class RttEngine {
 public:
  RttEngine() = default;
  virtual ~RttEngine() = default;

  RttEngine(const RttEngine&) = delete;
  RttEngine& operator=(const RttEngine&) = delete;

  virtual const char* name() const = 0;

  /// Exact shortest-path latency in ms (`from != to` — the oracle facade
  /// short-circuits self queries).
  virtual double latency_ms(HostId from, HostId to) = 0;

  /// Column query: out[i] = latency from froms[i] to `to` (0 for self).
  /// The default orients each query as latency_ms(to, from) — links are
  /// undirected and path sums exact on the 2^-20 ms grid, so both
  /// orientations return the identical double, and the source-cached
  /// Dijkstra engine then serves a whole column from one row. The
  /// hierarchical engine overrides this to hoist the `to`-side stub and
  /// gateway state out of the loop (one engine walk per landmark instead
  /// of one per (host, landmark) pair).
  virtual void latency_column(HostId to, std::span<const HostId> froms,
                              std::span<double> out) {
    TO_EXPECTS(out.size() >= froms.size());
    for (std::size_t i = 0; i < froms.size(); ++i)
      out[i] = froms[i] == to ? 0.0 : latency_ms(to, froms[i]);
  }

  /// Bulk precompute-and-pin hint for the given sources. The Dijkstra
  /// engine builds (and pins) their rows across `pool`; engines that are
  /// already fully precomputed treat this as a no-op.
  virtual void warm(std::span<const HostId> sources,
                    util::ThreadPool& pool) = 0;

  // Row-cache knobs and counters. Meaningful for the Dijkstra engine;
  // benign defaults elsewhere (a fully-precomputed engine has no rows to
  // cap, drop or count). Quiescent-only where the Dijkstra engine says so.
  virtual void clear_cache() {}
  virtual void set_row_cap(std::size_t cap) { (void)cap; }
  virtual std::size_t row_cap() const { return 0; }
  virtual std::size_t cached_rows() const { return 0; }
  virtual std::uint64_t dijkstra_runs() const { return 0; }
};

/// True iff `topology` carries complete, consistent transit-stub metadata:
/// every stub host names its stub domain, stub-stub links stay within one
/// domain, gateway flags match the access links, and every stub domain has
/// at least one gateway. This is what the hierarchical engine's exactness
/// proof rests on; topologies that fail it fall back to Dijkstra.
bool topology_supports_hierarchy(const Topology& topology);

/// Builds the requested engine. kAuto resolves to hierarchical when
/// `topology_supports_hierarchy`, Dijkstra otherwise; an explicit
/// kHierarchical request on an unsupported topology also falls back to
/// Dijkstra (with a warning) — results are exact either way.
std::unique_ptr<RttEngine> make_rtt_engine(const Topology& topology,
                                           RttEngineKind kind);

}  // namespace topo::net
