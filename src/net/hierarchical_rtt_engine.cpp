#include "net/hierarchical_rtt_engine.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace topo::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct LocalEdge {
  std::uint32_t to;
  double weight;
};

// Adjacency lists over a compact vertex renumbering (stub-local indices or
// core indices) — the subgraphs are small enough that per-call heap
// allocation is noise next to the Dijkstras themselves.
using LocalGraph = std::vector<std::vector<LocalEdge>>;

void local_dijkstra(const LocalGraph& adj, std::uint32_t source,
                    std::vector<double>& dist) {
  dist.assign(adj.size(), kInf);
  using Item = std::pair<double, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    for (const LocalEdge& edge : adj[v]) {
      const double next = d + edge.weight;
      if (next < dist[edge.to]) {
        dist[edge.to] = next;
        heap.emplace(next, edge.to);
      }
    }
  }
}

}  // namespace

HierarchicalRttEngine::HierarchicalRttEngine(const Topology& topology)
    : topology_(&topology) {
  TO_EXPECTS(topology_supports_hierarchy(topology));
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = topology.host_count();
  meta_.resize(n);

  // Dense stub indices and member lists, both in HostId order so the
  // layout (and thus every table) is independent of thread count.
  std::unordered_map<std::int32_t, std::int32_t> dense_stub;
  for (HostId h = 0; h < n; ++h) {
    const HostInfo& info = topology.host(h);
    if (info.kind == HostKind::kTransit) continue;
    const auto [it, inserted] = dense_stub.try_emplace(
        info.stub_domain, static_cast<std::int32_t>(stubs_.size()));
    if (inserted) stubs_.emplace_back();
    Stub& stub = stubs_[static_cast<std::size_t>(it->second)];
    meta_[h].stub = it->second;
    meta_[h].local = static_cast<std::uint32_t>(stub.members.size());
    stub.members.push_back(h);
  }

  // Core vertices: every transit node plus every gateway, in HostId order.
  for (HostId h = 0; h < n; ++h) {
    const HostInfo& info = topology.host(h);
    if (info.kind == HostKind::kTransit || info.gateway) {
      meta_[h].core = static_cast<std::int32_t>(core_hosts_.size());
      core_hosts_.push_back(h);
    }
  }

  // Stub-restricted adjacency: intra-stub links only. Access links are
  // deliberately absent — that restriction is what makes the per-stub
  // matrices reusable as path prefixes/suffixes in the decomposition.
  std::vector<LocalGraph> stub_adj(stubs_.size());
  for (std::size_t s = 0; s < stubs_.size(); ++s)
    stub_adj[s].resize(stubs_[s].members.size());
  for (const Link& link : topology.links()) {
    if (topology.host(link.a).kind != HostKind::kStub ||
        topology.host(link.b).kind != HostKind::kStub)
      continue;
    auto& adj = stub_adj[static_cast<std::size_t>(meta_[link.a].stub)];
    adj[meta_[link.a].local].push_back({meta_[link.b].local, link.latency_ms});
    adj[meta_[link.b].local].push_back({meta_[link.a].local, link.latency_ms});
  }

  // Per-stub all-pairs + gateway columns. Stubs are independent, so the
  // pool fans out one stub per task; every write is keyed by stub index.
  util::ThreadPool& pool = util::ThreadPool::global();
  pool.parallel_for(0, stubs_.size(), 1, [&](std::size_t s) {
    Stub& stub = stubs_[s];
    const std::size_t m = stub.members.size();
    stub.intra.resize(m * m);
    std::vector<double> dist;
    for (std::size_t src = 0; src < m; ++src) {
      local_dijkstra(stub_adj[s], static_cast<std::uint32_t>(src), dist);
      std::copy(dist.begin(), dist.end(), stub.intra.begin() + src * m);
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (!topology.host(stub.members[i]).gateway) continue;
      stub.gateway_local.push_back(static_cast<std::uint32_t>(i));
      stub.gateway_core.push_back(meta_[stub.members[i]].core);
    }
    const std::size_t g = stub.gateway_local.size();
    stub.to_gateway.resize(m * g);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < g; ++j)
        stub.to_gateway[i * g + j] = stub.intra[i * m + stub.gateway_local[j]];
  });

  // Core graph: transit and access links verbatim; stub-stub links are
  // folded into one synthetic edge per same-stub gateway pair, weighted by
  // their stub-restricted distance (this also subsumes any direct
  // gateway-gateway link, which the restricted Dijkstra already saw).
  LocalGraph core_adj(core_hosts_.size());
  for (const Link& link : topology.links()) {
    if (topology.host(link.a).kind == HostKind::kStub &&
        topology.host(link.b).kind == HostKind::kStub)
      continue;
    const auto ca = static_cast<std::uint32_t>(meta_[link.a].core);
    const auto cb = static_cast<std::uint32_t>(meta_[link.b].core);
    core_adj[ca].push_back({cb, link.latency_ms});
    core_adj[cb].push_back({ca, link.latency_ms});
  }
  for (const Stub& stub : stubs_) {
    const std::size_t g = stub.gateway_local.size();
    for (std::size_t i = 0; i + 1 < g; ++i) {
      for (std::size_t j = i + 1; j < g; ++j) {
        const double w =
            stub.to_gateway[stub.gateway_local[i] * g + j];
        if (w == kInf) continue;  // gateways in separate stub components
        const auto ci = static_cast<std::uint32_t>(stub.gateway_core[i]);
        const auto cj = static_cast<std::uint32_t>(stub.gateway_core[j]);
        core_adj[ci].push_back({cj, w});
        core_adj[cj].push_back({ci, w});
      }
    }
  }

  // Core APSP: one Dijkstra per core vertex, writes keyed by row index.
  const std::size_t c = core_hosts_.size();
  core_dist_.resize(c * c);
  pool.parallel_for(0, c, 1, [&](std::size_t src) {
    std::vector<double> dist;
    local_dijkstra(core_adj, static_cast<std::uint32_t>(src), dist);
    std::copy(dist.begin(), dist.end(), core_dist_.begin() + src * c);
  });

  footprint_bytes_ = core_dist_.size() * sizeof(double) +
                     meta_.size() * sizeof(HostMeta) +
                     core_hosts_.size() * sizeof(HostId);
  for (const Stub& stub : stubs_) {
    footprint_bytes_ += (stub.intra.size() + stub.to_gateway.size()) *
                            sizeof(double) +
                        stub.members.size() * sizeof(HostId) +
                        stub.gateway_core.size() *
                            (sizeof(std::int32_t) + sizeof(std::uint32_t));
  }
  build_ms_ = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
}

double HierarchicalRttEngine::core_to_interior(std::int32_t core_index,
                                               const HostMeta& m) const {
  const Stub& stub = stubs_[static_cast<std::size_t>(m.stub)];
  const std::size_t g = stub.gateway_core.size();
  const double* row = stub.to_gateway.data() + m.local * g;
  double best = kInf;
  for (std::size_t j = 0; j < g; ++j)
    best = std::min(best, core_at(core_index, stub.gateway_core[j]) + row[j]);
  return best;
}

double HierarchicalRttEngine::latency_ms(HostId from, HostId to) {
  const HostMeta& a = meta_[from];
  const HostMeta& b = meta_[to];
  if (a.core >= 0 && b.core >= 0) return core_at(a.core, b.core);
  if (a.core >= 0) return core_to_interior(a.core, b);
  if (b.core >= 0) return core_to_interior(b.core, a);

  // Both endpoints are interior stub hosts: min over gateway pairs, plus
  // the direct restricted path when they share a stub (the pair loop with
  // ga == gb covers out-and-back-through-core routes).
  const Stub& sa = stubs_[static_cast<std::size_t>(a.stub)];
  const Stub& sb = stubs_[static_cast<std::size_t>(b.stub)];
  const std::size_t ga = sa.gateway_core.size();
  const std::size_t gb = sb.gateway_core.size();
  const double* arow = sa.to_gateway.data() + a.local * ga;
  const double* brow = sb.to_gateway.data() + b.local * gb;
  double best = a.stub == b.stub
                    ? sa.intra[a.local * sa.members.size() + b.local]
                    : kInf;
  for (std::size_t i = 0; i < ga; ++i) {
    for (std::size_t j = 0; j < gb; ++j) {
      best = std::min(best, arow[i] +
                                core_at(sa.gateway_core[i],
                                        sb.gateway_core[j]) +
                                brow[j]);
    }
  }
  return best;
}

void HierarchicalRttEngine::latency_column(HostId to,
                                           std::span<const HostId> froms,
                                           std::span<double> out) {
  TO_EXPECTS(out.size() >= froms.size());
  const HostMeta& b = meta_[to];
  // The `to` side of every expression below is loop-invariant; resolve it
  // once. Each element then evaluates exactly latency_ms(from, to)'s
  // expression for its case, so the answers are bit-identical to the
  // scalar path.
  const Stub* sb = b.stub >= 0 ? &stubs_[static_cast<std::size_t>(b.stub)]
                               : nullptr;
  const std::size_t gb = sb != nullptr ? sb->gateway_core.size() : 0;
  const double* brow =
      sb != nullptr ? sb->to_gateway.data() + b.local * gb : nullptr;
  for (std::size_t i = 0; i < froms.size(); ++i) {
    const HostId from = froms[i];
    if (from == to) {
      out[i] = 0.0;
      continue;
    }
    const HostMeta& a = meta_[from];
    if (a.core >= 0 && b.core >= 0) {
      out[i] = core_at(a.core, b.core);
      continue;
    }
    if (a.core >= 0) {
      out[i] = core_to_interior(a.core, b);
      continue;
    }
    if (b.core >= 0) {
      out[i] = core_to_interior(b.core, a);
      continue;
    }
    const Stub& sa = stubs_[static_cast<std::size_t>(a.stub)];
    const std::size_t ga = sa.gateway_core.size();
    const double* arow = sa.to_gateway.data() + a.local * ga;
    double best = a.stub == b.stub
                      ? sa.intra[a.local * sa.members.size() + b.local]
                      : kInf;
    for (std::size_t gi = 0; gi < ga; ++gi) {
      for (std::size_t gj = 0; gj < gb; ++gj) {
        best = std::min(best, arow[gi] +
                                  core_at(sa.gateway_core[gi],
                                          sb->gateway_core[gj]) +
                                  brow[gj]);
      }
    }
    out[i] = best;
  }
}

}  // namespace topo::net
