#include "net/rtt_oracle.hpp"

#include "util/thread_pool.hpp"

namespace topo::net {

RttOracle::RttOracle(const Topology& topology)
    : RttOracle(topology, rtt_engine_kind_from_env()) {}

RttOracle::RttOracle(const Topology& topology, RttEngineKind kind)
    : topology_(&topology), engine_(make_rtt_engine(topology, kind)) {}

RttOracle::~RttOracle() = default;

HostId RttOracle::probe_nearest(HostId from,
                                std::span<const HostId> candidates) {
  HostId best = kInvalidHost;
  double best_rtt = 0.0;
  for (const HostId candidate : candidates) {
    const double rtt = probe_rtt(from, candidate);  // noise-aware
    if (best == kInvalidHost || rtt < best_rtt) {
      best = candidate;
      best_rtt = rtt;
    }
  }
  return best;
}

HostId RttOracle::nearest(HostId from, std::span<const HostId> candidates) {
  HostId best = kInvalidHost;
  double best_latency = 0.0;
  for (const HostId candidate : candidates) {
    const double l = latency_ms(from, candidate);
    if (best == kInvalidHost || l < best_latency) {
      best = candidate;
      best_latency = l;
    }
  }
  return best;
}

void RttOracle::warm(std::span<const HostId> sources) {
  warm(sources, util::ThreadPool::global());
}

void RttOracle::warm(std::span<const HostId> sources,
                     util::ThreadPool& pool) {
  engine_->warm(sources, pool);
}

}  // namespace topo::net
