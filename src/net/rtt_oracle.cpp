#include "net/rtt_oracle.hpp"

#include "net/shortest_path.hpp"

namespace topo::net {

const std::vector<double>& RttOracle::row(HostId source) {
  auto it = rows_.find(source);
  if (it == rows_.end()) {
    ++dijkstra_runs_;
    it = rows_.emplace(source, dijkstra(*topology_, source)).first;
  }
  return it->second;
}

double RttOracle::latency_ms(HostId from, HostId to) {
  TO_EXPECTS(from < topology_->host_count());
  TO_EXPECTS(to < topology_->host_count());
  if (from == to) return 0.0;
  // Prefer whichever endpoint is already cached; otherwise cache `from`.
  auto it = rows_.find(from);
  if (it != rows_.end()) return it->second[to];
  it = rows_.find(to);
  if (it != rows_.end()) return it->second[from];
  return row(from)[to];
}

HostId RttOracle::probe_nearest(HostId from,
                                std::span<const HostId> candidates) {
  HostId best = kInvalidHost;
  double best_rtt = 0.0;
  for (const HostId candidate : candidates) {
    const double rtt = probe_rtt(from, candidate);  // noise-aware
    if (best == kInvalidHost || rtt < best_rtt) {
      best = candidate;
      best_rtt = rtt;
    }
  }
  return best;
}

HostId RttOracle::nearest(HostId from, std::span<const HostId> candidates) {
  HostId best = kInvalidHost;
  double best_latency = 0.0;
  for (const HostId candidate : candidates) {
    const double l = latency_ms(from, candidate);
    if (best == kInvalidHost || l < best_latency) {
      best = candidate;
      best_latency = l;
    }
  }
  return best;
}

void RttOracle::clear_cache() { rows_.clear(); }

void RttOracle::warm(std::span<const HostId> sources) {
  for (const HostId source : sources) (void)row(source);
}

}  // namespace topo::net
