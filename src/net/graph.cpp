#include "net/graph.hpp"

#include <algorithm>
#include <queue>

namespace topo::net {

HostId Topology::add_host(HostInfo info) {
  TO_EXPECTS(!frozen_);
  hosts_.push_back(info);
  return static_cast<HostId>(hosts_.size() - 1);
}

void Topology::add_link(HostId a, HostId b, LinkClass link_class) {
  TO_EXPECTS(!frozen_);
  TO_EXPECTS(a < hosts_.size() && b < hosts_.size());
  TO_EXPECTS(a != b);
  if (link_class == LinkClass::kTransitStub) {
    // Access link: annotate the stub-side endpoint as a gateway so the
    // hierarchical RTT engine can decompose paths without rescanning.
    if (hosts_[a].kind == HostKind::kStub) hosts_[a].gateway = true;
    if (hosts_[b].kind == HostKind::kStub) hosts_[b].gateway = true;
  }
  links_.push_back(Link{a, b, link_class, 0.0});
}

void Topology::freeze() {
  TO_EXPECTS(!frozen_);
  offsets_.assign(hosts_.size() + 1, 0);
  for (const Link& link : links_) {
    ++offsets_[link.a + 1];
    ++offsets_[link.b + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i)
    offsets_[i] += offsets_[i - 1];
  adjacency_.resize(2 * links_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t li = 0; li < links_.size(); ++li) {
    const Link& link = links_[li];
    adjacency_[cursor[link.a]++] = Neighbor{link.b, li};
    adjacency_[cursor[link.b]++] = Neighbor{link.a, li};
  }
  frozen_ = true;
}

std::vector<HostId> Topology::hosts_of_kind(HostKind kind) const {
  std::vector<HostId> out;
  for (HostId id = 0; id < hosts_.size(); ++id)
    if (hosts_[id].kind == kind) out.push_back(id);
  return out;
}

bool Topology::is_connected() const {
  TO_EXPECTS(frozen_);
  if (hosts_.empty()) return true;
  std::vector<bool> visited(hosts_.size(), false);
  std::queue<HostId> frontier;
  frontier.push(0);
  visited[0] = true;
  std::size_t seen = 1;
  while (!frontier.empty()) {
    const HostId current = frontier.front();
    frontier.pop();
    for (const Neighbor& nb : neighbors(current)) {
      if (!visited[nb.host]) {
        visited[nb.host] = true;
        ++seen;
        frontier.push(nb.host);
      }
    }
  }
  return seen == hosts_.size();
}

}  // namespace topo::net
