#include "net/shortest_path.hpp"

#include <limits>
#include <queue>
#include <utility>

namespace topo::net {

namespace {

std::vector<double> dijkstra_impl(const Topology& topology, HostId source,
                                  double radius_ms) {
  TO_EXPECTS(source < topology.host_count());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(topology.host_count(), kInf);
  using Item = std::pair<double, HostId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    if (d > radius_ms) break;
    for (const Topology::Neighbor& nb : topology.neighbors(u)) {
      const double nd = d + topology.link_latency(nb.link_index);
      if (nd < dist[nb.host]) {
        dist[nb.host] = nd;
        heap.emplace(nd, nb.host);
      }
    }
  }
  if (radius_ms < kInf) {
    for (double& d : dist)
      if (d > radius_ms) d = kInf;
  }
  return dist;
}

}  // namespace

std::vector<double> dijkstra(const Topology& topology, HostId source) {
  return dijkstra_impl(topology, source,
                       std::numeric_limits<double>::infinity());
}

std::vector<double> dijkstra_within(const Topology& topology, HostId source,
                                    double radius_ms) {
  TO_EXPECTS(radius_ms >= 0.0);
  return dijkstra_impl(topology, source, radius_ms);
}

std::vector<HostId> hosts_within_hops(const Topology& topology, HostId source,
                                      int hop_radius) {
  TO_EXPECTS(source < topology.host_count());
  TO_EXPECTS(hop_radius >= 0);
  std::vector<int> hops(topology.host_count(), -1);
  std::vector<HostId> result;
  std::queue<HostId> frontier;
  hops[source] = 0;
  frontier.push(source);
  result.push_back(source);
  while (!frontier.empty()) {
    const HostId u = frontier.front();
    frontier.pop();
    if (hops[u] == hop_radius) continue;
    for (const Topology::Neighbor& nb : topology.neighbors(u)) {
      if (hops[nb.host] < 0) {
        hops[nb.host] = hops[u] + 1;
        result.push_back(nb.host);
        frontier.push(nb.host);
      }
    }
  }
  return result;
}

}  // namespace topo::net
