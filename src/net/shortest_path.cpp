#include "net/shortest_path.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

namespace topo::net {

namespace {

// Min-heap over (distance, host) on the scratch's recycled vector. The
// pair's lexicographic order ties identical distances by HostId, matching
// the std::priority_queue the original implementation used, so results are
// bit-identical to the historical ones.
std::span<const double> dijkstra_into(
    const Topology& topology, HostId source, double radius_ms,
    std::vector<double>& dist, std::vector<std::pair<double, HostId>>& heap) {
  TO_EXPECTS(source < topology.host_count());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist.assign(topology.host_count(), kInf);
  heap.clear();
  const auto by_distance = std::greater<std::pair<double, HostId>>{};
  dist[source] = 0.0;
  heap.emplace_back(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), by_distance);
    heap.pop_back();
    if (d > dist[u]) continue;  // stale entry
    if (d > radius_ms) break;
    for (const Topology::Neighbor& nb : topology.neighbors(u)) {
      const double nd = d + topology.link_latency(nb.link_index);
      if (nd < dist[nb.host]) {
        dist[nb.host] = nd;
        heap.emplace_back(nd, nb.host);
        std::push_heap(heap.begin(), heap.end(), by_distance);
      }
    }
  }
  if (radius_ms < kInf) {
    for (double& d : dist)
      if (d > radius_ms) d = kInf;
  }
  return dist;
}

}  // namespace

std::span<const double> dijkstra(const Topology& topology, HostId source,
                                 DijkstraScratch& scratch) {
  return dijkstra_into(topology, source,
                       std::numeric_limits<double>::infinity(), scratch.dist_,
                       scratch.heap_);
}

std::span<const double> dijkstra_within(const Topology& topology,
                                        HostId source, double radius_ms,
                                        DijkstraScratch& scratch) {
  TO_EXPECTS(radius_ms >= 0.0);
  return dijkstra_into(topology, source, radius_ms, scratch.dist_,
                       scratch.heap_);
}

std::vector<double> dijkstra(const Topology& topology, HostId source) {
  DijkstraScratch scratch;
  dijkstra(topology, source, scratch);
  return std::move(scratch.dist_);
}

std::vector<double> dijkstra_within(const Topology& topology, HostId source,
                                    double radius_ms) {
  DijkstraScratch scratch;
  dijkstra_within(topology, source, radius_ms, scratch);
  return std::move(scratch.dist_);
}

std::vector<HostId> hosts_within_hops(const Topology& topology, HostId source,
                                      int hop_radius) {
  TO_EXPECTS(source < topology.host_count());
  TO_EXPECTS(hop_radius >= 0);
  std::vector<int> hops(topology.host_count(), -1);
  std::vector<HostId> result;
  std::queue<HostId> frontier;
  hops[source] = 0;
  frontier.push(source);
  result.push_back(source);
  while (!frontier.empty()) {
    const HostId u = frontier.front();
    frontier.pop();
    if (hops[u] == hop_radius) continue;
    for (const Topology::Neighbor& nb : topology.neighbors(u)) {
      if (hops[nb.host] < 0) {
        hops[nb.host] = hops[u] + 1;
        result.push_back(nb.host);
        frontier.push(nb.host);
      }
    }
  }
  return result;
}

}  // namespace topo::net
