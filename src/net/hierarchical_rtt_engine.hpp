// Hierarchical exact-latency engine for transit-stub topologies.
//
// Every paper experiment runs on GT-ITM-style transit-stub graphs: stub
// domains of a few dozen hosts, each homed to the small transit core by
// one or two access links. Shortest paths therefore decompose exactly:
//
//   d(a, b) = min( d_stub(a, b),                           [same stub only]
//                  min over gateway pairs (ga, gb) of
//                      d_stub(a, ga) + core(ga, gb) + d_stub(gb, b) )
//
// where d_stub is the shortest path restricted to the endpoints' stub
// subgraph and core() is the all-pairs distance over an auxiliary "core
// graph" whose vertices are the transit nodes plus every gateway, and
// whose edges are the transit links, the access links, and one synthetic
// edge per same-stub gateway pair weighted by their stub-restricted
// distance. The decomposition is exact because a stub host's only links
// are intra-stub links and its domain's access links: any path between
// stubs is an intra-stub prefix, a core-graph walk (stub traversals by
// multi-homed domains appear as the synthetic edges), and an intra-stub
// suffix. Same-stub pairs additionally take the min with the direct
// restricted path, which covers out-and-back-through-core routes via the
// gateway-pair term (including ga == gb).
//
// Precompute: per-stub all-pairs via multi-source restricted Dijkstra
// (10k hosts => ~10k Dijkstras over ~39-node subgraphs), APSP over the
// few-hundred-vertex core graph, and per-host distance-to-gateway
// vectors. After that every query is O(gateways^2) = O(1) lookups —
// typically 1-4 core-matrix reads — with no per-row caching, no locks and
// a few MB of total state (vs ~80 KB per cached 10k-host Dijkstra row).
//
// Link latencies are quantized to the 2^-20 ms grid (net/latency.cpp), so
// every partial sum here is exact in double arithmetic and the engine's
// answers are bit-for-bit identical to full-graph Dijkstra's.
#pragma once

#include <cstdint>
#include <vector>

#include "net/rtt_engine.hpp"

namespace topo::net {

class HierarchicalRttEngine final : public RttEngine {
 public:
  /// Requires topology_supports_hierarchy(topology). Precomputes on the
  /// global thread pool; the engine is immutable (and thus trivially
  /// thread-safe) afterwards.
  explicit HierarchicalRttEngine(const Topology& topology);

  const char* name() const override { return "hierarchical"; }

  double latency_ms(HostId from, HostId to) override;

  /// Bulk column: resolves `to`'s stub/gateway state once and reuses it
  /// for every source, preserving latency_ms's exact expressions (and thus
  /// its bit-identical answers) per element.
  void latency_column(HostId to, std::span<const HostId> froms,
                      std::span<double> out) override;

  /// All pairs are precomputed; warming is a no-op.
  void warm(std::span<const HostId> sources,
            util::ThreadPool& pool) override {
    (void)sources;
    (void)pool;
  }

  // -- Introspection (benches, docs) --------------------------------------

  /// Transit nodes + gateways: the vertex count of the core APSP matrix.
  std::size_t core_size() const { return core_hosts_.size(); }
  std::size_t stub_count() const { return stubs_.size(); }
  /// Bytes held in the precomputed tables (matrices + vectors).
  std::size_t footprint_bytes() const { return footprint_bytes_; }
  /// Wall-clock spent in the constructor's precompute.
  double build_ms() const { return build_ms_; }

 private:
  struct HostMeta {
    std::int32_t stub = -1;    // dense stub index; -1 for transit nodes
    std::int32_t core = -1;    // core-matrix index; -1 for interior hosts
    std::uint32_t local = 0;   // index into the stub's member list
  };

  struct Stub {
    std::vector<HostId> members;
    /// Core-matrix index of each gateway (member order).
    std::vector<std::int32_t> gateway_core;
    /// Member-list index of each gateway (same order as gateway_core).
    std::vector<std::uint32_t> gateway_local;
    /// members^2 row-major stub-restricted all-pairs distances.
    std::vector<double> intra;
    /// members x gateways row-major: intra columns at the gateways.
    std::vector<double> to_gateway;
  };

  double core_at(std::int32_t a, std::int32_t b) const {
    return core_dist_[static_cast<std::size_t>(a) * core_hosts_.size() +
                      static_cast<std::size_t>(b)];
  }

  /// min over `m`'s stub gateways gb of core(core_index, gb) + d_stub(m, gb).
  double core_to_interior(std::int32_t core_index, const HostMeta& m) const;

  const Topology* topology_;
  std::vector<HostMeta> meta_;      // one per host
  std::vector<Stub> stubs_;
  std::vector<HostId> core_hosts_;  // core index -> host
  std::vector<double> core_dist_;   // core_size^2 row-major APSP
  std::size_t footprint_bytes_ = 0;
  double build_ms_ = 0.0;
};

}  // namespace topo::net
