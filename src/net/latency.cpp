#include "net/latency.hpp"

#include <cmath>

namespace topo::net {

const char* latency_model_name(LatencyModel model) {
  switch (model) {
    case LatencyModel::kGtItmRandom: return "gtitm";
    case LatencyModel::kManual: return "manual";
  }
  return "?";
}

namespace {

// Snap a latency to the 2^-20 ms grid (flooring, so values stay inside
// their [lo, hi) draw range). With every link weight a dyadic rational of
// this granularity, path sums stay exact in double arithmetic for any
// addition order, so dist(a->b) == dist(b->a) bit-for-bit. The RTT
// oracle's either-endpoint caching relies on that: which endpoint's row
// answers a query depends on cache state — and, under the parallel bench
// drivers, on thread interleaving — so the two reads must agree exactly
// for results to be reproducible at any THREADS.
double quantize_ms(double latency_ms) {
  constexpr double kGrid = 1048576.0;  // 2^20
  return std::floor(latency_ms * kGrid) / kGrid;
}

}  // namespace

void assign_latencies(Topology& topology, LatencyModel model, util::Rng& rng,
                      const ManualLatencies& manual,
                      const GtItmRandomLatencies& random) {
  for (std::size_t i = 0; i < topology.link_count(); ++i) {
    Link& link = topology.mutable_link(i);
    switch (model) {
      case LatencyModel::kManual:
        switch (link.link_class) {
          case LinkClass::kInterTransit:
            link.latency_ms = manual.inter_transit_ms;
            break;
          case LinkClass::kIntraTransit:
            link.latency_ms = manual.intra_transit_ms;
            break;
          case LinkClass::kTransitStub:
            link.latency_ms = manual.transit_stub_ms;
            break;
          case LinkClass::kIntraStub:
            link.latency_ms = manual.intra_stub_ms;
            break;
        }
        break;
      case LatencyModel::kGtItmRandom:
        switch (link.link_class) {
          case LinkClass::kInterTransit:
            link.latency_ms =
                rng.next_double(random.inter_transit_lo, random.inter_transit_hi);
            break;
          case LinkClass::kIntraTransit:
            link.latency_ms =
                rng.next_double(random.intra_transit_lo, random.intra_transit_hi);
            break;
          case LinkClass::kTransitStub:
            link.latency_ms =
                rng.next_double(random.transit_stub_lo, random.transit_stub_hi);
            break;
          case LinkClass::kIntraStub:
            link.latency_ms =
                rng.next_double(random.intra_stub_lo, random.intra_stub_hi);
            break;
        }
        break;
    }
    link.latency_ms = quantize_ms(link.latency_ms);
  }
}

}  // namespace topo::net
