#include "net/latency.hpp"

namespace topo::net {

const char* latency_model_name(LatencyModel model) {
  switch (model) {
    case LatencyModel::kGtItmRandom: return "gtitm";
    case LatencyModel::kManual: return "manual";
  }
  return "?";
}

void assign_latencies(Topology& topology, LatencyModel model, util::Rng& rng,
                      const ManualLatencies& manual,
                      const GtItmRandomLatencies& random) {
  for (std::size_t i = 0; i < topology.link_count(); ++i) {
    Link& link = topology.mutable_link(i);
    switch (model) {
      case LatencyModel::kManual:
        switch (link.link_class) {
          case LinkClass::kInterTransit:
            link.latency_ms = manual.inter_transit_ms;
            break;
          case LinkClass::kIntraTransit:
            link.latency_ms = manual.intra_transit_ms;
            break;
          case LinkClass::kTransitStub:
            link.latency_ms = manual.transit_stub_ms;
            break;
          case LinkClass::kIntraStub:
            link.latency_ms = manual.intra_stub_ms;
            break;
        }
        break;
      case LatencyModel::kGtItmRandom:
        switch (link.link_class) {
          case LinkClass::kInterTransit:
            link.latency_ms =
                rng.next_double(random.inter_transit_lo, random.inter_transit_hi);
            break;
          case LinkClass::kIntraTransit:
            link.latency_ms =
                rng.next_double(random.intra_transit_lo, random.intra_transit_hi);
            break;
          case LinkClass::kTransitStub:
            link.latency_ms =
                rng.next_double(random.transit_stub_lo, random.transit_stub_hi);
            break;
          case LinkClass::kIntraStub:
            link.latency_ms =
                rng.next_double(random.intra_stub_lo, random.intra_stub_hi);
            break;
        }
        break;
    }
  }
}

}  // namespace topo::net
