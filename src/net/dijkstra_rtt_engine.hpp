// The classic cached-row latency engine: one full-graph Dijkstra per
// distinct source, memoized. This is the fallback engine for arbitrary
// topologies and the reference the hierarchical engine is tested against.
//
// Concurrency model (unchanged from the pre-refactor RttOracle):
//
//  - Rows live in a flat slot table indexed by HostId (one atomic pointer
//    per host), so a cache hit is two array reads — no hashing, no lock.
//  - Row construction is guarded by sharded mutexes with double-checked
//    locking: concurrent queries for the same uncached source run exactly
//    one Dijkstra between them, so `dijkstra_runs()` never exceeds the
//    number of distinct sources touched.
//  - In the default unbounded mode rows are immortal until `clear_cache()`
//    (which, like `set_row_cap`, must be called while no other thread is
//    querying). With a row cap set, eviction can run concurrently with
//    queries: readers then take a sharded shared lock so a row is never
//    freed mid-read.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "net/rtt_engine.hpp"

namespace topo::net {

class DijkstraRttEngine final : public RttEngine {
 public:
  explicit DijkstraRttEngine(const Topology& topology);
  ~DijkstraRttEngine() override;

  const char* name() const override { return "dijkstra"; }

  /// Served from whichever endpoint's row is cached (rows are symmetric
  /// because links are undirected); caches `from`'s otherwise.
  double latency_ms(HostId from, HostId to) override;

  /// Precompute & pin rows for the given sources (bulk experiments).
  /// Runs the Dijkstras in parallel on `pool`; pinned rows are exempt
  /// from bounded-mode eviction.
  void warm(std::span<const HostId> sources, util::ThreadPool& pool) override;

  /// Drop all cached rows (memory control between sweep phases). Not safe
  /// concurrently with queries — call at a quiescent point.
  void clear_cache() override;

  /// Bounded-memory mode for long sweeps: keep at most `cap` unpinned rows
  /// cached, evicting approximately-least-recently-used rows as new ones
  /// are built (0 = unbounded, the default). Evicted rows are recomputed
  /// on demand, so results are unchanged — only Dijkstra counts and memory
  /// differ. Call before sharing the engine across threads.
  void set_row_cap(std::size_t cap) override {
    row_cap_.store(cap, std::memory_order_relaxed);
  }
  std::size_t row_cap() const override {
    return row_cap_.load(std::memory_order_relaxed);
  }

  /// Rows currently cached (pinned + unpinned).
  std::size_t cached_rows() const override {
    return cached_rows_.load(std::memory_order_relaxed);
  }

  std::uint64_t dijkstra_runs() const override {
    return dijkstra_runs_.load(std::memory_order_relaxed);
  }

 private:
  struct Row {
    explicit Row(std::vector<double> d) : dist(std::move(d)) {}
    std::vector<double> dist;
    std::atomic<std::uint64_t> stamp{0};  // approximate-LRU access clock
    std::atomic<bool> pinned{false};
  };

  static constexpr std::size_t kShards = 64;
  std::size_t shard_of(HostId h) const { return h % kShards; }

  bool bounded() const {
    return row_cap_.load(std::memory_order_relaxed) > 0;
  }
  void touch(Row& row) {
    row.stamp.store(access_clock_.fetch_add(1, std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }

  /// Reads slot `source` (exact-index hit only); returns the latency to
  /// `to` through `out`. Takes the shard's shared lock in bounded mode.
  bool try_read(HostId source, HostId to, double* out);

  /// Builds (or finds, under double-checked locking) `from`'s row and
  /// returns the latency to `to`. `pin` marks the row eviction-exempt.
  double build_and_read(HostId from, HostId to, bool pin);

  void evict_over_cap();

  const Topology* topology_;
  std::vector<std::atomic<Row*>> slots_;  // one per host; null = uncached
  mutable std::array<std::shared_mutex, kShards> shard_mutex_;
  std::atomic<std::uint64_t> dijkstra_runs_{0};
  std::atomic<std::uint64_t> access_clock_{0};
  std::atomic<std::size_t> cached_rows_{0};
  std::atomic<std::size_t> row_cap_{0};
};

}  // namespace topo::net
