// Plain-text serialization of topologies, so experiments can be pinned to
// an exact network (the role GT-ITM's output files play for the paper) and
// shared between the CLI tools, benches and external scripts.
//
// Format (line-oriented, '#' comments allowed):
//   topo-overlay-topology v2
//   hosts <n>
//   h <kind:0|1> <transit_domain> <stub_domain> <gateway:0|1>   (n lines)
//   links <m>
//   l <a> <b> <class:0..3> <latency_ms>                         (m lines)
//
// v1 files (host lines without the gateway field) still load: the gateway
// flags are then derived from the kTransitStub links, exactly as
// Topology::add_link does for generated topologies. v2 files declare them
// explicitly and the loader rejects files whose declared flags disagree
// with the links — the hierarchical RTT engine's decomposition keys on
// this metadata being consistent.
#pragma once

#include <iosfwd>
#include <string>

#include "net/graph.hpp"

namespace topo::net {

void save_topology(const Topology& topology, std::ostream& out);
void save_topology_file(const Topology& topology, const std::string& path);

/// Parses a topology; throws std::runtime_error on malformed input.
/// The returned topology is frozen.
Topology load_topology(std::istream& in);
Topology load_topology_file(const std::string& path);

}  // namespace topo::net
