#include "net/dijkstra_rtt_engine.hpp"

#include <limits>

#include "net/shortest_path.hpp"
#include "util/thread_pool.hpp"

namespace topo::net {

namespace {

// One scratch per thread: warm() fans Dijkstras out across the pool, and
// each worker recycles its own dist/heap buffers run to run.
DijkstraScratch& local_scratch() {
  static thread_local DijkstraScratch scratch;
  return scratch;
}

}  // namespace

DijkstraRttEngine::DijkstraRttEngine(const Topology& topology)
    : topology_(&topology), slots_(topology.host_count()) {
  for (auto& slot : slots_) slot.store(nullptr, std::memory_order_relaxed);
}

DijkstraRttEngine::~DijkstraRttEngine() { clear_cache(); }

bool DijkstraRttEngine::try_read(HostId source, HostId to, double* out) {
  if (!bounded()) {
    // Unbounded mode: rows are immortal until a quiescent clear_cache(),
    // so a plain acquire load is a complete, lock-free hit path.
    if (const Row* row = slots_[source].load(std::memory_order_acquire)) {
      *out = row->dist[to];
      return true;
    }
    return false;
  }
  // Bounded mode: eviction may free a row concurrently, so the read holds
  // the shard's shared lock (eviction unlinks under the unique lock).
  std::shared_lock lock(shard_mutex_[shard_of(source)]);
  if (Row* row = slots_[source].load(std::memory_order_acquire)) {
    touch(*row);
    *out = row->dist[to];
    return true;
  }
  return false;
}

double DijkstraRttEngine::build_and_read(HostId from, HostId to, bool pin) {
  Row* row = nullptr;
  double result = 0.0;
  {
    std::unique_lock lock(shard_mutex_[shard_of(from)]);
    row = slots_[from].load(std::memory_order_relaxed);
    if (row == nullptr) {
      // We won the double-checked race: run the (one) Dijkstra.
      dijkstra_runs_.fetch_add(1, std::memory_order_relaxed);
      const auto dist = dijkstra(*topology_, from, local_scratch());
      row = new Row(std::vector<double>(dist.begin(), dist.end()));
      slots_[from].store(row, std::memory_order_release);
      cached_rows_.fetch_add(1, std::memory_order_relaxed);
    }
    if (pin) row->pinned.store(true, std::memory_order_relaxed);
    if (bounded()) touch(*row);
    result = row->dist[to];
  }
  evict_over_cap();
  return result;
}

double DijkstraRttEngine::latency_ms(HostId from, HostId to) {
  // Either endpoint's row answers the query (rows are symmetric because
  // links are undirected); both checks are O(1) slot reads.
  double result;
  if (try_read(from, to, &result)) return result;
  if (try_read(to, from, &result)) return result;
  return build_and_read(from, to, /*pin=*/false);
}

void DijkstraRttEngine::clear_cache() {
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_relaxed);
    slot.store(nullptr, std::memory_order_relaxed);
  }
  cached_rows_.store(0, std::memory_order_relaxed);
}

void DijkstraRttEngine::warm(std::span<const HostId> sources,
                             util::ThreadPool& pool) {
  pool.parallel_for(0, sources.size(), 1, [&](std::size_t i) {
    const HostId source = sources[i];
    TO_EXPECTS(source < topology_->host_count());
    (void)build_and_read(source, source, /*pin=*/true);
  });
}

void DijkstraRttEngine::evict_over_cap() {
  const std::size_t cap = row_cap_.load(std::memory_order_relaxed);
  if (cap == 0) return;
  while (cached_rows_.load(std::memory_order_relaxed) > cap) {
    // Approximate LRU: scan for the oldest unpinned row. The scan holds
    // each shard's shared lock in turn, so candidate rows can't be freed
    // under it; the stamp ordering is racy (that's the "approximate").
    HostId victim_host = kInvalidHost;
    Row* victim = nullptr;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t shard = 0; shard < kShards; ++shard) {
      std::shared_lock lock(shard_mutex_[shard]);
      for (std::size_t h = shard; h < slots_.size(); h += kShards) {
        Row* row = slots_[h].load(std::memory_order_acquire);
        if (row == nullptr || row->pinned.load(std::memory_order_relaxed))
          continue;
        const std::uint64_t stamp = row->stamp.load(std::memory_order_relaxed);
        if (stamp <= oldest) {
          oldest = stamp;
          victim = row;
          victim_host = static_cast<HostId>(h);
        }
      }
    }
    if (victim == nullptr) return;  // everything cached is pinned
    std::unique_lock lock(shard_mutex_[shard_of(victim_host)]);
    if (slots_[victim_host].load(std::memory_order_relaxed) != victim)
      continue;  // raced with another evictor or a rebuild; rescan
    slots_[victim_host].store(nullptr, std::memory_order_release);
    cached_rows_.fetch_sub(1, std::memory_order_relaxed);
    lock.unlock();
    // No reader can still hold the pointer: bounded-mode readers only
    // dereference under the shard lock we just owned exclusively.
    delete victim;
  }
}

}  // namespace topo::net
