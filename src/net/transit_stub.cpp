#include "net/transit_stub.hpp"

#include <utility>
#include <vector>

#include "net/rtt_engine.hpp"

namespace topo::net {

namespace {

/// Connect `members` into a random connected subgraph: a random spanning
/// tree (random attachment) plus `extra_factor * |members|` expected extra
/// edges, skipping duplicates opportunistically (a duplicate simply yields
/// one fewer extra edge, which matches GT-ITM's probabilistic density).
void connect_random(Topology& topology, const std::vector<HostId>& members,
                    LinkClass link_class, double extra_factor,
                    util::Rng& rng) {
  if (members.size() < 2) return;
  for (std::size_t i = 1; i < members.size(); ++i) {
    const std::size_t parent = rng.next_u64(i);
    topology.add_link(members[i], members[parent], link_class);
  }
  const auto extras = static_cast<std::size_t>(
      extra_factor * static_cast<double>(members.size()));
  for (std::size_t e = 0; e < extras; ++e) {
    const std::size_t i = rng.next_u64(members.size());
    const std::size_t j = rng.next_u64(members.size());
    if (i == j) continue;
    topology.add_link(members[i], members[j], link_class);
  }
}

}  // namespace

TransitStubConfig tsk_large() {
  TransitStubConfig config;
  config.transit_domains = 8;
  config.transit_nodes_per_domain = 4;
  config.stub_domains_per_transit = 8;
  config.hosts_per_stub = 39;
  config.name = "tsk-large";
  return config;  // 32 transit + 9984 stub hosts
}

TransitStubConfig tsk_small() {
  TransitStubConfig config;
  config.transit_domains = 2;
  config.transit_nodes_per_domain = 4;
  config.stub_domains_per_transit = 8;
  config.hosts_per_stub = 156;
  config.name = "tsk-small";
  return config;  // 8 transit + 9984 stub hosts
}

TransitStubConfig tsk_tiny() {
  TransitStubConfig config;
  config.transit_domains = 3;
  config.transit_nodes_per_domain = 2;
  config.stub_domains_per_transit = 2;
  config.hosts_per_stub = 10;
  config.name = "tsk-tiny";
  return config;  // 6 transit + 120 stub hosts
}

Topology generate_transit_stub(const TransitStubConfig& config,
                               util::Rng& rng) {
  TO_EXPECTS(config.transit_domains >= 1);
  TO_EXPECTS(config.transit_nodes_per_domain >= 1);
  TO_EXPECTS(config.stub_domains_per_transit >= 0);
  TO_EXPECTS(config.hosts_per_stub >= 1);

  Topology topology;

  // 1. Transit nodes, domain by domain.
  std::vector<std::vector<HostId>> transit(
      static_cast<std::size_t>(config.transit_domains));
  for (int d = 0; d < config.transit_domains; ++d) {
    auto& domain = transit[static_cast<std::size_t>(d)];
    for (int t = 0; t < config.transit_nodes_per_domain; ++t)
      domain.push_back(
          topology.add_host(HostInfo{HostKind::kTransit, d, -1}));
    connect_random(topology, domain, LinkClass::kIntraTransit,
                   config.intra_domain_extra_edges, rng);
  }

  // 2. Domain-level backbone: spanning tree over domains plus extras. Each
  // domain-level edge is realized by linking random transit nodes of the
  // two domains.
  auto link_domains = [&](std::size_t d1, std::size_t d2) {
    const HostId a = transit[d1][rng.next_u64(transit[d1].size())];
    const HostId b = transit[d2][rng.next_u64(transit[d2].size())];
    topology.add_link(a, b, LinkClass::kInterTransit);
  };
  for (std::size_t d = 1; d < transit.size(); ++d)
    link_domains(d, rng.next_u64(d));
  const auto extra_backbone = static_cast<std::size_t>(
      config.inter_domain_extra_edges *
      static_cast<double>(config.transit_domains));
  for (std::size_t e = 0; e < extra_backbone && transit.size() > 1; ++e) {
    const std::size_t d1 = rng.next_u64(transit.size());
    const std::size_t d2 = rng.next_u64(transit.size());
    if (d1 == d2) continue;
    link_domains(d1, d2);
  }

  // 3. Stub domains.
  std::vector<HostId> all_transit;
  for (const auto& domain : transit)
    all_transit.insert(all_transit.end(), domain.begin(), domain.end());

  int stub_domain_id = 0;
  for (int d = 0; d < config.transit_domains; ++d) {
    for (const HostId transit_node : transit[static_cast<std::size_t>(d)]) {
      for (int s = 0; s < config.stub_domains_per_transit; ++s) {
        std::vector<HostId> stub_hosts;
        for (int h = 0; h < config.hosts_per_stub; ++h)
          stub_hosts.push_back(topology.add_host(
              HostInfo{HostKind::kStub, d, stub_domain_id}));
        connect_random(topology, stub_hosts, LinkClass::kIntraStub, 0.3,
                       rng);
        // Access link: random stub host homes to the transit node.
        const HostId gateway =
            stub_hosts[rng.next_u64(stub_hosts.size())];
        topology.add_link(gateway, transit_node, LinkClass::kTransitStub);
        if (rng.next_bool(config.stub_multihome_probability) &&
            all_transit.size() > 1) {
          HostId second = transit_node;
          while (second == transit_node)
            second = all_transit[rng.next_u64(all_transit.size())];
          const HostId gateway2 =
              stub_hosts[rng.next_u64(stub_hosts.size())];
          topology.add_link(gateway2, second, LinkClass::kTransitStub);
        }
        ++stub_domain_id;
      }
    }
  }

  topology.freeze();
  TO_ENSURES(topology.is_connected());
  TO_ENSURES(static_cast<int>(topology.host_count()) ==
             config.total_hosts());
  // Generated topologies always carry the full transit-stub annotations
  // (domains + gateway flags) the hierarchical RTT engine needs.
  TO_ENSURES(topology_supports_hierarchy(topology));
  return topology;
}

}  // namespace topo::net
