#include "net/rtt_engine.hpp"

#include <vector>

#include "net/dijkstra_rtt_engine.hpp"
#include "net/hierarchical_rtt_engine.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"

namespace topo::net {

const char* rtt_engine_kind_name(RttEngineKind kind) {
  switch (kind) {
    case RttEngineKind::kAuto: return "auto";
    case RttEngineKind::kDijkstra: return "dijkstra";
    case RttEngineKind::kHierarchical: return "hierarchical";
  }
  return "?";
}

RttEngineKind rtt_engine_kind_from_string(const std::string& name) {
  if (name == "auto") return RttEngineKind::kAuto;
  if (name == "dijkstra") return RttEngineKind::kDijkstra;
  if (name == "hierarchical") return RttEngineKind::kHierarchical;
  TO_LOG_WARN("unknown RTT engine '%s' (want auto|dijkstra|hierarchical); "
              "using auto",
              name.c_str());
  return RttEngineKind::kAuto;
}

RttEngineKind rtt_engine_kind_from_env() {
  return rtt_engine_kind_from_string(util::env_string("RTT_ENGINE", "auto"));
}

bool topology_supports_hierarchy(const Topology& topology) {
  if (!topology.frozen() || topology.host_count() == 0) return false;

  // Derive "has an access link" per host and validate link structure.
  std::vector<bool> has_access(topology.host_count(), false);
  for (const Link& link : topology.links()) {
    const HostInfo& a = topology.host(link.a);
    const HostInfo& b = topology.host(link.b);
    const bool a_stub = a.kind == HostKind::kStub;
    const bool b_stub = b.kind == HostKind::kStub;
    if (a_stub && b_stub) {
      // Stub-stub links crossing domains would break the intra-stub /
      // core / intra-stub decomposition.
      if (a.stub_domain < 0 || a.stub_domain != b.stub_domain) return false;
    } else if (a_stub != b_stub) {
      // Access links must be declared as such — the gateway annotation
      // (and thus the engine's gateway set) keys off the link class.
      if (link.link_class != LinkClass::kTransitStub) return false;
      has_access[a_stub ? link.a : link.b] = true;
    }
  }

  // Per-host metadata: stub hosts name a domain; gateway flags (however
  // the topology was built) agree with the links.
  std::vector<bool> domain_has_gateway;
  for (HostId h = 0; h < topology.host_count(); ++h) {
    const HostInfo& info = topology.host(h);
    if (info.kind == HostKind::kTransit) {
      if (info.gateway || has_access[h]) return false;
      continue;
    }
    if (info.stub_domain < 0) return false;
    if (info.gateway != has_access[h]) return false;
    const auto domain = static_cast<std::size_t>(info.stub_domain);
    if (domain >= domain_has_gateway.size())
      domain_has_gateway.resize(domain + 1, false);
    if (info.gateway) domain_has_gateway[domain] = true;
  }

  // Every populated stub domain must reach the core somewhere; a domain
  // with members but no gateway would be (exactly) unreachable.
  for (HostId h = 0; h < topology.host_count(); ++h) {
    const HostInfo& info = topology.host(h);
    if (info.kind == HostKind::kStub &&
        !domain_has_gateway[static_cast<std::size_t>(info.stub_domain)])
      return false;
  }
  return true;
}

std::unique_ptr<RttEngine> make_rtt_engine(const Topology& topology,
                                           RttEngineKind kind) {
  const bool supported = topology_supports_hierarchy(topology);
  if (kind == RttEngineKind::kHierarchical && !supported) {
    TO_LOG_WARN(
        "RTT_ENGINE=hierarchical requested but the topology carries no "
        "usable transit-stub metadata; falling back to dijkstra");
    kind = RttEngineKind::kDijkstra;
  }
  if (kind == RttEngineKind::kAuto)
    kind = supported ? RttEngineKind::kHierarchical : RttEngineKind::kDijkstra;
  if (kind == RttEngineKind::kHierarchical)
    return std::make_unique<HierarchicalRttEngine>(topology);
  return std::make_unique<DijkstraRttEngine>(topology);
}

}  // namespace topo::net
