// Single-source shortest paths over the physical topology.
#pragma once

#include <vector>

#include "net/graph.hpp"

namespace topo::net {

/// Dijkstra from `source`; returns one latency per host (ms).
/// Unreachable hosts get +infinity (never happens for our generators, which
/// guarantee connectivity).
std::vector<double> dijkstra(const Topology& topology, HostId source);

/// Dijkstra truncated at `radius_ms`: hosts farther than the radius keep
/// +infinity. Used by expanding-ring search simulation.
std::vector<double> dijkstra_within(const Topology& topology, HostId source,
                                    double radius_ms);

/// Hosts within `hop_radius` underlay hops of `source` (BFS), including the
/// source itself. Expanding-ring search floods by hop count.
std::vector<HostId> hosts_within_hops(const Topology& topology, HostId source,
                                      int hop_radius);

}  // namespace topo::net
