// Single-source shortest paths over the physical topology.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "net/graph.hpp"

namespace topo::net {

/// Reusable per-thread buffers for repeated Dijkstra runs. A 10k-host row
/// is ~80 KB of distances plus heap storage; the oracle runs thousands of
/// Dijkstras per bench, so recycling the buffers keeps the hot path free
/// of allocator traffic (and of allocator lock contention across threads).
/// Not thread-safe: use one scratch per thread (e.g. `thread_local`).
class DijkstraScratch {
 public:
  DijkstraScratch() = default;

  /// Distances from the most recent run (valid until the next run).
  std::span<const double> last_row() const { return dist_; }

 private:
  friend std::span<const double> dijkstra(const Topology&, HostId,
                                          DijkstraScratch&);
  friend std::span<const double> dijkstra_within(const Topology&, HostId,
                                                 double, DijkstraScratch&);
  friend std::vector<double> dijkstra(const Topology&, HostId);
  friend std::vector<double> dijkstra_within(const Topology&, HostId, double);

  std::vector<double> dist_;
  std::vector<std::pair<double, HostId>> heap_;
};

/// Dijkstra from `source` into `scratch`; returns one latency per host
/// (ms), valid until the scratch's next run. Unreachable hosts get
/// +infinity (never happens for our generators, which guarantee
/// connectivity).
std::span<const double> dijkstra(const Topology& topology, HostId source,
                                 DijkstraScratch& scratch);

/// Dijkstra truncated at `radius_ms`: hosts farther than the radius keep
/// +infinity. Used by expanding-ring search simulation.
std::span<const double> dijkstra_within(const Topology& topology,
                                        HostId source, double radius_ms,
                                        DijkstraScratch& scratch);

/// Allocating conveniences for one-off callers (tools, tests).
std::vector<double> dijkstra(const Topology& topology, HostId source);
std::vector<double> dijkstra_within(const Topology& topology, HostId source,
                                    double radius_ms);

/// Hosts within `hop_radius` underlay hops of `source` (BFS), including the
/// source itself. Expanding-ring search floods by hop count.
std::vector<HostId> hosts_within_hops(const Topology& topology, HostId source,
                                      int hop_radius);

}  // namespace topo::net
