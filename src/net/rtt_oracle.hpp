// Round-trip-time oracle: the simulation's single source of latency.
//
// Every latency the simulation observes — overlay hop costs, landmark
// measurements, explicit RTT probes — goes through this class. It
// separately counts *probes*: latency queries that model actual network
// measurements a real node would have to perform (as opposed to the
// simulator's own bookkeeping, which uses `latency_ms`). The probe counter
// is what the paper's "number of RTT measurements" axes report.
//
// The actual shortest-path computation lives behind the RttEngine
// interface (net/rtt_engine.hpp):
//
//  * hierarchical — precomputes per-stub all-pairs, a transit-core APSP
//    and per-host gateway vectors from the topology's transit-stub
//    metadata, then answers any pair in O(1). The default whenever the
//    metadata is present.
//  * dijkstra     — the classic per-source cached-row fallback for
//    arbitrary topologies (one full-graph Dijkstra per distinct source,
//    memoized, optionally bounded).
//
// Both are exact and bit-for-bit identical (link weights sit on the 2^-20
// ms quantization grid, so path sums are exact doubles); engine choice
// never changes any simulated number. Select with the RTT_ENGINE env var
// (`auto`/`hierarchical`/`dijkstra`) or an explicit RttEngineKind.
//
// Concurrency model. The oracle is safe to query from many threads at
// once, which is what lets the bench drivers fan trials out over a thread
// pool while sharing one oracle. The hierarchical engine is immutable
// after construction; the Dijkstra engine's row cache is lock-free on hits
// and double-check-locked on fills (see dijkstra_rtt_engine.hpp).
// `clear_cache`/`set_row_cap`/`set_measurement_noise` remain
// quiescent-only calls.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "net/graph.hpp"
#include "net/rtt_engine.hpp"
#include "net/traffic_plane.hpp"
#include "util/rng.hpp"

namespace topo::util {
class ThreadPool;
}  // namespace topo::util

namespace topo::net {

class RttOracle {
 public:
  /// Engine kind from the RTT_ENGINE env var (default: auto).
  explicit RttOracle(const Topology& topology);
  /// Explicit engine choice (kAuto resolves from the topology metadata;
  /// kHierarchical falls back to Dijkstra when the metadata is missing).
  RttOracle(const Topology& topology, RttEngineKind kind);
  ~RttOracle();

  RttOracle(const RttOracle&) = delete;
  RttOracle& operator=(const RttOracle&) = delete;

  const Topology& topology() const { return *topology_; }

  /// The resolved backend ("hierarchical" or "dijkstra").
  const char* engine_name() const { return engine_->name(); }
  const RttEngine& engine() const { return *engine_; }

  /// Attaches a traffic plane: while the plane is active, every latency
  /// this oracle reports carries the round-trip queuing delay of the
  /// physical path on top of the engine's propagation RTT — probes,
  /// landmark vectors and overlay hop costs all see load. With the plane
  /// detached or inactive the added term is exactly absent (not merely
  /// zero), so results are bit-identical to a build without it. An
  /// oracle with a traffic plane attached is single-threaded (the plane's
  /// path cache mutates on query); benches that share an oracle across
  /// trials share a queue-free one.
  void set_traffic_plane(TrafficPlane* plane) { traffic_ = plane; }
  const TrafficPlane* traffic_plane() const { return traffic_; }

  /// Simulator-side latency lookup (free; not counted as a probe).
  double latency_ms(HostId from, HostId to) {
    TO_EXPECTS(from < topology_->host_count());
    TO_EXPECTS(to < topology_->host_count());
    if (from == to) return 0.0;
    double rtt = engine_->latency_ms(from, to);
    if (traffic_ != nullptr && traffic_->active())
      rtt += traffic_->queuing_delay_ms(from, to);
    return rtt;
  }

  /// A modeled network measurement: counted, and — unlike the simulator's
  /// own bookkeeping — subject to the configured measurement noise, the
  /// way a real ping sample jitters around the propagation latency.
  double probe_rtt(HostId from, HostId to) {
    probe_count_.fetch_add(1, std::memory_order_relaxed);
    double rtt = latency_ms(from, to);
    if (noise_fraction_ > 0.0) {
      // The draw order (and thus each sample) depends on probe
      // interleaving; parallel benches keep determinism by giving each
      // trial its own oracle or its own seeded noise stream.
      std::lock_guard lock(noise_mutex_);
      rtt *= 1.0 + noise_rng_.next_double(-noise_fraction_, noise_fraction_);
    }
    return rtt;
  }

  /// Enables multiplicative measurement noise: each probe is scaled by a
  /// uniform factor in [1-f, 1+f]. This is what the Section 5.4 SVD
  /// optimization is designed to suppress; the ablation bench exercises
  /// both regimes. Call before sharing the oracle across threads.
  void set_measurement_noise(double fraction, std::uint64_t seed) {
    TO_EXPECTS(fraction >= 0.0 && fraction < 1.0);
    noise_fraction_ = fraction;
    noise_rng_ = util::Rng(seed);
  }
  double measurement_noise() const { return noise_fraction_; }

  /// Bulk measurement column for join waves: out[i] = probe_rtt(froms[i],
  /// to), charged as froms.size() probes. Values and probe totals are
  /// identical to the scalar loop (the engine's column query is exact and
  /// orientation-independent); only the engine-internal walk order — and,
  /// with measurement noise enabled, the noise draw order — differs, so
  /// callers that need scalar-identical noise samples keep the scalar
  /// loop.
  void probe_rtt_many(std::span<const HostId> froms, HostId to,
                      std::span<double> out) {
    TO_EXPECTS(to < topology_->host_count());
    TO_EXPECTS(out.size() >= froms.size());
    probe_count_.fetch_add(froms.size(), std::memory_order_relaxed);
    engine_->latency_column(to, froms, out);
    if (traffic_ != nullptr && traffic_->active()) {
      // Same queuing term as the scalar path, added before noise so bulk
      // and scalar probes stay value-identical.
      for (std::size_t i = 0; i < froms.size(); ++i)
        if (froms[i] != to) out[i] += traffic_->queuing_delay_ms(froms[i], to);
    }
    if (noise_fraction_ > 0.0) {
      std::lock_guard lock(noise_mutex_);
      for (std::size_t i = 0; i < froms.size(); ++i)
        out[i] *=
            1.0 + noise_rng_.next_double(-noise_fraction_, noise_fraction_);
    }
  }

  /// Among `candidates`, the host with smallest latency from `from`,
  /// charged as one probe per candidate. Empty candidates -> kInvalidHost.
  HostId probe_nearest(HostId from, std::span<const HostId> candidates);

  /// The true nearest host to `from` within `candidates` (oracle; free).
  HostId nearest(HostId from, std::span<const HostId> candidates);

  std::uint64_t probe_count() const {
    return probe_count_.load(std::memory_order_relaxed);
  }
  void reset_probe_count() {
    probe_count_.store(0, std::memory_order_relaxed);
  }

  /// Full-graph Dijkstras the engine has run (0 for hierarchical — its
  /// precompute uses restricted subgraph Dijkstras, not cached rows).
  std::uint64_t dijkstra_runs() const { return engine_->dijkstra_runs(); }

  /// Drop all cached rows (memory control between sweep phases; no-op for
  /// the hierarchical engine). Not safe concurrently with queries — call
  /// at a quiescent point.
  void clear_cache() { engine_->clear_cache(); }

  /// Precompute & pin rows for the given sources (bulk experiments).
  /// Runs across the pool; a no-op for the already-precomputed
  /// hierarchical engine.
  void warm(std::span<const HostId> sources);
  void warm(std::span<const HostId> sources, util::ThreadPool& pool);

  /// Bounded-memory mode for long sweeps: keep at most `cap` unpinned rows
  /// cached (0 = unbounded, the default; no-op for hierarchical). Evicted
  /// rows are recomputed on demand, so results are unchanged — only
  /// Dijkstra counts and memory differ. Call before sharing the oracle
  /// across threads.
  void set_row_cap(std::size_t cap) { engine_->set_row_cap(cap); }
  std::size_t row_cap() const { return engine_->row_cap(); }

  /// Rows currently cached (pinned + unpinned; 0 for hierarchical).
  std::size_t cached_rows() const { return engine_->cached_rows(); }

 private:
  const Topology* topology_;
  std::unique_ptr<RttEngine> engine_;
  TrafficPlane* traffic_ = nullptr;
  std::atomic<std::uint64_t> probe_count_{0};
  double noise_fraction_ = 0.0;
  util::Rng noise_rng_{0};
  std::mutex noise_mutex_;
};

}  // namespace topo::net
