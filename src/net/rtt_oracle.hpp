// Cached round-trip-time oracle.
//
// Every latency the simulation observes — overlay hop costs, landmark
// measurements, explicit RTT probes — goes through this class. It memoizes
// Dijkstra rows per source so repeated queries from the same host are O(1),
// and it separately counts *probes*: latency queries that model actual
// network measurements a real node would have to perform (as opposed to the
// simulator's own bookkeeping, which uses `latency_ms`). The probe counter
// is what the paper's "number of RTT measurements" axes report.
//
// Concurrency model. The oracle is safe to query from many threads at
// once, which is what lets the bench drivers fan trials out over a thread
// pool while sharing one warmed cache:
//
//  - Rows live in a flat slot table indexed by HostId (one atomic pointer
//    per host), so a cache hit is two array reads — no hashing, no lock.
//  - Row construction is guarded by sharded mutexes with double-checked
//    locking: concurrent queries for the same uncached source run exactly
//    one Dijkstra between them, so `dijkstra_runs()` never exceeds the
//    number of distinct sources touched.
//  - `probe_count_` / `dijkstra_runs_` are atomic; results are exact
//    shortest-path latencies, so the numbers a bench prints are identical
//    at any thread count.
//  - In the default unbounded mode rows are immortal until `clear_cache()`
//    (which, like `set_row_cap`/`set_measurement_noise`, must be called
//    while no other thread is querying). With a row cap set, eviction can
//    run concurrently with queries: readers then take a sharded shared
//    lock so a row is never freed mid-read.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace topo::util {
class ThreadPool;
}  // namespace topo::util

namespace topo::net {

class RttOracle {
 public:
  explicit RttOracle(const Topology& topology);
  ~RttOracle();

  RttOracle(const RttOracle&) = delete;
  RttOracle& operator=(const RttOracle&) = delete;

  const Topology& topology() const { return *topology_; }

  /// Simulator-side latency lookup (free; not counted as a probe). Served
  /// from whichever endpoint's row is cached; caches `from`'s otherwise.
  double latency_ms(HostId from, HostId to);

  /// A modeled network measurement: counted, and — unlike the simulator's
  /// own bookkeeping — subject to the configured measurement noise, the
  /// way a real ping sample jitters around the propagation latency.
  double probe_rtt(HostId from, HostId to) {
    probe_count_.fetch_add(1, std::memory_order_relaxed);
    double rtt = latency_ms(from, to);
    if (noise_fraction_ > 0.0) {
      // The draw order (and thus each sample) depends on probe
      // interleaving; parallel benches keep determinism by giving each
      // trial its own oracle or its own seeded noise stream.
      std::lock_guard lock(noise_mutex_);
      rtt *= 1.0 + noise_rng_.next_double(-noise_fraction_, noise_fraction_);
    }
    return rtt;
  }

  /// Enables multiplicative measurement noise: each probe is scaled by a
  /// uniform factor in [1-f, 1+f]. This is what the Section 5.4 SVD
  /// optimization is designed to suppress; the ablation bench exercises
  /// both regimes. Call before sharing the oracle across threads.
  void set_measurement_noise(double fraction, std::uint64_t seed) {
    TO_EXPECTS(fraction >= 0.0 && fraction < 1.0);
    noise_fraction_ = fraction;
    noise_rng_ = util::Rng(seed);
  }
  double measurement_noise() const { return noise_fraction_; }

  /// Among `candidates`, the host with smallest latency from `from`,
  /// charged as one probe per candidate. Empty candidates -> kInvalidHost.
  HostId probe_nearest(HostId from, std::span<const HostId> candidates);

  /// The true nearest host to `from` within `candidates` (oracle; free).
  HostId nearest(HostId from, std::span<const HostId> candidates);

  std::uint64_t probe_count() const {
    return probe_count_.load(std::memory_order_relaxed);
  }
  void reset_probe_count() {
    probe_count_.store(0, std::memory_order_relaxed);
  }

  std::uint64_t dijkstra_runs() const {
    return dijkstra_runs_.load(std::memory_order_relaxed);
  }

  /// Drop all cached rows (memory control between sweep phases). Not safe
  /// concurrently with queries — call at a quiescent point.
  void clear_cache();

  /// Precompute & pin rows for the given sources (bulk experiments).
  /// Runs the Dijkstras in parallel on the global pool; pinned rows are
  /// exempt from bounded-mode eviction.
  void warm(std::span<const HostId> sources);
  void warm(std::span<const HostId> sources, util::ThreadPool& pool);

  /// Bounded-memory mode for long sweeps: keep at most `cap` unpinned rows
  /// cached, evicting approximately-least-recently-used rows as new ones
  /// are built (0 = unbounded, the default). Evicted rows are recomputed
  /// on demand, so results are unchanged — only Dijkstra counts and memory
  /// differ. Call before sharing the oracle across threads.
  void set_row_cap(std::size_t cap) {
    row_cap_.store(cap, std::memory_order_relaxed);
  }
  std::size_t row_cap() const {
    return row_cap_.load(std::memory_order_relaxed);
  }

  /// Rows currently cached (pinned + unpinned).
  std::size_t cached_rows() const {
    return cached_rows_.load(std::memory_order_relaxed);
  }

 private:
  struct Row {
    explicit Row(std::vector<double> d) : dist(std::move(d)) {}
    std::vector<double> dist;
    std::atomic<std::uint64_t> stamp{0};  // approximate-LRU access clock
    std::atomic<bool> pinned{false};
  };

  static constexpr std::size_t kShards = 64;
  std::size_t shard_of(HostId h) const { return h % kShards; }

  bool bounded() const {
    return row_cap_.load(std::memory_order_relaxed) > 0;
  }
  void touch(Row& row) {
    row.stamp.store(access_clock_.fetch_add(1, std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }

  /// Reads slot `source` (exact-index hit only); returns the latency to
  /// `to` through `out`. Takes the shard's shared lock in bounded mode.
  bool try_read(HostId source, HostId to, double* out);

  /// Builds (or finds, under double-checked locking) `from`'s row and
  /// returns the latency to `to`. `pin` marks the row eviction-exempt.
  double build_and_read(HostId from, HostId to, bool pin);

  void evict_over_cap();

  const Topology* topology_;
  std::vector<std::atomic<Row*>> slots_;  // one per host; null = uncached
  mutable std::array<std::shared_mutex, kShards> shard_mutex_;
  std::atomic<std::uint64_t> probe_count_{0};
  std::atomic<std::uint64_t> dijkstra_runs_{0};
  std::atomic<std::uint64_t> access_clock_{0};
  std::atomic<std::size_t> cached_rows_{0};
  std::atomic<std::size_t> row_cap_{0};
  double noise_fraction_ = 0.0;
  util::Rng noise_rng_{0};
  std::mutex noise_mutex_;
};

}  // namespace topo::net
