// Cached round-trip-time oracle.
//
// Every latency the simulation observes — overlay hop costs, landmark
// measurements, explicit RTT probes — goes through this class. It memoizes
// Dijkstra rows per source so repeated queries from the same host are O(1),
// and it separately counts *probes*: latency queries that model actual
// network measurements a real node would have to perform (as opposed to the
// simulator's own bookkeeping, which uses `latency_ms`). The probe counter
// is what the paper's "number of RTT measurements" axes report.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace topo::net {

class RttOracle {
 public:
  explicit RttOracle(const Topology& topology) : topology_(&topology) {}

  const Topology& topology() const { return *topology_; }

  /// Simulator-side latency lookup (free; not counted as a probe).
  double latency_ms(HostId from, HostId to);

  /// A modeled network measurement: counted, and — unlike the simulator's
  /// own bookkeeping — subject to the configured measurement noise, the
  /// way a real ping sample jitters around the propagation latency.
  double probe_rtt(HostId from, HostId to) {
    ++probe_count_;
    double rtt = latency_ms(from, to);
    if (noise_fraction_ > 0.0)
      rtt *= 1.0 + noise_rng_.next_double(-noise_fraction_, noise_fraction_);
    return rtt;
  }

  /// Enables multiplicative measurement noise: each probe is scaled by a
  /// uniform factor in [1-f, 1+f]. This is what the Section 5.4 SVD
  /// optimization is designed to suppress; the ablation bench exercises
  /// both regimes.
  void set_measurement_noise(double fraction, std::uint64_t seed) {
    TO_EXPECTS(fraction >= 0.0 && fraction < 1.0);
    noise_fraction_ = fraction;
    noise_rng_ = util::Rng(seed);
  }
  double measurement_noise() const { return noise_fraction_; }

  /// Among `candidates`, the host with smallest latency from `from`,
  /// charged as one probe per candidate. Empty candidates -> kInvalidHost.
  HostId probe_nearest(HostId from, std::span<const HostId> candidates);

  /// The true nearest host to `from` within `candidates` (oracle; free).
  HostId nearest(HostId from, std::span<const HostId> candidates);

  std::uint64_t probe_count() const { return probe_count_; }
  void reset_probe_count() { probe_count_ = 0; }

  std::uint64_t dijkstra_runs() const { return dijkstra_runs_; }

  /// Drop all cached rows (memory control for long sweeps).
  void clear_cache();

  /// Precompute & pin rows for the given sources (bulk experiments).
  void warm(std::span<const HostId> sources);

 private:
  const std::vector<double>& row(HostId source);

  const Topology* topology_;
  std::unordered_map<HostId, std::vector<double>> rows_;
  std::uint64_t probe_count_ = 0;
  std::uint64_t dijkstra_runs_ = 0;
  double noise_fraction_ = 0.0;
  util::Rng noise_rng_{0};
};

}  // namespace topo::net
