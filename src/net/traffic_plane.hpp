// Traffic plane: link capacities, queuing delay, and congestion drops.
//
// The fault plane (sim/fault_plane.hpp) makes *failure* a first-class
// input; this component does the same for *load*. Without it, "RTT" is
// propagation-only and offered traffic is invisible — the paper's §6
// load/capacity records and load-change notifications have nothing real
// to report. The traffic plane gives every physical link a capacity (in
// messages/sec, assigned per LinkClass), accumulates offered load from
// two sources, and converts utilization into the two observable effects
// of congestion:
//
//   * queuing delay — an M/M/1-style waiting time per link,
//       Wq(u) = S * u / (1 - u),  S = 1000/capacity ms,
//     summed over the links of the physical shortest path and composed
//     onto engine RTTs by net::RttOracle (so probes, landmark vectors and
//     overlay hop costs all see load, the way a real ping would);
//   * drops — once a link's utilization crosses `drop_threshold`, each
//     message crossing it is dropped with probability ramping linearly to
//     1.0 at `drop_full`, compounded over the path's saturated links with
//     a single seeded draw per message (mirroring FaultPlane's one loss
//     draw per message).
//
// Offered load per link comes from (a) `offer_flow` — long-lived
// background flows, rate in messages/sec, added along the physical
// shortest path — and (b) the system's own control/data messages,
// counted per link as they are gated through `message`/`message_via` and
// folded into a measured msg/s rate at each `utilization_window_ms`
// rollover (advance_to). Utilization is (offered + measured) / capacity.
//
// `host_utilization` — the max utilization over a host's attached links —
// is the default load probe the overlay publishes into the soft-state
// maps, which closes the §6 loop: saturation shows up in map entries,
// kLoadExceeded subscriptions fire, and the load-aware selector steers
// re-selection away from hot representatives.
//
// Determinism and bit-identity when off. Like the fault plane: all drop
// decisions come from one seeded RNG in call order, and a draw happens
// only when a message actually crosses a saturated link — an inactive
// plane (enabled=false, the default) is never consulted because callers
// gate on active(), and an active-but-idle plane makes no draws. A trial
// owns its plane and runs single-threaded; the shortest-path tree cache
// mutates on query, so an RttOracle with a traffic plane attached must
// not be shared across threads.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "net/graph.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace topo::net {

struct TrafficConfig {
  /// Master switch. Off by default: every message path is bit-identical
  /// to a build without the plane.
  bool enabled = false;

  /// Per-class link capacity in messages/sec. The defaults follow the
  /// transit-stub hierarchy: fat core links, thin stub access links.
  double inter_transit_capacity = 4000.0;
  double intra_transit_capacity = 2000.0;
  double transit_stub_capacity = 1000.0;
  double intra_stub_capacity = 500.0;

  /// M/M/1 waiting time diverges at u=1; utilization is clamped here for
  /// the delay term so overload yields a large finite delay (drops model
  /// the rest of the pain).
  double utilization_cap = 0.98;

  /// Drop ramp: P(drop) is 0 below drop_threshold, then rises linearly
  /// to 1.0 at drop_full utilization.
  double drop_threshold = 0.9;
  double drop_full = 2.0;

  /// Window over which gated messages are folded into a measured msg/s
  /// rate (advance_to). Larger windows smooth self-induced load.
  double utilization_window_ms = 1000.0;

  /// Seed for the drop draws; latched at construction.
  std::uint64_t seed = 0;

  double capacity_for(LinkClass link_class) const {
    switch (link_class) {
      case LinkClass::kInterTransit: return inter_transit_capacity;
      case LinkClass::kIntraTransit: return intra_transit_capacity;
      case LinkClass::kTransitStub: return transit_stub_capacity;
      case LinkClass::kIntraStub: return intra_stub_capacity;
    }
    return 0.0;
  }
};

struct TrafficPlaneStats {
  std::uint64_t messages = 0;      // messages gated while active
  std::uint64_t dropped = 0;       // congestion drops
  std::uint64_t delayed = 0;       // delivered messages that queued
  double queue_delay_ms = 0.0;     // summed one-way delay over delivered
};

class TrafficPlane {
 public:
  struct Verdict {
    bool delivered = true;
    /// One-way queuing delay accumulated along the path (0 if dropped
    /// before completion accounting — a dropped message still reports
    /// the delay of the full path for symmetry, but callers should only
    /// use it when delivered).
    double delay_ms = 0.0;
  };

  /// Default-constructed plane is disabled: active() is false and callers
  /// skip it entirely.
  TrafficPlane() : rng_(0) {}
  explicit TrafficPlane(const TrafficConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Binds the physical graph and assigns per-link capacities from the
  /// link classes. Required before any gating or delay query.
  void bind_topology(const Topology* topology);

  const TrafficConfig& config() const { return config_; }

  /// True when the plane participates in message gating and RTT
  /// composition. Hot paths gate on this; when false the plane costs one
  /// branch and is never consulted, preserving bit-identity.
  bool active() const { return config_.enabled && topology_ != nullptr; }

  // -- Offered load --------------------------------------------------------

  /// Adds a long-lived flow of `rate_mps` messages/sec along the physical
  /// shortest path from -> to. Negative rates subtract (tear-down).
  void offer_flow(HostId from, HostId to, double rate_mps);
  /// Removes all offered flows (measured rates are untouched).
  void clear_flows();

  /// Overrides one link's capacity (tests and hotspot experiments).
  void set_link_capacity(std::uint32_t link_index, double capacity_mps);

  // -- Measured load -------------------------------------------------------

  /// Folds the per-link message counts gathered since the last rollover
  /// into measured msg/s rates once `utilization_window_ms` has elapsed.
  /// The overlay facade calls this as simulated time advances.
  void advance_to(double now_ms);

  // -- Utilization & delay -------------------------------------------------

  double link_capacity(std::uint32_t link_index) const {
    TO_EXPECTS(link_index < capacity_mps_.size());
    return capacity_mps_[link_index];
  }

  double link_utilization(std::uint32_t link_index) const {
    TO_EXPECTS(link_index < capacity_mps_.size());
    const double cap = capacity_mps_[link_index];
    if (cap <= 0.0) return 0.0;
    return (offered_mps_[link_index] + measured_mps_[link_index]) / cap;
  }

  /// Max utilization over the host's attached links — the congestion a
  /// node actually experiences, and the default load probe the overlay
  /// publishes (capacity 1.0: the published load IS a utilization).
  double host_utilization(HostId host) const;

  /// Round-trip queuing delay along the physical shortest path between
  /// two hosts: 2x the one-way sum of per-link M/M/1 waiting times. This
  /// is the term RttOracle adds to engine RTTs. Pure query: records no
  /// traffic, draws nothing.
  double queuing_delay_ms(HostId from, HostId to);

  /// Largest utilization over all links (introspection/bench reporting).
  double max_link_utilization() const;
  /// Links at or above drop_threshold utilization.
  std::size_t saturated_link_count() const;

  // -- Message gating ------------------------------------------------------

  /// Gates one point-to-point message: records it on every link of the
  /// physical path, accumulates one-way queuing delay, and draws (at most
  /// one) drop decision compounded over the path's saturated links.
  Verdict message(HostId from, HostId to);

  /// Gates a message forwarded along a routed overlay path (a sequence of
  /// node hops; `host_of` maps a hop to its host). Each overlay hop
  /// traverses its physical shortest path; delay accumulates over all of
  /// them and the drop draw stays per-message, matching message(). A
  /// single-element path is a self-delivery: no links crossed, no cost.
  template <typename Path, typename HostOf>
  Verdict message_via(const Path& path, HostOf&& host_of) {
    TO_EXPECTS(!path.empty());
    ++stats_.messages;
    double delay = 0.0;
    double survive = 1.0;
    HostId prev = host_of(path.front());
    for (std::size_t i = 1; i < path.size(); ++i) {
      const HostId host = host_of(path[i]);
      traverse_(prev, host, delay, survive);
      prev = host;
    }
    return finish_(delay, survive);
  }

  const TrafficPlaneStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  static constexpr std::uint32_t kNoLink = ~0u;

  /// Per-link queuing delay (one-way) at current utilization.
  double link_queue_delay_ms(std::uint32_t link_index) const;
  /// Per-link drop probability at current utilization.
  double link_drop_probability(std::uint32_t link_index) const;

  /// Records one message on every link of the physical path from -> to,
  /// accumulating delay and survival probability.
  void traverse_(HostId from, HostId to, double& delay, double& survive);
  /// Drop draw (only when some crossed link was saturated) + accounting.
  Verdict finish_(double delay, double survive);

  /// Parent-link shortest-path tree rooted at `source` (cached). Trees
  /// are keyed on the smaller endpoint of a query, halving the cache.
  const std::vector<std::uint32_t>& parent_tree_(HostId source);

  template <typename Fn>
  void for_each_path_link_(HostId from, HostId to, Fn&& fn) {
    if (from == to) return;
    const HostId root = from < to ? from : to;
    const HostId leaf = from < to ? to : from;
    const auto& parent = parent_tree_(root);
    const auto links = topology_->links();
    for (HostId h = leaf; h != root;) {
      const std::uint32_t l = parent[h];
      TO_EXPECTS(l != kNoLink);
      fn(l);
      const Link& link = links[l];
      h = link.a == h ? link.b : link.a;
    }
  }

  TrafficConfig config_;
  const Topology* topology_ = nullptr;

  std::vector<double> capacity_mps_;   // per link
  std::vector<double> offered_mps_;    // per link, from offer_flow
  std::vector<double> measured_mps_;   // per link, from window rollover
  std::vector<double> window_counts_;  // per link, messages this window
  double window_start_ms_ = 0.0;

  std::unordered_map<HostId, std::vector<std::uint32_t>> parent_links_;
  // Dijkstra scratch (reused across tree builds).
  std::vector<double> dist_scratch_;

  util::Rng rng_;
  TrafficPlaneStats stats_;
};

}  // namespace topo::net
