#include "net/traffic_plane.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace topo::net {

void TrafficPlane::bind_topology(const Topology* topology) {
  TO_EXPECTS(topology != nullptr && topology->frozen());
  topology_ = topology;
  const std::size_t links = topology->link_count();
  capacity_mps_.resize(links);
  offered_mps_.assign(links, 0.0);
  measured_mps_.assign(links, 0.0);
  window_counts_.assign(links, 0.0);
  window_start_ms_ = 0.0;
  const auto all = topology->links();
  for (std::size_t i = 0; i < links; ++i)
    capacity_mps_[i] = config_.capacity_for(all[i].link_class);
  parent_links_.clear();
}

void TrafficPlane::offer_flow(HostId from, HostId to, double rate_mps) {
  TO_EXPECTS(topology_ != nullptr);
  for_each_path_link_(from, to, [&](std::uint32_t l) {
    offered_mps_[l] = std::max(0.0, offered_mps_[l] + rate_mps);
  });
}

void TrafficPlane::clear_flows() {
  std::fill(offered_mps_.begin(), offered_mps_.end(), 0.0);
}

void TrafficPlane::set_link_capacity(std::uint32_t link_index,
                                     double capacity_mps) {
  TO_EXPECTS(link_index < capacity_mps_.size());
  capacity_mps_[link_index] = capacity_mps;
}

void TrafficPlane::advance_to(double now_ms) {
  if (topology_ == nullptr) return;
  const double elapsed = now_ms - window_start_ms_;
  if (elapsed < config_.utilization_window_ms || elapsed <= 0.0) return;
  const double scale = 1000.0 / elapsed;
  for (std::size_t i = 0; i < window_counts_.size(); ++i) {
    measured_mps_[i] = window_counts_[i] * scale;
    window_counts_[i] = 0.0;
  }
  window_start_ms_ = now_ms;
}

double TrafficPlane::host_utilization(HostId host) const {
  TO_EXPECTS(topology_ != nullptr);
  double utilization = 0.0;
  for (const auto& nb : topology_->neighbors(host))
    utilization = std::max(utilization, link_utilization(nb.link_index));
  return utilization;
}

double TrafficPlane::queuing_delay_ms(HostId from, HostId to) {
  TO_EXPECTS(topology_ != nullptr);
  double delay = 0.0;
  for_each_path_link_(from, to,
                      [&](std::uint32_t l) { delay += link_queue_delay_ms(l); });
  return 2.0 * delay;  // both directions of the round trip queue
}

double TrafficPlane::max_link_utilization() const {
  double utilization = 0.0;
  for (std::size_t i = 0; i < capacity_mps_.size(); ++i)
    utilization =
        std::max(utilization, link_utilization(static_cast<std::uint32_t>(i)));
  return utilization;
}

std::size_t TrafficPlane::saturated_link_count() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < capacity_mps_.size(); ++i)
    if (link_utilization(static_cast<std::uint32_t>(i)) >=
        config_.drop_threshold)
      ++count;
  return count;
}

double TrafficPlane::link_queue_delay_ms(std::uint32_t link_index) const {
  const double cap = capacity_mps_[link_index];
  if (cap <= 0.0) return 0.0;
  double u = link_utilization(link_index);
  if (u <= 0.0) return 0.0;
  u = std::min(u, config_.utilization_cap);
  return (1000.0 / cap) * u / (1.0 - u);
}

double TrafficPlane::link_drop_probability(std::uint32_t link_index) const {
  const double u = link_utilization(link_index);
  if (u <= config_.drop_threshold) return 0.0;
  if (config_.drop_full <= config_.drop_threshold) return 1.0;
  return std::min(
      1.0, (u - config_.drop_threshold) /
               (config_.drop_full - config_.drop_threshold));
}

void TrafficPlane::traverse_(HostId from, HostId to, double& delay,
                             double& survive) {
  for_each_path_link_(from, to, [&](std::uint32_t l) {
    window_counts_[l] += 1.0;
    delay += link_queue_delay_ms(l);
    const double p = link_drop_probability(l);
    if (p > 0.0) survive *= 1.0 - p;
  });
}

TrafficPlane::Verdict TrafficPlane::finish_(double delay, double survive) {
  // One drop draw per message, and only when a saturated link was actually
  // crossed — an uncongested plane makes no draws, keeping traces
  // independent of whether it is attached.
  if (survive < 1.0 && !rng_.next_bool(survive)) {
    ++stats_.dropped;
    return Verdict{false, delay};
  }
  if (delay > 0.0) {
    ++stats_.delayed;
    stats_.queue_delay_ms += delay;
  }
  return Verdict{true, delay};
}

TrafficPlane::Verdict TrafficPlane::message(HostId from, HostId to) {
  TO_EXPECTS(topology_ != nullptr);
  ++stats_.messages;
  double delay = 0.0;
  double survive = 1.0;
  traverse_(from, to, delay, survive);
  return finish_(delay, survive);
}

const std::vector<std::uint32_t>& TrafficPlane::parent_tree_(HostId source) {
  auto it = parent_links_.find(source);
  if (it != parent_links_.end()) return it->second;

  const std::size_t n = topology_->host_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::uint32_t> parent(n, kNoLink);
  dist_scratch_.assign(n, kInf);
  dist_scratch_[source] = 0.0;

  using Item = std::pair<double, HostId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, h] = heap.top();
    heap.pop();
    if (d > dist_scratch_[h]) continue;
    for (const auto& nb : topology_->neighbors(h)) {
      const double nd = d + topology_->link_latency(nb.link_index);
      if (nd < dist_scratch_[nb.host]) {
        dist_scratch_[nb.host] = nd;
        parent[nb.host] = nb.link_index;
        heap.emplace(nd, nb.host);
      }
    }
  }
  return parent_links_.emplace(source, std::move(parent)).first->second;
}

}  // namespace topo::net
