// GT-ITM-style transit-stub topology generation.
//
// The paper evaluates on two ~10,000-host transit-stub topologies generated
// with GT-ITM (Zegura et al., "How to model an internetwork"). GT-ITM is not
// redistributable here, so we implement the same generative family:
//
//   * `transit_domains` transit domains whose domain-level backbone is a
//     random connected graph (spanning tree + extra edges);
//   * each transit domain holds `transit_nodes_per_domain` transit nodes,
//     again a random connected graph;
//   * every transit node attaches `stub_domains_per_transit` stub domains;
//   * each stub domain holds `hosts_per_stub` hosts forming a random
//     connected graph, and is homed to its transit node via one access link
//     (plus optional extra multi-homing links).
//
// The two presets mirror the paper's tsk-large (big backbone, sparse stubs)
// and tsk-small (small backbone, dense stubs).
#pragma once

#include <string>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace topo::net {

struct TransitStubConfig {
  int transit_domains = 8;
  int transit_nodes_per_domain = 4;
  int stub_domains_per_transit = 8;
  int hosts_per_stub = 39;

  /// Probability of each extra (non-tree) edge inside a random connected
  /// graph, as edge density beyond the spanning tree: expected extra edges =
  /// extra_edge_factor * node_count.
  double intra_domain_extra_edges = 0.4;
  /// Expected number of extra inter-domain backbone edges beyond the
  /// domain-level spanning tree, per domain.
  double inter_domain_extra_edges = 0.5;
  /// Probability that a stub domain is multi-homed with a second transit
  /// link (GT-ITM supports this; the paper leaves it at default).
  double stub_multihome_probability = 0.0;

  std::string name = "custom";

  int total_hosts() const {
    const int transit = transit_domains * transit_nodes_per_domain;
    const int stubs =
        transit * stub_domains_per_transit * hosts_per_stub;
    return transit + stubs;
  }
};

/// Paper preset: large backbone, sparse edge network (~10k hosts).
TransitStubConfig tsk_large();
/// Paper preset: small backbone, dense edge network (~10k hosts).
TransitStubConfig tsk_small();

/// Scaled-down variants for unit tests and the quickstart example.
TransitStubConfig tsk_tiny();

/// Generates a connected transit-stub topology. Latencies are left at zero;
/// apply a net::LatencyModel afterwards. Deterministic given `rng`.
Topology generate_transit_stub(const TransitStubConfig& config,
                               util::Rng& rng);

}  // namespace topo::net
