#include "net/topology_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace topo::net {

namespace {

[[noreturn]] void malformed(const std::string& detail) {
  throw std::runtime_error("malformed topology file: " + detail);
}

/// Next non-comment, non-empty line.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void save_topology(const Topology& topology, std::ostream& out) {
  out.precision(17);  // doubles round-trip exactly
  out << "topo-overlay-topology v2\n";
  out << "hosts " << topology.host_count() << "\n";
  for (HostId h = 0; h < topology.host_count(); ++h) {
    const HostInfo& info = topology.host(h);
    out << "h " << static_cast<int>(info.kind) << ' ' << info.transit_domain
        << ' ' << info.stub_domain << ' ' << (info.gateway ? 1 : 0) << '\n';
  }
  out << "links " << topology.link_count() << "\n";
  for (const Link& link : topology.links()) {
    out << "l " << link.a << ' ' << link.b << ' '
        << static_cast<int>(link.link_class) << ' ' << link.latency_ms
        << '\n';
  }
}

void save_topology_file(const Topology& topology, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_topology(topology, out);
}

Topology load_topology(std::istream& in) {
  std::string line;
  if (!next_line(in, line)) malformed("missing or wrong header");
  int version = 0;
  if (line.rfind("topo-overlay-topology v1", 0) == 0)
    version = 1;
  else if (line.rfind("topo-overlay-topology v2", 0) == 0)
    version = 2;
  else
    malformed("missing or wrong header");

  if (!next_line(in, line)) malformed("missing hosts section");
  std::size_t host_count = 0;
  {
    std::istringstream s(line);
    std::string tag;
    if (!(s >> tag >> host_count) || tag != "hosts")
      malformed("bad hosts line: " + line);
  }

  Topology topology;
  std::vector<bool> declared_gateway(host_count, false);
  for (std::size_t i = 0; i < host_count; ++i) {
    if (!next_line(in, line)) malformed("truncated hosts section");
    std::istringstream s(line);
    std::string tag;
    int kind = 0;
    HostInfo info;
    if (!(s >> tag >> kind >> info.transit_domain >> info.stub_domain) ||
        tag != "h" || kind < 0 || kind > 1)
      malformed("bad host line: " + line);
    if (version >= 2) {
      int gateway = 0;
      if (!(s >> gateway) || gateway < 0 || gateway > 1)
        malformed("bad host line (v2 needs a gateway flag): " + line);
      declared_gateway[i] = gateway != 0;
    }
    info.kind = static_cast<HostKind>(kind);
    // The gateway flag is never taken on faith: add_link re-derives it
    // from the kTransitStub links below, and v2 declarations are checked
    // against the derived truth after the links are read.
    topology.add_host(info);
  }

  if (!next_line(in, line)) malformed("missing links section");
  std::size_t link_count = 0;
  {
    std::istringstream s(line);
    std::string tag;
    if (!(s >> tag >> link_count) || tag != "links")
      malformed("bad links line: " + line);
  }

  std::vector<double> latencies;
  latencies.reserve(link_count);
  for (std::size_t i = 0; i < link_count; ++i) {
    if (!next_line(in, line)) malformed("truncated links section");
    std::istringstream s(line);
    std::string tag;
    HostId a = kInvalidHost;
    HostId b = kInvalidHost;
    int link_class = 0;
    double latency = 0.0;
    if (!(s >> tag >> a >> b >> link_class >> latency) || tag != "l" ||
        link_class < 0 || link_class > 3)
      malformed("bad link line: " + line);
    if (a >= host_count || b >= host_count || a == b)
      malformed("link endpoints out of range: " + line);
    if (latency < 0.0) malformed("negative latency: " + line);
    topology.add_link(a, b, static_cast<LinkClass>(link_class));
    latencies.push_back(latency);
  }

  topology.freeze();
  for (std::size_t i = 0; i < latencies.size(); ++i)
    topology.mutable_link(i).latency_ms = latencies[i];

  if (version >= 2) {
    for (HostId h = 0; h < topology.host_count(); ++h) {
      if (topology.host(h).gateway != declared_gateway[h])
        malformed("gateway flag of host " + std::to_string(h) +
                  " disagrees with its links");
    }
  }
  return topology;
}

Topology load_topology_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return load_topology(in);
}

}  // namespace topo::net
