// The simulated physical network: an undirected weighted graph with
// transit-stub structure annotations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace topo::net {

using HostId = std::uint32_t;
constexpr HostId kInvalidHost = ~0u;

/// Role of a host in the transit-stub hierarchy.
enum class HostKind : std::uint8_t { kTransit, kStub };

/// Class of a physical link; latency models assign weights per class.
enum class LinkClass : std::uint8_t {
  kInterTransit,  // transit nodes in different transit domains
  kIntraTransit,  // transit nodes in the same transit domain
  kTransitStub,   // transit node <-> stub host
  kIntraStub,     // stub hosts in the same stub domain
};

struct HostInfo {
  HostKind kind = HostKind::kStub;
  std::int32_t transit_domain = -1;  // enclosing transit domain
  std::int32_t stub_domain = -1;     // -1 for transit nodes
  /// Stub host carrying an access link to a transit node. Maintained by
  /// Topology::add_link (every kTransitStub link marks its stub endpoint),
  /// so it is correct for generated and file-loaded topologies alike; the
  /// hierarchical RTT engine keys its decomposition on it.
  bool gateway = false;
};

struct Link {
  HostId a = kInvalidHost;
  HostId b = kInvalidHost;
  LinkClass link_class = LinkClass::kIntraStub;
  double latency_ms = 0.0;
};

/// Immutable-after-build undirected graph in CSR form.
class Topology {
 public:
  /// Builder-style construction: add hosts and links, then freeze().
  HostId add_host(HostInfo info);
  void add_link(HostId a, HostId b, LinkClass link_class);

  /// Build the CSR adjacency. Must be called exactly once, after which the
  /// structure is immutable (latencies may still be (re)assigned).
  void freeze();
  bool frozen() const { return frozen_; }

  std::size_t host_count() const { return hosts_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const HostInfo& host(HostId id) const {
    TO_EXPECTS(id < hosts_.size());
    return hosts_[id];
  }

  std::span<const Link> links() const { return links_; }
  Link& mutable_link(std::size_t i) {
    TO_EXPECTS(i < links_.size());
    return links_[i];
  }

  struct Neighbor {
    HostId host;
    std::uint32_t link_index;  // into links()
  };

  std::span<const Neighbor> neighbors(HostId id) const {
    TO_EXPECTS(frozen_);
    TO_EXPECTS(id < hosts_.size());
    return {adjacency_.data() + offsets_[id],
            offsets_[id + 1] - offsets_[id]};
  }

  double link_latency(std::uint32_t link_index) const {
    TO_EXPECTS(link_index < links_.size());
    return links_[link_index].latency_ms;
  }

  /// All hosts of a given kind.
  std::vector<HostId> hosts_of_kind(HostKind kind) const;

  /// True iff every host can reach every other host.
  bool is_connected() const;

 private:
  std::vector<HostInfo> hosts_;
  std::vector<Link> links_;
  std::vector<std::size_t> offsets_;   // size host_count()+1
  std::vector<Neighbor> adjacency_;    // size 2*link_count()
  bool frozen_ = false;
};

}  // namespace topo::net
