#include "geom/point.hpp"

#include <cmath>
#include <cstdio>

namespace topo::geom {

double Point::torus_delta(double a, double b) {
  double d = b - a;
  if (d > 0.5) d -= 1.0;
  if (d <= -0.5) d += 1.0;
  return d;
}

double Point::torus_distance(const Point& o) const {
  TO_EXPECTS(dims_ == o.dims_);
  double sum = 0.0;
  for (std::size_t i = 0; i < dims_; ++i) {
    const double d = torus_delta(coords_[i], o.coords_[i]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

std::string Point::to_string() const {
  std::string out = "(";
  char buf[32];
  for (std::size_t i = 0; i < dims_; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.4f", i == 0 ? "" : ", ",
                  coords_[i]);
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace topo::geom
