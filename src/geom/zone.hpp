// Axis-aligned zones (boxes) of the unit d-torus.
//
// CAN zones are produced by repeated binary splits of [0,1)^d, so bounds
// are dyadic and splits are exact. Zones are half-open: [lo, hi) per axis.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "geom/point.hpp"

namespace topo::geom {

class Zone {
 public:
  Zone() = default;

  /// The whole space [0,1)^d.
  static Zone whole(std::size_t dims);

  /// Cell of the regular 2^level-per-axis grid containing `p`.
  static Zone grid_cell_containing(const Point& p, int level);

  std::size_t dims() const { return lo_.dims(); }
  double lo(std::size_t d) const { return lo_[d]; }
  double hi(std::size_t d) const { return hi_[d]; }

  double side(std::size_t d) const { return hi_[d] - lo_[d]; }
  double volume() const;

  bool contains(const Point& p) const;
  bool contains(const Zone& z) const;

  Point center() const;

  /// Splits in half along `dim`; first half keeps the lower range.
  std::pair<Zone, Zone> split(std::size_t dim) const;

  /// The dimension with the longest side (ties -> lowest dim); CAN splits
  /// along this to keep zones roughly cubical.
  std::size_t longest_dim() const;

  /// CAN neighbor test on the torus: overlap in all-but-one axis and abut
  /// along exactly one axis (possibly across the wrap).
  bool is_can_neighbor(const Zone& o) const;

  /// Torus distance from `p` to the closest point of this zone.
  double distance_to(const Point& p) const;

  bool operator==(const Zone& o) const { return lo_ == o.lo_ && hi_ == o.hi_; }

  std::string to_string() const;

 private:
  Point lo_;
  Point hi_;
};

/// Grid coordinate of scalar x in [0,1) at grid level `level`
/// (2^level cells per axis).
std::uint32_t grid_coord(double x, int level);

}  // namespace topo::geom
