// Points on the unit d-torus [0,1)^d, the key space of CAN/eCAN.
//
// Overlay dimensionality is small (the paper uses d=2, compares up to d=5),
// so Point is a fixed-capacity inline array — no heap traffic on the
// routing hot path.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace topo::geom {

class Point {
 public:
  static constexpr std::size_t kMaxDims = 8;

  Point() = default;
  explicit Point(std::size_t dims) : dims_(dims) {
    TO_EXPECTS(dims >= 1 && dims <= kMaxDims);
  }

  static Point random(std::size_t dims, util::Rng& rng) {
    Point p(dims);
    for (std::size_t i = 0; i < dims; ++i) p[i] = rng.next_double();
    return p;
  }

  std::size_t dims() const { return dims_; }

  double& operator[](std::size_t i) {
    TO_EXPECTS(i < dims_);
    return coords_[i];
  }
  double operator[](std::size_t i) const {
    TO_EXPECTS(i < dims_);
    return coords_[i];
  }

  bool operator==(const Point& o) const {
    if (dims_ != o.dims_) return false;
    for (std::size_t i = 0; i < dims_; ++i)
      if (coords_[i] != o.coords_[i]) return false;
    return true;
  }

  /// Shortest signed distance from a to b along one torus axis, in (-0.5, 0.5].
  static double torus_delta(double a, double b);

  /// Euclidean distance on the torus.
  double torus_distance(const Point& o) const;

  std::string to_string() const;

 private:
  std::array<double, kMaxDims> coords_{};
  std::size_t dims_ = 0;
};

}  // namespace topo::geom
