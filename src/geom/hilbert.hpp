// Hilbert space-filling curve in arbitrary dimension.
//
// The paper (Appendix) reduces an n-dimensional landmark vector to a scalar
// *landmark number* with a space-filling curve, and maps landmark numbers
// back into d-dimensional positions inside overlay zones. Both directions
// need a bijection between grid coordinates and curve positions that
// preserves locality; the Hilbert curve is the paper's cited choice.
//
// Implementation: Skilling's compact algorithm ("Programming the Hilbert
// curve", AIP 2004), which converts between axis coordinates and the
// "transpose" form of the Hilbert index in O(dims * bits) bit operations.
// Indices can span up to dims*bits <= 256 bits (e.g. 30 landmarks x 8 bits),
// hence util::BigUint.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/biguint.hpp"

namespace topo::geom {

class HilbertCurve {
 public:
  /// `dims` axes, each with `bits` bits of resolution (coordinates in
  /// [0, 2^bits)). dims*bits must fit in BigUint.
  HilbertCurve(int dims, int bits);

  int dims() const { return dims_; }
  int bits() const { return bits_; }
  int index_bits() const { return dims_ * bits_; }

  /// Distance along the curve of the cell at `coords` (size dims).
  util::BigUint index(std::span<const std::uint32_t> coords) const;

  /// Allocation-free variant for hot callers: `scratch` (size dims)
  /// receives a working copy of `coords` and is clobbered by the in-place
  /// transpose conversion. `coords` and `scratch` may alias exactly, in
  /// which case the caller's buffer is consumed directly.
  util::BigUint index(std::span<const std::uint32_t> coords,
                      std::span<std::uint32_t> scratch) const;

  /// Bulk encoder for join waves: `coords` holds coords.size()/dims
  /// coordinate tuples back-to-back and is transposed *in place* (the
  /// caller's arena doubles as the working buffer); tuple i's curve index
  /// lands in out[i]. Range validation and the per-level masks are hoisted
  /// out of the per-tuple loop, and nothing allocates, so encoding a wave
  /// costs exactly the bit-twiddling.
  void index_many(std::span<std::uint32_t> coords,
                  std::span<util::BigUint> out) const;

  /// Inverse: cell coordinates of curve position `index`.
  std::vector<std::uint32_t> coords(const util::BigUint& index) const;

  /// Inverse into a caller-provided buffer of size dims() — the map
  /// service calls this once per published/looked-up record, so the hot
  /// path must not allocate.
  void coords_into(const util::BigUint& index,
                   std::span<std::uint32_t> out) const;

 private:
  /// Encodes one tuple in place (axes -> transpose -> packed index),
  /// destroying the input. `limit` is the precomputed coordinate bound.
  util::BigUint index_in_place(std::span<std::uint32_t> x,
                               std::uint32_t limit) const;
  void axes_to_transpose(std::span<std::uint32_t> x) const;
  void transpose_to_axes(std::span<std::uint32_t> x) const;
  util::BigUint interleave(std::span<const std::uint32_t> x) const;
  std::vector<std::uint32_t> deinterleave(const util::BigUint& index) const;

  int dims_;
  int bits_;
};

}  // namespace topo::geom
