#include "geom/hilbert.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace topo::geom {

HilbertCurve::HilbertCurve(int dims, int bits) : dims_(dims), bits_(bits) {
  TO_EXPECTS(dims >= 1);
  TO_EXPECTS(bits >= 1 && bits <= 32);
  TO_EXPECTS(dims * bits <= util::BigUint::kBits);
}

// Skilling: AxestoTranspose. On entry x holds axis coordinates; on exit it
// holds the Hilbert index in "transpose" form (bit j of the index group k
// lives in x[k], see interleave()).
void HilbertCurve::axes_to_transpose(std::span<std::uint32_t> x) const {
  const auto n = static_cast<std::size_t>(dims_);
  const std::uint32_t m = 1u << (bits_ - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {      // exchange
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (std::size_t i = 1; i < n; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (x[n - 1] & q) t ^= q - 1;
  for (std::size_t i = 0; i < n; ++i) x[i] ^= t;
}

// Skilling: TransposetoAxes (exact inverse of the above).
void HilbertCurve::transpose_to_axes(std::span<std::uint32_t> x) const {
  const auto n = static_cast<std::size_t>(dims_);
  const std::uint32_t top = bits_ >= 32 ? 0u : (2u << (bits_ - 1));
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[n - 1] >> 1;
  for (std::size_t i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != top && q != 0; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (std::size_t ii = n; ii-- > 0;) {
      if (x[ii] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t tt = (x[0] ^ x[ii]) & p;
        x[0] ^= tt;
        x[ii] ^= tt;
      }
    }
  }
}

// Pack the transpose form into a single integer: the index's bit at
// position (bit_level * dims + axis_slot) takes bit `bit_level` of
// x[dims-1-axis_slot]; most significant index bits come from the most
// significant coordinate bits of x[0].
util::BigUint HilbertCurve::interleave(
    std::span<const std::uint32_t> x) const {
  util::BigUint out;
  int pos = index_bits() - 1;
  for (int level = bits_ - 1; level >= 0; --level) {
    for (int axis = 0; axis < dims_; ++axis, --pos) {
      if ((x[static_cast<std::size_t>(axis)] >> level) & 1u)
        out.set_bit(pos, true);
    }
  }
  TO_ENSURES(pos == -1);
  return out;
}

std::vector<std::uint32_t> HilbertCurve::deinterleave(
    const util::BigUint& index) const {
  std::vector<std::uint32_t> x(static_cast<std::size_t>(dims_), 0);
  int pos = index_bits() - 1;
  for (int level = bits_ - 1; level >= 0; --level) {
    for (int axis = 0; axis < dims_; ++axis, --pos) {
      if (index.bit(pos))
        x[static_cast<std::size_t>(axis)] |= 1u << level;
    }
  }
  return x;
}

util::BigUint HilbertCurve::index_in_place(std::span<std::uint32_t> x,
                                           std::uint32_t limit) const {
  for (const std::uint32_t c : x) TO_EXPECTS(c <= limit);
  axes_to_transpose(x);
  return interleave(x);
}

util::BigUint HilbertCurve::index(
    std::span<const std::uint32_t> coords) const {
  TO_EXPECTS(coords.size() == static_cast<std::size_t>(dims_));
  std::vector<std::uint32_t> x(coords.begin(), coords.end());
  const std::uint32_t limit =
      bits_ >= 32 ? ~0u : ((1u << bits_) - 1);
  return index_in_place(x, limit);
}

util::BigUint HilbertCurve::index(std::span<const std::uint32_t> coords,
                                  std::span<std::uint32_t> scratch) const {
  TO_EXPECTS(coords.size() == static_cast<std::size_t>(dims_));
  TO_EXPECTS(scratch.size() >= coords.size());
  const std::uint32_t limit =
      bits_ >= 32 ? ~0u : ((1u << bits_) - 1);
  std::span<std::uint32_t> x = scratch.first(coords.size());
  if (coords.data() != scratch.data())
    std::copy(coords.begin(), coords.end(), x.begin());
  return index_in_place(x, limit);
}

void HilbertCurve::index_many(std::span<std::uint32_t> coords,
                              std::span<util::BigUint> out) const {
  const auto n = static_cast<std::size_t>(dims_);
  TO_EXPECTS(coords.size() == out.size() * n);
  const std::uint32_t limit =
      bits_ >= 32 ? ~0u : ((1u << bits_) - 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = index_in_place(coords.subspan(i * n, n), limit);
}

std::vector<std::uint32_t> HilbertCurve::coords(
    const util::BigUint& index) const {
  std::vector<std::uint32_t> x(static_cast<std::size_t>(dims_), 0);
  coords_into(index, x);
  return x;
}

void HilbertCurve::coords_into(const util::BigUint& index,
                               std::span<std::uint32_t> out) const {
  TO_EXPECTS(out.size() == static_cast<std::size_t>(dims_));
  std::fill(out.begin(), out.end(), 0u);
  int pos = index_bits() - 1;
  for (int level = bits_ - 1; level >= 0; --level) {
    for (int axis = 0; axis < dims_; ++axis, --pos) {
      if (index.bit(pos))
        out[static_cast<std::size_t>(axis)] |= 1u << level;
    }
  }
  transpose_to_axes(out);
}

}  // namespace topo::geom
