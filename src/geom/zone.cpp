#include "geom/zone.hpp"

#include <algorithm>
#include <cmath>

namespace topo::geom {

namespace {

// Two half-open ranges on the unit torus.
bool ranges_overlap(double alo, double ahi, double blo, double bhi) {
  return alo < bhi && blo < ahi;
}

bool ranges_abut(double alo, double ahi, double blo, double bhi) {
  if (ahi == blo || bhi == alo) return true;
  // Wraparound: one range ends at 1.0 and the other starts at 0.0.
  if (ahi == 1.0 && blo == 0.0) return true;
  if (bhi == 1.0 && alo == 0.0) return true;
  return false;
}

}  // namespace

Zone Zone::whole(std::size_t dims) {
  Zone z;
  z.lo_ = Point(dims);
  z.hi_ = Point(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    z.lo_[d] = 0.0;
    z.hi_[d] = 1.0;
  }
  return z;
}

Zone Zone::grid_cell_containing(const Point& p, int level) {
  TO_EXPECTS(level >= 0 && level < 31);
  Zone z;
  z.lo_ = Point(p.dims());
  z.hi_ = Point(p.dims());
  const double cell = std::ldexp(1.0, -level);  // 2^-level
  for (std::size_t d = 0; d < p.dims(); ++d) {
    const auto idx = grid_coord(p[d], level);
    z.lo_[d] = static_cast<double>(idx) * cell;
    z.hi_[d] = z.lo_[d] + cell;
  }
  return z;
}

double Zone::volume() const {
  double v = 1.0;
  for (std::size_t d = 0; d < dims(); ++d) v *= side(d);
  return v;
}

bool Zone::contains(const Point& p) const {
  TO_EXPECTS(p.dims() == dims());
  for (std::size_t d = 0; d < dims(); ++d)
    if (p[d] < lo_[d] || p[d] >= hi_[d]) return false;
  return true;
}

bool Zone::contains(const Zone& z) const {
  TO_EXPECTS(z.dims() == dims());
  for (std::size_t d = 0; d < dims(); ++d)
    if (z.lo_[d] < lo_[d] || z.hi_[d] > hi_[d]) return false;
  return true;
}

Point Zone::center() const {
  Point c(dims());
  for (std::size_t d = 0; d < dims(); ++d) c[d] = (lo_[d] + hi_[d]) / 2.0;
  return c;
}

std::pair<Zone, Zone> Zone::split(std::size_t dim) const {
  TO_EXPECTS(dim < dims());
  Zone first = *this;
  Zone second = *this;
  const double mid = (lo_[dim] + hi_[dim]) / 2.0;
  first.hi_[dim] = mid;
  second.lo_[dim] = mid;
  return {first, second};
}

std::size_t Zone::longest_dim() const {
  std::size_t best = 0;
  for (std::size_t d = 1; d < dims(); ++d)
    if (side(d) > side(best)) best = d;
  return best;
}

bool Zone::is_can_neighbor(const Zone& o) const {
  TO_EXPECTS(o.dims() == dims());
  std::size_t abutting = 0;
  for (std::size_t d = 0; d < dims(); ++d) {
    const bool overlap = ranges_overlap(lo_[d], hi_[d], o.lo_[d], o.hi_[d]);
    if (overlap) continue;
    if (ranges_abut(lo_[d], hi_[d], o.lo_[d], o.hi_[d])) {
      ++abutting;
    } else {
      return false;  // separated along this axis
    }
  }
  return abutting == 1;
}

double Zone::distance_to(const Point& p) const {
  TO_EXPECTS(p.dims() == dims());
  double sum = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    // Distance from p[d] to [lo, hi) along the torus axis: zero if inside,
    // else the smaller of the two wrap-aware gaps to the interval ends.
    if (p[d] >= lo_[d] && p[d] < hi_[d]) continue;
    const double to_lo = std::abs(Point::torus_delta(p[d], lo_[d]));
    const double to_hi = std::abs(Point::torus_delta(p[d], hi_[d]));
    const double gap = std::min(to_lo, to_hi);
    sum += gap * gap;
  }
  return std::sqrt(sum);
}

std::string Zone::to_string() const {
  std::string out = "[";
  char buf[64];
  for (std::size_t d = 0; d < dims(); ++d) {
    std::snprintf(buf, sizeof(buf), "%s%.4f..%.4f", d == 0 ? "" : " x ",
                  lo_[d], hi_[d]);
    out += buf;
  }
  out += ")";
  return out;
}

std::uint32_t grid_coord(double x, int level) {
  TO_EXPECTS(x >= 0.0 && x < 1.0);
  TO_EXPECTS(level >= 0 && level < 31);
  const auto cells = static_cast<std::uint32_t>(1u << level);
  auto idx = static_cast<std::uint32_t>(x * static_cast<double>(cells));
  // Guard against floating-point edge where x*cells rounds up to cells.
  return std::min(idx, cells - 1);
}

}  // namespace topo::geom
