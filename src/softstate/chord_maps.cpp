#include "softstate/chord_maps.hpp"

#include <algorithm>

namespace topo::softstate {

ChordMapService::ChordMapService(overlay::ChordNetwork& chord,
                                 const proximity::LandmarkSet& landmarks,
                                 ChordMapConfig config)
    : chord_(&chord), landmarks_(&landmarks), config_(config) {
  TO_EXPECTS(config_.max_return >= 1);
}

overlay::ChordId ChordMapService::key_of(
    const util::BigUint& landmark_number) const {
  const int bits = chord_->id_bits();
  return landmark_number.top_bits(landmarks_->number_bits(),
                                  std::min(bits, 64)) &
         (chord_->ring_size() - 1);
}

ChordMapStore& ChordMapService::store_of(overlay::NodeId node) {
  const auto it = stores_.find(node);
  if (it != stores_.end()) return it->second;
  return stores_.emplace(node, ChordMapStore{}).first->second;
}

const ChordMapStore* ChordMapService::find_store(overlay::NodeId node) const {
  const auto it = stores_.find(node);
  return it == stores_.end() ? nullptr : &it->second;
}

ChordMapStore* ChordMapService::find_store(overlay::NodeId node) {
  const auto it = stores_.find(node);
  return it == stores_.end() ? nullptr : &it->second;
}

sim::Verdict ChordMapService::gate_path_(
    sim::MessageKind kind, const std::vector<overlay::NodeId>& path) {
  return fault_plane_->message_via(
      kind, path, [&](overlay::NodeId id) { return chord_->node(id).host; });
}

std::size_t ChordMapService::publish(overlay::NodeId node,
                                     const proximity::LandmarkVector& vector,
                                     sim::Time now) {
  TO_EXPECTS(chord_->alive(node));
  const util::BigUint number = landmarks_->landmark_number(vector);
  const overlay::ChordId key = key_of(number);
  const overlay::RouteResult route = chord_->route(node, key);
  ++stats_.publishes;
  if (!route.success) {
    // Routing failure is its own bucket, never conflated with injected
    // loss (same split as the eCAN backend).
    ++stats_.failed_routes;
    return route.hops();
  }
  stats_.route_hops += route.hops();
  const overlay::NodeId owner = route.path.back();
  if (plane_active_()) {
    const sim::Verdict verdict =
        gate_path_(sim::MessageKind::kPublish, route.path);
    if (!verdict.delivered()) {
      if (verdict.retryable())
        ++stats_.lost_messages;
      else
        ++stats_.blocked_messages;
      return route.hops();
    }
  }

  ChordMapEntry entry;
  entry.node = node;
  entry.host = chord_->node(node).host;
  entry.vector = vector;
  entry.key = key;
  entry.published_at = now;
  entry.expires_at = now + config_.ttl_ms;
  store_of(owner).upsert(std::move(entry));
  return route.hops();
}

std::vector<ChordMapEntry> ChordMapService::lookup(
    overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
    sim::Time now, ChordLookupMeta* meta) {
  TO_EXPECTS(chord_->alive(querier));
  const util::BigUint number = landmarks_->landmark_number(querier_vector);
  const overlay::ChordId key = key_of(number);
  const overlay::RouteResult route = chord_->route(querier, key);
  ChordLookupMeta local_meta;
  local_meta.route_hops = route.hops();
  ++stats_.lookups;
  stats_.route_hops += route.hops();
  if (!route.success) {
    if (meta != nullptr) *meta = local_meta;
    return {};
  }
  local_meta.owner = route.path.back();
  const bool gated = plane_active_();
  if (gated &&
      !gate_path_(sim::MessageKind::kLookup, route.path).delivered()) {
    ++stats_.fault_blocked_lookups;
    if (meta != nullptr) *meta = local_meta;
    return {};
  }

  std::vector<const ChordMapEntry*> found;
  auto collect = [&](overlay::NodeId owner) {
    ChordMapStore* store = find_store(owner);
    if (store == nullptr) return;
    stats_.expired_entries += store->expire_before(now);
    store->for_each(
        [&](const ChordMapEntry& entry) { found.push_back(&entry); });
  };

  collect(local_meta.owner);
  // Successor walk while the content is too thin (Table 1's TTL idea on
  // the ring: adjacent owners hold the adjacent landmark-number ranges).
  const net::HostId querier_host = chord_->node(querier).host;
  overlay::NodeId cursor = local_meta.owner;
  for (int step = 0;
       step < config_.walk_ttl && found.size() < config_.min_candidates;
       ++step) {
    cursor = chord_->successor_node(cursor);
    if (cursor == local_meta.owner) break;  // wrapped the whole ring
    ++local_meta.owners_visited;
    ++local_meta.route_hops;
    ++stats_.route_hops;
    // Each walk step is one more message from the querier; an owner the
    // fault plane cuts off just contributes nothing this round.
    if (gated && !fault_plane_->deliver(sim::MessageKind::kLookup,
                                        querier_host,
                                        chord_->node(cursor).host))
      continue;
    collect(cursor);
  }

  // Distance ties are broken by node id so the returned prefix is
  // deterministic regardless of collection order. Each candidate's
  // distance is computed once, not on every comparison — and squared,
  // since the value only ever feeds this comparison.
  std::vector<std::pair<double, const ChordMapEntry*>> ranked;
  ranked.reserve(found.size());
  for (const ChordMapEntry* entry : found)
    ranked.emplace_back(proximity::squared_distance(entry->vector,
                                                    querier_vector),
                        entry);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->node < b.second->node;
            });
  std::vector<ChordMapEntry> result;
  for (const auto& [distance, entry] : ranked) {
    if (result.size() >= config_.max_return) break;
    if (entry->node == querier) continue;
    result.push_back(*entry);
  }
  if (meta != nullptr) *meta = local_meta;
  return result;
}

void ChordMapService::remove_everywhere(overlay::NodeId node) {
  for (auto& [owner, store] : stores_) {
    (void)owner;
    store.erase_node(node);
  }
}

void ChordMapService::report_dead(overlay::NodeId owner,
                                  overlay::NodeId dead,
                                  sim::Time reported_at,
                                  overlay::NodeId reporter) {
  if (reporter != overlay::kInvalidNode && plane_active_() &&
      !fault_plane_->deliver(sim::MessageKind::kRepair,
                             chord_->node(reporter).host,
                             chord_->node(owner).host)) {
    ++stats_.lost_repairs;
    return;
  }
  ChordMapStore* store = find_store(owner);
  if (store == nullptr) return;
  // Freshness guard: records republished after the reporter's failed
  // probe survive a delayed "dead" report.
  stats_.lazy_deletions += store->erase_node_before(dead, reported_at);
}

std::size_t ChordMapService::expire_before(sim::Time now) {
  std::size_t dropped = 0;
  for (auto& [owner, store] : stores_) {
    (void)owner;
    dropped += store.expire_before(now);
  }
  stats_.expired_entries += dropped;
  return dropped;
}

void ChordMapService::rehome_from(overlay::NodeId former_owner) {
  const auto it = stores_.find(former_owner);
  if (it == stores_.end()) return;
  std::vector<ChordMapEntry> moving = it->second.extract_all();
  stores_.erase(it);
  for (ChordMapEntry& entry : moving) {
    if (!chord_->alive(entry.node)) continue;
    const overlay::NodeId owner = chord_->successor_of(entry.key);
    // upsert (not a raw append) so a record republished while its old
    // owner was departing is not duplicated on the new owner.
    store_of(owner).upsert(std::move(entry));
  }
}

std::size_t ChordMapService::store_size(overlay::NodeId node) const {
  const ChordMapStore* store = find_store(node);
  return store == nullptr ? 0 : store->size();
}

bool ChordMapService::check_placement_invariant() const {
  for (const auto& [owner, store] : stores_) {
    if (store.empty()) continue;
    if (!chord_->alive(owner)) return false;
    bool placed = true;
    store.for_each([&](const ChordMapEntry& entry) {
      if (chord_->successor_of(entry.key) != owner) placed = false;
    });
    if (!placed) return false;
  }
  return true;
}

std::size_t ChordMapService::total_entries() const {
  std::size_t total = 0;
  for (const auto& [owner, store] : stores_) {
    (void)owner;
    total += store.size();
  }
  return total;
}

}  // namespace topo::softstate
