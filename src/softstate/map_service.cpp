#include "softstate/map_service.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>

#include "geom/hilbert.hpp"

namespace topo::softstate {

template <typename Store>
BasicMapService<Store>::BasicMapService(overlay::EcanNetwork& ecan,
                                        const proximity::LandmarkSet& landmarks,
                                        MapConfig config)
    : ecan_(&ecan),
      landmarks_(&landmarks),
      config_(config),
      store_traits_{landmarks.number_bits()},
      map_curve_(static_cast<int>(ecan.dims()), config.map_bits),
      map_side_factor_(std::pow(
          config.condense_rate, 1.0 / static_cast<double>(ecan.dims()))) {
  TO_EXPECTS(config_.condense_rate > 0.0 && config_.condense_rate <= 1.0);
  TO_EXPECTS(config_.map_bits >= 1);
  TO_EXPECTS(static_cast<std::size_t>(config_.map_bits) * ecan.dims() <= 58);
  TO_EXPECTS(config_.max_return >= 1);
}

template <typename Store>
geom::Point BasicMapService<Store>::map_position(
    const util::BigUint& landmark_number, int level,
    std::span<const std::uint32_t> cell, int replica) const {
  TO_EXPECTS(replica >= 0 && replica < std::max(1, config_.replicas));
  const auto dims = ecan_->dims();

  // Coarsen the landmark number to the map curve's resolution; taking the
  // top bits preserves the ordering (and thus locality) of the 1-d key.
  std::uint64_t key64 = landmark_number.top_bits(
      landmarks_->number_bits(),
      map_curve_.index_bits() > 64 ? 64 : map_curve_.index_bits());

  if (replica > 0) {
    // Replica r lives on a copy of the curve shifted by r * stride: every
    // replica's sub-map preserves curve adjacency (mod one wrap point), so
    // a replica lookup keyed the same way keeps its locality — while the
    // even stride pushes the copies toward different owners of the map
    // region. Curve length is a power of two (<= 58 index bits), so the
    // wrap is a mask.
    const int bits = std::min(map_curve_.index_bits(), 64);
    const std::uint64_t cells = 1ull << bits;
    const std::uint64_t stride = std::max<std::uint64_t>(
        1, cells / static_cast<std::uint64_t>(config_.replicas));
    key64 = (key64 + stride * static_cast<std::uint64_t>(replica)) &
            (cells - 1);
  }

  std::array<std::uint32_t, geom::Point::kMaxDims> coords{};
  double side_factor = map_side_factor_;
  if constexpr (Store::kReferenceCostModel) {
    // Seed-era placement cost: rebuild the curve, allocate its coordinate
    // vector and re-run pow() on every call (identical values — the cache
    // above is cost, not semantics).
    const geom::HilbertCurve curve(static_cast<int>(dims), config_.map_bits);
    const auto heap_coords = curve.coords(util::BigUint(key64));
    std::copy(heap_coords.begin(), heap_coords.end(), coords.begin());
    side_factor =
        std::pow(config_.condense_rate, 1.0 / static_cast<double>(dims));
  } else {
    map_curve_.coords_into(util::BigUint(key64),
                           std::span(coords.data(), dims));
  }

  // The map region: the hosting cell shrunk to condense_rate of its volume
  // (anchored at the cell's low corner).
  const geom::Zone zone = ecan_->cell_zone(level, cell);

  geom::Point position(dims);
  const double grid = std::ldexp(1.0, -config_.map_bits);  // 2^-map_bits
  for (std::size_t d = 0; d < dims; ++d) {
    const double unit = (static_cast<double>(coords[d]) + 0.5) * grid;
    position[d] = zone.lo(d) + unit * zone.side(d) * side_factor;
  }
  TO_ENSURES(zone.contains(position));
  return position;
}

template <typename Store>
Store& BasicMapService<Store>::store_of(overlay::NodeId node) {
  if constexpr (Store::kReferenceCostModel) {
    const auto it = stores_.find(node);
    if (it != stores_.end()) return it->second;
    return stores_.emplace(node, Store(store_traits_)).first->second;
  } else {
    if (stores_.size() <= node)
      stores_.resize(static_cast<std::size_t>(node) + 1,
                     Store(store_traits_));
    return stores_[node];
  }
}

template <typename Store>
const Store* BasicMapService<Store>::find_store(overlay::NodeId node) const {
  if constexpr (Store::kReferenceCostModel) {
    const auto it = stores_.find(node);
    return it == stores_.end() ? nullptr : &it->second;
  } else {
    return node < stores_.size() ? &stores_[node] : nullptr;
  }
}

template <typename Store>
Store* BasicMapService<Store>::find_store(overlay::NodeId node) {
  if constexpr (Store::kReferenceCostModel) {
    const auto it = stores_.find(node);
    return it == stores_.end() ? nullptr : &it->second;
  } else {
    return node < stores_.size() ? &stores_[node] : nullptr;
  }
}

template <typename Store>
bool BasicMapService<Store>::route_to(overlay::NodeId from,
                                      const geom::Point& position) {
  if (config_.use_reference_router) {
    overlay::RouteResult route = ecan_->route_ecan_reference(from, position);
    route_scratch_.path = std::move(route.path);
    return route.success;
  }
  return ecan_->route_ecan(from, position, route_scratch_);
}

template <typename Store>
void BasicMapService<Store>::place_entry(overlay::NodeId owner,
                                         StoredEntry stored) {
  const auto [outcome, entry] = store_of(owner).upsert(std::move(stored));
  // Keep the fresher record: rehome() can replay a copy that predates a
  // republish which already landed on this owner.
  if (outcome == UpsertOutcome::kStaleDropped) return;
  if (publish_observer_) publish_observer_(owner, *entry);
}

template <typename Store>
std::size_t BasicMapService<Store>::publish(
    overlay::NodeId node, const proximity::LandmarkVector& vector,
    sim::Time now, double load, double capacity) {
  if constexpr (Store::kReferenceCostModel) {
    // Seed-era derivation cost: a temporary coordinate vector plus the
    // encoder's own working copy, allocated per publish.
    return publish(node, vector, landmarks_->landmark_number(vector), now,
                   load, capacity);
  } else {
    // Identical number, derived through the caller-owned scratch so a
    // publish without a cached number still allocates nothing.
    number_coords_scratch_.resize(
        static_cast<std::size_t>(landmarks_->number_dims()));
    return publish(
        node, vector,
        landmarks_->landmark_number(vector, number_coords_scratch_), now,
        load, capacity);
  }
}

template <typename Store>
sim::Verdict BasicMapService<Store>::gate_route(sim::MessageKind kind) {
  return fault_plane_->message_via(
      kind, route_scratch_.path,
      [&](overlay::NodeId id) { return ecan_->node(id).host; });
}

template <typename Store>
net::TrafficPlane::Verdict BasicMapService<Store>::gate_traffic() {
  return traffic_plane_->message_via(
      route_scratch_.path,
      [&](overlay::NodeId id) { return ecan_->node(id).host; });
}

template <typename Store>
typename BasicMapService<Store>::PublishSend
BasicMapService<Store>::send_publish_message(
    overlay::NodeId node, const proximity::LandmarkVector& vector,
    const util::BigUint& number, sim::Time now, double load, double capacity,
    int level, std::span<const std::uint32_t> cell, int replica,
    std::size_t& hops, std::span<const overlay::NodeId> placed_owners,
    overlay::NodeId* delivered_owner) {
  const geom::Point position = map_position(number, level, cell, replica);
  if (!route_to(node, position)) {
    // Unreachable owner: the entry is lost until the next republish
    // (soft state) — but account it, unlike injected message loss.
    ++stats_.failed_routes;
    return PublishSend::kRouteFailed;
  }
  hops += route_scratch_.path.size() - 1;
  const overlay::NodeId owner = route_scratch_.path.back();
  if (std::find(placed_owners.begin(), placed_owners.end(), owner) !=
      placed_owners.end()) {
    // A condensed map often puts curve-adjacent keys on one owner; a
    // second copy there adds nothing, so the sender suppresses it once
    // routing discovers the collision (the routing hops are still paid).
    ++stats_.replica_collapses;
    return PublishSend::kCollapsed;
  }
  ++stats_.publish_messages;
  if (plane_active()) {
    const sim::Verdict verdict = gate_route(sim::MessageKind::kPublish);
    if (!verdict.delivered()) {
      if (verdict.retryable()) {
        ++stats_.lost_messages;  // dropped en route: republish refills it
        return PublishSend::kLost;
      }
      ++stats_.blocked_publishes;
      return PublishSend::kBlocked;
    }
  }
  if (traffic_active()) {
    // Congestion drop: transient like loss — the retry machinery (or the
    // next republish) recovers it once the hot links drain.
    if (!gate_traffic().delivered) {
      ++stats_.congestion_drops;
      return PublishSend::kLost;
    }
  }
  MapEntry entry;
  entry.node = node;
  entry.host = ecan_->node(node).host;
  entry.vector = vector;
  entry.landmark_number = number;
  entry.load = load;
  entry.capacity = capacity;
  entry.published_at = now;
  entry.expires_at = now + config_.ttl_ms;
  place_entry(owner, StoredEntry{std::move(entry), level,
                                 ecan_->pack_cell(level, cell), position});
  if (delivered_owner != nullptr) *delivered_owner = owner;
  return PublishSend::kDelivered;
}

template <typename Store>
std::size_t BasicMapService<Store>::publish(
    overlay::NodeId node, const proximity::LandmarkVector& vector,
    const util::BigUint& number, sim::Time now, double load,
    double capacity) {
  TO_EXPECTS(ecan_->alive(node));
  std::size_t hops = 0;
  const int levels = ecan_->node_level(node);
  const int replicas = std::max(1, config_.replicas);
  std::array<std::uint32_t, geom::Point::kMaxDims> cell_buf{};
  const std::span<std::uint32_t> cell_span(cell_buf.data(), ecan_->dims());
  for (int h = 1; h <= levels; ++h) {
    std::span<const std::uint32_t> cell;
    if constexpr (Store::kReferenceCostModel) {
      // Seed-era cost: a fresh coordinate vector per level per publish.
      const auto heap_cell = ecan_->cell_of_node(node, h);
      std::copy(heap_cell.begin(), heap_cell.end(), cell_buf.begin());
      cell = cell_span;
    } else {
      ecan_->cell_of_node_into(node, h, cell_span);
      cell = cell_span;
    }
    std::array<overlay::NodeId, static_cast<std::size_t>(kMaxReplicas)>
        placed{};
    std::size_t placed_count = 0;
    for (int r = 0; r < replicas; ++r) {
      overlay::NodeId owner = overlay::kInvalidNode;
      const PublishSend sent = send_publish_message(
          node, vector, number, now, load, capacity, h, cell, r, hops,
          std::span<const overlay::NodeId>(placed.data(), placed_count),
          &owner);
      if (sent == PublishSend::kDelivered)
        placed[placed_count++] = owner;
      else if (sent == PublishSend::kLost && retry_.enabled())
        schedule_publish_retry(node, vector, number, load, capacity, h, r,
                               1);
    }
  }
  ++stats_.publishes;
  stats_.route_hops += hops;
  return hops;
}

template <typename Store>
void BasicMapService<Store>::schedule_publish_retry(
    overlay::NodeId node, proximity::LandmarkVector vector,
    util::BigUint number, double load, double capacity, int level,
    int replica, int attempt) {
  if (retry_queue_ == nullptr) return;
  if (attempt > retry_.retries()) {
    ++stats_.retries_exhausted;
    return;
  }
  const double delay = retry_.delay_ms(attempt, retry_rng_);
  retry_queue_->schedule_in(
      delay, [this, node, vector = std::move(vector),
              number = std::move(number), load, capacity, level, replica,
              attempt] {
        retry_publish_message(node, vector, number, load, capacity, level,
                              replica, attempt);
      });
}

template <typename Store>
void BasicMapService<Store>::retry_publish_message(
    overlay::NodeId node, const proximity::LandmarkVector& vector,
    const util::BigUint& number, double load, double capacity, int level,
    int replica, int attempt) {
  // The world may have moved while the retry waited: a departed publisher
  // or a shrunken zone makes the pending message moot (the periodic
  // republish owns recovery from here).
  if (!ecan_->alive(node)) return;
  if (level > ecan_->node_level(node)) return;
  std::array<std::uint32_t, geom::Point::kMaxDims> cell_buf{};
  const std::span<std::uint32_t> cell_span(cell_buf.data(), ecan_->dims());
  ecan_->cell_of_node_into(node, level, cell_span);
  ++stats_.publish_retries;
  std::size_t hops = 0;
  const PublishSend sent = send_publish_message(
      node, vector, number, retry_queue_->now(), load, capacity, level,
      cell_span, replica, hops);
  stats_.route_hops += hops;
  if (sent == PublishSend::kDelivered) {
    ++stats_.retry_recoveries;
    return;
  }
  if (sent == PublishSend::kLost)
    schedule_publish_retry(node, vector, number, load, capacity, level,
                           replica, attempt + 1);
}

template <typename Store>
void BasicMapService<Store>::collect_from(
    overlay::NodeId owner, std::uint64_t cell_key, sim::Time now,
    std::vector<const StoredEntry*>& out) {
  Store* store;
  if constexpr (Store::kReferenceCostModel) {
    // Seed-era cost (and bug): the read path used the creating accessor,
    // materializing an empty store for every owner a lookup ever touched —
    // which every later expiry sweep then had to visit. Results are
    // unchanged (an empty store contributes nothing); the cost was not.
    store = &store_of(owner);
  } else {
    store = find_store(owner);
    if (store == nullptr) return;
  }
  // Prune expired entries on access (soft-state decay).
  stats_.expired_entries += store->expire_before(now);
  store->for_each_in_group(cell_key, [&](const StoredEntry& stored) {
    out.push_back(&stored);
  });
}

template <typename Store>
std::vector<MapEntry> BasicMapService<Store>::lookup_entries(
    overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
    int level, std::span<const std::uint32_t> cell, sim::Time now,
    LookupResult* meta) {
  std::vector<MapEntry> entries;
  const std::size_t count = lookup_entries_into(querier, querier_vector,
                                                level, cell, now, entries,
                                                meta);
  entries.resize(count);
  return entries;
}

template <typename Store>
std::size_t BasicMapService<Store>::lookup_entries_into(
    overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
    const util::BigUint& number, int level,
    std::span<const std::uint32_t> cell, sim::Time now,
    std::vector<MapEntry>& out, LookupResult* meta) {
  TO_EXPECTS(ecan_->alive(querier));
  const std::uint64_t cell_key = ecan_->pack_cell(level, cell);
  const bool gated = plane_active();
  const bool congested = traffic_active();
  const int replicas = std::max(1, config_.replicas);

  // Quorum-less first-success read: fetch from the primary position, fail
  // over replica-by-replica when the fetch dies (overlay routing failure,
  // crashed owner, partition, or loss that outlives the inline retry
  // budget). With replicas == 1 and no fault plane this collapses to the
  // single routed fetch of the original protocol.
  LookupResult result;
  std::array<overlay::NodeId, static_cast<std::size_t>(kMaxReplicas)>
      tried{};
  std::size_t tried_count = 0;
  bool fetched = false;
  for (int r = 0; r < replicas && !fetched; ++r) {
    const geom::Point position = map_position(number, level, cell, r);
    const bool routed = route_to(querier, position);
    result.route_hops += route_scratch_.path.size() - 1;
    ++result.replicas_tried;
    if (!routed) continue;
    const overlay::NodeId owner = route_scratch_.path.back();
    // A further replica that routes to an owner we already failed to
    // fetch from cannot do better under a crash/partition block; skip it
    // without spending a message.
    if (std::find(tried.begin(), tried.begin() + tried_count, owner) !=
        tried.begin() + tried_count)
      continue;
    tried[tried_count++] = owner;
    if (r > 0) ++stats_.lookup_failovers;
    if (!gated && !congested) {
      ++result.attempts;
      ++stats_.lookup_attempts;
      result.owner = owner;
      fetched = true;
      break;
    }
    // Inline bounded retry: loss is transient, so re-try this owner up to
    // the policy budget before failing over; crash/partition verdicts
    // fail over immediately. A congestion drop is transient like loss,
    // and a congested-but-delivered fetch charges its queuing delay to
    // the backoff accounting.
    for (int retry_num = 0;; ++retry_num) {
      ++result.attempts;
      ++stats_.lookup_attempts;
      const sim::Verdict verdict =
          gated ? gate_route(sim::MessageKind::kLookup) : sim::Verdict{};
      bool lost = !verdict.delivered();
      bool transient = verdict.retryable();
      if (!lost && congested) {
        const net::TrafficPlane::Verdict traffic = gate_traffic();
        if (traffic.delivered) {
          result.backoff_ms += traffic.delay_ms;
        } else {
          ++stats_.congestion_drops;
          lost = true;
          transient = true;
        }
      }
      if (!lost) {
        result.owner = owner;
        result.backoff_ms += verdict.delay_ms;
        fetched = true;
        break;
      }
      if (!transient || retry_num >= retry_.retries()) break;
      ++stats_.lookup_retries;
      result.backoff_ms += retry_.delay_ms(retry_num + 1, retry_rng_);
    }
  }
  if (!fetched) {
    if (gated || congested) {
      result.fault_blocked = true;
      ++stats_.fault_blocked_lookups;
    }
    ++stats_.lookups;
    stats_.route_hops += result.route_hops;
    if (meta != nullptr) *meta = result;
    return 0;
  }
  const net::HostId querier_host = ecan_->node(querier).host;

  std::size_t count = 0;
  if constexpr (Store::kReferenceCostModel) {
    // Seed-era lookup, verbatim: fresh containers per call and the sort
    // comparator recomputing both distances on every comparison. The sort
    // keys are identical to the fast path's, so the returned entries are
    // too — only the costs differ.
    std::vector<const StoredEntry*> found;
    collect_from(result.owner, cell_key, now, found);
    if (found.size() < config_.min_candidates &&
        config_.lookup_ring_ttl > 0) {
      std::unordered_set<overlay::NodeId> visited = {result.owner};
      std::vector<overlay::NodeId> ring = {result.owner};
      for (int depth = 0; depth < config_.lookup_ring_ttl &&
                          found.size() < config_.min_candidates &&
                          !ring.empty();
           ++depth) {
        std::vector<overlay::NodeId> next_ring;
        for (const overlay::NodeId node : ring)
          for (const overlay::NodeId nb : ecan_->node(node).neighbors)
            if (ecan_->alive(nb) && visited.insert(nb).second)
              next_ring.push_back(nb);
        for (const overlay::NodeId nb : next_ring) {
          ++result.pieces_visited;
          ++result.route_hops;  // one overlay message per piece visited
          if (gated && !fault_plane_->deliver(sim::MessageKind::kLookup,
                                              querier_host,
                                              ecan_->node(nb).host))
            continue;  // that piece stays unread this round
          if (congested &&
              !traffic_plane_->message(querier_host, ecan_->node(nb).host)
                   .delivered) {
            ++stats_.congestion_drops;
            continue;  // congestion swallowed the piece fetch
          }
          collect_from(nb, cell_key, now, found);
        }
        ring = std::move(next_ring);
      }
    }
    std::size_t self_entries = 0;
    for (const StoredEntry* stored : found)
      if (stored->entry.node == querier) ++self_entries;
    const std::size_t ranked =
        std::min(found.size(), config_.max_return + self_entries);
    std::partial_sort(found.begin(),
                      found.begin() + static_cast<std::ptrdiff_t>(ranked),
                      found.end(),
                      [&](const StoredEntry* a, const StoredEntry* b) {
                        // Squared distances: same ordering as the fast
                        // path's SoA kernel (and sqrt-free like it), still
                        // recomputed per comparison as the seed did.
                        const double da = proximity::squared_distance(
                            a->entry.vector, querier_vector);
                        const double db = proximity::squared_distance(
                            b->entry.vector, querier_vector);
                        if (da != db) return da < db;
                        return a->entry.node < b->entry.node;
                      });
    std::vector<MapEntry> entries;
    for (const StoredEntry* stored : found) {
      if (entries.size() >= config_.max_return) break;
      if (stored->entry.node == querier) continue;  // never the asker
      entries.push_back(stored->entry);
    }
    count = entries.size();
    if (out.size() < count) out.resize(count);
    for (std::size_t i = 0; i < count; ++i) out[i] = std::move(entries[i]);
  } else {
    // Fast path: every per-lookup container is a reused scratch member and
    // each candidate's distance is computed exactly once.
    found_scratch_.clear();
    collect_from(result.owner, cell_key, now, found_scratch_);

    // Table 1: "define a TTL to search outside y's map content range" —
    // ring expansion over adjacent map pieces (the owner's CAN neighbors)
    // until enough candidates are found or the TTL is exhausted.
    if (found_scratch_.size() < config_.min_candidates &&
        config_.lookup_ring_ttl > 0) {
      if (visit_stamp_.size() < ecan_->slot_count())
        visit_stamp_.resize(ecan_->slot_count(), 0);
      if (++visit_epoch_ == 0) {  // stamp wraparound: one real reset
        std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0u);
        visit_epoch_ = 1;
      }
      visit_stamp_[result.owner] = visit_epoch_;
      std::vector<overlay::NodeId>* ring = &ring_scratch_;
      std::vector<overlay::NodeId>* next_ring = &next_ring_scratch_;
      ring->clear();
      ring->push_back(result.owner);
      for (int depth = 0; depth < config_.lookup_ring_ttl &&
                          found_scratch_.size() < config_.min_candidates &&
                          !ring->empty();
           ++depth) {
        next_ring->clear();
        for (const overlay::NodeId node : *ring)
          for (const overlay::NodeId nb : ecan_->node(node).neighbors)
            if (ecan_->alive(nb) && visit_stamp_[nb] != visit_epoch_) {
              visit_stamp_[nb] = visit_epoch_;
              next_ring->push_back(nb);
            }
        for (const overlay::NodeId nb : *next_ring) {
          ++result.pieces_visited;
          ++result.route_hops;  // one overlay message per piece visited
          if (gated && !fault_plane_->deliver(sim::MessageKind::kLookup,
                                              querier_host,
                                              ecan_->node(nb).host))
            continue;  // that piece stays unread this round
          if (congested &&
              !traffic_plane_->message(querier_host, ecan_->node(nb).host)
                   .delivered) {
            ++stats_.congestion_drops;
            continue;  // congestion swallowed the piece fetch
          }
          collect_from(nb, cell_key, now, found_scratch_);
        }
        std::swap(ring, next_ring);
      }
    }

    // Rank by landmark-space distance to the querier; only the top X are
    // returned, so a partial sort to the return budget suffices. Candidate
    // sets can run to hundreds of entries after ring expansion while
    // max_return is typically ~10, so ordering the tail is wasted work on
    // the hot lookup path. Budget in entries the querier itself owns (they
    // are skipped below) so the cutoff never starves the result. Ties on
    // distance are common once maps condense (quantized vectors), so break
    // them by node id — without a total order the partial-sort prefix
    // would be implementation-defined.
    std::size_t self_entries = 0;
    const std::size_t found_count = found_scratch_.size();
    const std::size_t m = querier_vector.size();
    // Rank keys through the SoA microkernel: transpose the candidates'
    // vectors into a dim-major buffer once, then one vectorizable pass
    // computes every squared distance. Same keys as calling
    // squared_distance per candidate, minus the strided cache misses.
    soa_scratch_.resize(found_count * m);
    dist_scratch_.resize(found_count);
    for (std::size_t i = 0; i < found_count; ++i) {
      const proximity::LandmarkVector& v = found_scratch_[i]->entry.vector;
      TO_EXPECTS(v.size() == m);
      for (std::size_t d = 0; d < m; ++d)
        soa_scratch_[d * found_count + i] = v[d];
    }
    proximity::squared_distances_soa(soa_scratch_, found_count,
                                     querier_vector, dist_scratch_);
    ranked_scratch_.clear();
    ranked_scratch_.reserve(found_count);
    for (std::size_t i = 0; i < found_count; ++i) {
      if (found_scratch_[i]->entry.node == querier) ++self_entries;
      ranked_scratch_.push_back(
          RankedRef{dist_scratch_[i], found_scratch_[i]});
    }
    const std::size_t ranked =
        std::min(ranked_scratch_.size(), config_.max_return + self_entries);
    std::partial_sort(
        ranked_scratch_.begin(),
        ranked_scratch_.begin() + static_cast<std::ptrdiff_t>(ranked),
        ranked_scratch_.end(), [](const RankedRef& a, const RankedRef& b) {
          if (a.distance != b.distance) return a.distance < b.distance;
          return a.stored->entry.node < b.stored->entry.node;
        });
    // Emit by assignment into the caller's buffer: a MapEntry's vector and
    // number reuse their existing heap blocks, so a warmed-up buffer makes
    // the whole lookup allocation-free.
    for (const RankedRef& candidate : ranked_scratch_) {
      if (count >= config_.max_return) break;
      if (candidate.stored->entry.node == querier) continue;  // never the asker
      if (count < out.size())
        out[count] = candidate.stored->entry;
      else
        out.push_back(candidate.stored->entry);
      ++count;
    }
  }

  ++stats_.lookups;
  stats_.route_hops += result.route_hops;
  if (meta != nullptr) *meta = result;
  return count;
}

template <typename Store>
std::size_t BasicMapService<Store>::lookup_entries_into(
    overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
    int level, std::span<const std::uint32_t> cell, sim::Time now,
    std::vector<MapEntry>& out, LookupResult* meta) {
  if constexpr (Store::kReferenceCostModel) {
    return lookup_entries_into(querier, querier_vector,
                               landmarks_->landmark_number(querier_vector),
                               level, cell, now, out, meta);
  } else {
    number_coords_scratch_.resize(
        static_cast<std::size_t>(landmarks_->number_dims()));
    return lookup_entries_into(
        querier, querier_vector,
        landmarks_->landmark_number(querier_vector, number_coords_scratch_),
        level, cell, now, out, meta);
  }
}

template <typename Store>
LookupResult BasicMapService<Store>::lookup(
    overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
    int level, std::span<const std::uint32_t> cell, sim::Time now) {
  LookupResult result;
  const auto entries =
      lookup_entries(querier, querier_vector, level, cell, now, &result);
  result.candidates.reserve(entries.size());
  for (const MapEntry& entry : entries)
    result.candidates.push_back(
        proximity::ProximityRecord{entry.host, entry.vector});
  return result;
}

template <typename Store>
void BasicMapService<Store>::remove_everywhere(overlay::NodeId node) {
  for_each_store([&](overlay::NodeId, Store& store) {
    store.erase_node(node);
  });
}

template <typename Store>
void BasicMapService<Store>::report_dead(overlay::NodeId owner,
                                         overlay::NodeId dead,
                                         sim::Time reported_at,
                                         overlay::NodeId reporter) {
  if (reporter != overlay::kInvalidNode && plane_active()) {
    // The report is itself a message, requester -> owner.
    if (!fault_plane_->deliver(sim::MessageKind::kRepair,
                               ecan_->node(reporter).host,
                               ecan_->node(owner).host)) {
      ++stats_.lost_repairs;
      return;
    }
  }
  if (reporter != overlay::kInvalidNode && traffic_active() &&
      !traffic_plane_->message(ecan_->node(reporter).host,
                               ecan_->node(owner).host)
           .delivered) {
    ++stats_.congestion_drops;
    ++stats_.lost_repairs;
    return;
  }
  Store* store = find_store(owner);
  if (store == nullptr) return;
  // Freshness guard: only evict records published at or before the time
  // the reporter observed the failure — a record the node re-published
  // after recovering outlives the stale report.
  stats_.lazy_deletions += store->erase_node_before(dead, reported_at);
}

template <typename Store>
std::size_t BasicMapService<Store>::expire_before(sim::Time now) {
  std::size_t dropped = 0;
  for_each_store([&](overlay::NodeId, Store& store) {
    dropped += store.expire_before(now);
  });
  stats_.expired_entries += dropped;
  return dropped;
}

template <typename Store>
void BasicMapService<Store>::migrate_after_join(overlay::NodeId joined,
                                                overlay::NodeId split_peer) {
  Store* source = find_store(split_peer);
  if (source == nullptr) return;
  const geom::Zone& new_zone = ecan_->node(joined).zone;
  std::vector<StoredEntry> moving = source->extract_if(
      [&](const StoredEntry& s) { return new_zone.contains(s.position); });
  if (moving.empty()) return;  // don't materialize an empty target store
  Store& target = store_of(joined);
  for (StoredEntry& stored : moving) target.upsert(std::move(stored));
}

template <typename Store>
std::vector<StoredEntry> BasicMapService<Store>::extract_store(
    overlay::NodeId node) {
  if constexpr (Store::kReferenceCostModel) {
    const auto it = stores_.find(node);
    if (it == stores_.end()) return {};
    std::vector<StoredEntry> out = it->second.extract_all();
    stores_.erase(it);
    return out;
  } else {
    Store* store = find_store(node);
    if (store == nullptr) return {};
    return store->extract_all();  // an emptied store reads as absent
  }
}

template <typename Store>
void BasicMapService<Store>::rehome(std::vector<StoredEntry> entries) {
  for (StoredEntry& stored : entries) {
    if (!ecan_->alive(stored.entry.node)) continue;  // drop records of dead
    const overlay::NodeId owner = ecan_->owner_of(stored.position);
    if (owner == overlay::kInvalidNode) continue;
    // Through place_entry, not a raw insert: a record republished while
    // its old host was being drained already sits on `owner`, and
    // appending would duplicate it; place_entry also fires the publish
    // observer so subscribers see rehomed records.
    place_entry(owner, std::move(stored));
    ++stats_.rehomed_entries;
  }
}

template <typename Store>
std::size_t BasicMapService<Store>::store_size(overlay::NodeId node) const {
  const Store* store = find_store(node);
  return store == nullptr ? 0 : store->size();
}

template <typename Store>
double BasicMapService<Store>::mean_entries_per_node() const {
  if (ecan_->empty()) return 0.0;
  return static_cast<double>(total_entries()) /
         static_cast<double>(ecan_->size());
}

template <typename Store>
std::size_t BasicMapService<Store>::max_entries_per_node() const {
  std::size_t max_size = 0;
  for_each_store([&](overlay::NodeId, const Store& store) {
    max_size = std::max(max_size, store.size());
  });
  return max_size;
}

template <typename Store>
std::size_t BasicMapService<Store>::hosting_owner_count() const {
  std::size_t hosting = 0;
  for_each_store([&](overlay::NodeId, const Store& store) {
    if (!store.empty()) ++hosting;
  });
  return hosting;
}

template <typename Store>
bool BasicMapService<Store>::check_placement_invariant() const {
  bool ok = true;
  for_each_store([&](overlay::NodeId owner, const Store& store) {
    if (!ok || store.empty()) return;
    if (!ecan_->alive(owner)) {
      ok = false;
      return;
    }
    store.for_each([&](const StoredEntry& stored) {
      if (ecan_->owner_of(stored.position) != owner) ok = false;
    });
  });
  return ok;
}

template <typename Store>
std::size_t BasicMapService<Store>::total_entries() const {
  std::size_t total = 0;
  for_each_store([&](overlay::NodeId, const Store& store) {
    total += store.size();
  });
  return total;
}

template class BasicMapService<MapStore>;
template class BasicMapService<LegacyLinearMapStore>;

}  // namespace topo::softstate
