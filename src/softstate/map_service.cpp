#include "softstate/map_service.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "geom/hilbert.hpp"

namespace topo::softstate {

MapService::MapService(overlay::EcanNetwork& ecan,
                       const proximity::LandmarkSet& landmarks,
                       MapConfig config)
    : ecan_(&ecan), landmarks_(&landmarks), config_(config) {
  TO_EXPECTS(config_.condense_rate > 0.0 && config_.condense_rate <= 1.0);
  TO_EXPECTS(config_.map_bits >= 1);
  TO_EXPECTS(static_cast<std::size_t>(config_.map_bits) * ecan.dims() <= 58);
  TO_EXPECTS(config_.max_return >= 1);
}

geom::Point MapService::map_position(
    const util::BigUint& landmark_number, int level,
    std::span<const std::uint32_t> cell) const {
  const auto dims = ecan_->dims();
  const geom::HilbertCurve curve(static_cast<int>(dims), config_.map_bits);

  // Coarsen the landmark number to the map curve's resolution; taking the
  // top bits preserves the ordering (and thus locality) of the 1-d key.
  const std::uint64_t key64 = landmark_number.top_bits(
      landmarks_->number_bits(), curve.index_bits() > 64 ? 64 : curve.index_bits());
  const auto coords = curve.coords(util::BigUint(key64));

  // The map region: the hosting cell shrunk to condense_rate of its volume
  // (anchored at the cell's low corner).
  const geom::Zone zone = ecan_->cell_zone(level, cell);
  const double side_factor =
      std::pow(config_.condense_rate, 1.0 / static_cast<double>(dims));

  geom::Point position(dims);
  const double grid = std::ldexp(1.0, -config_.map_bits);  // 2^-map_bits
  for (std::size_t d = 0; d < dims; ++d) {
    const double unit = (static_cast<double>(coords[d]) + 0.5) * grid;
    position[d] = zone.lo(d) + unit * zone.side(d) * side_factor;
  }
  TO_ENSURES(zone.contains(position));
  return position;
}

std::vector<StoredEntry>& MapService::store_of(overlay::NodeId node) {
  return stores_[node];
}

void MapService::place_entry(overlay::NodeId owner, StoredEntry stored) {
  auto& store = store_of(owner);
  for (StoredEntry& existing : store) {
    if (existing.entry.node == stored.entry.node &&
        existing.level == stored.level &&
        existing.cell_key == stored.cell_key) {
      // Keep the fresher record: rehome() can replay a copy that predates
      // a republish which already landed on this owner.
      if (stored.entry.published_at < existing.entry.published_at) return;
      existing = std::move(stored);  // refresh (republish)
      if (publish_observer_) publish_observer_(owner, existing);
      return;
    }
  }
  store.push_back(std::move(stored));
  if (publish_observer_) publish_observer_(owner, store.back());
}

std::size_t MapService::publish(overlay::NodeId node,
                                const proximity::LandmarkVector& vector,
                                sim::Time now, double load, double capacity) {
  TO_EXPECTS(ecan_->alive(node));
  const util::BigUint number = landmarks_->landmark_number(vector);
  std::size_t hops = 0;
  const int levels = ecan_->node_level(node);
  for (int h = 1; h <= levels; ++h) {
    const auto cell = ecan_->cell_of_node(node, h);
    const geom::Point position = map_position(number, h, cell);
    const overlay::RouteResult route = ecan_->route_ecan(node, position);
    if (!route.success) {
      // Unreachable owner: the entry is lost until the next republish
      // (soft state) — but account it, unlike injected message loss.
      ++stats_.failed_routes;
      continue;
    }
    hops += route.hops();
    if (publish_loss_ > 0.0 && fault_rng_.next_bool(publish_loss_)) {
      ++stats_.lost_messages;  // dropped en route: the republish refills it
      continue;
    }
    MapEntry entry;
    entry.node = node;
    entry.host = ecan_->node(node).host;
    entry.vector = vector;
    entry.landmark_number = number;
    entry.load = load;
    entry.capacity = capacity;
    entry.published_at = now;
    entry.expires_at = now + config_.ttl_ms;
    place_entry(route.path.back(),
                StoredEntry{std::move(entry), h, ecan_->pack_cell(h, cell),
                            position});
  }
  ++stats_.publishes;
  stats_.route_hops += hops;
  return hops;
}

void MapService::collect_from(overlay::NodeId owner, int level,
                              std::uint64_t cell_key, sim::Time now,
                              std::vector<const StoredEntry*>& out) {
  const auto it = stores_.find(owner);
  if (it == stores_.end()) return;
  auto& store = it->second;
  // Prune expired entries on access (soft-state decay).
  const std::size_t before = store.size();
  std::erase_if(store, [&](const StoredEntry& s) {
    return s.entry.expires_at <= now;
  });
  stats_.expired_entries += before - store.size();
  for (const StoredEntry& stored : store)
    if (stored.level == level && stored.cell_key == cell_key)
      out.push_back(&stored);
}

std::vector<MapEntry> MapService::lookup_entries(
    overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
    int level, std::span<const std::uint32_t> cell, sim::Time now,
    LookupResult* meta) {
  TO_EXPECTS(ecan_->alive(querier));
  const util::BigUint number = landmarks_->landmark_number(querier_vector);
  const geom::Point position = map_position(number, level, cell);
  const std::uint64_t cell_key = ecan_->pack_cell(level, cell);

  const overlay::RouteResult route = ecan_->route_ecan(querier, position);
  LookupResult result;
  result.route_hops = route.hops();
  if (!route.success) {
    if (meta != nullptr) *meta = result;
    return {};
  }
  result.owner = route.path.back();

  std::vector<const StoredEntry*> found;
  collect_from(result.owner, level, cell_key, now, found);

  // Table 1: "define a TTL to search outside y's map content range" — ring
  // expansion over adjacent map pieces (the owner's CAN neighbors) until
  // enough candidates are found or the TTL is exhausted.
  if (found.size() < config_.min_candidates && config_.lookup_ring_ttl > 0) {
    std::unordered_set<overlay::NodeId> visited = {result.owner};
    std::vector<overlay::NodeId> ring = {result.owner};
    for (int depth = 0; depth < config_.lookup_ring_ttl &&
                        found.size() < config_.min_candidates &&
                        !ring.empty();
         ++depth) {
      std::vector<overlay::NodeId> next_ring;
      for (const overlay::NodeId node : ring)
        for (const overlay::NodeId nb : ecan_->node(node).neighbors)
          if (ecan_->alive(nb) && visited.insert(nb).second)
            next_ring.push_back(nb);
      for (const overlay::NodeId nb : next_ring) {
        ++result.pieces_visited;
        ++result.route_hops;  // one overlay message per piece visited
        collect_from(nb, level, cell_key, now, found);
      }
      ring = std::move(next_ring);
    }
  }

  // Rank by landmark-space distance to the querier; only the top X are
  // returned, so a partial sort to the return budget suffices. Candidate
  // sets can run to hundreds of entries after ring expansion while
  // max_return is typically ~10, so ordering the tail is wasted work on
  // the hot lookup path. Budget in entries the querier itself owns (they
  // are skipped below) so the cutoff never starves the result.
  std::size_t self_entries = 0;
  for (const StoredEntry* stored : found)
    if (stored->entry.node == querier) ++self_entries;
  const std::size_t ranked =
      std::min(found.size(), config_.max_return + self_entries);
  // Ties on distance are common once maps condense (quantized vectors), so
  // break them by node id — without a total order the partial-sort prefix
  // would be implementation-defined.
  std::partial_sort(found.begin(),
                    found.begin() + static_cast<std::ptrdiff_t>(ranked),
                    found.end(),
                    [&](const StoredEntry* a, const StoredEntry* b) {
                      const double da = proximity::vector_distance(
                          a->entry.vector, querier_vector);
                      const double db = proximity::vector_distance(
                          b->entry.vector, querier_vector);
                      if (da != db) return da < db;
                      return a->entry.node < b->entry.node;
                    });
  std::vector<MapEntry> entries;
  for (const StoredEntry* stored : found) {
    if (entries.size() >= config_.max_return) break;
    if (stored->entry.node == querier) continue;  // never return the asker
    entries.push_back(stored->entry);
  }

  ++stats_.lookups;
  stats_.route_hops += result.route_hops;
  if (meta != nullptr) *meta = result;
  return entries;
}

LookupResult MapService::lookup(overlay::NodeId querier,
                                const proximity::LandmarkVector& querier_vector,
                                int level,
                                std::span<const std::uint32_t> cell,
                                sim::Time now) {
  LookupResult result;
  const auto entries =
      lookup_entries(querier, querier_vector, level, cell, now, &result);
  result.candidates.reserve(entries.size());
  for (const MapEntry& entry : entries)
    result.candidates.push_back(
        proximity::ProximityRecord{entry.host, entry.vector});
  return result;
}

void MapService::remove_everywhere(overlay::NodeId node) {
  for (auto& [owner, store] : stores_) {
    (void)owner;
    std::erase_if(store, [&](const StoredEntry& s) {
      return s.entry.node == node;
    });
  }
}

void MapService::report_dead(overlay::NodeId owner, overlay::NodeId dead) {
  const auto it = stores_.find(owner);
  if (it == stores_.end()) return;
  const std::size_t before = it->second.size();
  std::erase_if(it->second, [&](const StoredEntry& s) {
    return s.entry.node == dead;
  });
  stats_.lazy_deletions += before - it->second.size();
}

std::size_t MapService::expire_before(sim::Time now) {
  std::size_t dropped = 0;
  for (auto& [owner, store] : stores_) {
    (void)owner;
    const std::size_t before = store.size();
    std::erase_if(store, [&](const StoredEntry& s) {
      return s.entry.expires_at <= now;
    });
    dropped += before - store.size();
  }
  stats_.expired_entries += dropped;
  return dropped;
}

void MapService::migrate_after_join(overlay::NodeId joined,
                                    overlay::NodeId split_peer) {
  const auto it = stores_.find(split_peer);
  if (it == stores_.end()) return;
  const geom::Zone& new_zone = ecan_->node(joined).zone;
  std::vector<StoredEntry> moving;
  std::erase_if(it->second, [&](StoredEntry& s) {
    if (!new_zone.contains(s.position)) return false;
    moving.push_back(std::move(s));
    return true;
  });
  auto& target = store_of(joined);
  for (StoredEntry& stored : moving) target.push_back(std::move(stored));
}

std::vector<StoredEntry> MapService::extract_store(overlay::NodeId node) {
  const auto it = stores_.find(node);
  if (it == stores_.end()) return {};
  std::vector<StoredEntry> out = std::move(it->second);
  stores_.erase(it);
  return out;
}

void MapService::rehome(std::vector<StoredEntry> entries) {
  for (StoredEntry& stored : entries) {
    if (!ecan_->alive(stored.entry.node)) continue;  // drop records of dead
    const overlay::NodeId owner = ecan_->owner_of(stored.position);
    if (owner == overlay::kInvalidNode) continue;
    // Through place_entry, not push_back: a record republished while its
    // old host was being drained already sits on `owner`, and appending
    // would duplicate it; place_entry also fires the publish observer so
    // subscribers see rehomed records.
    place_entry(owner, std::move(stored));
    ++stats_.rehomed_entries;
  }
}

std::size_t MapService::store_size(overlay::NodeId node) const {
  const auto it = stores_.find(node);
  return it == stores_.end() ? 0 : it->second.size();
}

double MapService::mean_entries_per_node() const {
  if (ecan_->empty()) return 0.0;
  return static_cast<double>(total_entries()) /
         static_cast<double>(ecan_->size());
}

std::size_t MapService::max_entries_per_node() const {
  std::size_t max_size = 0;
  for (const auto& [owner, store] : stores_) {
    (void)owner;
    max_size = std::max(max_size, store.size());
  }
  return max_size;
}

bool MapService::check_placement_invariant() const {
  for (const auto& [owner, store] : stores_) {
    if (store.empty()) continue;
    if (!ecan_->alive(owner)) return false;
    for (const StoredEntry& stored : store)
      if (ecan_->owner_of(stored.position) != owner) return false;
  }
  return true;
}

std::size_t MapService::total_entries() const {
  std::size_t total = 0;
  for (const auto& [owner, store] : stores_) {
    (void)owner;
    total += store.size();
  }
  return total;
}

}  // namespace topo::softstate
