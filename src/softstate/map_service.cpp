#include "softstate/map_service.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>

#include "geom/hilbert.hpp"

namespace topo::softstate {

template <typename Store>
BasicMapService<Store>::BasicMapService(overlay::EcanNetwork& ecan,
                                        const proximity::LandmarkSet& landmarks,
                                        MapConfig config)
    : ecan_(&ecan),
      landmarks_(&landmarks),
      config_(config),
      store_traits_{landmarks.number_bits()},
      map_curve_(static_cast<int>(ecan.dims()), config.map_bits),
      map_side_factor_(std::pow(
          config.condense_rate, 1.0 / static_cast<double>(ecan.dims()))) {
  TO_EXPECTS(config_.condense_rate > 0.0 && config_.condense_rate <= 1.0);
  TO_EXPECTS(config_.map_bits >= 1);
  TO_EXPECTS(static_cast<std::size_t>(config_.map_bits) * ecan.dims() <= 58);
  TO_EXPECTS(config_.max_return >= 1);
}

template <typename Store>
geom::Point BasicMapService<Store>::map_position(
    const util::BigUint& landmark_number, int level,
    std::span<const std::uint32_t> cell) const {
  const auto dims = ecan_->dims();

  // Coarsen the landmark number to the map curve's resolution; taking the
  // top bits preserves the ordering (and thus locality) of the 1-d key.
  const std::uint64_t key64 = landmark_number.top_bits(
      landmarks_->number_bits(),
      map_curve_.index_bits() > 64 ? 64 : map_curve_.index_bits());

  std::array<std::uint32_t, geom::Point::kMaxDims> coords{};
  double side_factor = map_side_factor_;
  if constexpr (Store::kReferenceCostModel) {
    // Seed-era placement cost: rebuild the curve, allocate its coordinate
    // vector and re-run pow() on every call (identical values — the cache
    // above is cost, not semantics).
    const geom::HilbertCurve curve(static_cast<int>(dims), config_.map_bits);
    const auto heap_coords = curve.coords(util::BigUint(key64));
    std::copy(heap_coords.begin(), heap_coords.end(), coords.begin());
    side_factor =
        std::pow(config_.condense_rate, 1.0 / static_cast<double>(dims));
  } else {
    map_curve_.coords_into(util::BigUint(key64),
                           std::span(coords.data(), dims));
  }

  // The map region: the hosting cell shrunk to condense_rate of its volume
  // (anchored at the cell's low corner).
  const geom::Zone zone = ecan_->cell_zone(level, cell);

  geom::Point position(dims);
  const double grid = std::ldexp(1.0, -config_.map_bits);  // 2^-map_bits
  for (std::size_t d = 0; d < dims; ++d) {
    const double unit = (static_cast<double>(coords[d]) + 0.5) * grid;
    position[d] = zone.lo(d) + unit * zone.side(d) * side_factor;
  }
  TO_ENSURES(zone.contains(position));
  return position;
}

template <typename Store>
Store& BasicMapService<Store>::store_of(overlay::NodeId node) {
  if constexpr (Store::kReferenceCostModel) {
    const auto it = stores_.find(node);
    if (it != stores_.end()) return it->second;
    return stores_.emplace(node, Store(store_traits_)).first->second;
  } else {
    if (stores_.size() <= node)
      stores_.resize(static_cast<std::size_t>(node) + 1,
                     Store(store_traits_));
    return stores_[node];
  }
}

template <typename Store>
const Store* BasicMapService<Store>::find_store(overlay::NodeId node) const {
  if constexpr (Store::kReferenceCostModel) {
    const auto it = stores_.find(node);
    return it == stores_.end() ? nullptr : &it->second;
  } else {
    return node < stores_.size() ? &stores_[node] : nullptr;
  }
}

template <typename Store>
Store* BasicMapService<Store>::find_store(overlay::NodeId node) {
  if constexpr (Store::kReferenceCostModel) {
    const auto it = stores_.find(node);
    return it == stores_.end() ? nullptr : &it->second;
  } else {
    return node < stores_.size() ? &stores_[node] : nullptr;
  }
}

template <typename Store>
template <typename Fn>
void BasicMapService<Store>::for_each_store(Fn&& fn) {
  if constexpr (Store::kReferenceCostModel) {
    for (auto& [owner, store] : stores_) fn(owner, store);
  } else {
    for (std::size_t id = 0; id < stores_.size(); ++id)
      fn(static_cast<overlay::NodeId>(id), stores_[id]);
  }
}

template <typename Store>
template <typename Fn>
void BasicMapService<Store>::for_each_store(Fn&& fn) const {
  if constexpr (Store::kReferenceCostModel) {
    for (const auto& [owner, store] : stores_) fn(owner, store);
  } else {
    for (std::size_t id = 0; id < stores_.size(); ++id)
      fn(static_cast<overlay::NodeId>(id), stores_[id]);
  }
}

template <typename Store>
bool BasicMapService<Store>::route_to(overlay::NodeId from,
                                      const geom::Point& position) {
  if (config_.use_reference_router) {
    overlay::RouteResult route = ecan_->route_ecan_reference(from, position);
    route_scratch_.path = std::move(route.path);
    return route.success;
  }
  return ecan_->route_ecan(from, position, route_scratch_);
}

template <typename Store>
void BasicMapService<Store>::place_entry(overlay::NodeId owner,
                                         StoredEntry stored) {
  const auto [outcome, entry] = store_of(owner).upsert(std::move(stored));
  // Keep the fresher record: rehome() can replay a copy that predates a
  // republish which already landed on this owner.
  if (outcome == UpsertOutcome::kStaleDropped) return;
  if (publish_observer_) publish_observer_(owner, *entry);
}

template <typename Store>
std::size_t BasicMapService<Store>::publish(
    overlay::NodeId node, const proximity::LandmarkVector& vector,
    sim::Time now, double load, double capacity) {
  return publish(node, vector, landmarks_->landmark_number(vector), now,
                 load, capacity);
}

template <typename Store>
std::size_t BasicMapService<Store>::publish(
    overlay::NodeId node, const proximity::LandmarkVector& vector,
    const util::BigUint& number, sim::Time now, double load,
    double capacity) {
  TO_EXPECTS(ecan_->alive(node));
  std::size_t hops = 0;
  const int levels = ecan_->node_level(node);
  std::array<std::uint32_t, geom::Point::kMaxDims> cell_buf{};
  const std::span<std::uint32_t> cell_span(cell_buf.data(), ecan_->dims());
  for (int h = 1; h <= levels; ++h) {
    std::span<const std::uint32_t> cell;
    if constexpr (Store::kReferenceCostModel) {
      // Seed-era cost: a fresh coordinate vector per level per publish.
      const auto heap_cell = ecan_->cell_of_node(node, h);
      std::copy(heap_cell.begin(), heap_cell.end(), cell_buf.begin());
      cell = cell_span;
    } else {
      ecan_->cell_of_node_into(node, h, cell_span);
      cell = cell_span;
    }
    const geom::Point position = map_position(number, h, cell);
    if (!route_to(node, position)) {
      // Unreachable owner: the entry is lost until the next republish
      // (soft state) — but account it, unlike injected message loss.
      ++stats_.failed_routes;
      continue;
    }
    hops += route_scratch_.path.size() - 1;
    if (publish_loss_ > 0.0 && fault_rng_.next_bool(publish_loss_)) {
      ++stats_.lost_messages;  // dropped en route: the republish refills it
      continue;
    }
    MapEntry entry;
    entry.node = node;
    entry.host = ecan_->node(node).host;
    entry.vector = vector;
    entry.landmark_number = number;
    entry.load = load;
    entry.capacity = capacity;
    entry.published_at = now;
    entry.expires_at = now + config_.ttl_ms;
    place_entry(route_scratch_.path.back(),
                StoredEntry{std::move(entry), h, ecan_->pack_cell(h, cell),
                            position});
  }
  ++stats_.publishes;
  stats_.route_hops += hops;
  return hops;
}

template <typename Store>
void BasicMapService<Store>::collect_from(
    overlay::NodeId owner, std::uint64_t cell_key, sim::Time now,
    std::vector<const StoredEntry*>& out) {
  Store* store;
  if constexpr (Store::kReferenceCostModel) {
    // Seed-era cost (and bug): the read path used the creating accessor,
    // materializing an empty store for every owner a lookup ever touched —
    // which every later expiry sweep then had to visit. Results are
    // unchanged (an empty store contributes nothing); the cost was not.
    store = &store_of(owner);
  } else {
    store = find_store(owner);
    if (store == nullptr) return;
  }
  // Prune expired entries on access (soft-state decay).
  stats_.expired_entries += store->expire_before(now);
  store->for_each_in_group(cell_key, [&](const StoredEntry& stored) {
    out.push_back(&stored);
  });
}

template <typename Store>
std::vector<MapEntry> BasicMapService<Store>::lookup_entries(
    overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
    int level, std::span<const std::uint32_t> cell, sim::Time now,
    LookupResult* meta) {
  std::vector<MapEntry> entries;
  const std::size_t count = lookup_entries_into(
      querier, querier_vector, landmarks_->landmark_number(querier_vector),
      level, cell, now, entries, meta);
  entries.resize(count);
  return entries;
}

template <typename Store>
std::size_t BasicMapService<Store>::lookup_entries_into(
    overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
    const util::BigUint& number, int level,
    std::span<const std::uint32_t> cell, sim::Time now,
    std::vector<MapEntry>& out, LookupResult* meta) {
  TO_EXPECTS(ecan_->alive(querier));
  const geom::Point position = map_position(number, level, cell);
  const std::uint64_t cell_key = ecan_->pack_cell(level, cell);

  const bool routed = route_to(querier, position);
  LookupResult result;
  result.route_hops = route_scratch_.path.size() - 1;
  if (!routed) {
    ++stats_.lookups;
    stats_.route_hops += result.route_hops;
    if (meta != nullptr) *meta = result;
    return 0;
  }
  result.owner = route_scratch_.path.back();

  std::size_t count = 0;
  if constexpr (Store::kReferenceCostModel) {
    // Seed-era lookup, verbatim: fresh containers per call and the sort
    // comparator recomputing both distances on every comparison. The sort
    // keys are identical to the fast path's, so the returned entries are
    // too — only the costs differ.
    std::vector<const StoredEntry*> found;
    collect_from(result.owner, cell_key, now, found);
    if (found.size() < config_.min_candidates &&
        config_.lookup_ring_ttl > 0) {
      std::unordered_set<overlay::NodeId> visited = {result.owner};
      std::vector<overlay::NodeId> ring = {result.owner};
      for (int depth = 0; depth < config_.lookup_ring_ttl &&
                          found.size() < config_.min_candidates &&
                          !ring.empty();
           ++depth) {
        std::vector<overlay::NodeId> next_ring;
        for (const overlay::NodeId node : ring)
          for (const overlay::NodeId nb : ecan_->node(node).neighbors)
            if (ecan_->alive(nb) && visited.insert(nb).second)
              next_ring.push_back(nb);
        for (const overlay::NodeId nb : next_ring) {
          ++result.pieces_visited;
          ++result.route_hops;  // one overlay message per piece visited
          collect_from(nb, cell_key, now, found);
        }
        ring = std::move(next_ring);
      }
    }
    std::size_t self_entries = 0;
    for (const StoredEntry* stored : found)
      if (stored->entry.node == querier) ++self_entries;
    const std::size_t ranked =
        std::min(found.size(), config_.max_return + self_entries);
    std::partial_sort(found.begin(),
                      found.begin() + static_cast<std::ptrdiff_t>(ranked),
                      found.end(),
                      [&](const StoredEntry* a, const StoredEntry* b) {
                        const double da = proximity::vector_distance(
                            a->entry.vector, querier_vector);
                        const double db = proximity::vector_distance(
                            b->entry.vector, querier_vector);
                        if (da != db) return da < db;
                        return a->entry.node < b->entry.node;
                      });
    std::vector<MapEntry> entries;
    for (const StoredEntry* stored : found) {
      if (entries.size() >= config_.max_return) break;
      if (stored->entry.node == querier) continue;  // never the asker
      entries.push_back(stored->entry);
    }
    count = entries.size();
    if (out.size() < count) out.resize(count);
    for (std::size_t i = 0; i < count; ++i) out[i] = std::move(entries[i]);
  } else {
    // Fast path: every per-lookup container is a reused scratch member and
    // each candidate's distance is computed exactly once.
    found_scratch_.clear();
    collect_from(result.owner, cell_key, now, found_scratch_);

    // Table 1: "define a TTL to search outside y's map content range" —
    // ring expansion over adjacent map pieces (the owner's CAN neighbors)
    // until enough candidates are found or the TTL is exhausted.
    if (found_scratch_.size() < config_.min_candidates &&
        config_.lookup_ring_ttl > 0) {
      if (visit_stamp_.size() < ecan_->slot_count())
        visit_stamp_.resize(ecan_->slot_count(), 0);
      if (++visit_epoch_ == 0) {  // stamp wraparound: one real reset
        std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0u);
        visit_epoch_ = 1;
      }
      visit_stamp_[result.owner] = visit_epoch_;
      std::vector<overlay::NodeId>* ring = &ring_scratch_;
      std::vector<overlay::NodeId>* next_ring = &next_ring_scratch_;
      ring->clear();
      ring->push_back(result.owner);
      for (int depth = 0; depth < config_.lookup_ring_ttl &&
                          found_scratch_.size() < config_.min_candidates &&
                          !ring->empty();
           ++depth) {
        next_ring->clear();
        for (const overlay::NodeId node : *ring)
          for (const overlay::NodeId nb : ecan_->node(node).neighbors)
            if (ecan_->alive(nb) && visit_stamp_[nb] != visit_epoch_) {
              visit_stamp_[nb] = visit_epoch_;
              next_ring->push_back(nb);
            }
        for (const overlay::NodeId nb : *next_ring) {
          ++result.pieces_visited;
          ++result.route_hops;  // one overlay message per piece visited
          collect_from(nb, cell_key, now, found_scratch_);
        }
        std::swap(ring, next_ring);
      }
    }

    // Rank by landmark-space distance to the querier; only the top X are
    // returned, so a partial sort to the return budget suffices. Candidate
    // sets can run to hundreds of entries after ring expansion while
    // max_return is typically ~10, so ordering the tail is wasted work on
    // the hot lookup path. Budget in entries the querier itself owns (they
    // are skipped below) so the cutoff never starves the result. Ties on
    // distance are common once maps condense (quantized vectors), so break
    // them by node id — without a total order the partial-sort prefix
    // would be implementation-defined.
    std::size_t self_entries = 0;
    ranked_scratch_.clear();
    ranked_scratch_.reserve(found_scratch_.size());
    for (const StoredEntry* stored : found_scratch_) {
      if (stored->entry.node == querier) ++self_entries;
      ranked_scratch_.push_back(RankedRef{
          proximity::vector_distance(stored->entry.vector, querier_vector),
          stored});
    }
    const std::size_t ranked =
        std::min(ranked_scratch_.size(), config_.max_return + self_entries);
    std::partial_sort(
        ranked_scratch_.begin(),
        ranked_scratch_.begin() + static_cast<std::ptrdiff_t>(ranked),
        ranked_scratch_.end(), [](const RankedRef& a, const RankedRef& b) {
          if (a.distance != b.distance) return a.distance < b.distance;
          return a.stored->entry.node < b.stored->entry.node;
        });
    // Emit by assignment into the caller's buffer: a MapEntry's vector and
    // number reuse their existing heap blocks, so a warmed-up buffer makes
    // the whole lookup allocation-free.
    for (const RankedRef& candidate : ranked_scratch_) {
      if (count >= config_.max_return) break;
      if (candidate.stored->entry.node == querier) continue;  // never the asker
      if (count < out.size())
        out[count] = candidate.stored->entry;
      else
        out.push_back(candidate.stored->entry);
      ++count;
    }
  }

  ++stats_.lookups;
  stats_.route_hops += result.route_hops;
  if (meta != nullptr) *meta = result;
  return count;
}

template <typename Store>
LookupResult BasicMapService<Store>::lookup(
    overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
    int level, std::span<const std::uint32_t> cell, sim::Time now) {
  LookupResult result;
  const auto entries =
      lookup_entries(querier, querier_vector, level, cell, now, &result);
  result.candidates.reserve(entries.size());
  for (const MapEntry& entry : entries)
    result.candidates.push_back(
        proximity::ProximityRecord{entry.host, entry.vector});
  return result;
}

template <typename Store>
void BasicMapService<Store>::remove_everywhere(overlay::NodeId node) {
  for_each_store([&](overlay::NodeId, Store& store) {
    store.erase_node(node);
  });
}

template <typename Store>
void BasicMapService<Store>::report_dead(overlay::NodeId owner,
                                         overlay::NodeId dead) {
  Store* store = find_store(owner);
  if (store == nullptr) return;
  stats_.lazy_deletions += store->erase_node(dead);
}

template <typename Store>
std::size_t BasicMapService<Store>::expire_before(sim::Time now) {
  std::size_t dropped = 0;
  for_each_store([&](overlay::NodeId, Store& store) {
    dropped += store.expire_before(now);
  });
  stats_.expired_entries += dropped;
  return dropped;
}

template <typename Store>
void BasicMapService<Store>::migrate_after_join(overlay::NodeId joined,
                                                overlay::NodeId split_peer) {
  Store* source = find_store(split_peer);
  if (source == nullptr) return;
  const geom::Zone& new_zone = ecan_->node(joined).zone;
  std::vector<StoredEntry> moving = source->extract_if(
      [&](const StoredEntry& s) { return new_zone.contains(s.position); });
  if (moving.empty()) return;  // don't materialize an empty target store
  Store& target = store_of(joined);
  for (StoredEntry& stored : moving) target.upsert(std::move(stored));
}

template <typename Store>
std::vector<StoredEntry> BasicMapService<Store>::extract_store(
    overlay::NodeId node) {
  if constexpr (Store::kReferenceCostModel) {
    const auto it = stores_.find(node);
    if (it == stores_.end()) return {};
    std::vector<StoredEntry> out = it->second.extract_all();
    stores_.erase(it);
    return out;
  } else {
    Store* store = find_store(node);
    if (store == nullptr) return {};
    return store->extract_all();  // an emptied store reads as absent
  }
}

template <typename Store>
void BasicMapService<Store>::rehome(std::vector<StoredEntry> entries) {
  for (StoredEntry& stored : entries) {
    if (!ecan_->alive(stored.entry.node)) continue;  // drop records of dead
    const overlay::NodeId owner = ecan_->owner_of(stored.position);
    if (owner == overlay::kInvalidNode) continue;
    // Through place_entry, not a raw insert: a record republished while
    // its old host was being drained already sits on `owner`, and
    // appending would duplicate it; place_entry also fires the publish
    // observer so subscribers see rehomed records.
    place_entry(owner, std::move(stored));
    ++stats_.rehomed_entries;
  }
}

template <typename Store>
std::size_t BasicMapService<Store>::store_size(overlay::NodeId node) const {
  const Store* store = find_store(node);
  return store == nullptr ? 0 : store->size();
}

template <typename Store>
double BasicMapService<Store>::mean_entries_per_node() const {
  if (ecan_->empty()) return 0.0;
  return static_cast<double>(total_entries()) /
         static_cast<double>(ecan_->size());
}

template <typename Store>
std::size_t BasicMapService<Store>::max_entries_per_node() const {
  std::size_t max_size = 0;
  for_each_store([&](overlay::NodeId, const Store& store) {
    max_size = std::max(max_size, store.size());
  });
  return max_size;
}

template <typename Store>
std::size_t BasicMapService<Store>::hosting_owner_count() const {
  std::size_t hosting = 0;
  for_each_store([&](overlay::NodeId, const Store& store) {
    if (!store.empty()) ++hosting;
  });
  return hosting;
}

template <typename Store>
bool BasicMapService<Store>::check_placement_invariant() const {
  bool ok = true;
  for_each_store([&](overlay::NodeId owner, const Store& store) {
    if (!ok || store.empty()) return;
    if (!ecan_->alive(owner)) {
      ok = false;
      return;
    }
    store.for_each([&](const StoredEntry& stored) {
      if (ecan_->owner_of(stored.position) != owner) ok = false;
    });
  });
  return ok;
}

template <typename Store>
std::size_t BasicMapService<Store>::total_entries() const {
  std::size_t total = 0;
  for_each_store([&](overlay::NodeId, const Store& store) {
    total += store.size();
  });
  return total;
}

template class BasicMapService<MapStore>;
template class BasicMapService<LegacyLinearMapStore>;

}  // namespace topo::softstate
