// Soft-state map entries (paper Section 5.1).
//
// The proximity information of node n — its landmark vector plus the load
// statistics of Section 6 — is stored as an object <Z, n, p> on the overlay:
// in the *map* of every high-order zone Z that n is a member of, at the
// position p derived from n's landmark number. Entries are soft state:
// they carry an expiry time and must be republished.
#pragma once

#include <cstdint>

#include "geom/point.hpp"
#include "overlay/node.hpp"
#include "proximity/landmarks.hpp"
#include "sim/event_queue.hpp"
#include "util/biguint.hpp"

namespace topo::softstate {

struct MapEntry {
  overlay::NodeId node = overlay::kInvalidNode;
  net::HostId host = net::kInvalidHost;
  proximity::LandmarkVector vector;
  util::BigUint landmark_number;

  // Section 6: heterogeneity / load statistics published alongside
  // proximity information.
  double load = 0.0;
  double capacity = 1.0;

  sim::Time published_at = 0.0;
  sim::Time expires_at = 0.0;
};

/// An entry as placed on a hosting node: tagged with the map (level + cell)
/// it belongs to and the exact position its key hashed to.
struct StoredEntry {
  MapEntry entry;
  int level = 0;
  std::uint64_t cell_key = 0;
  geom::Point position;
};

}  // namespace topo::softstate
