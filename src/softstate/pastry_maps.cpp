#include "softstate/pastry_maps.hpp"

#include <algorithm>

namespace topo::softstate {

PastryMapService::PastryMapService(overlay::PastryNetwork& pastry,
                                   const proximity::LandmarkSet& landmarks,
                                   PastryMapConfig config)
    : pastry_(&pastry), landmarks_(&landmarks), config_(config) {
  TO_EXPECTS(config_.publish_rows >= 1);
  config_.publish_rows = std::min(config_.publish_rows, pastry.digits());
}

overlay::PastryId PastryMapService::position_in(
    const util::BigUint& landmark_number, overlay::PastryId lo,
    overlay::PastryId hi) const {
  TO_EXPECTS(hi > lo);
  const overlay::PastryId span = hi - lo;
  // Top bits of the landmark number scaled into the range, preserving the
  // 1-d locality of the number.
  const double unit =
      landmark_number.to_unit(landmarks_->number_bits());
  auto offset = static_cast<overlay::PastryId>(
      unit * static_cast<double>(span));
  if (offset >= span) offset = span - 1;
  return lo + offset;
}

std::size_t PastryMapService::publish(
    overlay::NodeId node, const proximity::LandmarkVector& vector,
    sim::Time now) {
  TO_EXPECTS(pastry_->alive(node));
  const util::BigUint number = landmarks_->landmark_number(vector);
  const overlay::PastryId id = pastry_->node(node).id;
  std::size_t hops = 0;
  ++stats_.publishes;

  for (int row = 1; row <= config_.publish_rows; ++row) {
    // The node's own prefix of length `row`: slot_range of (row-1, own
    // digit) — i.e. the region of ids sharing its first `row` digits.
    const auto [lo, hi] =
        pastry_->slot_range(id, row - 1, pastry_->digit(id, row - 1));
    const overlay::PastryId position = position_in(number, lo, hi);
    const overlay::RouteResult route = pastry_->route(node, position);
    if (!route.success) continue;
    hops += route.hops();
    const overlay::NodeId owner = route.path.back();

    PastryMapEntry entry;
    entry.node = node;
    entry.host = pastry_->node(node).host;
    entry.vector = vector;
    entry.prefix_digits = row;
    entry.region_lo = lo;
    entry.position = position;
    entry.published_at = now;
    entry.expires_at = now + config_.ttl_ms;

    auto& store = stores_[owner];
    bool replaced = false;
    for (PastryMapEntry& existing : store) {
      if (existing.node == node && existing.prefix_digits == row &&
          existing.region_lo == lo) {
        existing = entry;
        replaced = true;
        break;
      }
    }
    if (!replaced) store.push_back(std::move(entry));
  }
  stats_.route_hops += hops;
  return hops;
}

std::vector<PastryMapEntry> PastryMapService::lookup(
    overlay::NodeId querier, const proximity::LandmarkVector& vector,
    int prefix_digits, overlay::PastryId lo, overlay::PastryId hi,
    sim::Time now, PastryLookupMeta* meta) {
  TO_EXPECTS(pastry_->alive(querier));
  const util::BigUint number = landmarks_->landmark_number(vector);
  const overlay::PastryId position = position_in(number, lo, hi);
  const overlay::RouteResult route = pastry_->route(querier, position);
  PastryLookupMeta local_meta;
  local_meta.route_hops = route.hops();
  ++stats_.lookups;
  stats_.route_hops += route.hops();
  if (!route.success) {
    if (meta != nullptr) *meta = local_meta;
    return {};
  }
  local_meta.owner = route.path.back();

  std::vector<const PastryMapEntry*> found;
  auto collect = [&](overlay::NodeId owner) {
    const auto it = stores_.find(owner);
    if (it == stores_.end()) return;
    auto& store = it->second;
    const std::size_t before = store.size();
    std::erase_if(store, [&](const PastryMapEntry& e) {
      return e.expires_at <= now;
    });
    stats_.expired_entries += before - store.size();
    for (const PastryMapEntry& entry : store)
      if (entry.prefix_digits == prefix_digits && entry.region_lo == lo)
        found.push_back(&entry);
  };
  collect(local_meta.owner);

  // Thin piece: walk ring neighbors while they are still inside the
  // region (adjacent owners hold adjacent landmark-number sub-ranges).
  const auto region_members = pastry_->nodes_in_range(lo, hi);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < region_members.size(); ++i)
    if (region_members[i] == local_meta.owner) cursor = i;
  for (int step = 1; step <= config_.walk_ttl &&
                     found.size() < config_.min_candidates &&
                     static_cast<std::size_t>(step) < region_members.size();
       ++step) {
    const std::size_t index = (cursor + static_cast<std::size_t>(step)) %
                              region_members.size();
    ++local_meta.owners_visited;
    ++local_meta.route_hops;
    ++stats_.route_hops;
    collect(region_members[index]);
  }

  std::sort(found.begin(), found.end(),
            [&](const PastryMapEntry* a, const PastryMapEntry* b) {
              return proximity::vector_distance(a->vector, vector) <
                     proximity::vector_distance(b->vector, vector);
            });
  std::vector<PastryMapEntry> result;
  for (const PastryMapEntry* entry : found) {
    if (result.size() >= config_.max_return) break;
    if (entry->node == querier) continue;
    result.push_back(*entry);
  }
  if (meta != nullptr) *meta = local_meta;
  return result;
}

void PastryMapService::remove_everywhere(overlay::NodeId node) {
  for (auto& [owner, store] : stores_) {
    (void)owner;
    std::erase_if(store,
                  [&](const PastryMapEntry& e) { return e.node == node; });
  }
}

void PastryMapService::report_dead(overlay::NodeId owner,
                                   overlay::NodeId dead) {
  const auto it = stores_.find(owner);
  if (it == stores_.end()) return;
  const std::size_t before = it->second.size();
  std::erase_if(it->second,
                [&](const PastryMapEntry& e) { return e.node == dead; });
  stats_.lazy_deletions += before - it->second.size();
}

std::size_t PastryMapService::expire_before(sim::Time now) {
  std::size_t dropped = 0;
  for (auto& [owner, store] : stores_) {
    (void)owner;
    const std::size_t before = store.size();
    std::erase_if(store, [&](const PastryMapEntry& e) {
      return e.expires_at <= now;
    });
    dropped += before - store.size();
  }
  stats_.expired_entries += dropped;
  return dropped;
}

void PastryMapService::rehome_from(overlay::NodeId former_owner) {
  const auto it = stores_.find(former_owner);
  if (it == stores_.end()) return;
  std::vector<PastryMapEntry> moving = std::move(it->second);
  stores_.erase(it);
  for (PastryMapEntry& entry : moving) {
    if (!pastry_->alive(entry.node)) continue;
    const overlay::NodeId owner =
        pastry_->numerically_closest(entry.position);
    stores_[owner].push_back(std::move(entry));
  }
}

std::size_t PastryMapService::store_size(overlay::NodeId node) const {
  const auto it = stores_.find(node);
  return it == stores_.end() ? 0 : it->second.size();
}

bool PastryMapService::check_placement_invariant() const {
  for (const auto& [owner, store] : stores_) {
    if (store.empty()) continue;
    if (!pastry_->alive(owner)) return false;
    for (const PastryMapEntry& entry : store)
      if (pastry_->numerically_closest(entry.position) != owner)
        return false;
  }
  return true;
}

std::size_t PastryMapService::total_entries() const {
  std::size_t total = 0;
  for (const auto& [owner, store] : stores_) {
    (void)owner;
    total += store.size();
  }
  return total;
}

}  // namespace topo::softstate
