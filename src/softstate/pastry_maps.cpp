#include "softstate/pastry_maps.hpp"

#include <algorithm>

namespace topo::softstate {

PastryMapService::PastryMapService(overlay::PastryNetwork& pastry,
                                   const proximity::LandmarkSet& landmarks,
                                   PastryMapConfig config)
    : pastry_(&pastry), landmarks_(&landmarks), config_(config) {
  TO_EXPECTS(config_.publish_rows >= 1);
  config_.publish_rows = std::min(config_.publish_rows, pastry.digits());
}

overlay::PastryId PastryMapService::position_in(
    const util::BigUint& landmark_number, overlay::PastryId lo,
    overlay::PastryId hi) const {
  TO_EXPECTS(hi > lo);
  const overlay::PastryId span = hi - lo;
  // Top bits of the landmark number scaled into the range, preserving the
  // 1-d locality of the number.
  const double unit =
      landmark_number.to_unit(landmarks_->number_bits());
  auto offset = static_cast<overlay::PastryId>(
      unit * static_cast<double>(span));
  if (offset >= span) offset = span - 1;
  return lo + offset;
}

PastryMapStore& PastryMapService::store_of(overlay::NodeId node) {
  const auto it = stores_.find(node);
  if (it != stores_.end()) return it->second;
  return stores_.emplace(node, PastryMapStore{}).first->second;
}

const PastryMapStore* PastryMapService::find_store(
    overlay::NodeId node) const {
  const auto it = stores_.find(node);
  return it == stores_.end() ? nullptr : &it->second;
}

PastryMapStore* PastryMapService::find_store(overlay::NodeId node) {
  const auto it = stores_.find(node);
  return it == stores_.end() ? nullptr : &it->second;
}

sim::Verdict PastryMapService::gate_path_(
    sim::MessageKind kind, const std::vector<overlay::NodeId>& path) {
  return fault_plane_->message_via(
      kind, path,
      [&](overlay::NodeId id) { return pastry_->node(id).host; });
}

std::size_t PastryMapService::publish(
    overlay::NodeId node, const proximity::LandmarkVector& vector,
    sim::Time now) {
  TO_EXPECTS(pastry_->alive(node));
  const util::BigUint number = landmarks_->landmark_number(vector);
  const overlay::PastryId id = pastry_->node(node).id;
  std::size_t hops = 0;
  ++stats_.publishes;

  for (int row = 1; row <= config_.publish_rows; ++row) {
    // The node's own prefix of length `row`: slot_range of (row-1, own
    // digit) — i.e. the region of ids sharing its first `row` digits.
    const auto [lo, hi] =
        pastry_->slot_range(id, row - 1, pastry_->digit(id, row - 1));
    const overlay::PastryId position = position_in(number, lo, hi);
    const overlay::RouteResult route = pastry_->route(node, position);
    if (!route.success) {
      // Routing failure is its own bucket, never conflated with injected
      // loss (same split as the eCAN backend).
      ++stats_.failed_routes;
      continue;
    }
    hops += route.hops();
    const overlay::NodeId owner = route.path.back();
    if (plane_active_()) {
      const sim::Verdict verdict =
          gate_path_(sim::MessageKind::kPublish, route.path);
      if (!verdict.delivered()) {
        if (verdict.retryable())
          ++stats_.lost_messages;
        else
          ++stats_.blocked_messages;
        continue;
      }
    }

    PastryMapEntry entry;
    entry.node = node;
    entry.host = pastry_->node(node).host;
    entry.vector = vector;
    entry.prefix_digits = row;
    entry.region_lo = lo;
    entry.position = position;
    entry.published_at = now;
    entry.expires_at = now + config_.ttl_ms;
    store_of(owner).upsert(std::move(entry));
  }
  stats_.route_hops += hops;
  return hops;
}

std::vector<PastryMapEntry> PastryMapService::lookup(
    overlay::NodeId querier, const proximity::LandmarkVector& vector,
    int prefix_digits, overlay::PastryId lo, overlay::PastryId hi,
    sim::Time now, PastryLookupMeta* meta) {
  TO_EXPECTS(pastry_->alive(querier));
  const util::BigUint number = landmarks_->landmark_number(vector);
  const overlay::PastryId position = position_in(number, lo, hi);
  const overlay::RouteResult route = pastry_->route(querier, position);
  PastryLookupMeta local_meta;
  local_meta.route_hops = route.hops();
  ++stats_.lookups;
  stats_.route_hops += route.hops();
  if (!route.success) {
    if (meta != nullptr) *meta = local_meta;
    return {};
  }
  local_meta.owner = route.path.back();
  const bool gated = plane_active_();
  if (gated &&
      !gate_path_(sim::MessageKind::kLookup, route.path).delivered()) {
    ++stats_.fault_blocked_lookups;
    if (meta != nullptr) *meta = local_meta;
    return {};
  }

  const PastryMapStoreTraits::GroupKey region{prefix_digits, lo};
  std::vector<const PastryMapEntry*> found;
  auto collect = [&](overlay::NodeId owner) {
    PastryMapStore* store = find_store(owner);
    if (store == nullptr) return;
    stats_.expired_entries += store->expire_before(now);
    store->for_each_in_group(region, [&](const PastryMapEntry& entry) {
      found.push_back(&entry);
    });
  };
  collect(local_meta.owner);

  // Thin piece: walk ring neighbors while they are still inside the
  // region (adjacent owners hold adjacent landmark-number sub-ranges).
  const auto region_members = pastry_->nodes_in_range(lo, hi);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < region_members.size(); ++i)
    if (region_members[i] == local_meta.owner) cursor = i;
  const net::HostId querier_host = pastry_->node(querier).host;
  for (int step = 1; step <= config_.walk_ttl &&
                     found.size() < config_.min_candidates &&
                     static_cast<std::size_t>(step) < region_members.size();
       ++step) {
    const std::size_t index = (cursor + static_cast<std::size_t>(step)) %
                              region_members.size();
    ++local_meta.owners_visited;
    ++local_meta.route_hops;
    ++stats_.route_hops;
    // Each walk step is one more message from the querier; an owner the
    // fault plane cuts off just contributes nothing this round.
    if (gated &&
        !fault_plane_->deliver(sim::MessageKind::kLookup, querier_host,
                               pastry_->node(region_members[index]).host))
      continue;
    collect(region_members[index]);
  }

  // Distance ties are broken by node id so the returned prefix is
  // deterministic regardless of collection order. Each candidate's
  // distance is computed once, not on every comparison — and squared,
  // since the value only ever feeds this comparison.
  std::vector<std::pair<double, const PastryMapEntry*>> ranked;
  ranked.reserve(found.size());
  for (const PastryMapEntry* entry : found)
    ranked.emplace_back(proximity::squared_distance(entry->vector, vector),
                        entry);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->node < b.second->node;
            });
  std::vector<PastryMapEntry> result;
  for (const auto& [distance, entry] : ranked) {
    if (result.size() >= config_.max_return) break;
    if (entry->node == querier) continue;
    result.push_back(*entry);
  }
  if (meta != nullptr) *meta = local_meta;
  return result;
}

void PastryMapService::remove_everywhere(overlay::NodeId node) {
  for (auto& [owner, store] : stores_) {
    (void)owner;
    store.erase_node(node);
  }
}

void PastryMapService::report_dead(overlay::NodeId owner,
                                   overlay::NodeId dead,
                                   sim::Time reported_at,
                                   overlay::NodeId reporter) {
  if (reporter != overlay::kInvalidNode && plane_active_() &&
      !fault_plane_->deliver(sim::MessageKind::kRepair,
                             pastry_->node(reporter).host,
                             pastry_->node(owner).host)) {
    ++stats_.lost_repairs;
    return;
  }
  PastryMapStore* store = find_store(owner);
  if (store == nullptr) return;
  // Freshness guard: records republished after the reporter's failed
  // probe survive a delayed "dead" report.
  stats_.lazy_deletions += store->erase_node_before(dead, reported_at);
}

std::size_t PastryMapService::expire_before(sim::Time now) {
  std::size_t dropped = 0;
  for (auto& [owner, store] : stores_) {
    (void)owner;
    dropped += store.expire_before(now);
  }
  stats_.expired_entries += dropped;
  return dropped;
}

void PastryMapService::rehome_from(overlay::NodeId former_owner) {
  const auto it = stores_.find(former_owner);
  if (it == stores_.end()) return;
  std::vector<PastryMapEntry> moving = it->second.extract_all();
  stores_.erase(it);
  for (PastryMapEntry& entry : moving) {
    if (!pastry_->alive(entry.node)) continue;
    const overlay::NodeId owner =
        pastry_->numerically_closest(entry.position);
    // upsert (not a raw append) so a record republished while its old
    // owner was departing is not duplicated on the new owner.
    store_of(owner).upsert(std::move(entry));
  }
}

std::size_t PastryMapService::store_size(overlay::NodeId node) const {
  const PastryMapStore* store = find_store(node);
  return store == nullptr ? 0 : store->size();
}

bool PastryMapService::check_placement_invariant() const {
  for (const auto& [owner, store] : stores_) {
    if (store.empty()) continue;
    if (!pastry_->alive(owner)) return false;
    bool placed = true;
    store.for_each([&](const PastryMapEntry& entry) {
      if (pastry_->numerically_closest(entry.position) != owner)
        placed = false;
    });
    if (!placed) return false;
  }
  return true;
}

std::size_t PastryMapService::total_entries() const {
  std::size_t total = 0;
  for (const auto& [owner, store] : stores_) {
    (void)owner;
    total += store.size();
  }
  return total;
}

}  // namespace topo::softstate
