// Global soft-state on Pastry (paper Section 5.1):
// "for overlays such as Pastry, a region is a set of nodes sharing a
// particular prefix ... there is one map for each nodeId prefix. It
// follows that each node will appear in a maximum of log(N) such maps."
//
// A prefix region is a dyadic id range. The record of node n is stored,
// for each of its prefixes, at the position inside the prefix range that
// n's landmark number maps to — so, as in the eCAN maps, records of
// physically-close members of a region sit on the same or neighboring
// owners, and a lookup keyed by the querier's own landmark number finds
// its best candidates directly.
//
// Per-owner storage is an IndexedStore keyed by (node, region) and grouped
// by region, so lookup candidate collection reads one contiguous range
// instead of filtering the whole store, publish/refresh and lazy deletion
// are O(1), and expiry touches only expired records.
#pragma once

#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "overlay/pastry.hpp"
#include "proximity/landmarks.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_plane.hpp"
#include "softstate/indexed_store.hpp"

namespace topo::softstate {

struct PastryMapConfig {
  /// Rows (prefix lengths) a node publishes into: 1..publish_rows. The
  /// paper bounds this by log(N); deeper prefixes hold a handful of nodes
  /// and their maps would be mostly empty.
  int publish_rows = 4;
  sim::Time ttl_ms = 60'000.0;
  /// Ring-walk TTL inside the region when the landing owner is thin.
  int walk_ttl = 4;
  std::size_t min_candidates = 8;
  std::size_t max_return = 32;
};

struct PastryMapEntry {
  overlay::NodeId node = overlay::kInvalidNode;
  net::HostId host = net::kInvalidHost;
  proximity::LandmarkVector vector;
  int prefix_digits = 0;      // region identity: length ...
  overlay::PastryId region_lo = 0;  // ... and range start
  overlay::PastryId position = 0;   // where in the region it is keyed
  sim::Time published_at = 0.0;
  sim::Time expires_at = 0.0;
};

struct PastryLookupMeta {
  overlay::NodeId owner = overlay::kInvalidNode;
  std::size_t route_hops = 0;
  std::size_t owners_visited = 1;
};

struct PastryMapStats {
  std::uint64_t publishes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t route_hops = 0;
  std::uint64_t expired_entries = 0;
  std::uint64_t lazy_deletions = 0;
  /// Same accounting split as the eCAN backend (MapServiceStats): overlay
  /// routing failures vs. fault-plane loss vs. crash/partition blocks.
  std::uint64_t failed_routes = 0;
  std::uint64_t lost_messages = 0;
  std::uint64_t blocked_messages = 0;
  std::uint64_t fault_blocked_lookups = 0;
  std::uint64_t lost_repairs = 0;
};

/// Store-description traits for the Pastry backend: a record is identified
/// by (node, region), grouped per region (prefix length + range start) so
/// one region's records form a contiguous range, and ordered within the
/// region by keyed position (i.e. landmark number).
struct PastryMapStoreTraits {
  struct Key {
    overlay::NodeId node = overlay::kInvalidNode;
    int prefix_digits = 0;
    overlay::PastryId region_lo = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t x = k.region_lo ^
                        (0x9e3779b97f4a7c15ull * (k.node + 1ull)) ^
                        (0xbf58476d1ce4e5b9ull *
                         static_cast<std::uint64_t>(k.prefix_digits + 1));
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };
  using GroupKey = std::pair<int, overlay::PastryId>;  // (digits, lo)
  using OrderKey = overlay::PastryId;

  Key key(const PastryMapEntry& e) const {
    return {e.node, e.prefix_digits, e.region_lo};
  }
  GroupKey group(const PastryMapEntry& e) const {
    return {e.prefix_digits, e.region_lo};
  }
  OrderKey order(const PastryMapEntry& e) const { return e.position; }
  overlay::NodeId node(const PastryMapEntry& e) const { return e.node; }
  sim::Time published_at(const PastryMapEntry& e) const {
    return e.published_at;
  }
  sim::Time expires_at(const PastryMapEntry& e) const { return e.expires_at; }
};

using PastryMapStore = IndexedStore<PastryMapEntry, PastryMapStoreTraits>;

class PastryMapService {
 public:
  PastryMapService(overlay::PastryNetwork& pastry,
                   const proximity::LandmarkSet& landmarks,
                   PastryMapConfig config = {});

  /// Position of `landmark_number` inside the id range [lo, hi).
  overlay::PastryId position_in(const util::BigUint& landmark_number,
                                overlay::PastryId lo,
                                overlay::PastryId hi) const;

  /// Publishes into the maps of the node's prefixes 1..publish_rows.
  std::size_t publish(overlay::NodeId node,
                      const proximity::LandmarkVector& vector, sim::Time now);

  /// Candidates physically near the querier within the prefix region
  /// [lo, hi) of length `prefix_digits`, sorted by landmark distance.
  std::vector<PastryMapEntry> lookup(overlay::NodeId querier,
                                     const proximity::LandmarkVector& vector,
                                     int prefix_digits, overlay::PastryId lo,
                                     overlay::PastryId hi, sim::Time now,
                                     PastryLookupMeta* meta = nullptr);

  void remove_everywhere(overlay::NodeId node);
  /// Lazy repair with the same freshness guard as the eCAN backend: only
  /// records published at or before `reported_at` are evicted, and when a
  /// `reporter` is given the report is a kRepair message under the fault
  /// plane.
  void report_dead(
      overlay::NodeId owner, overlay::NodeId dead,
      sim::Time reported_at = std::numeric_limits<sim::Time>::infinity(),
      overlay::NodeId reporter = overlay::kInvalidNode);
  std::size_t expire_before(sim::Time now);
  void rehome_from(overlay::NodeId former_owner);

  /// Installs the shared fault plane (nullptr detaches); publish and
  /// lookup messages consult it before being considered delivered.
  void set_fault_plane(sim::FaultPlane* plane) { fault_plane_ = plane; }

  /// Discards a node's hosted records without re-homing (crash semantics).
  void drop_store(overlay::NodeId owner) { stores_.erase(owner); }

  std::size_t store_size(overlay::NodeId node) const;
  std::size_t total_entries() const;
  const PastryMapStats& stats() const { return stats_; }

  /// Invariant check for tests: every record sits on the node numerically
  /// closest to its position.
  bool check_placement_invariant() const;

 private:
  /// Creating accessor — write paths only.
  PastryMapStore& store_of(overlay::NodeId node);
  /// Non-creating accessors for lookup/expiry/stats paths.
  const PastryMapStore* find_store(overlay::NodeId node) const;
  PastryMapStore* find_store(overlay::NodeId node);

  /// Fault verdict for a message along `path` (plane_active_() only).
  sim::Verdict gate_path_(sim::MessageKind kind,
                          const std::vector<overlay::NodeId>& path);
  bool plane_active_() const {
    return fault_plane_ != nullptr && fault_plane_->active();
  }

  overlay::PastryNetwork* pastry_;
  const proximity::LandmarkSet* landmarks_;
  sim::FaultPlane* fault_plane_ = nullptr;
  PastryMapConfig config_;
  std::unordered_map<overlay::NodeId, PastryMapStore> stores_;
  PastryMapStats stats_;
};

}  // namespace topo::softstate
