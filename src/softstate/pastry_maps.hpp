// Global soft-state on Pastry (paper Section 5.1):
// "for overlays such as Pastry, a region is a set of nodes sharing a
// particular prefix ... there is one map for each nodeId prefix. It
// follows that each node will appear in a maximum of log(N) such maps."
//
// A prefix region is a dyadic id range. The record of node n is stored,
// for each of its prefixes, at the position inside the prefix range that
// n's landmark number maps to — so, as in the eCAN maps, records of
// physically-close members of a region sit on the same or neighboring
// owners, and a lookup keyed by the querier's own landmark number finds
// its best candidates directly.
#pragma once

#include <unordered_map>
#include <vector>

#include "overlay/pastry.hpp"
#include "proximity/landmarks.hpp"
#include "sim/event_queue.hpp"

namespace topo::softstate {

struct PastryMapConfig {
  /// Rows (prefix lengths) a node publishes into: 1..publish_rows. The
  /// paper bounds this by log(N); deeper prefixes hold a handful of nodes
  /// and their maps would be mostly empty.
  int publish_rows = 4;
  sim::Time ttl_ms = 60'000.0;
  /// Ring-walk TTL inside the region when the landing owner is thin.
  int walk_ttl = 4;
  std::size_t min_candidates = 8;
  std::size_t max_return = 32;
};

struct PastryMapEntry {
  overlay::NodeId node = overlay::kInvalidNode;
  net::HostId host = net::kInvalidHost;
  proximity::LandmarkVector vector;
  int prefix_digits = 0;      // region identity: length ...
  overlay::PastryId region_lo = 0;  // ... and range start
  overlay::PastryId position = 0;   // where in the region it is keyed
  sim::Time published_at = 0.0;
  sim::Time expires_at = 0.0;
};

struct PastryLookupMeta {
  overlay::NodeId owner = overlay::kInvalidNode;
  std::size_t route_hops = 0;
  std::size_t owners_visited = 1;
};

struct PastryMapStats {
  std::uint64_t publishes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t route_hops = 0;
  std::uint64_t expired_entries = 0;
  std::uint64_t lazy_deletions = 0;
};

class PastryMapService {
 public:
  PastryMapService(overlay::PastryNetwork& pastry,
                   const proximity::LandmarkSet& landmarks,
                   PastryMapConfig config = {});

  /// Position of `landmark_number` inside the id range [lo, hi).
  overlay::PastryId position_in(const util::BigUint& landmark_number,
                                overlay::PastryId lo,
                                overlay::PastryId hi) const;

  /// Publishes into the maps of the node's prefixes 1..publish_rows.
  std::size_t publish(overlay::NodeId node,
                      const proximity::LandmarkVector& vector, sim::Time now);

  /// Candidates physically near the querier within the prefix region
  /// [lo, hi) of length `prefix_digits`, sorted by landmark distance.
  std::vector<PastryMapEntry> lookup(overlay::NodeId querier,
                                     const proximity::LandmarkVector& vector,
                                     int prefix_digits, overlay::PastryId lo,
                                     overlay::PastryId hi, sim::Time now,
                                     PastryLookupMeta* meta = nullptr);

  void remove_everywhere(overlay::NodeId node);
  void report_dead(overlay::NodeId owner, overlay::NodeId dead);
  std::size_t expire_before(sim::Time now);
  void rehome_from(overlay::NodeId former_owner);

  /// Discards a node's hosted records without re-homing (crash semantics).
  void drop_store(overlay::NodeId owner) { stores_.erase(owner); }

  std::size_t store_size(overlay::NodeId node) const;
  std::size_t total_entries() const;
  const PastryMapStats& stats() const { return stats_; }

  /// Invariant check for tests: every record sits on the node numerically
  /// closest to its position.
  bool check_placement_invariant() const;

 private:
  overlay::PastryNetwork* pastry_;
  const proximity::LandmarkSet* landmarks_;
  PastryMapConfig config_;
  std::unordered_map<overlay::NodeId, std::vector<PastryMapEntry>> stores_;
  PastryMapStats stats_;
};

}  // namespace topo::softstate
