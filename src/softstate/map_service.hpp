// The global soft-state map service (paper Section 5).
//
// For every high-order zone Z of the eCAN there is a *map*: the proximity
// records of all members of Z, stored on the nodes of Z itself. The entry
// for node n lives at position p' = h(p, dp, dz, Z) inside Z, where p is
// n's landmark vector and h maps n's landmark number through an inverse
// space-filling curve into Z's *map region* (Z shrunk by the condense
// rate). Because the landmark number preserves physical locality, records
// of physically-close nodes land on the same or adjacent owners — so a
// lookup keyed by the querier's own landmark number finds its best
// candidates in one routed message (Table 1), falling back to a bounded
// ring expansion over adjacent map pieces when the piece it hit is empty.
//
// All messages are routed over the overlay itself and accounted (hops).
//
// The service is a template over its per-owner store so the indexed
// production store and the seed-era linear reference store share every
// line of protocol logic: `MapService` (IndexedStore) is what everything
// uses; `LegacyLinearMapService` (LinearStoreRef) exists for the
// equivalence property tests and bench/scale_sweep's seed-comparison
// mode. Routing uses the eCAN's allocation-free scratch fast path unless
// `MapConfig::use_reference_router` selects the reference router.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "geom/hilbert.hpp"
#include "net/rtt_oracle.hpp"
#include "net/traffic_plane.hpp"
#include "overlay/ecan.hpp"
#include "proximity/landmarks.hpp"
#include "proximity/nn_search.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_plane.hpp"
#include "softstate/indexed_store.hpp"
#include "softstate/linear_store_ref.hpp"
#include "softstate/map_entry.hpp"
#include "util/retry_policy.hpp"
#include "util/rng.hpp"

namespace topo::softstate {

struct MapConfig {
  /// Fraction of the hosting zone's volume the map occupies ("condense
  /// rate of coordinate map", Section 5.1). 1.0 spreads the map across the
  /// whole zone; smaller values concentrate it on fewer owner nodes. The
  /// default concentrates each map on ~1/16 of its zone so that a hosting
  /// node holds tens of entries — the regime Figure 16 shows is needed for
  /// lookups to return well-populated candidate lists (bench
  /// fig16_condense_rate reproduces the trade-off).
  double condense_rate = 0.0625;
  /// Hilbert resolution (bits per overlay axis) when placing entries
  /// inside the map region.
  int map_bits = 4;
  /// Entry lifetime; entries older than this are dropped (soft state).
  sim::Time ttl_ms = 60'000.0;
  /// Table 1: how many rings of adjacent map pieces to search when the
  /// piece the lookup lands on is empty.
  int lookup_ring_ttl = 3;
  /// "A maximum of X nodes that are closest to the requesting node is sent
  /// back."
  std::size_t max_return = 32;
  /// Ring expansion also kicks in when the landing piece returned fewer
  /// than this many candidates (a sparsely-populated piece is almost as
  /// useless as an empty one).
  std::size_t min_candidates = 8;
  /// Route publish/lookup messages with EcanNetwork::route_ecan_reference
  /// instead of the scratch fast path. Hop sequences are identical either
  /// way (tested); this knob exists so the equivalence tests and the scale
  /// bench's seed-comparison mode can reproduce pre-indexed-store costs.
  bool use_reference_router = false;
  /// Copies of each map entry, stored at curve-shifted positions inside
  /// the map region (replica r shifts the entry's curve key by
  /// r * cells / replicas, so each copy preserves curve locality). A
  /// lookup reads the primary and fails over replica-by-replica
  /// (quorum-less first success), so one crashed owner no longer blanks a
  /// map region. 1 (the default) reproduces the single-copy protocol
  /// bit-for-bit.
  int replicas = 1;
};

/// Upper bound on MapConfig::replicas (fixed-size scratch on hot paths).
inline constexpr int kMaxReplicas = 8;

struct LookupResult {
  /// Candidate records, sorted by landmark-vector distance to the querier.
  proximity::ProximityDatabase candidates;
  /// Owner the lookup terminated at (lazy-repair deletions go back here).
  overlay::NodeId owner = overlay::kInvalidNode;
  std::size_t route_hops = 0;
  std::size_t pieces_visited = 1;
  /// Fetch messages actually sent (replica failovers + inline retries).
  std::size_t attempts = 0;
  /// Replica positions routed to (>= 1 once any route was attempted).
  std::size_t replicas_tried = 0;
  /// Every fetch attempt died under the fault plane (loss after retries,
  /// crashed owners, or the querier partitioned from the map zone). The
  /// selector uses this to fall back to landmark-only pre-selection
  /// instead of a blind random pick.
  bool fault_blocked = false;
  /// Simulated backoff the inline lookup retries would have waited, plus
  /// fault-plane delivery delay (virtual cost accounting; the lookup call
  /// itself is synchronous).
  double backoff_ms = 0.0;
};

struct MapServiceStats {
  std::uint64_t publishes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t route_hops = 0;     // publish + lookup messages
  std::uint64_t expired_entries = 0;
  std::uint64_t lazy_deletions = 0;
  /// Publish messages dropped by the fault plane's loss draw (transient
  /// loss only; see blocked_publishes for crash/partition blocks).
  std::uint64_t lost_messages = 0;
  /// Publish messages whose overlay route never reached the map owner
  /// (distinct from lost_messages so fault-injection experiments can tell
  /// routing loss from injected loss).
  std::uint64_t failed_routes = 0;
  /// Entries replayed onto their current owner by rehome() after churn
  /// (counts every replay attempt, including ones place_entry drops as
  /// stale against an already-landed republish).
  std::uint64_t rehomed_entries = 0;

  // -- Fault-plane / hardening accounting --------------------------------

  /// Publish messages attempted (per level, per replica, per retry).
  /// publish_messages - publish_retries is the first-attempt count, so
  /// retry amplification = publish_messages / (publish_messages -
  /// publish_retries).
  std::uint64_t publish_messages = 0;
  /// Publish messages blocked by a crash-stop or partition (not
  /// retryable; the next republish or a heal recovers them).
  std::uint64_t blocked_publishes = 0;
  /// Re-sent publish messages (scheduled on the EventQueue by the retry
  /// policy after a transient loss).
  std::uint64_t publish_retries = 0;
  /// Publish retries that eventually delivered the entry.
  std::uint64_t retry_recoveries = 0;
  /// Publish retry chains abandoned with the message still undelivered.
  std::uint64_t retries_exhausted = 0;
  /// Replica copies suppressed because routing landed them on an owner
  /// that already received this publish round's copy.
  std::uint64_t replica_collapses = 0;
  /// Lookup fetch messages attempted (failovers + inline retries).
  std::uint64_t lookup_attempts = 0;
  /// Inline lookup re-sends after a transient loss verdict.
  std::uint64_t lookup_retries = 0;
  /// Lookup fetches that failed over to a further replica position.
  std::uint64_t lookup_failovers = 0;
  /// Lookups whose every fetch attempt died under the fault plane.
  std::uint64_t fault_blocked_lookups = 0;
  /// Lazy-repair "dead" reports dropped by the fault plane en route.
  std::uint64_t lost_repairs = 0;
  /// Messages (publish, lookup fetch, ring fetch, repair) dropped by the
  /// traffic plane under link saturation. Transient like loss: the retry
  /// and failover machinery engages the same way.
  std::uint64_t congestion_drops = 0;
};

/// Store-description traits for the eCAN map backends (see
/// indexed_store.hpp for the contract). Dedup identity is (node, map);
/// entries group by map (the packed cell key encodes level + cell) and
/// order inside a map by landmark number, so one map's records form a
/// contiguous, physical-locality-ordered range of the indexed store.
struct MapStoreTraits {
  /// Landmark-number width in bits (LandmarkSet::number_bits()); the
  /// order key coarsens the number to its top 64 bits, preserving order.
  int number_bits = 64;

  struct Key {
    overlay::NodeId node = overlay::kInvalidNode;
    std::uint64_t cell_key = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t x =
          k.cell_key ^ (0x9e3779b97f4a7c15ull * (k.node + 1ull));
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };
  using GroupKey = std::uint64_t;  // packed (level, cell)
  using OrderKey = std::uint64_t;  // landmark number, top 64 bits

  Key key(const StoredEntry& s) const { return {s.entry.node, s.cell_key}; }
  GroupKey group(const StoredEntry& s) const { return s.cell_key; }
  OrderKey order(const StoredEntry& s) const {
    return s.entry.landmark_number.top_bits(number_bits,
                                            number_bits < 64 ? number_bits
                                                             : 64);
  }
  overlay::NodeId node(const StoredEntry& s) const { return s.entry.node; }
  sim::Time published_at(const StoredEntry& s) const {
    return s.entry.published_at;
  }
  sim::Time expires_at(const StoredEntry& s) const {
    return s.entry.expires_at;
  }
};

using MapStore = IndexedStore<StoredEntry, MapStoreTraits>;
using LegacyLinearMapStore = LinearStoreRef<StoredEntry, MapStoreTraits>;

template <typename Store>
class BasicMapService {
 public:
  BasicMapService(overlay::EcanNetwork& ecan,
                  const proximity::LandmarkSet& landmarks, MapConfig config);

  const MapConfig& config() const { return config_; }
  /// Runtime-tunable knobs (ttl, ring ttl, return budgets, router choice).
  /// The map geometry (condense_rate, map_bits) is latched into the cached
  /// Hilbert curve at construction and must not be changed here.
  MapConfig& mutable_config() { return config_; }

  /// Position inside the map region of cell (level, coords) where replica
  /// `replica` of the record with `landmark_number` is stored. Replica 0
  /// is the primary; replica r shifts the curve key by r * cells /
  /// replicas (mod curve length), so every copy's sub-map still preserves
  /// curve locality while landing on a different owner whenever the map
  /// region spans more than one node.
  geom::Point map_position(const util::BigUint& landmark_number, int level,
                           std::span<const std::uint32_t> cell,
                           int replica = 0) const;

  /// Publishes `node`'s record into the maps of every high-order zone it
  /// belongs to (levels 1..node_level). Replaces any previous record for
  /// the node in each map. Returns total routed hops.
  std::size_t publish(overlay::NodeId node,
                      const proximity::LandmarkVector& vector,
                      sim::Time now, double load = 0.0,
                      double capacity = 1.0);

  /// Publish with the node's cached landmark number. A node derives its
  /// number once, when it measures its landmark vector — recomputing the
  /// space-filling-curve reduction on every periodic republish message
  /// (as the seed did) is pure waste on the hot path.
  std::size_t publish(overlay::NodeId node,
                      const proximity::LandmarkVector& vector,
                      const util::BigUint& number, sim::Time now,
                      double load = 0.0, double capacity = 1.0);

  /// Looks up candidates physically near the querier in the map of the
  /// given high-order cell (Table 1 procedure).
  LookupResult lookup(overlay::NodeId querier,
                      const proximity::LandmarkVector& querier_vector,
                      int level, std::span<const std::uint32_t> cell,
                      sim::Time now);

  /// Variant of lookup that also returns the raw entries (pub/sub and the
  /// load-aware selector need load/capacity, not just host+vector).
  std::vector<MapEntry> lookup_entries(
      overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
      int level, std::span<const std::uint32_t> cell, sim::Time now,
      LookupResult* meta = nullptr);

  /// Allocation-free lookup for hot callers: takes the querier's cached
  /// landmark number and writes the top candidates into `out`, reusing
  /// both the vector and its elements' heap buffers across calls. Returns
  /// the number of candidates written; `out` is grown as needed but never
  /// shrunk (elements past the returned count are stale), so a caller
  /// looping over lookups pays no per-call allocation once the buffer has
  /// warmed up.
  std::size_t lookup_entries_into(
      overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
      const util::BigUint& number, int level,
      std::span<const std::uint32_t> cell, sim::Time now,
      std::vector<MapEntry>& out, LookupResult* meta = nullptr);

  /// As above for callers without a cached landmark number: the number is
  /// derived through service-owned scratch, so the call still allocates
  /// nothing once warmed up.
  std::size_t lookup_entries_into(
      overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
      int level, std::span<const std::uint32_t> cell, sim::Time now,
      std::vector<MapEntry>& out, LookupResult* meta = nullptr);

  /// Proactive removal at graceful departure ("the most proactive measure
  /// is to update the map when a node is about to depart"). Call *before*
  /// the node leaves the overlay.
  void remove_everywhere(overlay::NodeId node);

  /// Lazy repair: the requester found `dead` unreachable after a lookup at
  /// `owner`; the owner drops its records for `dead` — but only records
  /// published at or before `reported_at`. The freshness guard keeps a
  /// delayed "dead" report (the probe that failed happened at
  /// `reported_at`) from evicting an entry the node re-published after
  /// recovering — without it, a slot-reusing rejoin could lose its fresh
  /// record to a stale report about its previous incarnation. The default
  /// (+inf) is the legacy trust-the-reporter behavior. When `reporter` is
  /// given and the fault plane is active, the report itself is a kRepair
  /// message subject to loss/partition.
  void report_dead(
      overlay::NodeId owner, overlay::NodeId dead,
      sim::Time reported_at = std::numeric_limits<sim::Time>::infinity(),
      overlay::NodeId reporter = overlay::kInvalidNode);

  /// Drops entries that expired before `now` across all stores; returns
  /// the number dropped. Per store this touches only the entries that
  /// actually expired (indexed expiry heap), not the whole store.
  std::size_t expire_before(sim::Time now);

  // -- Zone-change migration (driven by the join/leave protocol) --------

  /// After `joined` split `split_peer`'s zone: entries stored at
  /// split_peer whose position now belongs to `joined` move over.
  void migrate_after_join(overlay::NodeId joined, overlay::NodeId split_peer);

  /// Call *before* removing `leaver` from the overlay: extracts its store.
  std::vector<StoredEntry> extract_store(overlay::NodeId node);

  /// Re-homes entries to the current owner of their position (after churn).
  void rehome(std::vector<StoredEntry> entries);

  // -- Introspection ----------------------------------------------------

  /// Entries currently stored on `node`.
  std::size_t store_size(overlay::NodeId node) const;
  /// Mean entries per live node; the Fig 16 y-axis.
  double mean_entries_per_node() const;
  /// Max entries on any node.
  std::size_t max_entries_per_node() const;
  std::size_t total_entries() const;
  /// Nodes currently hosting at least one entry. Also the witness that
  /// read paths never materialize empty stores (they use the const
  /// find-based accessor, not operator[]).
  std::size_t hosting_owner_count() const;

  const MapServiceStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Invariant check for tests: every stored entry sits on the node that
  /// currently owns the entry's position (holds after any sequence of
  /// joins/leaves when the migration protocol is followed).
  bool check_placement_invariant() const;

  /// Visits every stored entry with its hosting owner (iteration order is
  /// store-internal). The batched-join equivalence tests use this to
  /// compare full map contents across services.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for_each_store([&](overlay::NodeId owner, const Store& store) {
      store.for_each(
          [&](const StoredEntry& stored) { fn(owner, stored); });
    });
  }

  /// Installs the shared fault plane: every publish/lookup/repair message
  /// consults it before being considered delivered. Pass nullptr to
  /// detach. The plane must outlive the service (the facade owns both).
  void set_fault_plane(sim::FaultPlane* plane) {
    fault_plane_ = plane;
    owned_fault_plane_.reset();
  }
  sim::FaultPlane* fault_plane() const { return fault_plane_; }

  /// Installs the shared traffic plane: while it is active, every
  /// publish/lookup/repair message also crosses the congestion gate
  /// (queuing delay folded into backoff accounting, drops treated as
  /// transient loss). Pass nullptr to detach; the plane must outlive the
  /// service (the facade owns both).
  void set_traffic_plane(net::TrafficPlane* plane) { traffic_plane_ = plane; }
  net::TrafficPlane* traffic_plane() const { return traffic_plane_; }

  /// Enables bounded retry with exponential backoff + jitter. Lost
  /// publish messages are re-sent through `queue` (fire-and-forget, up to
  /// policy.retries() times); lost lookup fetches re-try inline before
  /// failing over to the next replica, accounting the backoff they would
  /// have waited in LookupResult::backoff_ms. `queue` may be null, which
  /// confines retries to the inline lookup path.
  void set_retry(sim::EventQueue* queue, util::RetryPolicy policy,
                 std::uint64_t jitter_seed = 0x7e7521ull) {
    retry_queue_ = queue;
    retry_ = policy;
    retry_rng_ = util::Rng(jitter_seed);
  }
  const util::RetryPolicy& retry_policy() const { return retry_; }

  /// Legacy fault-injection knob, kept as a thin shim over the fault
  /// plane: every publish *message* (one per map level) is lost with
  /// `publish_loss` probability before reaching its owner. Soft state is
  /// designed to absorb this — the next republish refills the map — and
  /// the failure-injection tests verify exactly that. Replaces any plane
  /// installed via set_fault_plane with a service-owned one.
  void inject_faults(double publish_loss, std::uint64_t seed) {
    TO_EXPECTS(publish_loss >= 0.0 && publish_loss <= 1.0);
    sim::FaultConfig fault;
    fault.publish_loss = publish_loss;
    fault.seed = seed;
    owned_fault_plane_ = std::make_unique<sim::FaultPlane>(fault);
    fault_plane_ = owned_fault_plane_.get();
  }

  /// Hook used by the pub/sub layer: called with every stored entry
  /// insertion (owner, new entry).
  using PublishObserver =
      std::function<void(overlay::NodeId owner, const StoredEntry&)>;
  void set_publish_observer(PublishObserver observer) {
    publish_observer_ = std::move(observer);
  }

 private:
  /// Per-owner store container. The production service keeps stores in a
  /// dense vector indexed by node id (simulator ids are small slot
  /// indices), so the per-message owner lookup on the publish/lookup hot
  /// path is an array index; the reference instantiation keeps the seed's
  /// hash map so the scale bench compares against seed-era costs. An
  /// absent owner is an out-of-range id (dense) / missing key (map); an
  /// empty store means the same thing as an absent one everywhere.
  using StoreMap =
      std::conditional_t<Store::kReferenceCostModel,
                         std::unordered_map<overlay::NodeId, Store>,
                         std::vector<Store>>;

  /// Creating accessor — write paths only (placing/migrating entries).
  Store& store_of(overlay::NodeId node);
  /// Non-creating accessors for lookup/expiry/stats paths: an owner that
  /// never hosted an entry must not grow the store map.
  const Store* find_store(overlay::NodeId node) const;
  Store* find_store(overlay::NodeId node);
  /// Visits every (owner, store) pair — the container-shape-agnostic way
  /// the sweep/stats paths iterate. Dense iteration includes empty
  /// stores; callers already treat empty as absent.
  template <typename Fn>
  void for_each_store(Fn&& fn) {
    if constexpr (Store::kReferenceCostModel) {
      for (auto& [owner, store] : stores_) fn(owner, store);
    } else {
      for (std::size_t id = 0; id < stores_.size(); ++id)
        fn(static_cast<overlay::NodeId>(id), stores_[id]);
    }
  }
  template <typename Fn>
  void for_each_store(Fn&& fn) const {
    if constexpr (Store::kReferenceCostModel) {
      for (const auto& [owner, store] : stores_) fn(owner, store);
    } else {
      for (std::size_t id = 0; id < stores_.size(); ++id)
        fn(static_cast<overlay::NodeId>(id), stores_[id]);
    }
  }

  /// Routes a map message from `from` to the owner of `position` using
  /// the configured router; the hop path lands in route_scratch_.path.
  bool route_to(overlay::NodeId from, const geom::Point& position);

  /// Stores (replacing any same-node record in the same map) and notifies
  /// the observer.
  void place_entry(overlay::NodeId owner, StoredEntry stored);

  /// True when per-message fault gating is on (plane installed + active).
  bool plane_active() const {
    return fault_plane_ != nullptr && fault_plane_->active();
  }
  /// Fault verdict for a message forwarded along route_scratch_.path.
  sim::Verdict gate_route(sim::MessageKind kind);

  /// True when per-message congestion gating is on.
  bool traffic_active() const {
    return traffic_plane_ != nullptr && traffic_plane_->active();
  }
  /// Congestion verdict for a message forwarded along route_scratch_.path.
  net::TrafficPlane::Verdict gate_traffic();

  enum class PublishSend : std::uint8_t {
    kDelivered,    // entry placed on its owner
    kLost,         // fault plane loss draw — transient, retryable
    kBlocked,      // crash/partition block — wait for republish/heal
    kRouteFailed,  // overlay never reached the owner
    kCollapsed,    // replica landed on an owner that already has a copy
  };
  /// Routes and (fault plane permitting) places one publish message for
  /// replica `replica` of `node`'s record at map level `level`. Adds the
  /// routed hops to `hops`. `placed_owners` are owners that already
  /// received this publish round's copy (duplicate-owner replicas are
  /// suppressed after routing discovers the collision); a delivered copy
  /// reports its owner through `delivered_owner`.
  PublishSend send_publish_message(
      overlay::NodeId node, const proximity::LandmarkVector& vector,
      const util::BigUint& number, sim::Time now, double load,
      double capacity, int level, std::span<const std::uint32_t> cell,
      int replica, std::size_t& hops,
      std::span<const overlay::NodeId> placed_owners = {},
      overlay::NodeId* delivered_owner = nullptr);

  /// Schedules retry number `attempt` of a lost publish message on the
  /// EventQueue (no-op past the policy's attempt budget).
  void schedule_publish_retry(overlay::NodeId node,
                              proximity::LandmarkVector vector,
                              util::BigUint number, double load,
                              double capacity, int level, int replica,
                              int attempt);
  /// Fired by the EventQueue: re-validates the publisher and re-sends.
  void retry_publish_message(overlay::NodeId node,
                             const proximity::LandmarkVector& vector,
                             const util::BigUint& number, double load,
                             double capacity, int level, int replica,
                             int attempt);

  /// Collect entries of map `cell_key` stored on `owner` into `out`,
  /// pruning expired ones first (soft-state decay on access).
  void collect_from(overlay::NodeId owner, std::uint64_t cell_key,
                    sim::Time now, std::vector<const StoredEntry*>& out);

  overlay::EcanNetwork* ecan_;
  const proximity::LandmarkSet* landmarks_;
  MapConfig config_;
  MapStoreTraits store_traits_;
  StoreMap stores_;
  overlay::RouteScratch route_scratch_;
  MapServiceStats stats_;
  PublishObserver publish_observer_;
  /// Fault plane consulted per message; usually the facade's shared
  /// plane, or a service-owned one when the legacy inject_faults shim is
  /// used. nullptr = no fault gating at all.
  sim::FaultPlane* fault_plane_ = nullptr;
  std::unique_ptr<sim::FaultPlane> owned_fault_plane_;
  /// Traffic plane consulted per message when active; nullptr = no
  /// congestion gating.
  net::TrafficPlane* traffic_plane_ = nullptr;
  sim::EventQueue* retry_queue_ = nullptr;
  util::RetryPolicy retry_;
  util::Rng retry_rng_{0x7e7521ull};

  // -- Hot-path caches and scratch ---------------------------------------
  // Everything below is cost, not semantics: the service instantiated over
  // the reference store (Store::kReferenceCostModel) bypasses it and keeps
  // the seed-era per-call work so bench/scale_sweep compares the indexed
  // path against honest pre-PR costs. Results are identical either way.

  /// Map-region curve and side scaling are pure functions of the config;
  /// the seed rebuilt the curve and re-ran pow() on every placement.
  geom::HilbertCurve map_curve_;
  double map_side_factor_;

  /// A candidate with its sort key precomputed: the seed recomputed the
  /// landmark distance inside the sort comparator, which gprofng puts at
  /// ~1/3 of lookup-heavy runs. The key is the *squared* landmark
  /// distance — ordering is unchanged (sqrt is monotone) and the rank
  /// pass sheds one sqrt per candidate.
  struct RankedRef {
    double distance;  // squared landmark distance to the querier
    const StoredEntry* stored;
  };
  std::vector<const StoredEntry*> found_scratch_;
  std::vector<RankedRef> ranked_scratch_;
  /// Dim-major SoA copy of the candidates' vectors plus the per-candidate
  /// squared distances, feeding the vectorizable ranking kernel
  /// (proximity::squared_distances_soa).
  std::vector<double> soa_scratch_;
  std::vector<double> dist_scratch_;
  /// Quantized-coordinate scratch for deriving a landmark number on the
  /// non-cached publish path without the seed's temporary vectors.
  std::vector<std::uint32_t> number_coords_scratch_;
  std::vector<overlay::NodeId> ring_scratch_;
  std::vector<overlay::NodeId> next_ring_scratch_;
  /// Visited set for the ring expansion as an epoch-stamped array over
  /// node slots (reset is ++epoch, not a fill).
  std::vector<std::uint32_t> visit_stamp_;
  std::uint32_t visit_epoch_ = 0;
};

/// The production service: indexed stores + allocation-free routing.
using MapService = BasicMapService<MapStore>;
/// Seed-semantics twin for equivalence tests and the scale bench.
using LegacyLinearMapService = BasicMapService<LegacyLinearMapStore>;

}  // namespace topo::softstate
