// The global soft-state map service (paper Section 5).
//
// For every high-order zone Z of the eCAN there is a *map*: the proximity
// records of all members of Z, stored on the nodes of Z itself. The entry
// for node n lives at position p' = h(p, dp, dz, Z) inside Z, where p is
// n's landmark vector and h maps n's landmark number through an inverse
// space-filling curve into Z's *map region* (Z shrunk by the condense
// rate). Because the landmark number preserves physical locality, records
// of physically-close nodes land on the same or adjacent owners — so a
// lookup keyed by the querier's own landmark number finds its best
// candidates in one routed message (Table 1), falling back to a bounded
// ring expansion over adjacent map pieces when the piece it hit is empty.
//
// All messages are routed over the overlay itself and accounted (hops).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/rtt_oracle.hpp"
#include "overlay/ecan.hpp"
#include "proximity/landmarks.hpp"
#include "proximity/nn_search.hpp"
#include "softstate/map_entry.hpp"
#include "util/rng.hpp"

namespace topo::softstate {

struct MapConfig {
  /// Fraction of the hosting zone's volume the map occupies ("condense
  /// rate of coordinate map", Section 5.1). 1.0 spreads the map across the
  /// whole zone; smaller values concentrate it on fewer owner nodes. The
  /// default concentrates each map on ~1/16 of its zone so that a hosting
  /// node holds tens of entries — the regime Figure 16 shows is needed for
  /// lookups to return well-populated candidate lists (bench
  /// fig16_condense_rate reproduces the trade-off).
  double condense_rate = 0.0625;
  /// Hilbert resolution (bits per overlay axis) when placing entries
  /// inside the map region.
  int map_bits = 4;
  /// Entry lifetime; entries older than this are dropped (soft state).
  sim::Time ttl_ms = 60'000.0;
  /// Table 1: how many rings of adjacent map pieces to search when the
  /// piece the lookup lands on is empty.
  int lookup_ring_ttl = 3;
  /// "A maximum of X nodes that are closest to the requesting node is sent
  /// back."
  std::size_t max_return = 32;
  /// Ring expansion also kicks in when the landing piece returned fewer
  /// than this many candidates (a sparsely-populated piece is almost as
  /// useless as an empty one).
  std::size_t min_candidates = 8;
};

struct LookupResult {
  /// Candidate records, sorted by landmark-vector distance to the querier.
  proximity::ProximityDatabase candidates;
  /// Owner the lookup terminated at (lazy-repair deletions go back here).
  overlay::NodeId owner = overlay::kInvalidNode;
  std::size_t route_hops = 0;
  std::size_t pieces_visited = 1;
};

struct MapServiceStats {
  std::uint64_t publishes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t route_hops = 0;     // publish + lookup messages
  std::uint64_t expired_entries = 0;
  std::uint64_t lazy_deletions = 0;
  std::uint64_t lost_messages = 0;  // fault injection (see inject_faults)
  /// Publish messages whose overlay route never reached the map owner
  /// (distinct from lost_messages so fault-injection experiments can tell
  /// routing loss from injected loss).
  std::uint64_t failed_routes = 0;
  /// Entries replayed onto their current owner by rehome() after churn
  /// (counts every replay attempt, including ones place_entry drops as
  /// stale against an already-landed republish).
  std::uint64_t rehomed_entries = 0;
};

class MapService {
 public:
  MapService(overlay::EcanNetwork& ecan, const proximity::LandmarkSet& landmarks,
             MapConfig config);

  const MapConfig& config() const { return config_; }
  MapConfig& mutable_config() { return config_; }

  /// Position inside the map region of cell (level, coords) where the
  /// record with `landmark_number` is stored.
  geom::Point map_position(const util::BigUint& landmark_number, int level,
                           std::span<const std::uint32_t> cell) const;

  /// Publishes `node`'s record into the maps of every high-order zone it
  /// belongs to (levels 1..node_level). Replaces any previous record for
  /// the node in each map. Returns total routed hops.
  std::size_t publish(overlay::NodeId node,
                      const proximity::LandmarkVector& vector,
                      sim::Time now, double load = 0.0,
                      double capacity = 1.0);

  /// Looks up candidates physically near the querier in the map of the
  /// given high-order cell (Table 1 procedure).
  LookupResult lookup(overlay::NodeId querier,
                      const proximity::LandmarkVector& querier_vector,
                      int level, std::span<const std::uint32_t> cell,
                      sim::Time now);

  /// Variant of lookup that also returns the raw entries (pub/sub and the
  /// load-aware selector need load/capacity, not just host+vector).
  std::vector<MapEntry> lookup_entries(
      overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
      int level, std::span<const std::uint32_t> cell, sim::Time now,
      LookupResult* meta = nullptr);

  /// Proactive removal at graceful departure ("the most proactive measure
  /// is to update the map when a node is about to depart"). Call *before*
  /// the node leaves the overlay.
  void remove_everywhere(overlay::NodeId node);

  /// Lazy repair: the requester found `dead` unreachable after a lookup at
  /// `owner`; the owner drops all records for it.
  void report_dead(overlay::NodeId owner, overlay::NodeId dead);

  /// Drops entries that expired before `now` across all stores; returns
  /// the number dropped.
  std::size_t expire_before(sim::Time now);

  // -- Zone-change migration (driven by the join/leave protocol) --------

  /// After `joined` split `split_peer`'s zone: entries stored at
  /// split_peer whose position now belongs to `joined` move over.
  void migrate_after_join(overlay::NodeId joined, overlay::NodeId split_peer);

  /// Call *before* removing `leaver` from the overlay: extracts its store.
  std::vector<StoredEntry> extract_store(overlay::NodeId node);

  /// Re-homes entries to the current owner of their position (after churn).
  void rehome(std::vector<StoredEntry> entries);

  // -- Introspection ----------------------------------------------------

  /// Entries currently stored on `node`.
  std::size_t store_size(overlay::NodeId node) const;
  /// Mean entries per live node; the Fig 16 y-axis.
  double mean_entries_per_node() const;
  /// Max entries on any node.
  std::size_t max_entries_per_node() const;
  std::size_t total_entries() const;

  const MapServiceStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Invariant check for tests: every stored entry sits on the node that
  /// currently owns the entry's position (holds after any sequence of
  /// joins/leaves when the migration protocol is followed).
  bool check_placement_invariant() const;

  /// Fault injection: every publish *message* (one per map level) is lost
  /// with `publish_loss` probability before reaching its owner. Soft state
  /// is designed to absorb this — the next republish refills the map — and
  /// the failure-injection tests verify exactly that.
  void inject_faults(double publish_loss, std::uint64_t seed) {
    TO_EXPECTS(publish_loss >= 0.0 && publish_loss <= 1.0);
    publish_loss_ = publish_loss;
    fault_rng_ = util::Rng(seed);
  }

  /// Hook used by the pub/sub layer: called with every stored entry
  /// insertion (owner, new entry).
  using PublishObserver =
      std::function<void(overlay::NodeId owner, const StoredEntry&)>;
  void set_publish_observer(PublishObserver observer) {
    publish_observer_ = std::move(observer);
  }

 private:
  std::vector<StoredEntry>& store_of(overlay::NodeId node);

  /// Stores (replacing any same-node record in the same map) and notifies
  /// the observer.
  void place_entry(overlay::NodeId owner, StoredEntry stored);

  /// Collect entries of map (level, cell_key) stored on `owner` into
  /// `out`, skipping expired ones.
  void collect_from(overlay::NodeId owner, int level,
                    std::uint64_t cell_key, sim::Time now,
                    std::vector<const StoredEntry*>& out);

  overlay::EcanNetwork* ecan_;
  const proximity::LandmarkSet* landmarks_;
  MapConfig config_;
  std::unordered_map<overlay::NodeId, std::vector<StoredEntry>> stores_;
  MapServiceStats stats_;
  PublishObserver publish_observer_;
  double publish_loss_ = 0.0;
  util::Rng fault_rng_{0};
};

}  // namespace topo::softstate
