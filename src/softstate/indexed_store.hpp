// Indexed per-owner soft-state store shared by the eCAN, Chord and Pastry
// map backends.
//
// The seed implementation kept each owner's records in a bare
// std::vector: every publish ran a linear dedup scan, every lookup
// filtered the whole store, and every expiry sweep touched every entry.
// Fine at a few thousand nodes, quadratic pain at 100k. This store keeps
// the exact same observable semantics (freshness-guarded refresh,
// stale-drop, soft-state expiry, lazy deletion) behind three indexes:
//
//   - a hash index keyed by the entry's dedup identity (node + map), so
//     publish/refresh/lazy-delete are O(1) instead of O(store);
//   - a slot list kept ordered by (map, landmark order, node), so
//     collecting one map's candidates reads a contiguous range — and the
//     range itself is in landmark (i.e. physical-locality) order;
//   - a lazy min-heap on expiry time, so `expire_before` touches only
//     entries that actually expired instead of sweeping the store.
//
// `LinearStoreRef` (linear_store_ref.hpp) is the seed-semantics reference
// implementation of the same interface; the property tests in
// tests/softstate_indexed_store_test.cpp drive both through randomized
// publish/rehome/expire sequences and require identical behaviour, and
// bench/scale_sweep.cpp uses it for its seed-vs-indexed comparison mode.
//
// A `Traits` object (stateful: e.g. it carries the landmark-number width)
// describes the entry type:
//
//   using Key = ...;       // dedup identity (node + map), hashable
//   using KeyHash = ...;   // hash functor for Key
//   using GroupKey = ...;  // map identity, totally ordered (operator<)
//   using OrderKey = ...;  // in-map order (landmark number), operator<
//   Key key(const Entry&) const;
//   GroupKey group(const Entry&) const;
//   OrderKey order(const Entry&) const;
//   overlay::NodeId node(const Entry&) const;
//   sim::Time published_at(const Entry&) const;
//   sim::Time expires_at(const Entry&) const;
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "overlay/node.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"

namespace topo::softstate {

/// What `upsert` did with the offered entry (mirrors the seed
/// place_entry semantics exactly).
enum class UpsertOutcome {
  kInserted,      // first record for this key on this owner
  kRefreshed,     // replaced an existing record (republish / rehome)
  kStaleDropped,  // offered record was older than the stored one
};

template <typename Entry, typename Traits>
class IndexedStore {
 public:
  using Key = typename Traits::Key;
  using GroupKey = typename Traits::GroupKey;
  using OrderKey = typename Traits::OrderKey;

  /// The map service gates its own hot-path shortcuts (scratch reuse,
  /// precomputed sort keys) on this so the seed-comparison bench measures
  /// the reference store against seed-era service costs, not against a
  /// service that was itself optimized out from under the comparison.
  static constexpr bool kReferenceCostModel = false;

  explicit IndexedStore(Traits traits = {}) : traits_(std::move(traits)) {}

  /// Stores `entry`, replacing any record with the same key. A record
  /// older than the stored one (by published_at) is dropped — rehome can
  /// replay a copy that predates a republish which already landed here.
  /// Returns the outcome and, unless dropped, a pointer to the stored
  /// entry (stable until the next non-const call).
  std::pair<UpsertOutcome, const Entry*> upsert(Entry entry) {
    const Key key = traits_.key(entry);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      Slot& slot = slots_[it->second];
      if (traits_.published_at(entry) < traits_.published_at(slot.entry))
        return {UpsertOutcome::kStaleDropped, &slot.entry};
      const OrderKey new_order = traits_.order(entry);
      if (!(new_order == slot.order)) {
        // Re-measured vector moved the record within its map: reposition.
        ordered_.erase(ordered_position(it->second));
        slot.entry = std::move(entry);
        slot.order = new_order;
        insert_ordered(it->second);
      } else {
        slot.entry = std::move(entry);
      }
      ++slot.generation;  // invalidates the old expiry-heap item
      push_expiry(it->second);
      return {UpsertOutcome::kRefreshed, &slot.entry};
    }

    std::uint32_t slot_id;
    if (!free_.empty()) {
      slot_id = free_.back();
      free_.pop_back();
    } else {
      slot_id = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& slot = slots_[slot_id];
    slot.group = traits_.group(entry);
    slot.order = traits_.order(entry);
    slot.entry = std::move(entry);
    slot.dead = false;
    index_.emplace(key, slot_id);
    // Per-node records form an intrusive chain through the slots (newest
    // first); linking is O(1) and allocates nothing beyond the head map.
    const auto [node_it, first_record] =
        by_node_.try_emplace(traits_.node(slot.entry), slot_id);
    slot.next_same_node = first_record ? kNullSlot : node_it->second;
    node_it->second = slot_id;
    insert_ordered(slot_id);
    push_expiry(slot_id);
    ++live_count_;
    return {UpsertOutcome::kInserted, &slot.entry};
  }

  /// Removes every record of `node` hosted here (lazy deletion after a
  /// failed probe, proactive removal at graceful departure). O(records of
  /// node) via the per-node index, not O(store).
  std::size_t erase_node(overlay::NodeId node) {
    const auto it = by_node_.find(node);
    if (it == by_node_.end()) return 0;
    std::uint32_t slot_id = it->second;
    by_node_.erase(it);
    std::size_t erased = 0;
    while (slot_id != kNullSlot) {
      const std::uint32_t next = slots_[slot_id].next_same_node;
      erase_slot(slot_id, false);
      ++erased;
      slot_id = next;
    }
    return erased;
  }

  /// Variant of erase_node with a freshness cutoff: only records with
  /// published_at <= cutoff are removed, so a record republished after
  /// the reporter observed the failure survives a delayed "dead" report.
  /// erase_node_before(node, +inf) == erase_node(node).
  std::size_t erase_node_before(overlay::NodeId node, sim::Time cutoff) {
    const auto it = by_node_.find(node);
    if (it == by_node_.end()) return 0;
    // Collect first: erase_slot relinks the chain being walked.
    std::vector<std::uint32_t> victims;
    for (std::uint32_t slot_id = it->second; slot_id != kNullSlot;
         slot_id = slots_[slot_id].next_same_node)
      if (traits_.published_at(slots_[slot_id].entry) <= cutoff)
        victims.push_back(slot_id);
    for (const std::uint32_t slot_id : victims) erase_slot(slot_id, true);
    return victims.size();
  }

  /// Drops entries with expires_at <= now; returns the number dropped.
  /// A sweep that drops nothing is O(1) (heap-top peek); one that drops k
  /// entries costs O(k · log + store) — the expired slots are unlinked
  /// from the hash indexes as the heap surfaces them, then swept out of
  /// the ordered list in a single compaction pass, so a mass expiry never
  /// pays a per-entry O(store) vector erase.
  std::size_t expire_before(sim::Time now) {
    std::size_t dropped = 0;
    while (!heap_.empty() && heap_.front().expires_at <= now) {
      const HeapItem item = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
      heap_.pop_back();
      Slot& slot = slots_[item.slot];
      if (slot.dead || slot.generation != item.generation) continue;
      TO_ASSERT(traits_.expires_at(slot.entry) <= now);
      index_.erase(traits_.key(slot.entry));
      unlink_from_node(traits_.node(slot.entry), item.slot);
      slot.dead = true;
      ++slot.generation;
      slot.entry = Entry{};
      free_.push_back(item.slot);
      --live_count_;
      ++dropped;
    }
    if (dropped > 0)
      std::erase_if(ordered_, [this](const std::uint32_t slot) {
        return slots_[slot].dead;
      });
    // Refresh-heavy workloads accumulate stale heap items between sweeps;
    // rebuild once they dominate so the heap stays O(live).
    if (heap_.size() > 4 * live_count_ + 64) rebuild_heap();
    return dropped;
  }

  /// Visits the records of one map in landmark order — a contiguous
  /// range of the ordered slot list.
  template <typename Fn>
  void for_each_in_group(const GroupKey& group, Fn&& fn) const {
    const auto lo = std::lower_bound(
        ordered_.begin(), ordered_.end(), group,
        [this](std::uint32_t slot, const GroupKey& g) {
          return slots_[slot].group < g;
        });
    for (auto it = lo; it != ordered_.end() && !(group < slots_[*it].group);
         ++it)
      fn(slots_[*it].entry);
  }

  /// Visits every live record, in (group, order, node) order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const std::uint32_t slot : ordered_) fn(slots_[slot].entry);
  }

  /// Moves every record out (departed owner being drained) and clears.
  std::vector<Entry> extract_all() {
    std::vector<Entry> out;
    out.reserve(live_count_);
    for (const std::uint32_t slot : ordered_)
      out.push_back(std::move(slots_[slot].entry));
    slots_.clear();
    ordered_.clear();
    index_.clear();
    by_node_.clear();
    heap_.clear();
    free_.clear();
    live_count_ = 0;
    return out;
  }

  /// Moves out the records matching `pred` (zone-split migration).
  template <typename Pred>
  std::vector<Entry> extract_if(Pred&& pred) {
    std::vector<std::uint32_t> matched;
    for (const std::uint32_t slot : ordered_)
      if (pred(std::as_const(slots_[slot].entry))) matched.push_back(slot);
    std::vector<Entry> out;
    out.reserve(matched.size());
    for (const std::uint32_t slot_id : matched) {
      out.push_back(std::move(slots_[slot_id].entry));
      erase_slot(slot_id, true);
    }
    return out;
  }

  std::size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// Structural self-check for tests: indexes agree with the slot table.
  bool check_index_invariants() const {
    if (ordered_.size() != live_count_ || index_.size() != live_count_)
      return false;
    for (std::size_t i = 1; i < ordered_.size(); ++i)
      if (slot_less(ordered_[i], ordered_[i - 1])) return false;
    std::size_t by_node_total = 0;
    for (const auto& [node, head] : by_node_) {
      for (std::uint32_t slot = head; slot != kNullSlot;
           slot = slots_[slot].next_same_node) {
        if (++by_node_total > live_count_) return false;  // chain cycle
        if (slots_[slot].dead || traits_.node(slots_[slot].entry) != node)
          return false;
      }
    }
    if (by_node_total != live_count_) return false;
    for (const auto& [key, slot] : index_) {
      if (slots_[slot].dead) return false;
      if (!(traits_.key(slots_[slot].entry) == key)) return false;
    }
    return true;
  }

 private:
  static constexpr std::uint32_t kNullSlot = 0xffffffffu;

  struct Slot {
    Entry entry{};
    GroupKey group{};
    OrderKey order{};
    std::uint32_t generation = 0;
    /// Next slot holding a record of the same node (intrusive per-node
    /// chain; head in by_node_). Valid only while the slot is live.
    std::uint32_t next_same_node = kNullSlot;
    bool dead = true;
  };

  struct HeapItem {
    sim::Time expires_at = 0.0;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };
  /// Min-heap on expiry time (std::*_heap build max-heaps, so "later").
  struct HeapLater {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return a.expires_at > b.expires_at;
    }
  };

  bool slot_less(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.group < sb.group) return true;
    if (sb.group < sa.group) return false;
    if (sa.order < sb.order) return true;
    if (sb.order < sa.order) return false;
    return traits_.node(sa.entry) < traits_.node(sb.entry);
  }

  std::vector<std::uint32_t>::iterator ordered_position(std::uint32_t slot) {
    const auto it = std::lower_bound(
        ordered_.begin(), ordered_.end(), slot,
        [this](std::uint32_t a, std::uint32_t b) { return slot_less(a, b); });
    TO_ASSERT(it != ordered_.end());
    // Equal sort keys cannot happen across distinct keys (node is part of
    // both), so the lower bound is the slot itself.
    TO_ASSERT(*it == slot);
    return it;
  }

  void insert_ordered(std::uint32_t slot) {
    const auto it = std::lower_bound(
        ordered_.begin(), ordered_.end(), slot,
        [this](std::uint32_t a, std::uint32_t b) { return slot_less(a, b); });
    ordered_.insert(it, slot);
  }

  /// Detaches one slot from its node's intrusive chain. O(records of the
  /// node on this owner) — in practice one or two.
  void unlink_from_node(overlay::NodeId node, std::uint32_t slot_id) {
    const auto it = by_node_.find(node);
    TO_ASSERT(it != by_node_.end());
    if (it->second == slot_id) {
      const std::uint32_t next = slots_[slot_id].next_same_node;
      if (next == kNullSlot)
        by_node_.erase(it);
      else
        it->second = next;
      return;
    }
    std::uint32_t prev = it->second;
    while (slots_[prev].next_same_node != slot_id) {
      prev = slots_[prev].next_same_node;
      TO_ASSERT(prev != kNullSlot);
    }
    slots_[prev].next_same_node = slots_[slot_id].next_same_node;
  }

  void push_expiry(std::uint32_t slot_id) {
    heap_.push_back(HeapItem{traits_.expires_at(slots_[slot_id].entry),
                             slot_id, slots_[slot_id].generation});
    std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
  }

  /// Physically frees a slot. `fix_by_node` is false only when the caller
  /// (erase_node) has already detached the per-node slot list.
  void erase_slot(std::uint32_t slot_id, bool fix_by_node) {
    Slot& slot = slots_[slot_id];
    TO_ASSERT(!slot.dead);
    ordered_.erase(ordered_position(slot_id));
    index_.erase(traits_.key(slot.entry));
    if (fix_by_node) unlink_from_node(traits_.node(slot.entry), slot_id);
    slot.dead = true;
    ++slot.generation;
    slot.entry = Entry{};
    free_.push_back(slot_id);
    --live_count_;
  }

  void rebuild_heap() {
    heap_.clear();
    for (const std::uint32_t slot : ordered_)
      heap_.push_back(HeapItem{traits_.expires_at(slots_[slot].entry), slot,
                               slots_[slot].generation});
    std::make_heap(heap_.begin(), heap_.end(), HeapLater{});
  }

  Traits traits_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;     // dead slot ids, reusable
  std::vector<std::uint32_t> ordered_;  // live slots by (group, order, node)
  std::unordered_map<Key, std::uint32_t, typename Traits::KeyHash> index_;
  /// Head of each node's intrusive slot chain (Slot::next_same_node).
  std::unordered_map<overlay::NodeId, std::uint32_t> by_node_;
  std::vector<HeapItem> heap_;  // lazy: stale items skipped by generation
  std::size_t live_count_ = 0;
};

}  // namespace topo::softstate
