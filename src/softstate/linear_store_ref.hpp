// Seed-semantics reference implementation of the per-owner soft-state
// store: a bare insertion-ordered vector with linear scans, exactly as the
// map backends stored entries before the indexed store existed.
//
// Kept for two consumers:
//   - tests/softstate_indexed_store_test.cpp drives this and IndexedStore
//     through identical randomized op sequences and requires identical
//     observable behaviour (outcomes, sizes, group contents, expiry and
//     lazy-delete counts);
//   - bench/scale_sweep.cpp instantiates the map service over it
//     (LegacyLinearMapService) to measure seed-vs-indexed throughput.
//
// Interface and semantics match IndexedStore (indexed_store.hpp); only the
// costs differ — upsert and erase_node are O(store), expire_before sweeps
// every entry, and for_each_in_group filters the whole store.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "overlay/node.hpp"
#include "sim/event_queue.hpp"
#include "softstate/indexed_store.hpp"  // UpsertOutcome

namespace topo::softstate {

template <typename Entry, typename Traits>
class LinearStoreRef {
 public:
  using Key = typename Traits::Key;
  using GroupKey = typename Traits::GroupKey;

  /// See IndexedStore::kReferenceCostModel: a service instantiated over
  /// this store keeps the seed-era per-call allocations and recomputed
  /// sort keys so the scale bench compares against honest pre-PR costs.
  static constexpr bool kReferenceCostModel = true;

  explicit LinearStoreRef(Traits traits = {}) : traits_(std::move(traits)) {}

  std::pair<UpsertOutcome, const Entry*> upsert(Entry entry) {
    const Key key = traits_.key(entry);
    for (Entry& existing : entries_) {
      if (!(traits_.key(existing) == key)) continue;
      if (traits_.published_at(entry) < traits_.published_at(existing))
        return {UpsertOutcome::kStaleDropped, &existing};
      existing = std::move(entry);
      return {UpsertOutcome::kRefreshed, &existing};
    }
    entries_.push_back(std::move(entry));
    return {UpsertOutcome::kInserted, &entries_.back()};
  }

  std::size_t erase_node(overlay::NodeId node) {
    const std::size_t before = entries_.size();
    std::erase_if(entries_, [&](const Entry& e) {
      return traits_.node(e) == node;
    });
    return before - entries_.size();
  }

  /// Freshness-guarded erase_node twin (see indexed_store.hpp).
  std::size_t erase_node_before(overlay::NodeId node, sim::Time cutoff) {
    const std::size_t before = entries_.size();
    std::erase_if(entries_, [&](const Entry& e) {
      return traits_.node(e) == node && traits_.published_at(e) <= cutoff;
    });
    return before - entries_.size();
  }

  std::size_t expire_before(sim::Time now) {
    const std::size_t before = entries_.size();
    std::erase_if(entries_, [&](const Entry& e) {
      return traits_.expires_at(e) <= now;
    });
    return before - entries_.size();
  }

  template <typename Fn>
  void for_each_in_group(const GroupKey& group, Fn&& fn) const {
    for (const Entry& entry : entries_)
      if (traits_.group(entry) == group) fn(entry);
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& entry : entries_) fn(entry);
  }

  std::vector<Entry> extract_all() {
    std::vector<Entry> out = std::move(entries_);
    entries_.clear();
    return out;
  }

  template <typename Pred>
  std::vector<Entry> extract_if(Pred&& pred) {
    std::vector<Entry> out;
    std::erase_if(entries_, [&](Entry& e) {
      if (!pred(std::as_const(e))) return false;
      out.push_back(std::move(e));
      return true;
    });
    return out;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  Traits traits_;
  std::vector<Entry> entries_;  // insertion order, as in the seed
};

}  // namespace topo::softstate
