// Global soft-state on Chord (paper Appendix).
//
// "In the case of Chord, we can simply use the landmark number as the key
// to store the information of an expressway node on a node whose ID is
// equal to or greater than the landmark number."
//
// The whole ring is one locality-sharded map: a node's record is stored at
// successor(key), where key is its landmark number scaled onto the ring.
// Because the landmark number preserves physical locality, records of
// physically-close nodes land on the same or succeeding owners, so a
// lookup keyed by the querier's own landmark number plus a short successor
// walk returns its best candidates.
//
// Per-owner storage is an IndexedStore keyed by node id (one record per
// node per owner) and ordered by ring key, so publish/refresh and lazy
// deletion are O(1) and expiry touches only expired records.
#pragma once

#include <unordered_map>
#include <vector>

#include <limits>

#include "overlay/chord.hpp"
#include "proximity/landmarks.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_plane.hpp"
#include "softstate/indexed_store.hpp"

namespace topo::softstate {

struct ChordMapConfig {
  sim::Time ttl_ms = 60'000.0;
  /// Successor-walk TTL when the landing owner holds too few records.
  int walk_ttl = 4;
  std::size_t min_candidates = 8;
  std::size_t max_return = 32;
};

struct ChordMapEntry {
  overlay::NodeId node = overlay::kInvalidNode;
  net::HostId host = net::kInvalidHost;
  proximity::LandmarkVector vector;
  overlay::ChordId key = 0;
  sim::Time published_at = 0.0;
  sim::Time expires_at = 0.0;
};

struct ChordLookupMeta {
  overlay::NodeId owner = overlay::kInvalidNode;
  std::size_t route_hops = 0;
  std::size_t owners_visited = 1;
};

struct ChordMapStats {
  std::uint64_t publishes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t route_hops = 0;
  std::uint64_t expired_entries = 0;
  std::uint64_t lazy_deletions = 0;
  /// Same accounting split as the eCAN backend (MapServiceStats): ring
  /// routing failures vs. fault-plane loss vs. crash/partition blocks.
  std::uint64_t failed_routes = 0;
  std::uint64_t lost_messages = 0;
  std::uint64_t blocked_messages = 0;
  std::uint64_t fault_blocked_lookups = 0;
  std::uint64_t lost_repairs = 0;
};

/// Store-description traits for the Chord backend: one record per node per
/// owner (dedup key is the node id alone), the whole store is one group,
/// ordered by ring key so an owner's records read out in landmark-number
/// order.
struct ChordMapStoreTraits {
  using Key = overlay::NodeId;
  struct KeyHash {
    std::size_t operator()(overlay::NodeId node) const {
      std::uint64_t x = 0x9e3779b97f4a7c15ull * (node + 1ull);
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };
  using GroupKey = std::uint64_t;  // single group per owner
  using OrderKey = overlay::ChordId;

  Key key(const ChordMapEntry& e) const { return e.node; }
  GroupKey group(const ChordMapEntry&) const { return 0; }
  OrderKey order(const ChordMapEntry& e) const { return e.key; }
  overlay::NodeId node(const ChordMapEntry& e) const { return e.node; }
  sim::Time published_at(const ChordMapEntry& e) const {
    return e.published_at;
  }
  sim::Time expires_at(const ChordMapEntry& e) const { return e.expires_at; }
};

using ChordMapStore = IndexedStore<ChordMapEntry, ChordMapStoreTraits>;

class ChordMapService {
 public:
  ChordMapService(overlay::ChordNetwork& chord,
                  const proximity::LandmarkSet& landmarks,
                  ChordMapConfig config = {});

  /// Ring key of a landmark number: its top id_bits, preserving order.
  overlay::ChordId key_of(const util::BigUint& landmark_number) const;

  /// Publishes `node`'s record at successor(key_of(number)); replaces any
  /// previous record for the node. Returns routed hops.
  std::size_t publish(overlay::NodeId node,
                      const proximity::LandmarkVector& vector, sim::Time now);

  /// Returns up to max_return records sorted by landmark-vector distance
  /// to the querier, gathered from the landing owner and, if sparse, a
  /// TTL-bounded successor walk. Never returns the querier itself.
  std::vector<ChordMapEntry> lookup(
      overlay::NodeId querier, const proximity::LandmarkVector& querier_vector,
      sim::Time now, ChordLookupMeta* meta = nullptr);

  void remove_everywhere(overlay::NodeId node);
  /// Lazy repair with the same freshness guard as the eCAN backend: only
  /// records published at or before `reported_at` are evicted, and when a
  /// `reporter` is given the report is a kRepair message under the fault
  /// plane.
  void report_dead(
      overlay::NodeId owner, overlay::NodeId dead,
      sim::Time reported_at = std::numeric_limits<sim::Time>::infinity(),
      overlay::NodeId reporter = overlay::kInvalidNode);
  std::size_t expire_before(sim::Time now);

  /// Installs the shared fault plane (nullptr detaches); publish and
  /// lookup messages consult it before being considered delivered.
  void set_fault_plane(sim::FaultPlane* plane) { fault_plane_ = plane; }

  /// Moves the departed/departing owner's records to the current successor
  /// of each record's key. Call after the node left the ring.
  void rehome_from(overlay::NodeId former_owner);

  /// Discards a node's hosted records without re-homing (crash semantics:
  /// the state dies with the node and decays back via republish).
  void drop_store(overlay::NodeId owner) { stores_.erase(owner); }

  std::size_t store_size(overlay::NodeId node) const;
  std::size_t total_entries() const;
  const ChordMapStats& stats() const { return stats_; }

  /// Invariant check for tests: every record sits on the current successor
  /// of its key (holds whenever the migration protocol is followed).
  bool check_placement_invariant() const;

 private:
  /// Creating accessor — write paths only.
  ChordMapStore& store_of(overlay::NodeId node);
  /// Non-creating accessors for lookup/expiry/stats paths.
  const ChordMapStore* find_store(overlay::NodeId node) const;
  ChordMapStore* find_store(overlay::NodeId node);

  /// Fault verdict for a message along `path` (plane_active() only).
  sim::Verdict gate_path_(sim::MessageKind kind,
                          const std::vector<overlay::NodeId>& path);
  bool plane_active_() const {
    return fault_plane_ != nullptr && fault_plane_->active();
  }

  overlay::ChordNetwork* chord_;
  const proximity::LandmarkSet* landmarks_;
  sim::FaultPlane* fault_plane_ = nullptr;
  ChordMapConfig config_;
  std::unordered_map<overlay::NodeId, ChordMapStore> stores_;
  ChordMapStats stats_;
};

}  // namespace topo::softstate
