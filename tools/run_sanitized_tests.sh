#!/usr/bin/env sh
# Configure, build and run the sanitizer-instrumented test suite via the
# `tsan` CMake preset (TOPO_SANITIZE=thread, out-dir build-tsan/). The
# preset's test filter covers the concurrency-sensitive suites plus the
# lifecycle soak tests (label `soak`), which stress the event-driven
# maintenance loop under churn.
#
# Usage: tools/run_sanitized_tests.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan "$@"
