// overlay_sim — run a configurable topology-aware-overlay experiment from
// the command line; the general-purpose driver behind the figure benches.
//
//   overlay_sim [topology.topo]
//     With no argument, generates the preset in TOPOLOGY (default
//     tsk-large) instead of loading a file.
//
//   env:
//     TOPOLOGY=tsk-large|tsk-small|tsk-tiny   generated preset
//     LATENCY=gtitm|manual                    latency model (generated)
//     NODES=1024          overlay size
//     LANDMARKS=15        landmark count
//     RTTS=10             probe budget per selection
//     SELECTOR=soft|random|optimal
//     CONDENSE=0.0625     map condense rate
//     QUERIES=0           0 = twice the overlay size
//     SEED=42
#include <cstdio>
#include <memory>
#include <string>

#include "core/selectors.hpp"
#include "net/latency.hpp"
#include "net/topology_io.hpp"
#include "net/transit_stub.hpp"
#include "proximity/landmarks.hpp"
#include "sim/metrics.hpp"
#include "softstate/map_service.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace topo;

  const auto seed = static_cast<std::uint64_t>(util::env_int("SEED", 42));
  util::Rng rng(seed);

  net::Topology topology;
  if (argc > 1) {
    topology = net::load_topology_file(argv[1]);
    std::printf("loaded %s: %zu hosts, %zu links\n", argv[1],
                topology.host_count(), topology.link_count());
  } else {
    const std::string preset = util::env_string("TOPOLOGY", "tsk-large");
    net::TransitStubConfig config = net::tsk_large();
    if (preset == "tsk-small") config = net::tsk_small();
    if (preset == "tsk-tiny") config = net::tsk_tiny();
    topology = net::generate_transit_stub(config, rng);
    const std::string latency = util::env_string("LATENCY", "gtitm");
    net::assign_latencies(topology,
                          latency == "manual"
                              ? net::LatencyModel::kManual
                              : net::LatencyModel::kGtItmRandom,
                          rng);
    std::printf("generated %s/%s: %zu hosts\n", preset.c_str(),
                latency.c_str(), topology.host_count());
  }

  const auto overlay_nodes =
      static_cast<std::size_t>(util::env_int("NODES", 1024));
  const auto landmark_count =
      static_cast<int>(util::env_int("LANDMARKS", 15));
  const auto rtt_budget =
      static_cast<std::size_t>(util::env_int("RTTS", 10));
  const std::string selector_kind = util::env_string("SELECTOR", "soft");

  net::RttOracle oracle(topology);
  proximity::LandmarkConfig landmark_config;
  landmark_config.scale_ms = 350.0;
  const auto landmarks = proximity::LandmarkSet::choose_random(
      topology, landmark_count, rng, landmark_config);
  oracle.warm(landmarks.hosts());

  overlay::EcanNetwork ecan(2);
  std::vector<overlay::NodeId> nodes;
  for (std::size_t i = 0; i < overlay_nodes; ++i) {
    const auto host =
        static_cast<net::HostId>(rng.next_u64(topology.host_count()));
    nodes.push_back(ecan.join_random(host, rng));
  }

  softstate::MapConfig map_config;
  map_config.condense_rate = util::env_double("CONDENSE", 0.0625);
  softstate::MapService maps(ecan, landmarks, map_config);
  core::VectorStore vectors;
  for (const auto id : nodes) {
    vectors[id] = landmarks.measure(oracle, ecan.node(id).host);
    maps.publish(id, vectors[id], 0.0);
  }
  oracle.reset_probe_count();

  std::unique_ptr<overlay::RepresentativeSelector> selector;
  if (selector_kind == "random") {
    selector = std::make_unique<core::RandomSelector>(rng.fork());
  } else if (selector_kind == "optimal") {
    selector = std::make_unique<core::OracleSelector>(ecan, oracle);
  } else {
    selector = std::make_unique<core::SoftStateSelector>(
        ecan, maps, oracle, vectors, rtt_budget, rng.fork());
  }
  ecan.build_all_tables(*selector);
  const auto selection_probes = oracle.probe_count();

  auto queries =
      static_cast<std::size_t>(util::env_int("QUERIES", 0));
  if (queries == 0) queries = 2 * overlay_nodes;
  util::Rng measure_rng(seed + 1);
  const sim::RoutingSample sample =
      sim::measure_ecan_routing(ecan, oracle, queries, measure_rng);

  std::printf(
      "overlay=%zu landmarks=%d selector=%s rtts=%zu condense=%.4g\n",
      overlay_nodes, landmark_count, selector_kind.c_str(), rtt_budget,
      map_config.condense_rate);
  std::printf("selection probes: %llu (%.1f per node)\n",
              static_cast<unsigned long long>(selection_probes),
              static_cast<double>(selection_probes) /
                  static_cast<double>(overlay_nodes));
  std::printf("map state: %zu entries, %.1f per node (max %zu)\n",
              maps.total_entries(), maps.mean_entries_per_node(),
              maps.max_entries_per_node());
  std::printf("stretch over %zu queries: %s\n", queries,
              sample.stretch.describe().c_str());
  std::printf("logical hops: mean %.2f\n", sample.logical_hops.mean());
  return 0;
}
