#!/usr/bin/env sh
# Build the default (RelWithDebInfo) tree and run every figure-reproduction
# bench, teeing each log and collecting the BENCH_*.json artifacts into one
# output directory for cross-PR comparison.
#
# Usage: tools/run_benches.sh [outdir]          (default: bench-out/)
#
# The usual bench knobs apply and are simply inherited from the
# environment: SEED, FULL, THREADS, RTT_ENGINE, ORACLE_ROWS (see
# bench/common.hpp and docs/performance.md). Same SEED and THREADS give
# byte-identical tables and JSON on every run.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-bench-out}

cmake --preset default
cmake --build --preset default -j "$(nproc)"

mkdir -p "$OUT"
OUT=$(cd "$OUT" && pwd)

BENCHES="
fig02_ecan_vs_can
fig03_06_nn_search
fig10_13_stretch_vs_rtts
fig14_15_stretch_vs_nodes
fig16_condense_rate
tacan_imbalance
ablation_landmark_opts
maintenance_pubsub
taxonomy_techniques
chord_pns
pastry_pns
overhead_costs
churn_lifecycle
scale_sweep
fault_sweep
join_sweep
load_sweep
micro_benchmarks
"

# scale_sweep's full sizes take minutes; the sweep here runs the 1k smoke
# configuration unless the caller already scaled it (SCALE_NODES/FULL).
if [ -z "${SCALE_NODES:-}" ] && [ -z "${FULL:-}" ]; then
  SCALE_NODES=1000
  export SCALE_NODES
fi

# fault_sweep likewise: the 1k-node smoke grid unless the caller scaled it.
if [ -z "${FAULT_NODES:-}" ] && [ -z "${FULL:-}" ]; then
  FAULT_NODES=1000
  FAULT_SMOKE=1
  export FAULT_NODES FAULT_SMOKE
fi

# join_sweep likewise: 1k joins unless the caller scaled it. The full run
# (FULL=1 or explicit JOIN_NODES) also covers the committed 10k trajectory
# point, which takes minutes because of the seed-reference leg.
if [ -z "${JOIN_NODES:-}" ] && [ -z "${FULL:-}" ]; then
  JOIN_NODES=1000
  export JOIN_NODES
fi

# load_sweep likewise: the 1k-node three-level smoke grid unless the
# caller scaled it. This matches the committed trajectory baseline, so
# the perf_diff gate below engages.
if [ -z "${LOAD_NODES:-}" ] && [ -z "${FULL:-}" ]; then
  LOAD_NODES=1000
  LOAD_SMOKE=1
  export LOAD_NODES LOAD_SMOKE
fi

# Run from a scratch dir so the JSON emitters drop their files where we
# can sweep them up, regardless of each bench's default output path.
SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT

ROOT=$(pwd)
for bench in $BENCHES; do
  echo "== $bench =="
  (cd "$SCRATCH" && "$ROOT/build/bench/$bench") 2>&1 | tee "$OUT/$bench.log"
done

for json in "$SCRATCH"/BENCH_*.json; do
  [ -e "$json" ] && cp "$json" "$OUT/"
done

# Gate the batched join path against the committed trajectory point: a
# >10% throughput regression (or an equivalence failure) fails the run.
if [ -e "$OUT/BENCH_join.json" ] && [ -e bench/trajectory/BENCH_join.json ]; then
  python3 tools/perf_diff.py "$OUT/BENCH_join.json"
fi

# Gate traffic-plane goodput and queue delay the same way: these are
# simulated quantities, so a drift from the committed baseline means the
# model or the loop changed, not the machine.
if [ -e "$OUT/BENCH_load.json" ] && [ -e bench/trajectory/BENCH_load.json ]; then
  python3 tools/perf_diff.py "$OUT/BENCH_load.json"
fi

echo
echo "logs and JSON artifacts in $OUT:"
ls -l "$OUT"
