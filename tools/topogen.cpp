// topogen — generate transit-stub topologies (GT-ITM family) from the
// command line and save them in the library's text format.
//
//   topogen [preset] [output.topo]
//     preset: tsk-large (default) | tsk-small | tsk-tiny
//   env: SEED, LATENCY=manual|gtitm, and the structural overrides
//        TRANSIT_DOMAINS, TRANSIT_NODES, STUB_DOMAINS, HOSTS_PER_STUB.
//
// Without an output path, prints topology statistics only.
#include <cstdio>
#include <cstring>
#include <string>

#include "net/latency.hpp"
#include "net/shortest_path.hpp"
#include "net/topology_io.hpp"
#include "net/transit_stub.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace topo;

  net::TransitStubConfig config = net::tsk_large();
  if (argc > 1) {
    const std::string preset = argv[1];
    if (preset == "tsk-large") {
      config = net::tsk_large();
    } else if (preset == "tsk-small") {
      config = net::tsk_small();
    } else if (preset == "tsk-tiny") {
      config = net::tsk_tiny();
    } else {
      std::fprintf(stderr,
                   "unknown preset '%s' (tsk-large|tsk-small|tsk-tiny)\n",
                   preset.c_str());
      return 1;
    }
  }
  config.transit_domains = static_cast<int>(
      util::env_int("TRANSIT_DOMAINS", config.transit_domains));
  config.transit_nodes_per_domain = static_cast<int>(
      util::env_int("TRANSIT_NODES", config.transit_nodes_per_domain));
  config.stub_domains_per_transit = static_cast<int>(
      util::env_int("STUB_DOMAINS", config.stub_domains_per_transit));
  config.hosts_per_stub = static_cast<int>(
      util::env_int("HOSTS_PER_STUB", config.hosts_per_stub));

  const auto seed = static_cast<std::uint64_t>(util::env_int("SEED", 42));
  const std::string latency = util::env_string("LATENCY", "gtitm");

  util::Rng rng(seed);
  net::Topology topology = net::generate_transit_stub(config, rng);
  net::assign_latencies(topology,
                        latency == "manual" ? net::LatencyModel::kManual
                                            : net::LatencyModel::kGtItmRandom,
                        rng);

  std::printf("preset=%s seed=%llu latency=%s\n", config.name.c_str(),
              static_cast<unsigned long long>(seed), latency.c_str());
  std::printf("hosts=%zu (transit=%zu stub=%zu) links=%zu\n",
              topology.host_count(),
              topology.hosts_of_kind(net::HostKind::kTransit).size(),
              topology.hosts_of_kind(net::HostKind::kStub).size(),
              topology.link_count());

  // Latency profile from a sample of sources.
  util::Samples rtts;
  for (net::HostId source = 0; source < topology.host_count();
       source += topology.host_count() / 8 + 1) {
    const auto row = net::dijkstra(topology, source);
    for (std::size_t i = 0; i < row.size(); i += 97)
      if (row[i] > 0.0) rtts.add(row[i]);
  }
  std::printf("pairwise latency sample: %s\n", rtts.describe().c_str());

  if (argc > 2) {
    net::save_topology_file(topology, argv[2]);
    std::printf("wrote %s\n", argv[2]);
  }
  return 0;
}
