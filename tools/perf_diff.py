#!/usr/bin/env python3
"""Compare a freshly produced bench JSON against a committed baseline.

Usage: tools/perf_diff.py CANDIDATE [BASELINE]

The artifact kind is read from the candidate's `bench` field:

join_sweep — BASELINE defaults to bench/trajectory/BENCH_join.json. Rows
match by overlay size n; the batched-leg join throughput must stay within
JOIN_TOLERANCE of the baseline, and every matched candidate row must
report `equivalent: true` — a faster wave that lands in a different final
state is a bug, not a win. Absolute joins/s moves with the machine, so
the gate is deliberately loose (10%); regenerate the baseline on a quiet
machine via
  JOIN_NODES=1000,10000 BENCH_JSON=bench/trajectory/BENCH_join.json \
      build/bench/join_sweep

load_sweep — BASELINE defaults to bench/trajectory/BENCH_load.json. Rows
match by (offered, loop); goodput must not fall more than GOODPUT_DROP
below the baseline and queue delays must not exceed the baseline by more
than QUEUE_TOLERANCE. These are simulated quantities — same SEED and
knobs reproduce them exactly on any machine — so the tolerances only
leave room for intentional tuning. The gate is skipped (exit 0) when the
candidate ran with a different nodes/queries configuration than the
baseline, since rows would not be comparable. Regenerate via
  LOAD_NODES=1000 LOAD_SMOKE=1 SEED=42 \
      BENCH_JSON=bench/trajectory/BENCH_load.json build/bench/load_sweep

Exit status: 0 when every matched row holds (or the load gate was
skipped for a config mismatch), 1 on a regression or equivalence
failure, 2 on missing/garbled input.
"""

import json
import sys

JOIN_TOLERANCE = 0.10  # fail on >10% join-throughput regression
GOODPUT_DROP = 0.02    # fail when goodput falls >2pp below baseline
QUEUE_TOLERANCE = 0.10  # fail when queue delay exceeds baseline by >10%


def load(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"perf_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if doc.get("bench") not in ("join_sweep", "load_sweep") or "results" not in doc:
        print(f"perf_diff: {path} is not a known bench artifact", file=sys.stderr)
        sys.exit(2)
    return doc


def diff_join(candidate, baseline):
    cand_rows = {row["n"]: row for row in candidate["results"]}
    base_rows = {row["n"]: row for row in baseline["results"]}

    failures = []
    compared = 0
    for n, base_row in sorted(base_rows.items()):
        cand_row = cand_rows.get(n)
        if cand_row is None:
            continue  # smoke runs cover a subset of the baseline sizes
        compared += 1
        if not cand_row.get("equivalent", False):
            failures.append(f"n={n}: batched join diverged from scalar state")
            continue
        base = base_row["batch"]["join_per_s"]
        cand = cand_row["batch"]["join_per_s"]
        ratio = cand / base if base > 0 else 0.0
        verdict = "ok" if ratio >= 1.0 - JOIN_TOLERANCE else "REGRESSION"
        print(f"n={n}: batch {cand:.0f} joins/s vs baseline {base:.0f} "
              f"({ratio:.2f}x) {verdict}")
        if verdict != "ok":
            failures.append(
                f"n={n}: batch throughput {ratio:.2f}x of baseline "
                f"(floor {1.0 - JOIN_TOLERANCE:.2f}x)")

    if compared == 0:
        print("perf_diff: no overlapping sizes between candidate and baseline",
              file=sys.stderr)
        return 2, failures
    if not failures:
        print(f"perf_diff: {compared} size(s) within "
              f"{JOIN_TOLERANCE:.0%} of baseline")
    return (1 if failures else 0), failures


def diff_load(candidate, baseline):
    for knob in ("nodes", "queries", "seed"):
        if candidate.get(knob) != baseline.get(knob):
            print(f"perf_diff: load_sweep {knob} differs "
                  f"({candidate.get(knob)} vs baseline {baseline.get(knob)}); "
                  "rows not comparable, skipping gate")
            return 0, []

    def key(row):
        return (row["offered"], row["loop"])

    cand_rows = {key(row): row for row in candidate["results"]}
    base_rows = {key(row): row for row in baseline["results"]}

    failures = []
    compared = 0
    for row_key, base_row in sorted(base_rows.items()):
        cand_row = cand_rows.get(row_key)
        if cand_row is None:
            continue  # smoke runs cover a subset of the offered levels
        compared += 1
        offered, loop = row_key
        label = f"offered={offered} loop={'on' if loop else 'off'}"

        goodput = cand_row["goodput"]
        goodput_floor = base_row["goodput"] - GOODPUT_DROP
        ok = goodput >= goodput_floor
        print(f"{label}: goodput {goodput:.3f} vs baseline "
              f"{base_row['goodput']:.3f} {'ok' if ok else 'REGRESSION'}")
        if not ok:
            failures.append(
                f"{label}: goodput {goodput:.3f} below floor {goodput_floor:.3f}")

        for field in ("queue_mean_ms", "queue_p99_ms"):
            cand = cand_row[field]
            # Small absolute grace so near-zero idle rows cannot trip the
            # relative gate on rounding.
            ceiling = base_row[field] * (1.0 + QUEUE_TOLERANCE) + 0.1
            if cand > ceiling:
                failures.append(
                    f"{label}: {field} {cand:.2f} ms above ceiling "
                    f"{ceiling:.2f} ms (baseline {base_row[field]:.2f})")

    if compared == 0:
        print("perf_diff: no overlapping rows between candidate and baseline",
              file=sys.stderr)
        return 2, failures
    if not failures:
        print(f"perf_diff: {compared} row(s) within goodput -{GOODPUT_DROP} / "
              f"queue +{QUEUE_TOLERANCE:.0%} of baseline")
    return (1 if failures else 0), failures


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = load(argv[1])
    kind = candidate["bench"]
    default_baseline = {
        "join_sweep": "bench/trajectory/BENCH_join.json",
        "load_sweep": "bench/trajectory/BENCH_load.json",
    }[kind]
    baseline_path = argv[2] if len(argv) == 3 else default_baseline
    baseline = load(baseline_path)
    if baseline["bench"] != kind:
        print(f"perf_diff: baseline {baseline_path} is "
              f"{baseline['bench']}, candidate is {kind}", file=sys.stderr)
        return 2

    status, failures = (diff_join if kind == "join_sweep" else diff_load)(
        candidate, baseline)
    for failure in failures:
        print(f"perf_diff: FAIL {failure}", file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
