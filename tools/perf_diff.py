#!/usr/bin/env python3
"""Compare a freshly produced BENCH_join.json against a committed baseline.

Usage: tools/perf_diff.py CANDIDATE [BASELINE]

BASELINE defaults to bench/trajectory/BENCH_join.json (the committed
trajectory point). Rows are matched by overlay size n; for each match the
batched-leg join throughput must stay within TOLERANCE of the baseline.
The candidate must also report `equivalent: true` everywhere — a faster
wave that lands in a different final state is a bug, not a win.

Exit status: 0 when every matched row holds, 1 on a >10% throughput
regression or an equivalence failure, 2 on missing/garbled input.

Notes for reading the report: absolute joins/s moves with the machine, so
the gate is deliberately loose (10%); the committed baseline should only
be regenerated on a quiet machine via
  JOIN_NODES=1000,10000 BENCH_JSON=bench/trajectory/BENCH_join.json \
      build/bench/join_sweep
"""

import json
import sys

TOLERANCE = 0.10  # fail on >10% throughput regression


def load(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"perf_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if doc.get("bench") != "join_sweep" or "results" not in doc:
        print(f"perf_diff: {path} is not a join_sweep artifact", file=sys.stderr)
        sys.exit(2)
    return {row["n"]: row for row in doc["results"]}


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate_path = argv[1]
    baseline_path = argv[2] if len(argv) == 3 else "bench/trajectory/BENCH_join.json"

    candidate = load(candidate_path)
    baseline = load(baseline_path)

    failures = []
    compared = 0
    for n, base_row in sorted(baseline.items()):
        cand_row = candidate.get(n)
        if cand_row is None:
            continue  # smoke runs cover a subset of the baseline sizes
        compared += 1
        if not cand_row.get("equivalent", False):
            failures.append(f"n={n}: batched join diverged from scalar state")
            continue
        base = base_row["batch"]["join_per_s"]
        cand = cand_row["batch"]["join_per_s"]
        ratio = cand / base if base > 0 else 0.0
        verdict = "ok" if ratio >= 1.0 - TOLERANCE else "REGRESSION"
        print(f"n={n}: batch {cand:.0f} joins/s vs baseline {base:.0f} "
              f"({ratio:.2f}x) {verdict}")
        if verdict != "ok":
            failures.append(
                f"n={n}: batch throughput {ratio:.2f}x of baseline "
                f"(floor {1.0 - TOLERANCE:.2f}x)")

    if compared == 0:
        print("perf_diff: no overlapping sizes between candidate and baseline",
              file=sys.stderr)
        return 2
    if failures:
        for failure in failures:
            print(f"perf_diff: FAIL {failure}", file=sys.stderr)
        return 1
    print(f"perf_diff: {compared} size(s) within {TOLERANCE:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
