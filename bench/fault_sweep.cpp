// Fault sweep — the robustness plane under message loss, stub partitions
// and crash-stopped map owners, exercising the full hardening stack:
// bounded retry with exponential backoff, r-replica map placement with
// first-success failover, and graceful degradation to landmark-only
// pre-selection when the maps are unreachable.
//
// Each trial builds a fault-free overlay, measures baseline lookup
// success and stretch, then turns the fault plane on (loss rate x
// partitioned-stub fraction x one crashed map owner per level-1 zone),
// lets republish/retry traffic run, joins extra nodes THROUGH the faults,
// and measures again. Faults are then healed and the trial records how
// long soft-state takes to repair back to the baseline success rate.
//
// The paper's systems claim under test: soft-state maps degrade
// gracefully — a join never hard-fails (it falls back down the selection
// ladder), lookups fail over to replicas, and the whole plane converges
// back after the faults clear.
//
// Environment knobs (on top of the common SEED/FULL/THREADS):
//   FAULT_NODES=n    overlay size (default 1024)
//   REPLICAS=r       map replicas per record (default 3)
//   RETRIES=k        publish/lookup retry attempts beyond the first
//                    (default 2, i.e. max_attempts = 3)
//   FAULT_SMOKE=1    two-trial grid for CI
//   BENCH_JSON=path  output path (default BENCH_fault.json)
//
// Exit status is non-zero if any invariant is violated: placement
// invariant after heal, a join hard-failure, or — in the acceptance
// trial (10% publish loss + one crashed owner per zone) — lookup
// success under fault below 95%.
#include "common.hpp"

#include <fstream>

#include "core/soft_state_overlay.hpp"

using namespace topo;

namespace {

struct TrialConfig {
  double message_loss = 0.0;       // every message kind
  double publish_loss = 0.0;       // extra loss on publishes only
  double partition_fraction = 0.0; // fraction of stub domains cut off
  bool crash_owner_per_zone = false;
  bool assert_success = false;     // acceptance trial: success >= 95%
};

struct Probe {
  double success_rate = 0.0;
  double stretch = 0.0;  // median over successful lookups
};

struct TrialResult {
  TrialConfig config;
  Probe baseline;
  Probe fault;
  Probe healed;
  std::size_t crashed_hosts = 0;
  std::size_t partitioned_stubs = 0;
  std::size_t joins_under_fault = 0;
  double fallback_rate = 0.0;        // landmark fallbacks / selections
  double random_fallback_rate = 0.0;
  double retry_amplification = 1.0;  // publish messages per unique publish
  double repair_ms = 0.0;            // sim time back to baseline success
  std::uint64_t publish_retries = 0;
  std::uint64_t retry_recoveries = 0;
  std::uint64_t retries_exhausted = 0;
  std::uint64_t lost_messages = 0;
  std::uint64_t blocked_publishes = 0;
  std::uint64_t lookup_failovers = 0;
  std::uint64_t fault_blocked_lookups = 0;
  std::uint64_t replica_collapses = 0;
  std::uint64_t lazy_deletions = 0;
  std::uint64_t lost_repairs = 0;
  std::uint64_t dropped_notifications = 0;
  std::size_t invariant_violations = 0;
};

/// Lookup success rate + median stretch over `queries` random lookups.
/// Sources on crashed hosts cannot issue queries and are skipped.
Probe probe_lookups(core::SoftStateOverlay& system, std::size_t queries,
                    util::Rng& rng) {
  Probe probe;
  util::Samples stretch;
  std::size_t issued = 0;
  std::size_t ok = 0;
  const auto live = system.ecan().live_nodes();
  for (std::size_t q = 0; q < queries; ++q) {
    const auto from = live[rng.next_u64(live.size())];
    if (system.faults().host_crashed(system.ecan().node(from).host)) continue;
    const geom::Point key = geom::Point::random(2, rng);
    ++issued;
    const auto route = system.lookup(from, key);
    if (!route.success) continue;
    ++ok;
    if (route.path.size() < 2) continue;
    const double direct = system.oracle().latency_ms(
        system.ecan().node(from).host,
        system.ecan().node(route.path.back()).host);
    if (direct <= 0.0) continue;
    stretch.add(
        sim::path_latency_ms(system.ecan(), system.oracle(), route.path) /
        direct);
  }
  probe.success_rate =
      issued == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(issued);
  probe.stretch = stretch.count() == 0 ? 0.0 : stretch.median();
  return probe;
}

/// Crashes the host of the map owner at the center of every level-1 cell:
/// the acceptance scenario's "one crashed map owner per zone". Returns the
/// crashed hosts (deduplicated).
std::size_t crash_owner_per_zone(core::SoftStateOverlay& system) {
  std::size_t crashed = 0;
  for (const double x : {0.25, 0.75}) {
    for (const double y : {0.25, 0.75}) {
      geom::Point center(2);
      center[0] = x;
      center[1] = y;
      const overlay::NodeId owner = system.ecan().owner_of(center);
      if (owner == overlay::kInvalidNode) continue;
      const net::HostId host = system.ecan().node(owner).host;
      if (system.faults().host_crashed(host)) continue;
      system.faults().crash_host(host);
      ++crashed;
    }
  }
  return crashed;
}

TrialResult run_trial(const net::Topology& topology, TrialConfig tc,
                      std::size_t nodes, std::uint64_t seed) {
  core::SystemConfig config;
  config.landmark_count = 15;
  config.rtt_budget = 8;
  config.map.ttl_ms = 60'000.0;
  config.map.replicas = util::env_int("REPLICAS", 3);
  config.retry.max_attempts = 1 + static_cast<int>(util::env_int("RETRIES", 2));
  config.seed = seed;
  core::SoftStateOverlay system(topology, config);

  util::Rng rng(seed + 1);
  for (std::size_t i = 0; i < nodes; ++i)
    system.join(static_cast<net::HostId>(rng.next_u64(topology.host_count())));

  TrialResult r;
  r.config = tc;
  const std::size_t queries = bench::full_scale() ? 2 * nodes : 256;
  r.baseline = probe_lookups(system, queries, rng);

  // -- Fault phase -------------------------------------------------------
  const auto stats_before = system.maps().stats();
  const auto pubsub_before = system.pubsub().stats();
  system.selector().reset_fallback_stats();

  system.faults().mutable_config().message_loss = tc.message_loss;
  system.faults().mutable_config().publish_loss = tc.publish_loss;
  if (tc.partition_fraction > 0.0)
    r.partitioned_stubs =
        system.faults().partition_stub_fraction(tc.partition_fraction).size();
  if (tc.crash_owner_per_zone) r.crashed_hosts = crash_owner_per_zone(system);

  // Two republish periods of retry/refresh traffic, with fresh joins
  // arriving through the faults (the degradation-ladder path).
  const std::size_t fault_joins = std::max<std::size_t>(8, nodes / 32);
  for (std::size_t i = 0; i < fault_joins; ++i) {
    net::HostId host = 0;
    do {
      host = static_cast<net::HostId>(rng.next_u64(topology.host_count()));
    } while (system.faults().host_crashed(host));
    const overlay::NodeId id = system.join(host);
    if (id == overlay::kInvalidNode) ++r.invariant_violations;  // hard fail
    ++r.joins_under_fault;
    system.run_for(2.0 * config.republish_interval_ms / fault_joins);
  }
  r.fault = probe_lookups(system, queries, rng);

  const auto stats_fault = system.maps().stats();
  const auto pubsub_fault = system.pubsub().stats();
  const auto& fallback = system.selector().fallback_stats();
  if (fallback.selections > 0) {
    r.fallback_rate = static_cast<double>(fallback.landmark_fallbacks) /
                      static_cast<double>(fallback.selections);
    r.random_fallback_rate = static_cast<double>(fallback.random_fallbacks) /
                             static_cast<double>(fallback.selections);
  }
  r.publish_retries = stats_fault.publish_retries - stats_before.publish_retries;
  r.retry_recoveries =
      stats_fault.retry_recoveries - stats_before.retry_recoveries;
  r.retries_exhausted =
      stats_fault.retries_exhausted - stats_before.retries_exhausted;
  r.lost_messages = stats_fault.lost_messages - stats_before.lost_messages;
  r.blocked_publishes =
      stats_fault.blocked_publishes - stats_before.blocked_publishes;
  r.lookup_failovers =
      stats_fault.lookup_failovers - stats_before.lookup_failovers;
  r.fault_blocked_lookups =
      stats_fault.fault_blocked_lookups - stats_before.fault_blocked_lookups;
  r.replica_collapses =
      stats_fault.replica_collapses - stats_before.replica_collapses;
  r.lazy_deletions = stats_fault.lazy_deletions - stats_before.lazy_deletions;
  r.lost_repairs = stats_fault.lost_repairs - stats_before.lost_repairs;
  r.dropped_notifications = pubsub_fault.dropped_notifications -
                            pubsub_before.dropped_notifications;
  const std::uint64_t messages =
      stats_fault.publish_messages - stats_before.publish_messages;
  if (messages > r.publish_retries)
    r.retry_amplification = static_cast<double>(messages) /
                            static_cast<double>(messages - r.publish_retries);

  // -- Heal + repair latency --------------------------------------------
  system.faults().mutable_config().message_loss = 0.0;
  system.faults().mutable_config().publish_loss = 0.0;
  system.faults().heal_all_partitions();
  system.faults().restart_all_hosts();

  const sim::Time heal_at = system.events().now();
  const double repair_cap_ms = 2.0 * config.map.ttl_ms;
  r.repair_ms = repair_cap_ms;
  while (system.events().now() - heal_at < repair_cap_ms) {
    system.run_for(5'000.0);
    const Probe check = probe_lookups(system, queries / 4 + 1, rng);
    if (check.success_rate >= r.baseline.success_rate) {
      r.repair_ms = system.events().now() - heal_at;
      break;
    }
  }
  r.healed = probe_lookups(system, queries, rng);

  if (!system.maps().check_placement_invariant()) ++r.invariant_violations;
  if (tc.assert_success && r.fault.success_rate < 0.95)
    ++r.invariant_violations;
  return r;
}

void write_json(const std::string& path, const net::Topology& topology,
                std::size_t nodes, const std::vector<TrialResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"bench\": \"fault_sweep\",\n"
      << "  \"seed\": " << bench::bench_seed() << ",\n"
      << "  \"host_count\": " << topology.host_count() << ",\n"
      << "  \"nodes\": " << nodes << ",\n"
      << "  \"replicas\": " << util::env_int("REPLICAS", 3) << ",\n"
      << "  \"retries\": " << util::env_int("RETRIES", 2) << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"message_loss\": " << r.config.message_loss
        << ", \"publish_loss\": " << r.config.publish_loss
        << ", \"partition_fraction\": " << r.config.partition_fraction
        << ", \"crash_owner_per_zone\": "
        << (r.config.crash_owner_per_zone ? "true" : "false")
        << ", \"acceptance\": " << (r.config.assert_success ? "true" : "false")
        << ", \"crashed_hosts\": " << r.crashed_hosts
        << ", \"partitioned_stubs\": " << r.partitioned_stubs
        << ", \"success_baseline\": " << r.baseline.success_rate
        << ", \"success_fault\": " << r.fault.success_rate
        << ", \"success_healed\": " << r.healed.success_rate
        << ", \"stretch_baseline\": " << r.baseline.stretch
        << ", \"stretch_fault\": " << r.fault.stretch
        << ", \"stretch_healed\": " << r.healed.stretch
        << ", \"joins_under_fault\": " << r.joins_under_fault
        << ", \"fallback_rate\": " << r.fallback_rate
        << ", \"random_fallback_rate\": " << r.random_fallback_rate
        << ", \"retry_amplification\": " << r.retry_amplification
        << ", \"publish_retries\": " << r.publish_retries
        << ", \"retry_recoveries\": " << r.retry_recoveries
        << ", \"retries_exhausted\": " << r.retries_exhausted
        << ", \"lost_messages\": " << r.lost_messages
        << ", \"blocked_publishes\": " << r.blocked_publishes
        << ", \"lookup_failovers\": " << r.lookup_failovers
        << ", \"fault_blocked_lookups\": " << r.fault_blocked_lookups
        << ", \"replica_collapses\": " << r.replica_collapses
        << ", \"lazy_deletions\": " << r.lazy_deletions
        << ", \"lost_repairs\": " << r.lost_repairs
        << ", \"dropped_notifications\": " << r.dropped_notifications
        << ", \"repair_ms\": " << r.repair_ms
        << ", \"invariant_violations\": " << r.invariant_violations << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const auto bench_timer = bench::print_preamble(
      "Fault sweep: lookup success / stretch / fallback under loss, "
      "partitions and crashed owners");

  const std::uint64_t seed = bench::bench_seed();
  util::Rng topo_rng(seed);
  net::Topology topology = net::generate_transit_stub(
      bench::full_scale() ? net::tsk_large() : net::tsk_small(), topo_rng);
  net::assign_latencies(topology, net::LatencyModel::kManual, topo_rng);

  const auto nodes = static_cast<std::size_t>(util::env_int("FAULT_NODES", 1024));

  std::vector<TrialConfig> configs;
  if (util::env_bool("FAULT_SMOKE")) {
    configs.push_back(TrialConfig{0.1, 0.0, 0.25, true, false});
  } else {
    const std::vector<double> losses =
        bench::full_scale() ? std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.3}
                            : std::vector<double>{0.0, 0.1, 0.3};
    const std::vector<double> partitions =
        bench::full_scale() ? std::vector<double>{0.0, 0.1, 0.25}
                            : std::vector<double>{0.0, 0.25};
    for (const double loss : losses)
      for (const double partition : partitions)
        for (const bool crash : {false, true})
          configs.push_back(TrialConfig{loss, 0.0, partition, crash, false});
  }
  // The acceptance scenario: 10% publish loss + one crashed map owner per
  // level-1 zone must keep lookup success at or above 95%.
  configs.push_back(TrialConfig{0.0, 0.1, 0.0, true, true});

  std::printf("nodes=%zu replicas=%lld retries=%lld configs=%zu "
              "(trials in parallel)\n",
              nodes, static_cast<long long>(util::env_int("REPLICAS", 3)),
              static_cast<long long>(util::env_int("RETRIES", 2)),
              configs.size());

  const auto results = bench::run_trials_parallel(
      configs.size(), [&](std::size_t trial) {
        return run_trial(topology, configs[trial], nodes,
                         seed + 1000 * (trial + 1));
      });

  util::Table table({"loss", "pub loss", "part frac", "crash/zone",
                     "success base", "success fault", "success healed",
                     "stretch fault", "fallback", "retry amp", "repair s",
                     "invariant"});
  std::size_t total_violations = 0;
  for (const auto& r : results) {
    total_violations += r.invariant_violations;
    table.add_row({util::Table::num(r.config.message_loss, 2),
                   util::Table::num(r.config.publish_loss, 2),
                   util::Table::num(r.config.partition_fraction, 2),
                   r.config.crash_owner_per_zone ? "yes" : "no",
                   util::Table::num(r.baseline.success_rate, 3),
                   util::Table::num(r.fault.success_rate, 3),
                   util::Table::num(r.healed.success_rate, 3),
                   util::Table::num(r.fault.stretch, 3),
                   util::Table::num(r.fallback_rate, 3),
                   util::Table::num(r.retry_amplification, 3),
                   util::Table::num(r.repair_ms / 1000.0, 0),
                   r.invariant_violations == 0 ? "ok" : "VIOLATED"});
  }
  std::cout << table.to_string();

  util::Table detail({"loss", "part frac", "crash/zone", "retries",
                      "recovered", "exhausted", "failovers", "blocked fetch",
                      "lazy del", "lost repairs", "dropped notif"});
  for (const auto& r : results)
    detail.add_row(
        {util::Table::num(r.config.message_loss, 2),
         util::Table::num(r.config.partition_fraction, 2),
         r.config.crash_owner_per_zone ? "yes" : "no",
         util::Table::integer(static_cast<long long>(r.publish_retries)),
         util::Table::integer(static_cast<long long>(r.retry_recoveries)),
         util::Table::integer(static_cast<long long>(r.retries_exhausted)),
         util::Table::integer(static_cast<long long>(r.lookup_failovers)),
         util::Table::integer(
             static_cast<long long>(r.fault_blocked_lookups)),
         util::Table::integer(static_cast<long long>(r.lazy_deletions)),
         util::Table::integer(static_cast<long long>(r.lost_repairs)),
         util::Table::integer(
             static_cast<long long>(r.dropped_notifications))});
  std::cout << detail.to_string();

  write_json(util::env_string("BENCH_JSON", "BENCH_fault.json"), topology,
             nodes, results);

  std::cout << "\nReading: lookup success degrades smoothly with loss and\n"
               "partitions instead of cliffing — retries recover lost\n"
               "publishes, replicas absorb crashed owners, and joins that\n"
               "cannot reach a map fall back to landmark-only selection\n"
               "(fallback > 0, never a hard failure). After healing,\n"
               "success returns to baseline within about one TTL.\n";
  return total_violations == 0 ? 0 : 1;
}
