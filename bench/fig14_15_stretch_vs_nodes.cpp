// Figures 14-15 — routing stretch vs overlay size: global soft-state
// neighbor selection against random neighbor selection, for both
// topologies; Fig 14 uses GT-ITM latencies, Fig 15 manual latencies.
// Fixed parameters per the paper: 15 landmarks, 10 RTT probes.
//
// Also prints the Section 5.4 breakdown: shortest path (1.0 by definition)
// -> optimal (the overlay-constraint gap, ~30-40%) -> lmk+rtt (the
// proximity-generation gap) -> random (~2x), which the paper reports as a
// ~50% latency cut from the global state.
#include "common.hpp"

using namespace topo;

namespace {

void run_figure(const std::string& label, net::LatencyModel model) {
  const std::uint64_t seed = bench::bench_seed();
  std::vector<std::size_t> sizes = {256, 512, 1024, 2048};
  if (bench::full_scale()) sizes.push_back(4096);

  util::print_banner(std::cout, label);
  util::Table table({"nodes", "large transit", "small transit",
                     "large (random nbr)", "small (random nbr)",
                     "large optimal", "small optimal"});

  // Per-figure parameters (Table 2 defaults).
  const int landmarks = 15;
  const std::size_t budget = 10;

  struct TopoRun {
    std::unique_ptr<bench::World> world;
  };
  TopoRun runs[2];
  runs[0].world =
      std::make_unique<bench::World>(net::tsk_large(), model, landmarks, seed);
  runs[1].world =
      std::make_unique<bench::World>(net::tsk_small(), model, landmarks, seed);

  for (const std::size_t n : sizes) {
    double soft[2], random_sel[2], optimal[2];
    for (int t = 0; t < 2; ++t) {
      bench::World& world = *runs[t].world;
      bench::OverlayInstance instance =
          bench::build_overlay(world, n, seed + n);
      soft[t] = bench::run_stretch(world, instance,
                                   bench::SelectorKind::kSoftState, budget,
                                   seed + 3)
                    .stretch.mean();
      random_sel[t] = bench::run_stretch(world, instance,
                                         bench::SelectorKind::kRandom, budget,
                                         seed + 5)
                          .stretch.mean();
      optimal[t] = bench::run_stretch(world, instance,
                                      bench::SelectorKind::kOracle, 1,
                                      seed + 7)
                       .stretch.mean();
      world.oracle->clear_cache();
      world.warm_landmark_rows();
    }
    table.add_row({util::Table::integer(static_cast<long long>(n)),
                   util::Table::num(soft[0], 3), util::Table::num(soft[1], 3),
                   util::Table::num(random_sel[0], 3),
                   util::Table::num(random_sel[1], 3),
                   util::Table::num(optimal[0], 3),
                   util::Table::num(optimal[1], 3)});
    if (n == sizes.back()) {
      std::cout << table.to_string();
      std::printf(
          "\nSection 5.4 breakdown at N=%zu (large transit):\n"
          "  shortest path           : 1.000\n"
          "  optimal (overlay gap)   : %.3f  (+%.0f%%)\n"
          "  lmk+rtt (this paper)    : %.3f\n"
          "  random neighbor         : %.3f  (lmk+rtt cuts %.0f%% of the\n"
          "                                   random-selection latency)\n",
          n, optimal[0], (optimal[0] - 1.0) * 100.0, soft[0], random_sel[0],
          (1.0 - soft[0] / random_sel[0]) * 100.0);
    }
  }
}

}  // namespace

int main() {
  bench::print_preamble(
      "Figures 14-15: stretch vs overlay size, global state vs random");
  run_figure("Figure 14: GT-ITM latencies", net::LatencyModel::kGtItmRandom);
  run_figure("Figure 15: manual latencies", net::LatencyModel::kManual);
  std::cout << "\nShape check (paper): global state improves stretch vs\n"
               "random by roughly a third to a half; the improvement is\n"
               "bigger on the large-transit topology; manual latencies make\n"
               "the small/large contrast more prominent.\n";
  return 0;
}
