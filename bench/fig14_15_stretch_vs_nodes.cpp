// Figures 14-15 — routing stretch vs overlay size: global soft-state
// neighbor selection against random neighbor selection, for both
// topologies; Fig 14 uses GT-ITM latencies, Fig 15 manual latencies.
// Fixed parameters per the paper: 15 landmarks, 10 RTT probes.
//
// Also prints the Section 5.4 breakdown: shortest path (1.0 by definition)
// -> optimal (the overlay-constraint gap, ~30-40%) -> lmk+rtt (the
// proximity-generation gap) -> random (~2x), which the paper reports as a
// ~50% latency cut from the global state.
#include "common.hpp"

using namespace topo;

namespace {

void run_figure(const std::string& label, net::LatencyModel model) {
  const std::uint64_t seed = bench::bench_seed();
  std::vector<std::size_t> sizes = {256, 512, 1024, 2048};
  if (bench::full_scale()) sizes.push_back(4096);

  util::print_banner(std::cout, label);
  util::Table table({"nodes", "large transit", "small transit",
                     "large (random nbr)", "small (random nbr)",
                     "large optimal", "small optimal"});

  // Per-figure parameters (Table 2 defaults).
  const int landmarks = 15;
  const std::size_t budget = 10;

  std::unique_ptr<bench::World> worlds[2];
  worlds[0] =
      std::make_unique<bench::World>(net::tsk_large(), model, landmarks, seed);
  worlds[1] =
      std::make_unique<bench::World>(net::tsk_small(), model, landmarks, seed);
  // The serial driver used to clear_cache() between sizes to bound memory;
  // trials now run concurrently, so bound the oracle instead (evicted rows
  // are recomputed on demand — the printed numbers are unchanged).
  if (util::env_int("ORACLE_ROWS", 0) == 0)
    for (auto& world : worlds)
      world->oracle->set_row_cap(bench::full_scale() ? 6000 : 3000);

  // One trial per (overlay size, topology): the three selector runs share
  // the trial's overlay instance, exactly as the serial sweep did.
  struct TrialResult {
    double soft, random_sel, optimal;
  };
  const std::size_t trials = sizes.size() * 2;
  const auto results =
      bench::run_trials_parallel(trials, [&](std::size_t trial) {
        const std::size_t n = sizes[trial / 2];
        bench::World& world = *worlds[trial % 2];
        bench::OverlayInstance instance =
            bench::build_overlay(world, n, seed + n);
        TrialResult r;
        r.soft = bench::run_stretch(world, instance,
                                    bench::SelectorKind::kSoftState, budget,
                                    seed + 3)
                     .stretch.mean();
        r.random_sel = bench::run_stretch(world, instance,
                                          bench::SelectorKind::kRandom,
                                          budget, seed + 5)
                           .stretch.mean();
        r.optimal = bench::run_stretch(world, instance,
                                       bench::SelectorKind::kOracle, 1,
                                       seed + 7)
                        .stretch.mean();
        return r;
      });

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::size_t n = sizes[si];
    const TrialResult& large = results[si * 2];
    const TrialResult& small = results[si * 2 + 1];
    table.add_row({util::Table::integer(static_cast<long long>(n)),
                   util::Table::num(large.soft, 3),
                   util::Table::num(small.soft, 3),
                   util::Table::num(large.random_sel, 3),
                   util::Table::num(small.random_sel, 3),
                   util::Table::num(large.optimal, 3),
                   util::Table::num(small.optimal, 3)});
    if (n == sizes.back()) {
      std::cout << table.to_string();
      std::printf(
          "\nSection 5.4 breakdown at N=%zu (large transit):\n"
          "  shortest path           : 1.000\n"
          "  optimal (overlay gap)   : %.3f  (+%.0f%%)\n"
          "  lmk+rtt (this paper)    : %.3f\n"
          "  random neighbor         : %.3f  (lmk+rtt cuts %.0f%% of the\n"
          "                                   random-selection latency)\n",
          n, large.optimal, (large.optimal - 1.0) * 100.0, large.soft,
          large.random_sel, (1.0 - large.soft / large.random_sel) * 100.0);
    }
  }
}

}  // namespace

int main() {
  const auto bench_timer = bench::print_preamble(
      "Figures 14-15: stretch vs overlay size, global state vs random");
  run_figure("Figure 14: GT-ITM latencies", net::LatencyModel::kGtItmRandom);
  run_figure("Figure 15: manual latencies", net::LatencyModel::kManual);
  std::cout << "\nShape check (paper): global state improves stretch vs\n"
               "random by roughly a third to a half; the improvement is\n"
               "bigger on the large-transit topology; manual latencies make\n"
               "the small/large contrast more prominent.\n";
  return 0;
}
