// Section 5.4 ablation — the paper's proposed optimizations for closing
// the gap between lmk+RTT and optimal neighbor selection:
//   1. landmark groups (join of per-group shortlists),
//   2. hierarchical landmark spaces (coarse preselect + full-vector refine),
//   3. SVD denoising of many-landmark vectors.
//
// Compared on the nearest-neighbor discovery task against the plain hybrid
// search, at equal RTT budgets, in two measurement regimes: clean RTTs and
// noisy RTTs (+-25% per probe). The SVD variant exists precisely "to
// suppress noises", so the noisy regime is where it should earn its keep.
#include <cmath>
#include <limits>
#include <string>

#include "common.hpp"

#include "proximity/hierarchical.hpp"
#include "proximity/variants.hpp"

using namespace topo;

namespace {

// True two-tier hierarchy (separate local landmark sets per transit
// domain) versus a flat landmark set of the same total measurement cost.
void run_two_tier() {
  const std::uint64_t seed = bench::bench_seed();
  const int queries =
      static_cast<int>(util::env_int("QUERIES", bench::full_scale() ? 120 : 50));

  util::print_banner(std::cout,
                     "true two-tier hierarchy vs flat (equal probe cost)");
  util::Table table(
      {"topology", "budget", "flat(18 lmk)", "two-tier(12 global + 6 local)"});

  for (const auto& preset : {net::tsk_large(), net::tsk_small()}) {
    bench::World world(preset, net::LatencyModel::kGtItmRandom, 18, seed);
    util::Rng rng(seed + 5);
    const auto hierarchy =
        proximity::HierarchicalLandmarks::build(world.topology, 12, 6, rng);
    // Pin every hierarchy landmark's Dijkstra row (same trick as
    // World::warm_landmark_rows): measurement becomes O(m) per host.
    std::vector<net::HostId> tier_landmarks = hierarchy.global_landmarks();
    for (int r = 0; r < hierarchy.regions(); ++r)
      for (const auto host : hierarchy.local_landmarks(r))
        tier_landmarks.push_back(host);
    world.oracle->warm(tier_landmarks);

    proximity::ProximityDatabase flat_db;
    std::vector<proximity::HierarchicalLandmarks::Record> tier_db;
    for (net::HostId h = 0; h < world.topology.host_count(); h += 4) {
      flat_db.push_back(proximity::ProximityRecord{
          h, world.landmarks->measure(*world.oracle, h)});
      tier_db.push_back(proximity::HierarchicalLandmarks::Record{
          h, hierarchy.measure(*world.oracle, h)});
    }

    for (const std::size_t budget : {5UL, 10UL, 20UL}) {
      util::Samples flat, tiered;
      util::Rng query_rng(seed + budget + 31);
      for (int q = 0; q < queries; ++q) {
        const auto query = static_cast<net::HostId>(
            query_rng.next_u64(world.topology.host_count()));
        double best = std::numeric_limits<double>::infinity();
        for (const auto& record : flat_db)
          if (record.host != query) {
            const double rtt = world.oracle->latency_ms(query, record.host);
            if (rtt > 0.0) best = std::min(best, rtt);
          }
        if (!std::isfinite(best) || best <= 0.0) continue;

        const auto fq = world.landmarks->measure(*world.oracle, query);
        proximity::ProximityDatabase flat_filtered;
        for (const auto& record : flat_db)
          if (record.host != query) flat_filtered.push_back(record);
        const auto plain = proximity::hybrid_nn_search(
            *world.oracle, query, fq, flat_filtered, budget);
        flat.add(world.oracle->latency_ms(query, plain.host) / best);

        const auto hq = hierarchy.measure(*world.oracle, query);
        std::vector<proximity::HierarchicalLandmarks::Record> tier_filtered;
        for (const auto& record : tier_db)
          if (record.host != query) tier_filtered.push_back(record);
        const auto two_tier = hierarchy.search(*world.oracle, query, hq,
                                               tier_filtered, 4 * budget,
                                               budget);
        tiered.add(world.oracle->latency_ms(query, two_tier.host) / best);

        world.oracle->clear_cache();
        world.warm_landmark_rows();
        world.oracle->warm(tier_landmarks);
      }
      table.add_row({world.preset.name,
                     util::Table::integer(static_cast<long long>(budget)),
                     util::Table::num(flat.mean(), 3),
                     util::Table::num(tiered.mean(), 3)});
    }
  }
  std::cout << table.to_string();
}

void run_regime(const char* regime_label, double noise_fraction) {
  const std::uint64_t seed = bench::bench_seed();
  const int landmark_count = 24;  // a "large number of landmarks"
  const int queries =
      static_cast<int>(util::env_int("QUERIES", bench::full_scale() ? 120 : 50));

  util::print_banner(std::cout,
                     std::string("measurement regime: ") + regime_label);
  util::Table table({"topology", "budget", "hybrid", "groups(3)",
                     "hierarchical(6/50)", "svd(6)"});

  for (const auto& preset : {net::tsk_large(), net::tsk_small()}) {
    bench::World world(preset, net::LatencyModel::kGtItmRandom,
                       landmark_count, seed);
    world.oracle->set_measurement_noise(noise_fraction, seed + 777);

    proximity::ProximityDatabase database;
    for (net::HostId h = 0; h < world.topology.host_count(); h += 4)
      database.push_back(proximity::ProximityRecord{
          h, world.landmarks->measure(*world.oracle, h)});

    for (const std::size_t budget : {5UL, 10UL, 20UL}) {
      util::Samples hybrid, grouped, hierarchical, svd;
      util::Rng rng(seed + budget);
      for (int q = 0; q < queries; ++q) {
        const auto query = static_cast<net::HostId>(
            rng.next_u64(world.topology.host_count()));
        // Ground truth uses the noiseless latency (the metric is how close
        // the *chosen* node really is, not what the noisy probe claimed).
        double best = std::numeric_limits<double>::infinity();
        for (const auto& record : database)
          if (record.host != query) {
            const double rtt = world.oracle->latency_ms(query, record.host);
            if (rtt > 0.0) best = std::min(best, rtt);
          }
        if (!std::isfinite(best) || best <= 0.0) continue;
        auto true_stretch = [&](net::HostId chosen) {
          return world.oracle->latency_ms(query, chosen) / best;
        };

        const auto qv = world.landmarks->measure(*world.oracle, query);
        proximity::ProximityDatabase filtered;
        for (const auto& record : database)
          if (record.host != query) filtered.push_back(record);

        hybrid.add(true_stretch(
            proximity::hybrid_nn_search(*world.oracle, query, qv, filtered,
                                        budget)
                .host));
        grouped.add(true_stretch(
            proximity::grouped_nn_search(*world.oracle, query, qv, filtered,
                                         3, budget)
                .host));
        hierarchical.add(true_stretch(
            proximity::hierarchical_nn_search(*world.oracle, query, qv,
                                              filtered, 6, 50, budget)
                .host));
        svd.add(true_stretch(
            proximity::svd_nn_search(*world.oracle, query, qv, filtered, 6,
                                     budget)
                .host));
        world.oracle->clear_cache();
        world.warm_landmark_rows();
      }
      table.add_row({world.preset.name,
                     util::Table::integer(static_cast<long long>(budget)),
                     util::Table::num(hybrid.mean(), 3),
                     util::Table::num(grouped.mean(), 3),
                     util::Table::num(hierarchical.mean(), 3),
                     util::Table::num(svd.mean(), 3)});
    }
  }
  std::cout << table.to_string();
}

}  // namespace

int main() {
  const auto bench_timer =
      bench::print_preamble("Section 5.4 ablation: landmark optimizations");
  run_regime("clean RTT measurements", 0.0);
  run_regime("noisy RTT measurements (+-25%)", 0.25);
  run_two_tier();
  std::cout << "\nReading: values are nearest-neighbor stretch (1.0 = found\n"
               "the true nearest). Clean regime: hierarchical tracks the\n"
               "plain hybrid (coarse preselection loses nothing) and SVD is\n"
               "within a few %; groups trade shortlist depth for diversity\n"
               "and lag at these budgets. Noise costs every method ~2x; the\n"
               "refinements recover parts of it in different spots rather\n"
               "than uniformly — consistent with the paper presenting them\n"
               "as sketches ('additional optimizations can only improve\n"
               "this second gap'), not evaluated results. The true two-tier\n"
               "hierarchy is the standout: on the large backbone it beats\n"
               "the flat set decisively at every budget, because the local\n"
               "tier differentiates exactly the nearby nodes the global\n"
               "tier cannot.\n";
  return 0;
}
