// Figures 3-6 — nearest-neighbor discovery: expanding-ring search (ERS)
// versus the hybrid landmark+RTT approach, on tsk-large and tsk-small.
//
// Metric: stretch = RTT(query, found) / RTT(query, true nearest), averaged
// over random query hosts. X axis: number of RTT measurements.
//
// Paper shape: ERS needs thousands of probes to approach stretch 1;
// lmk+RTT reaches ~1.0-1.2 with a few tens of probes; the first lmk+rtt
// point (1 probe) is "landmark clustering alone"; tsk-small (dense stubs)
// is harder than tsk-large.
#include <cmath>
#include <limits>

#include "common.hpp"

using namespace topo;

namespace {

void run_topology(const net::TransitStubConfig& preset,
                  const std::string& figure_label) {
  const std::uint64_t seed = bench::bench_seed();
  const int landmark_count = static_cast<int>(util::env_int("LANDMARKS", 15));
  bench::World world(preset, net::LatencyModel::kGtItmRandom, landmark_count,
                     seed);

  const int queries =
      static_cast<int>(util::env_int("QUERIES", bench::full_scale() ? 100 : 40));

  // Everyone but the queries is in the database / the ERS CAN ("a CAN
  // consisting of all nodes in the topology").
  util::Rng rng(seed + 1);
  overlay::CanNetwork ers_can(2);
  for (net::HostId h = 0; h < world.topology.host_count(); ++h)
    ers_can.join_random(h, rng);

  proximity::ProximityDatabase database;
  const std::size_t db_stride = 2;  // half the hosts known to the maps
  for (net::HostId h = 0; h < world.topology.host_count(); h += db_stride)
    database.push_back(proximity::ProximityRecord{
        h, world.landmarks->measure(*world.oracle, h)});

  const std::vector<std::size_t> lmk_budgets = {1, 2, 5, 10, 20, 30, 40};
  std::vector<std::size_t> ers_budgets = {1,  2,   5,   10,  20,  50,
                                          100, 200, 500, 1000};
  if (bench::full_scale()) ers_budgets.push_back(2000);
  const std::size_t ers_max = ers_budgets.back();

  util::Samples lmk_stretch[16];
  util::Samples ers_stretch[16];

  util::Rng query_rng(seed + 2);
  for (int q = 0; q < queries; ++q) {
    const auto query = static_cast<net::HostId>(
        query_rng.next_u64(world.topology.host_count()));
    // True nearest among database hosts (excluding self / co-located).
    double best = std::numeric_limits<double>::infinity();
    for (const auto& record : database) {
      if (record.host == query) continue;
      const double rtt = world.oracle->latency_ms(query, record.host);
      if (rtt > 0.0) best = std::min(best, rtt);
    }
    if (!std::isfinite(best) || best <= 0.0) continue;

    const auto qv = world.landmarks->measure(*world.oracle, query);
    proximity::ProximityDatabase filtered;
    for (const auto& record : database)
      if (record.host != query) filtered.push_back(record);

    for (std::size_t i = 0; i < lmk_budgets.size(); ++i) {
      const auto result = proximity::hybrid_nn_search(
          *world.oracle, query, qv, filtered, lmk_budgets[i]);
      lmk_stretch[i].add(result.rtt_ms / best);
    }

    const auto start =
        ers_can.live_nodes()[query_rng.next_u64(ers_can.size())];
    const auto curve = proximity::ers_best_rtt_curve(
        ers_can, *world.oracle, query, start, ers_max, query_rng);
    for (std::size_t i = 0; i < ers_budgets.size(); ++i) {
      const std::size_t budget = ers_budgets[i];
      const double rtt =
          budget <= curve.size() ? curve[budget - 1] : curve.back();
      // ERS may find a non-database host; stretch still uses the database
      // nearest as the reference, matching the common denominator.
      ers_stretch[i].add(std::max(rtt / best, 1.0));
    }
    // Keep memory flat across queries (one full row per query host).
    world.oracle->clear_cache();
    world.warm_landmark_rows();
  }

  util::print_banner(std::cout, figure_label + " — topology " + world.name());
  util::Table lmk_table({"#RTT measurements", "stretch (lmk+rtt)"});
  for (std::size_t i = 0; i < lmk_budgets.size(); ++i)
    lmk_table.add_row({util::Table::integer(
                           static_cast<long long>(lmk_budgets[i])),
                       util::Table::num(lmk_stretch[i].mean(), 3)});
  std::cout << lmk_table.to_string();

  util::Table ers_table({"#RTT measurements", "stretch (ERS)"});
  for (std::size_t i = 0; i < ers_budgets.size(); ++i)
    ers_table.add_row({util::Table::integer(
                           static_cast<long long>(ers_budgets[i])),
                       util::Table::num(ers_stretch[i].mean(), 3)});
  std::cout << ers_table.to_string();
}

}  // namespace

int main() {
  const auto bench_timer = bench::print_preamble(
      "Figures 3-6: finding the nearest neighbor — ERS vs landmark+RTT");
  run_topology(net::tsk_large(), "Figures 3-4");
  run_topology(net::tsk_small(), "Figures 5-6");
  std::cout << "\nShape check (paper): lmk+rtt reaches low stretch with tens\n"
               "of probes; ERS needs orders of magnitude more; tsk-small is\n"
               "harder (dense stubs defeat coarse landmark clustering).\n";
  return 0;
}
