// Lifecycle under churn — routing stretch and map population versus churn
// rate and republish interval, driven by sim::LifecycleEngine (jittered
// republish timers, owner-side expiry sweeps, Poisson joins, graceful
// leaves and crashes).
//
// Each trial runs a 1k-node overlay through >= 10 simulated minutes of
// churn, checks the map placement invariant at every checkpoint, then
// stops churn and lets soft-state decay + republish converge. The paper's
// claim under test: stretch degrades gracefully while members come and go,
// and recovers once churn stops, with the map population bounded by one
// TTL's worth of stale records throughout.
//
// Environment knobs (on top of the common SEED/FULL/THREADS):
//   NODES=n          overlay size (default 1024)
//   CHURN_MINUTES=n  simulated churn phase length (default 10)
//   BENCH_JSON=path  output path (default BENCH_churn.json)
//
// Exit status is non-zero if any placement-invariant check failed.
#include "common.hpp"

#include <fstream>

#include "core/lifecycle_adapter.hpp"

using namespace topo;

namespace {

struct TrialConfig {
  double churn_rate_hz = 0.0;        // join rate == departure rate
  double republish_interval_ms = 0;  // soft-state refresh period (< TTL)
};

struct TrialResult {
  TrialConfig config;
  double stretch_before = 0.0;     // median, freshly built overlay
  double stretch_churn = 0.0;      // median, at the end of the churn phase
  double stretch_recovered = 0.0;  // median, after decay + refresh converge
  double entries_churn_mean = 0.0;
  std::size_t entries_peak = 0;
  std::size_t entries_final = 0;
  std::size_t clean_final = 0;  // one record per live node per level
  std::size_t invariant_violations = 0;
  std::size_t failed_lookups = 0;
  std::uint64_t joins = 0;
  std::uint64_t graceful_leaves = 0;
  std::uint64_t crashes = 0;
  std::uint64_t republishes = 0;
  std::uint64_t rehomed = 0;
  std::uint64_t failed_routes = 0;
  std::uint64_t lazy_deletions = 0;
  std::uint64_t notifications = 0;
  std::uint64_t reselections = 0;
};

/// Median stretch of `queries` random lookups (each repairs lazily, as in
/// live operation). Lookups that cannot complete are counted, not sampled.
double median_stretch(core::SoftStateOverlay& system, std::size_t queries,
                      util::Rng& rng, std::size_t& failed) {
  util::Samples stretch;
  const auto live = system.ecan().live_nodes();
  for (std::size_t q = 0; q < queries; ++q) {
    const auto from = live[rng.next_u64(live.size())];
    const geom::Point key = geom::Point::random(2, rng);
    const auto route = system.lookup(from, key);
    if (!route.success || route.path.size() < 2) {
      if (!route.success) ++failed;
      continue;
    }
    const double direct = system.oracle().latency_ms(
        system.ecan().node(from).host,
        system.ecan().node(route.path.back()).host);
    if (direct <= 0.0) continue;
    stretch.add(
        sim::path_latency_ms(system.ecan(), system.oracle(), route.path) /
        direct);
  }
  return stretch.count() == 0 ? 0.0 : stretch.median();
}

std::size_t clean_entry_count(const core::SoftStateOverlay& system) {
  std::size_t total = 0;
  for (const auto id : system.ecan().live_nodes())
    total += static_cast<std::size_t>(system.ecan().node_level(id));
  return total;
}

TrialResult run_trial(const net::Topology& topology, TrialConfig tc,
                      std::size_t nodes, double churn_ms,
                      std::uint64_t seed) {
  core::SystemConfig config;
  config.landmark_count = 15;
  config.rtt_budget = 8;
  config.map.ttl_ms = 60'000.0;
  config.auto_republish = false;  // the lifecycle engine owns the timers
  config.seed = seed;
  core::SoftStateOverlay system(topology, config);

  sim::LifecycleConfig lifecycle;
  lifecycle.republish_interval_ms = tc.republish_interval_ms;
  lifecycle.republish_jitter = 0.2;
  lifecycle.expiry_sweep_interval_ms = 5'000.0;
  lifecycle.crash_fraction = 0.5;
  lifecycle.min_population = nodes / 2;
  lifecycle.seed = seed + 1;
  core::LifecycleRuntime runtime(system, topology.host_count(), lifecycle);
  auto& engine = runtime.engine();

  util::Rng rng(seed + 2);
  for (std::size_t i = 0; i < nodes; ++i)
    engine.adopt(system.join(
        static_cast<net::HostId>(rng.next_u64(topology.host_count()))));

  TrialResult r;
  r.config = tc;
  const std::size_t queries = bench::full_scale() ? 2 * nodes : 256;
  r.stretch_before = median_stretch(system, queries, rng, r.failed_lookups);

  // -- Churn phase: invariant + population checked every 30 s ----------
  engine.set_churn(tc.churn_rate_hz, tc.churn_rate_hz);
  const int checkpoints = std::max(1, static_cast<int>(churn_ms / 30'000.0));
  util::Samples population;
  for (int c = 0; c < checkpoints; ++c) {
    engine.run_for(churn_ms / checkpoints);
    if (!system.maps().check_placement_invariant())
      ++r.invariant_violations;
    const std::size_t total = system.maps().total_entries();
    population.add(static_cast<double>(total));
    r.entries_peak = std::max(r.entries_peak, total);
  }
  r.entries_churn_mean = population.mean();
  r.stretch_churn = median_stretch(system, queries, rng, r.failed_lookups);

  // -- Recovery: decay scrubs the departed, republish refills the live --
  engine.set_churn(0.0, 0.0);
  engine.run_for(2.0 * config.map.ttl_ms + 2.0 * tc.republish_interval_ms);
  if (!system.maps().check_placement_invariant()) ++r.invariant_violations;
  r.stretch_recovered = median_stretch(system, queries, rng, r.failed_lookups);
  r.entries_final = system.maps().total_entries();
  r.clean_final = clean_entry_count(system);

  r.joins = engine.stats().joins;
  r.graceful_leaves = engine.stats().graceful_leaves;
  r.crashes = engine.stats().crashes;
  r.republishes = engine.stats().republishes;
  r.rehomed = system.maps().stats().rehomed_entries;
  r.failed_routes = system.maps().stats().failed_routes;
  r.lazy_deletions = system.maps().stats().lazy_deletions;
  r.notifications = system.pubsub().stats().notifications;
  r.reselections = system.stats().reselections;
  return r;
}

void write_json(const std::string& path, const net::Topology& topology,
                std::size_t nodes, double churn_ms,
                const std::vector<TrialResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"bench\": \"churn_lifecycle\",\n"
      << "  \"seed\": " << bench::bench_seed() << ",\n"
      << "  \"host_count\": " << topology.host_count() << ",\n"
      << "  \"nodes\": " << nodes << ",\n"
      << "  \"churn_minutes\": " << churn_ms / 60'000.0 << ",\n"
      << "  \"ttl_ms\": 60000,\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"churn_rate_hz\": " << r.config.churn_rate_hz
        << ", \"republish_interval_ms\": " << r.config.republish_interval_ms
        << ", \"stretch_before\": " << r.stretch_before
        << ", \"stretch_churn\": " << r.stretch_churn
        << ", \"stretch_recovered\": " << r.stretch_recovered
        << ", \"entries_churn_mean\": " << r.entries_churn_mean
        << ", \"entries_peak\": " << r.entries_peak
        << ", \"entries_final\": " << r.entries_final
        << ", \"entries_clean\": " << r.clean_final
        << ", \"invariant_violations\": " << r.invariant_violations
        << ", \"failed_lookups\": " << r.failed_lookups
        << ", \"joins\": " << r.joins
        << ", \"graceful_leaves\": " << r.graceful_leaves
        << ", \"crashes\": " << r.crashes
        << ", \"republishes\": " << r.republishes
        << ", \"rehomed_entries\": " << r.rehomed
        << ", \"failed_routes\": " << r.failed_routes
        << ", \"lazy_deletions\": " << r.lazy_deletions
        << ", \"notifications\": " << r.notifications
        << ", \"reselections\": " << r.reselections << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const auto bench_timer = bench::print_preamble(
      "Lifecycle churn: stretch + map population vs churn rate / republish");

  const std::uint64_t seed = bench::bench_seed();
  util::Rng topo_rng(seed);
  net::Topology topology = net::generate_transit_stub(
      bench::full_scale() ? net::tsk_large() : net::tsk_small(), topo_rng);
  net::assign_latencies(topology, net::LatencyModel::kManual, topo_rng);

  const auto nodes =
      static_cast<std::size_t>(util::env_int("NODES", 1024));
  const double churn_ms =
      static_cast<double>(util::env_int("CHURN_MINUTES", 10)) * 60'000.0;

  std::vector<TrialConfig> configs;
  const std::vector<double> rates =
      bench::full_scale() ? std::vector<double>{0.5, 1.0, 2.0, 4.0}
                          : std::vector<double>{0.5, 2.0};
  const std::vector<double> intervals =
      bench::full_scale() ? std::vector<double>{10'000.0, 20'000.0, 40'000.0}
                          : std::vector<double>{15'000.0, 30'000.0};
  for (const double rate : rates)
    for (const double interval : intervals)
      configs.push_back(TrialConfig{rate, interval});

  std::printf("nodes=%zu churn=%.0f min  configs=%zu (trials in parallel)\n",
              nodes, churn_ms / 60'000.0, configs.size());

  const auto results = bench::run_trials_parallel(
      configs.size(), [&](std::size_t trial) {
        return run_trial(topology, configs[trial], nodes, churn_ms,
                         seed + 1000 * (trial + 1));
      });

  util::Table table({"churn Hz", "republish s", "stretch fresh",
                     "stretch churn", "stretch recovered", "entries churn",
                     "entries final/clean", "invariant"});
  std::size_t total_violations = 0;
  for (const auto& r : results) {
    total_violations += r.invariant_violations;
    table.add_row(
        {util::Table::num(r.config.churn_rate_hz, 1),
         util::Table::num(r.config.republish_interval_ms / 1000.0, 0),
         util::Table::num(r.stretch_before, 3),
         util::Table::num(r.stretch_churn, 3),
         util::Table::num(r.stretch_recovered, 3),
         util::Table::num(r.entries_churn_mean, 0),
         util::Table::integer(static_cast<long long>(r.entries_final)) + "/" +
             util::Table::integer(static_cast<long long>(r.clean_final)),
         r.invariant_violations == 0 ? "ok" : "VIOLATED"});
  }
  std::cout << table.to_string();

  util::Table detail({"churn Hz", "republish s", "joins", "leaves", "crashes",
                      "republishes", "rehomed", "lazy del", "failed routes",
                      "notifications", "reselections"});
  for (const auto& r : results)
    detail.add_row(
        {util::Table::num(r.config.churn_rate_hz, 1),
         util::Table::num(r.config.republish_interval_ms / 1000.0, 0),
         util::Table::integer(static_cast<long long>(r.joins)),
         util::Table::integer(static_cast<long long>(r.graceful_leaves)),
         util::Table::integer(static_cast<long long>(r.crashes)),
         util::Table::integer(static_cast<long long>(r.republishes)),
         util::Table::integer(static_cast<long long>(r.rehomed)),
         util::Table::integer(static_cast<long long>(r.lazy_deletions)),
         util::Table::integer(static_cast<long long>(r.failed_routes)),
         util::Table::integer(static_cast<long long>(r.notifications)),
         util::Table::integer(static_cast<long long>(r.reselections))});
  std::cout << detail.to_string();

  write_json(util::env_string("BENCH_JSON", "BENCH_churn.json"), topology,
             nodes, churn_ms, results);

  std::cout << "\nReading: stretch rises while members churn and falls back\n"
               "toward the fresh-overlay value once churn stops; the map\n"
               "population carries at most a TTL's worth of stale records\n"
               "and converges to exactly one record per live node per level.\n";
  return total_violations == 0 ? 0 : 1;
}
