// System overhead — the paper's efficiency argument quantified: the whole
// point of controlled placement is to avoid the "excessive message
// exchanges" of gossip/expanding-ring maintenance. This bench measures
// what the soft-state machinery actually costs as the overlay grows:
//
//   * join: landmark probes + publish routing hops + per-slot selection
//     cost (map lookup hops + candidate RTT probes),
//   * steady state: republish hops per node per refresh interval,
//   * storage: soft-state entries per node,
//
// against the cost of ONE expanding-ring search of equivalent accuracy
// (Figures 3-6 showed ERS needs ~1000 probes to match lmk+rtt at ~30).
#include "common.hpp"

#include "core/soft_state_overlay.hpp"

using namespace topo;

int main() {
  const auto bench_timer =
      bench::print_preamble("Overhead: what the global soft-state costs");

  const std::uint64_t seed = bench::bench_seed();
  util::Rng topo_rng(seed);
  net::Topology topology =
      net::generate_transit_stub(net::tsk_large(), topo_rng);
  net::assign_latencies(topology, net::LatencyModel::kGtItmRandom, topo_rng);

  std::vector<std::size_t> sizes = {256, 512, 1024};
  if (bench::full_scale()) sizes.push_back(4096);

  util::Table table({"overlay size", "probes/join", "publish hops/join",
                     "selection hops/join", "entries/node",
                     "republish hops/node"});

  for (const std::size_t n : sizes) {
    core::SystemConfig config;
    config.landmark_count = 15;
    config.rtt_budget = 10;
    config.subscribe_on_join = true;
    core::SoftStateOverlay system(topology, config);
    system.oracle().warm(system.landmarks().hosts());

    util::Rng rng(seed + n);
    // Bootstrap to n-64 quietly, then measure the marginal cost of the
    // last 64 joins (costs grow with log N; the tail is representative).
    const std::size_t warmup = n - 64;
    for (std::size_t i = 0; i < warmup; ++i)
      system.join(
          static_cast<net::HostId>(rng.next_u64(topology.host_count())));

    system.oracle().reset_probe_count();
    const auto map_hops_before = system.maps().stats().route_hops;
    for (std::size_t i = 0; i < 64; ++i)
      system.join(
          static_cast<net::HostId>(rng.next_u64(topology.host_count())));
    const double probes_per_join =
        static_cast<double>(system.oracle().probe_count()) / 64.0;
    const auto publishes = system.maps().stats().publishes;
    const auto lookups = system.maps().stats().lookups;
    const double map_hops_per_join =
        static_cast<double>(system.maps().stats().route_hops -
                            map_hops_before) /
        64.0;
    // Split publish/selection hops approximately by call counts.
    const double publish_share =
        static_cast<double>(publishes) /
        static_cast<double>(publishes + lookups);

    // Steady state: one republish round.
    const auto hops_before = system.maps().stats().route_hops;
    for (const auto id : system.ecan().live_nodes())
      system.republish_now(id);
    const double republish_hops_per_node =
        static_cast<double>(system.maps().stats().route_hops - hops_before) /
        static_cast<double>(system.ecan().size());

    table.add_row(
        {util::Table::integer(static_cast<long long>(n)),
         util::Table::num(probes_per_join, 1),
         util::Table::num(map_hops_per_join * publish_share, 1),
         util::Table::num(map_hops_per_join * (1.0 - publish_share), 1),
         util::Table::num(system.maps().mean_entries_per_node(), 1),
         util::Table::num(republish_hops_per_node, 1)});
  }
  std::cout << table.to_string();
  std::cout
      << "\nReading: a join rebuilds two expressway tables (joiner + split\n"
         "peer): ~2 x levels x 2d entries x rtt_budget probes plus one map\n"
         "lookup per entry — a few hundred probes, O(log N) growth. One\n"
         "expanding-ring search of matching accuracy needs ~1000 probes\n"
         "for a SINGLE nearest-neighbor answer (Figs 3-6), i.e. one probe\n"
         "budget here buys the entire routing table. Steady-state upkeep\n"
         "is tens of routed messages per node per refresh interval, and\n"
         "storage is a few map entries per node.\n";
  return 0;
}
