// Section 5.2 ablation — maintenance cost and quality under churn:
// publish/subscribe-driven re-selection (the paper's proposal) versus pure
// soft-state decay with lazy repair, and the dissemination-tree versus
// unicast notification fan-out.
//
// The paper argues gossip-style maintenance needs "extensive message
// exchanges" while subscriptions notify exactly the nodes whose neighbor
// choice may have become stale.
#include "common.hpp"

#include "core/soft_state_overlay.hpp"
#include "pubsub/dissemination_tree.hpp"

using namespace topo;

namespace {

struct ChurnResult {
  double stretch = 0.0;
  std::uint64_t reselections = 0;
  std::uint64_t notifications = 0;
  std::uint64_t map_hops = 0;
  std::uint64_t broken_hits = 0;
};

ChurnResult run_churn(const net::Topology& topology, bool subscribe,
                      std::uint64_t seed) {
  core::SystemConfig config;
  config.landmark_count = 15;
  config.rtt_budget = 10;
  config.subscribe_on_join = subscribe;
  config.map.ttl_ms = 60'000.0;
  config.republish_interval_ms = 20'000.0;
  config.seed = seed;
  core::SoftStateOverlay system(topology, config);

  util::Rng rng(seed + 1);
  const auto initial = static_cast<std::size_t>(
      util::env_int("NODES", bench::full_scale() ? 1024 : 384));
  std::vector<overlay::NodeId> live;
  for (std::size_t i = 0; i < initial; ++i)
    live.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(topology.host_count()))));

  // Churn: 25% membership turnover with interleaved time.
  const auto churn_events = initial / 2;
  for (std::size_t e = 0; e < churn_events; ++e) {
    if (e % 2 == 0) {
      const std::size_t pick = rng.next_u64(live.size());
      if (rng.next_bool(0.5))
        system.leave(live[pick]);
      else
        system.crash(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      live.push_back(system.join(
          static_cast<net::HostId>(rng.next_u64(topology.host_count()))));
    }
    system.run_for(500.0);
  }

  // Measure post-churn routing quality (with repair disabled influence:
  // use the facade's lookup so both variants repair lazily the same way).
  util::Samples stretch;
  for (std::size_t q = 0; q < 2 * live.size(); ++q) {
    const auto from = live[rng.next_u64(live.size())];
    const geom::Point key = geom::Point::random(2, rng);
    const auto route = system.lookup(from, key);
    if (!route.success || route.path.size() < 2) continue;
    const double direct = system.oracle().latency_ms(
        system.ecan().node(from).host,
        system.ecan().node(route.path.back()).host);
    if (direct <= 0.0) continue;
    stretch.add(sim::path_latency_ms(system.ecan(), system.oracle(),
                                     route.path) /
                direct);
  }

  ChurnResult result;
  result.stretch = stretch.mean();
  result.reselections = system.stats().reselections;
  result.notifications = system.pubsub().stats().notifications;
  result.map_hops = system.maps().stats().route_hops;
  result.broken_hits = system.ecan().broken_entry_encounters();
  return result;
}

}  // namespace

int main() {
  const auto bench_timer =
      bench::print_preamble("Section 5.2: pub/sub maintenance under churn");

  const std::uint64_t seed = bench::bench_seed();
  util::Rng topo_rng(seed);
  net::Topology topology =
      net::generate_transit_stub(net::tsk_large(), topo_rng);
  net::assign_latencies(topology, net::LatencyModel::kManual, topo_rng);

  const ChurnResult with_pubsub = run_churn(topology, true, seed);
  const ChurnResult without = run_churn(topology, false, seed);

  util::Table table({"metric", "pub/sub maintenance", "decay + lazy repair"});
  table.add_row({"post-churn stretch", util::Table::num(with_pubsub.stretch, 3),
                 util::Table::num(without.stretch, 3)});
  table.add_row({"pub/sub notifications",
                 util::Table::integer(
                     static_cast<long long>(with_pubsub.notifications)),
                 util::Table::integer(static_cast<long long>(
                     without.notifications))});
  table.add_row({"demand-driven re-selections",
                 util::Table::integer(
                     static_cast<long long>(with_pubsub.reselections)),
                 util::Table::integer(
                     static_cast<long long>(without.reselections))});
  table.add_row({"map service hops",
                 util::Table::integer(
                     static_cast<long long>(with_pubsub.map_hops)),
                 util::Table::integer(
                     static_cast<long long>(without.map_hops))});
  table.add_row(
      {"broken-entry encounters",
       util::Table::integer(static_cast<long long>(with_pubsub.broken_hits)),
       util::Table::integer(static_cast<long long>(without.broken_hits))});
  std::cout << table.to_string();

  // Dissemination tree vs unicast for one hot event with many subscribers.
  util::print_banner(std::cout,
                     "Notification fan-out: dissemination tree vs unicast");
  util::Rng rng(seed + 50);
  overlay::EcanNetwork ecan(2);
  for (int i = 0; i < 512; ++i)
    ecan.join_random(static_cast<net::HostId>(i), rng);
  core::RandomSelector selector{util::Rng(seed + 51)};
  ecan.build_all_tables(selector);
  std::vector<pubsub::TreeRecipient> recipients;
  const auto live = ecan.live_nodes();
  for (int i = 1; i <= 100; ++i)
    recipients.push_back(pubsub::TreeRecipient{
        live[rng.next_u64(live.size())], util::BigUint(rng())});
  const auto plan = pubsub::build_dissemination_tree(live[0], recipients);
  const auto tree_cost = pubsub::measure_plan(ecan, plan);
  const auto unicast_cost = pubsub::measure_unicast(ecan, live[0], recipients);

  util::Table fan({"metric", "tree", "unicast"});
  fan.add_row({"messages",
               util::Table::integer(static_cast<long long>(tree_cost.messages)),
               util::Table::integer(
                   static_cast<long long>(unicast_cost.messages))});
  fan.add_row({"max per-node fan-out",
               util::Table::integer(
                   static_cast<long long>(tree_cost.max_fanout)),
               util::Table::integer(
                   static_cast<long long>(unicast_cost.max_fanout))});
  fan.add_row({"total overlay hops",
               util::Table::integer(
                   static_cast<long long>(tree_cost.total_overlay_hops)),
               util::Table::integer(
                   static_cast<long long>(unicast_cost.total_overlay_hops))});
  std::cout << fan.to_string();
  std::cout << "\nReading: pub/sub repairs neighbor choices as churn happens\n"
               "(lower post-churn stretch) at the cost of notifications; the\n"
               "tree bounds the root's fan-out at 2 instead of k.\n";
  return 0;
}
