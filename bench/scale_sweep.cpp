// Scale sweep — join / publish / lookup throughput, per-phase wall-clock
// and peak RSS as the overlay grows, emitted to BENCH_scale.json.
//
// This is the bench behind the indexed-store + routing-fast-path work
// (docs/performance.md): each size n builds an eCAN on the hierarchical
// RTT engine, measures the node-join phase, table construction, one full
// publish round, a batch of map lookups and the expiry sweep, and checks
// the full overlay + soft-state invariants (CAN zone tiling and neighbor
// geometry, eCAN membership index + routing caches, map placement) before
// reporting. The comparison mode re-runs publish/lookup/expiry through the
// seed-era linear store (LegacyLinearMapService) and reference router so
// the speedup of the indexed path is measured, not asserted.
//
// Knobs (also see common.hpp for SEED / FULL / THREADS / RTT_ENGINE):
//   SCALE_NODES=a,b,..  overlay sizes to sweep (default "1000,10000";
//                       FULL=1 default "1000,10000,50000,100000")
//   SCALE_QUERIES=n     lookups per size (default min(5n, 200000) — the
//                       service is lookup-dominated in steady state: one
//                       publish per node per refresh period vs a lookup
//                       per client request)
//   SCALE_COMPARE=0|1   seed-vs-indexed comparison (default on, sizes
//                       <= 10000 only — the linear store is quadratic-ish
//                       and that is rather the point)
//   BENCH_JSON=path     output path (default BENCH_scale.json)
#include <algorithm>
#include <chrono>
#include <fstream>

#include "common.hpp"

using namespace topo;

namespace {

class PhaseTimer {
 public:
  PhaseTimer() : last_(std::chrono::steady_clock::now()) {}
  /// Seconds since construction or the previous lap.
  double lap() {
    const auto now = std::chrono::steady_clock::now();
    const std::chrono::duration<double> elapsed = now - last_;
    last_ = now;
    return elapsed.count();
  }

 private:
  std::chrono::steady_clock::time_point last_;
};

struct TrialResult {
  std::size_t n = 0;
  double join_s = 0.0;
  double vectors_s = 0.0;
  double tables_s = 0.0;
  double publish_s = 0.0;
  double lookup_s = 0.0;
  double expire_idle_s = 0.0;  // expiry sweeps with nothing expired
  double expire_s = 0.0;       // the sweep that drops everything
  std::size_t lookups = 0;
  std::size_t candidates_returned = 0;
  std::size_t total_entries = 0;
  std::size_t route_hops = 0;
  bool invariants_ok = true;
};

constexpr int kIdleExpirySweeps = 64;

/// One full build-publish-lookup-expire cycle. Templated over the map
/// service so the identical driver runs the indexed production path
/// (MapService, scratch router) and the seed-reference path
/// (LegacyLinearMapService, reference router).
template <typename Service>
TrialResult run_trial(bench::World& world, std::size_t n,
                      std::size_t queries, std::uint64_t seed,
                      bool reference_router, bool check_invariants) {
  TrialResult r;
  r.n = n;
  util::Rng rng(seed);
  PhaseTimer timer;

  overlay::EcanNetwork ecan(2);
  std::vector<overlay::NodeId> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto host = static_cast<net::HostId>(
        rng.next_u64(world.topology.host_count()));
    nodes.push_back(ecan.join_random(host, rng));
  }
  r.join_s = timer.lap();

  // Dense by node id (fresh networks assign 0..n-1): the harness must not
  // add hash-map noise of its own to the phases it is timing.
  std::vector<proximity::LandmarkVector> vectors(n);
  for (const auto id : nodes)
    vectors[id] = world.landmarks->measure(*world.oracle,
                                           ecan.node(id).host);
  // Post-PR nodes cache their landmark number alongside the vector (it is
  // derived exactly once, here); seed-era nodes recomputed it inside every
  // publish and lookup, so the reference trial leaves this empty and uses
  // the recomputing API below.
  std::vector<util::BigUint> numbers;
  if (!reference_router) {
    numbers.resize(n);
    for (const auto id : nodes)
      numbers[id] = world.landmarks->landmark_number(vectors[id]);
  }
  r.vectors_s = timer.lap();

  core::RandomSelector selector{util::Rng(seed + 1)};
  ecan.build_all_tables(selector);
  r.tables_s = timer.lap();

  softstate::MapConfig map_config;
  map_config.use_reference_router = reference_router;
  Service maps(ecan, *world.landmarks, map_config);
  if (reference_router) {
    for (const auto id : nodes) maps.publish(id, vectors[id], 0.0);
  } else {
    for (const auto id : nodes)
      maps.publish(id, vectors[id], numbers[id], 0.0);
  }
  r.publish_s = timer.lap();

  util::Rng query_rng(seed + 2);
  std::vector<softstate::MapEntry> lookup_buffer;
  std::vector<std::uint32_t> cell(ecan.dims());
  for (std::size_t q = 0; q < queries; ++q) {
    const auto querier = nodes[query_rng.next_u64(nodes.size())];
    const int levels = ecan.node_level(querier);
    if (levels < 1) continue;
    const int level = 1 + static_cast<int>(
        query_rng.next_u64(static_cast<std::uint64_t>(levels)));
    ecan.cell_of_node_into(querier, level, cell);
    if (reference_router) {
      r.candidates_returned +=
          maps.lookup_entries(querier, vectors[querier], level, cell, 1000.0)
              .size();
    } else {
      r.candidates_returned += maps.lookup_entries_into(
          querier, vectors[querier], numbers[querier], level, cell, 1000.0,
          lookup_buffer);
    }
    ++r.lookups;
  }
  r.lookup_s = timer.lap();
  r.total_entries = maps.total_entries();
  r.route_hops = maps.stats().route_hops;

  // Idle expiry: nothing has expired yet, so the indexed store answers
  // from the top of its expiry heap while the linear store rescans every
  // entry — the difference is the point of the expiry min-structure.
  for (int sweep = 0; sweep < kIdleExpirySweeps; ++sweep)
    maps.expire_before(30'000.0);
  r.expire_idle_s = timer.lap();
  maps.expire_before(60'000.0 + 1.0);  // everything expires
  r.expire_s = timer.lap();

  if (check_invariants) {
    r.invariants_ok = ecan.check_invariants() &&
                      ecan.check_membership_index() &&
                      maps.check_placement_invariant();
  }
  return r;
}

std::vector<std::size_t> node_counts() {
  const std::string spec = util::env_string(
      "SCALE_NODES",
      bench::full_scale() ? "1000,10000,50000,100000" : "1000,10000");
  std::vector<std::size_t> counts;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                    : comma - pos);
    if (!token.empty()) {
      const long long value = std::atoll(token.c_str());
      if (value > 0) counts.push_back(static_cast<std::size_t>(value));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (counts.empty()) counts = {1000};
  return counts;
}

struct SweepRow {
  TrialResult indexed;
  TrialResult reference;  // n == 0 when the comparison was skipped
  std::size_t peak_rss = 0;
  bool compared() const { return reference.n != 0; }
  double speedup() const {
    const double indexed_s = indexed.publish_s + indexed.lookup_s;
    const double reference_s = reference.publish_s + reference.lookup_s;
    return indexed_s > 0.0 ? reference_s / indexed_s : 0.0;
  }
};

void write_json(const std::string& path, const bench::World& world,
                const std::vector<SweepRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return;
  }
  auto emit_trial = [&](const TrialResult& r) {
    out << "{\"n\": " << r.n << ", \"join_s\": " << r.join_s
        << ", \"vectors_s\": " << r.vectors_s
        << ", \"tables_s\": " << r.tables_s
        << ", \"publish_s\": " << r.publish_s
        << ", \"lookup_s\": " << r.lookup_s
        << ", \"expire_idle_s\": " << r.expire_idle_s
        << ", \"expire_s\": " << r.expire_s
        << ", \"join_per_s\": " << static_cast<double>(r.n) / r.join_s
        << ", \"publish_per_s\": "
        << static_cast<double>(r.n) / r.publish_s
        << ", \"lookup_per_s\": "
        << static_cast<double>(r.lookups) / r.lookup_s
        << ", \"lookups\": " << r.lookups
        << ", \"candidates_returned\": " << r.candidates_returned
        << ", \"total_entries\": " << r.total_entries
        << ", \"route_hops\": " << r.route_hops
        << ", \"invariants_ok\": " << (r.invariants_ok ? "true" : "false")
        << "}";
  };
  out << "{\n"
      << "  \"bench\": \"scale_sweep\",\n"
      << "  \"seed\": " << bench::bench_seed() << ",\n"
      << "  \"host_count\": " << world.topology.host_count() << ",\n"
      << "  \"idle_expiry_sweeps\": " << kIdleExpirySweeps << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    out << "    {\"n\": " << row.indexed.n << ",\n     \"indexed\": ";
    emit_trial(row.indexed);
    if (row.compared()) {
      out << ",\n     \"seed_reference\": ";
      emit_trial(row.reference);
      out << ",\n     \"publish_lookup_speedup\": " << row.speedup();
    }
    out << ",\n     \"peak_rss_bytes\": " << row.peak_rss << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const auto bench_timer = bench::print_preamble(
      "Scale sweep: indexed stores + routing fast path vs overlay size");

  const std::uint64_t seed = bench::bench_seed();
  const auto counts = node_counts();
  const bool compare = util::env_bool("SCALE_COMPARE", true);

  // The hierarchical RTT engine answers rtt(a,b) in O(1) on this
  // generated topology, so all wall-clock below is overlay + soft-state
  // work, which is what this sweep isolates.
  bench::World world(net::tsk_large(), net::LatencyModel::kManual, 15, seed);

  // Warm the allocator and page cache with a small discarded trial per
  // service so neither measured trial pays one-off process start-up costs
  // (the first trial in a cold process otherwise reads ~30% slow).
  (void)run_trial<softstate::MapService>(world, 512, 512, seed + 1,
                                         /*reference_router=*/false,
                                         /*check_invariants=*/false);
  (void)run_trial<softstate::LegacyLinearMapService>(
      world, 512, 512, seed + 1, /*reference_router=*/true,
      /*check_invariants=*/false);

  std::vector<SweepRow> rows;
  util::Table table({"n", "join/s", "publish/s", "lookup/s", "idle expiry ms",
                     "entries", "rss MiB", "speedup", "invariants"});
  bool all_ok = true;
  for (const std::size_t n : counts) {
    const auto queries = static_cast<std::size_t>(util::env_int(
        "SCALE_QUERIES",
        static_cast<std::int64_t>(std::min<std::size_t>(5 * n, 200'000))));
    SweepRow row;
    {
      bench::ScopedRssSampler rss(row.peak_rss);
      row.indexed = run_trial<softstate::MapService>(
          world, n, queries, seed + 10 * n, /*reference_router=*/false,
          /*check_invariants=*/true);
      // The linear reference store is the pre-indexed-store cost model;
      // above 10k nodes its quadratic publish round stops being a
      // comparison and becomes a wait, so the sweep skips it there.
      if (compare && n <= 10'000) {
        row.reference = run_trial<softstate::LegacyLinearMapService>(
            world, n, queries, seed + 10 * n, /*reference_router=*/true,
            /*check_invariants=*/false);
      }
    }
    all_ok = all_ok && row.indexed.invariants_ok;
    table.add_row(
        {util::Table::integer(static_cast<long long>(n)),
         util::Table::num(static_cast<double>(n) / row.indexed.join_s, 0),
         util::Table::num(static_cast<double>(n) / row.indexed.publish_s, 0),
         util::Table::num(
             static_cast<double>(row.indexed.lookups) / row.indexed.lookup_s,
             0),
         util::Table::num(row.indexed.expire_idle_s * 1000.0, 2),
         util::Table::integer(
             static_cast<long long>(row.indexed.total_entries)),
         util::Table::num(static_cast<double>(row.peak_rss) /
                              (1024.0 * 1024.0),
                          1),
         row.compared() ? util::Table::num(row.speedup(), 2) + "x" : "-",
         row.indexed.invariants_ok ? "ok" : "VIOLATED"});
    rows.push_back(std::move(row));
  }
  std::cout << table.to_string();

  write_json(util::env_string("BENCH_JSON", "BENCH_scale.json"), world, rows);

  std::cout << "\nReading: publish/s and lookup/s should stay within a small\n"
               "factor across the sweep (per-op cost is O(route) = O(log n)\n"
               "with O(1) store work); the speedup column is the indexed\n"
               "store + fast router against the seed-era linear store and\n"
               "allocating router on identical workloads.\n";
  return all_ok ? 0 : 1;
}
