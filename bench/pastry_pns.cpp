// Generality check #2 (paper Section 5.1): prefix-region maps on Pastry.
//
// "For Pastry, a region is a set of nodes sharing a particular prefix ...
// there is one map for each nodeId prefix." Every routing-table slot is
// selected by consulting the slot's prefix-region map keyed by the node's
// landmark number, then RTT-probing the top candidates — the identical
// machinery that drives eCAN expressway selection.
#include "common.hpp"

#include "core/pastry_selectors.hpp"
#include "softstate/pastry_maps.hpp"

using namespace topo;

namespace {

struct PastryRun {
  std::unique_ptr<overlay::PastryNetwork> pastry;
  std::unique_ptr<softstate::PastryMapService> maps;
  core::PastryVectorStore vectors;
};

double measure(bench::World& world, PastryRun& run,
               overlay::RoutingSlotSelector& selector, std::uint64_t seed,
               std::size_t queries) {
  run.pastry->build_all_tables(selector);
  util::Rng rng(seed);
  util::Samples stretch;
  const auto live = run.pastry->live_nodes();
  for (std::size_t q = 0; q < queries; ++q) {
    const auto from = live[rng.next_u64(live.size())];
    const auto key = rng.next_u64(run.pastry->ring_size());
    const auto route = run.pastry->route(from, key);
    if (!route.success || route.path.size() < 2) continue;
    double path_latency = 0.0;
    for (std::size_t i = 1; i < route.path.size(); ++i)
      path_latency += world.oracle->latency_ms(
          run.pastry->node(route.path[i - 1]).host,
          run.pastry->node(route.path[i]).host);
    const double direct = world.oracle->latency_ms(
        run.pastry->node(from).host,
        run.pastry->node(route.path.back()).host);
    if (direct <= 0.0) continue;
    stretch.add(path_latency / direct);
  }
  return stretch.mean();
}

}  // namespace

int main() {
  const auto bench_timer = bench::print_preamble(
      "Section 5.1: prefix-region soft-state maps on Pastry");

  const std::uint64_t seed = bench::bench_seed();
  const auto n = static_cast<std::size_t>(
      util::env_int("NODES", bench::full_scale() ? 4096 : 1024));
  const std::size_t queries = 2 * n;

  util::Table table({"topology/latency", "first-in-region", "random",
                     "lmk+rtt (10 probes)", "optimal"});

  for (const auto& preset : {net::tsk_large(), net::tsk_small()}) {
    for (const auto model :
         {net::LatencyModel::kGtItmRandom, net::LatencyModel::kManual}) {
      bench::World world(preset, model, 15, seed);

      PastryRun run;
      run.pastry = std::make_unique<overlay::PastryNetwork>(32, 4);
      util::Rng rng(seed + 1);
      std::vector<overlay::NodeId> nodes;
      for (std::size_t i = 0; i < n; ++i) {
        const auto host = static_cast<net::HostId>(
            rng.next_u64(world.topology.host_count()));
        nodes.push_back(run.pastry->join_random(host, rng));
      }
      core::FirstSlotSelector first;
      run.pastry->build_all_tables(first);  // bootstrap tables for publish
      run.maps = std::make_unique<softstate::PastryMapService>(
          *run.pastry, *world.landmarks);
      for (const auto id : nodes) {
        run.vectors[id] = world.landmarks->measure(
            *world.oracle, run.pastry->node(id).host);
        run.maps->publish(id, run.vectors[id], 0.0);
      }

      core::RandomSlotSelector random{util::Rng(seed + 2)};
      core::SoftStateSlotSelector soft(*run.pastry, *run.maps, *world.oracle,
                                       run.vectors, 10, util::Rng(seed + 3));
      core::OracleSlotSelector oracle_selector(*run.pastry, *world.oracle);

      const double first_stretch =
          measure(world, run, first, seed + 4, queries);
      const double random_stretch =
          measure(world, run, random, seed + 4, queries);
      const double soft_stretch =
          measure(world, run, soft, seed + 4, queries);
      const double optimal_stretch =
          measure(world, run, oracle_selector, seed + 4, queries);

      table.add_row({world.name(), util::Table::num(first_stretch, 3),
                     util::Table::num(random_stretch, 3),
                     util::Table::num(soft_stretch, 3),
                     util::Table::num(optimal_stretch, 3)});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nReading: per-prefix soft-state maps give Pastry most of\n"
               "the optimal-PNS win at ~10 probes per slot — the paper's\n"
               "claim that the technique carries over verbatim.\n";
  return 0;
}
