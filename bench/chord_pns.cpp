// Generality check (paper Appendix): the landmark-number-keyed global
// soft-state applied to Chord.
//
// Chord's finger table has the same selection freedom Pastry/eCAN have:
// finger i may point at any node of [n+2^i, n+2^(i+1)). We compare routing
// stretch with:
//   * classic fingers (successor of the interval start, no proximity),
//   * random member of the interval,
//   * soft-state PNS (one landmark-number-keyed map lookup per table,
//     RTT probes within a budget),
//   * oracle-optimal PNS (closest member, "infinite probes").
#include "common.hpp"

#include "core/chord_selectors.hpp"
#include "softstate/chord_maps.hpp"

using namespace topo;

namespace {

struct ChordRun {
  std::unique_ptr<overlay::ChordNetwork> chord;
  std::unique_ptr<softstate::ChordMapService> maps;
  core::ChordVectorStore vectors;
};

double measure(bench::World& world, ChordRun& run,
               overlay::FingerSelector& selector, std::uint64_t seed,
               std::size_t queries) {
  run.chord->build_all_fingers(selector);
  util::Rng rng(seed);
  util::Samples stretch;
  const auto live = run.chord->live_nodes();
  for (std::size_t q = 0; q < queries; ++q) {
    const auto from = live[rng.next_u64(live.size())];
    const auto key = rng.next_u64(run.chord->ring_size());
    const auto route = run.chord->route(from, key);
    if (!route.success || route.path.size() < 2) continue;
    double path_latency = 0.0;
    for (std::size_t i = 1; i < route.path.size(); ++i)
      path_latency += world.oracle->latency_ms(
          run.chord->node(route.path[i - 1]).host,
          run.chord->node(route.path[i]).host);
    const double direct = world.oracle->latency_ms(
        run.chord->node(from).host,
        run.chord->node(route.path.back()).host);
    if (direct <= 0.0) continue;
    stretch.add(path_latency / direct);
  }
  return stretch.mean();
}

}  // namespace

int main() {
  const auto bench_timer =
      bench::print_preamble("Appendix: global soft-state on Chord (PNS fingers)");

  const std::uint64_t seed = bench::bench_seed();
  const auto n = static_cast<std::size_t>(
      util::env_int("NODES", bench::full_scale() ? 4096 : 1024));
  const std::size_t queries = 2 * n;

  util::Table table(
      {"topology/latency", "classic", "random", "lmk+rtt (24 probes)",
       "optimal"});

  for (const auto& preset : {net::tsk_large(), net::tsk_small()}) {
    for (const auto model :
         {net::LatencyModel::kGtItmRandom, net::LatencyModel::kManual}) {
      bench::World world(preset, model, 15, seed);

      ChordRun run;
      run.chord = std::make_unique<overlay::ChordNetwork>(30);
      util::Rng rng(seed + 1);
      std::vector<overlay::NodeId> nodes;
      for (std::size_t i = 0; i < n; ++i) {
        const auto host = static_cast<net::HostId>(
            rng.next_u64(world.topology.host_count()));
        nodes.push_back(run.chord->join_random(host, rng));
      }
      // Fingers must exist before publish can route; bootstrap classic.
      core::ClassicFingerSelector classic;
      run.chord->build_all_fingers(classic);
      run.maps = std::make_unique<softstate::ChordMapService>(
          *run.chord, *world.landmarks);
      for (const auto id : nodes) {
        run.vectors[id] = world.landmarks->measure(
            *world.oracle, run.chord->node(id).host);
        run.maps->publish(id, run.vectors[id], 0.0);
      }

      core::RandomFingerSelector random{util::Rng(seed + 2)};
      core::SoftStateFingerSelector soft(*run.chord, *run.maps, *world.oracle,
                                         run.vectors, 24, util::Rng(seed + 3));
      core::OracleFingerSelector oracle_selector(*run.chord, *world.oracle);

      const double classic_stretch =
          measure(world, run, classic, seed + 4, queries);
      const double random_stretch =
          measure(world, run, random, seed + 4, queries);
      const double soft_stretch =
          measure(world, run, soft, seed + 4, queries);
      const double optimal_stretch =
          measure(world, run, oracle_selector, seed + 4, queries);

      table.add_row({world.name(), util::Table::num(classic_stretch, 3),
                     util::Table::num(random_stretch, 3),
                     util::Table::num(soft_stretch, 3),
                     util::Table::num(optimal_stretch, 3)});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nReading: the same landmark-number-keyed soft-state that\n"
               "drives eCAN expressway selection cuts Chord's stretch toward\n"
               "the optimal PNS line — the technique is overlay-agnostic, as\n"
               "the paper claims.\n";
  return 0;
}
