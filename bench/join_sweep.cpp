// Join sweep — batched join-wave throughput vs the scalar join path,
// with the per-stage wall-clock breakdown of the wave microkernels,
// emitted to BENCH_join.json.
//
// Three legs per overlay size n, all over the same host sequence and the
// same SystemConfig seed, so they must land in the same final state (the
// bench asserts it and exits non-zero on any divergence):
//   batch     — join_many over waves of JOIN_BATCH joiners: bulk landmark
//               measurement (one engine walk per landmark), bulk Hilbert
//               encode, cached-number publishes, indexed pub/sub fan-out;
//   scalar    — one join() per node on the current fast paths;
//   reference — one join() per node with the seed-era cost model: the
//               reference router re-derives cell coordinates per hop and
//               the reference pub/sub matcher scans the whole
//               subscription table per publish. This is the honest
//               "pre-batching scalar path" the speedup is measured
//               against (same twin discipline as scale_sweep).
//
// Knobs (also see common.hpp for SEED / FULL / THREADS / RTT_ENGINE):
//   JOIN_NODES=a,b,..   overlay sizes (default "1000,10000")
//   JOIN_BATCH=n        joiners per join_many wave (default 256)
//   JOIN_REFERENCE=0|1  reference leg (default on for sizes <= 10000 —
//                       the full-table matcher scan is quadratic-ish and
//                       that is rather the point)
//   BENCH_JSON=path     output path (default BENCH_join.json)
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/soft_state_overlay.hpp"

using namespace topo;

namespace {

std::vector<std::size_t> node_counts() {
  const std::string spec = util::env_string("JOIN_NODES", "1000,10000");
  std::vector<std::size_t> counts;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!token.empty()) counts.push_back(std::stoul(token));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (counts.empty()) counts = {1000};
  return counts;
}

struct LegResult {
  double join_s = 0.0;
  std::size_t nodes = 0;
  std::size_t map_entries = 0;
  std::size_t subscriptions = 0;
  std::uint64_t joins = 0;
  std::uint64_t publishes = 0;
  std::uint64_t map_route_hops = 0;
  std::uint64_t notifications = 0;
  std::uint64_t pubsub_route_hops = 0;
  std::uint64_t predicate_evaluations = 0;
  std::uint64_t probes = 0;

  double per_s() const {
    return join_s > 0.0 ? static_cast<double>(nodes) / join_s : 0.0;
  }
  /// Everything a join moves, for the cross-leg equivalence check.
  bool same_state(const LegResult& other) const {
    return nodes == other.nodes && map_entries == other.map_entries &&
           subscriptions == other.subscriptions && joins == other.joins &&
           publishes == other.publishes &&
           map_route_hops == other.map_route_hops &&
           notifications == other.notifications &&
           pubsub_route_hops == other.pubsub_route_hops &&
           predicate_evaluations == other.predicate_evaluations &&
           probes == other.probes;
  }
};

void capture_state(core::SoftStateOverlay& system, LegResult& leg) {
  leg.nodes = system.ecan().size();
  leg.map_entries = system.maps().total_entries();
  leg.subscriptions = system.pubsub().active_subscriptions();
  leg.joins = system.stats().joins;
  leg.publishes = system.maps().stats().publishes;
  leg.map_route_hops = system.maps().stats().route_hops;
  leg.notifications = system.pubsub().stats().notifications;
  leg.pubsub_route_hops = system.pubsub().stats().route_hops;
  leg.predicate_evaluations = system.pubsub().stats().predicate_evaluations;
  leg.probes = system.oracle().probe_count();
}

core::SystemConfig sweep_config(std::uint64_t seed, bool reference) {
  core::SystemConfig config;
  config.landmark_count = 15;
  config.landmark.scale_ms = 80.0;  // manual latency regime
  config.seed = seed;
  config.map.use_reference_router = reference;
  return config;
}

std::vector<net::HostId> host_sequence(const net::Topology& topology,
                                       std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<net::HostId> hosts;
  hosts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    hosts.push_back(static_cast<net::HostId>(rng.next_u64(
        topology.host_count())));
  return hosts;
}

struct SweepRow {
  std::size_t n = 0;
  std::size_t batch_size = 0;
  core::JoinWaveStats stages;  // summed over the waves
  LegResult batch;
  LegResult scalar;
  LegResult reference;  // nodes == 0 when skipped
  bool equivalent = true;

  bool compared() const { return reference.nodes != 0; }
  double batch_vs_scalar() const {
    return batch.join_s > 0.0 ? scalar.join_s / batch.join_s : 0.0;
  }
  double speedup() const {
    return batch.join_s > 0.0 ? reference.join_s / batch.join_s : 0.0;
  }
};

void write_json(const std::string& path, const net::Topology& topology,
                std::size_t batch, const std::vector<SweepRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return;
  }
  auto emit_leg = [&](const LegResult& leg) {
    out << "{\"join_s\": " << leg.join_s << ", \"join_per_s\": "
        << leg.per_s() << ", \"map_entries\": " << leg.map_entries
        << ", \"subscriptions\": " << leg.subscriptions
        << ", \"notifications\": " << leg.notifications
        << ", \"route_hops\": "
        << leg.map_route_hops + leg.pubsub_route_hops
        << ", \"probes\": " << leg.probes << "}";
  };
  out << "{\n"
      << "  \"bench\": \"join_sweep\",\n"
      << "  \"seed\": " << bench::bench_seed() << ",\n"
      << "  \"host_count\": " << topology.host_count() << ",\n"
      << "  \"batch\": " << batch << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    const core::JoinWaveStats& s = row.stages;
    out << "    {\"n\": " << row.n << ",\n     \"stages_ms\": {"
        << "\"probe\": " << s.probe_ms << ", \"encode\": " << s.encode_ms
        << ", \"split\": " << s.split_ms << ", \"publish\": " << s.publish_ms
        << ", \"select\": " << s.select_ms
        << ", \"map_fetch\": " << s.map_fetch_ms
        << ", \"rank\": " << s.rank_ms
        << ", \"subscribe\": " << s.subscribe_ms << "},\n"
        << "     \"bulk_measured\": " << (s.bulk_measured ? "true" : "false")
        << ",\n     \"batch\": ";
    emit_leg(row.batch);
    out << ",\n     \"scalar\": ";
    emit_leg(row.scalar);
    out << ",\n     \"batch_vs_scalar\": " << row.batch_vs_scalar();
    if (row.compared()) {
      out << ",\n     \"reference\": ";
      emit_leg(row.reference);
      out << ",\n     \"join_throughput_speedup\": " << row.speedup();
    }
    out << ",\n     \"equivalent\": " << (row.equivalent ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const auto bench_timer = bench::print_preamble(
      "Join sweep: batched join waves vs scalar joins");

  const std::uint64_t seed = bench::bench_seed();
  const auto counts = node_counts();
  const auto batch = static_cast<std::size_t>(
      util::env_int("JOIN_BATCH", 256));

  // The facade builds its own oracle per system, so the topology is the
  // only shared piece; the hierarchical engine makes RTT queries O(1) and
  // the measured wall-clock overlay + soft-state work.
  util::Rng topo_rng(seed);
  net::Topology topology =
      net::generate_transit_stub(net::tsk_large(), topo_rng);
  net::assign_latencies(topology, net::LatencyModel::kManual, topo_rng);

  std::vector<SweepRow> rows;
  util::Table table({"n", "batch joins/s", "scalar joins/s", "ref joins/s",
                     "vs scalar", "vs reference", "equivalent"});
  bool all_equivalent = true;

  for (const std::size_t n : counts) {
    SweepRow row;
    row.n = n;
    row.batch_size = batch;
    const auto hosts = host_sequence(topology, seed + 11 * n, n);
    const bool run_reference =
        util::env_bool("JOIN_REFERENCE", n <= 10'000);

    {
      core::SoftStateOverlay system(topology, sweep_config(seed, false));
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t base = 0; base < hosts.size(); base += batch) {
        const std::size_t size = std::min(batch, hosts.size() - base);
        core::JoinWaveStats wave;
        system.join_many({hosts.data() + base, size}, &wave);
        row.stages.wave_size += wave.wave_size;
        row.stages.bulk_measured = wave.bulk_measured;
        row.stages.probe_ms += wave.probe_ms;
        row.stages.encode_ms += wave.encode_ms;
        row.stages.split_ms += wave.split_ms;
        row.stages.publish_ms += wave.publish_ms;
        row.stages.select_ms += wave.select_ms;
        row.stages.map_fetch_ms += wave.map_fetch_ms;
        row.stages.rank_ms += wave.rank_ms;
        row.stages.subscribe_ms += wave.subscribe_ms;
      }
      row.batch.join_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      capture_state(system, row.batch);
    }
    {
      core::SoftStateOverlay system(topology, sweep_config(seed, false));
      const auto start = std::chrono::steady_clock::now();
      for (const net::HostId host : hosts) system.join(host);
      row.scalar.join_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      capture_state(system, row.scalar);
    }
    if (run_reference) {
      core::SoftStateOverlay system(topology, sweep_config(seed, true));
      system.pubsub().set_reference_matcher(true);
      const auto start = std::chrono::steady_clock::now();
      for (const net::HostId host : hosts) system.join(host);
      row.reference.join_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      capture_state(system, row.reference);
    }

    row.equivalent = row.batch.same_state(row.scalar) &&
                     (!row.compared() || row.batch.same_state(row.reference));
    all_equivalent = all_equivalent && row.equivalent;

    table.add_row(
        {util::Table::integer(static_cast<long long>(n)),
         util::Table::num(row.batch.per_s(), 0),
         util::Table::num(row.scalar.per_s(), 0),
         row.compared() ? util::Table::num(row.reference.per_s(), 0) : "-",
         util::Table::num(row.batch_vs_scalar(), 2) + "x",
         row.compared() ? util::Table::num(row.speedup(), 2) + "x" : "-",
         row.equivalent ? "ok" : "DIVERGED"});
    rows.push_back(std::move(row));
  }
  std::cout << table.to_string();

  write_json(util::env_string("BENCH_JSON", "BENCH_join.json"), topology,
             batch, rows);

  std::cout << "\nReading: all three legs replay the same join sequence and\n"
               "must report identical state (maps, subscriptions, hops,\n"
               "probes) — 'equivalent' says they did. The speedup column\n"
               "is batch vs the seed-era reference cost model; batch vs\n"
               "scalar isolates the wave microkernels alone.\n";

  if (!all_equivalent) {
    std::fprintf(stderr, "\nFAIL: batched join diverged from scalar state\n");
    return 1;
  }
  return 0;
}
