// Load sweep — the traffic plane under rising offered load, with the
// Section 6 load→selection loop on and off.
//
// Each trial joins an overlay over the shared topology, saturates the
// access links of a fixed set of "hot" hosts to `offered` × capacity
// (the same hosts at every level, so legs differ only in load), lets
// republish traffic carry real utilization into the maps, and probes:
//   goodput      — lookup success rate through the congestion gates;
//   queue delay  — mean/p99 of the M/M/1 queuing term toward hot hosts;
//   stretch      — routing stretch with queuing delay included (the
//                  oracle folds the traffic plane into every RTT);
//   reselections — pub/sub-driven re-selections away from saturated
//                  representatives (loop-on leg only).
//
// The paper's Section 6 claim under test: publishing load with each
// record and re-selecting when a representative crosses the QoS
// threshold recovers goodput under saturation, because lookups route
// around the hot hosts instead of through them.
//
// Environment knobs (on top of the common SEED/FULL/THREADS):
//   LOAD_NODES=n    overlay size (default 1024)
//   LOAD_SMOKE=1    three offered-load levels instead of six (CI)
//   BENCH_JSON=path output path (default BENCH_load.json)
//
// Exit status is non-zero if goodput rises or queue delay falls as
// offered load grows (monotonicity, per leg), if saturation produces no
// re-selection on the loop-on leg, or if the loop never recovers
// goodput at the saturated levels.
#include "common.hpp"

#include <algorithm>
#include <fstream>

#include "core/soft_state_overlay.hpp"

using namespace topo;

namespace {

struct TrialConfig {
  double offered = 0.0;  // hot-link utilization target (x capacity)
  bool loop = false;     // Section 6 load->selection loop
};

struct TrialResult {
  TrialConfig config;
  double goodput = 0.0;
  double queue_mean_ms = 0.0;
  double queue_p99_ms = 0.0;
  double stretch = 0.0;  // median over successful lookups, queue included
  double max_utilization = 0.0;
  std::size_t saturated_links = 0;
  std::uint64_t reselections = 0;     // during the load phase only
  std::uint64_t load_notifications = 0;  // kLoadExceeded firings
  std::uint64_t messages = 0;
  std::uint64_t drops = 0;
  std::uint64_t delayed = 0;
  std::uint64_t congestion_drops = 0;        // map service gate
  std::uint64_t dropped_notifications = 0;   // pub/sub gate
};

/// The same `count` distinct hosts (drawn from the joined nodes, in join
/// order) at every load level: the saturated region of the network.
std::vector<net::HostId> hot_hosts(const core::SoftStateOverlay& system,
                                   const std::vector<overlay::NodeId>& nodes,
                                   std::size_t count) {
  std::vector<net::HostId> hot;
  for (const auto id : nodes) {
    const net::HostId host = system.ecan().node(id).host;
    if (std::find(hot.begin(), hot.end(), host) == hot.end())
      hot.push_back(host);
    if (hot.size() == count) break;
  }
  return hot;
}

TrialResult run_trial(const net::Topology& topology, TrialConfig tc,
                      std::size_t nodes, std::size_t hot_count,
                      std::size_t queries, std::uint64_t seed) {
  core::SystemConfig config;
  config.landmark_count = 15;
  config.rtt_budget = 8;
  config.seed = seed;
  config.traffic.enabled = true;
  // 10x the default capacities: at the defaults the overlay's own
  // republish/notify traffic saturates map-owner access links on its own
  // (a finding worth keeping visible, but it drowns the offered-load
  // knob this sweep is about). Flows scale with capacity, so hot-link
  // utilization equals `offered` either way.
  config.traffic.inter_transit_capacity *= 10.0;
  config.traffic.intra_transit_capacity *= 10.0;
  config.traffic.transit_stub_capacity *= 10.0;
  config.traffic.intra_stub_capacity *= 10.0;
  if (tc.loop) {
    config.load_weight = 8.0;    // Section 6 selector
    config.load_threshold = 0.7; // QoS watch -> kLoadExceeded
  }
  core::SoftStateOverlay system(topology, config);

  util::Rng rng(seed + 1);
  std::vector<overlay::NodeId> ids;
  ids.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i)
    ids.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(topology.host_count()))));

  const auto hot = hot_hosts(system, ids, hot_count);
  if (tc.offered > 0.0) {
    for (const net::HostId h : hot)
      for (const auto& nb : topology.neighbors(h))
        system.traffic().offer_flow(
            h, nb.host,
            tc.offered * system.traffic().link_capacity(nb.link_index));
  }

  // 2.5 republish periods: utilization reaches the maps, QoS watches
  // fire, and (loop-on) the selector re-selects away from hot hosts.
  const std::uint64_t reselections_before = system.stats().reselections;
  system.run_for(2.5 * config.republish_interval_ms);

  TrialResult r;
  r.config = tc;
  r.reselections = system.stats().reselections - reselections_before;
  r.load_notifications = system.pubsub().stats().load_exceeded;

  // Goodput + stretch through the congestion gates.
  util::Samples stretch;
  std::size_t ok = 0;
  const auto live = system.ecan().live_nodes();
  for (std::size_t q = 0; q < queries; ++q) {
    const auto from = live[rng.next_u64(live.size())];
    const geom::Point key = geom::Point::random(2, rng);
    const auto route = system.lookup(from, key);
    if (!route.success) continue;
    ++ok;
    if (route.path.size() < 2) continue;
    const double direct = system.oracle().latency_ms(
        system.ecan().node(from).host,
        system.ecan().node(route.path.back()).host);
    if (direct <= 0.0) continue;
    stretch.add(
        sim::path_latency_ms(system.ecan(), system.oracle(), route.path) /
        direct);
  }
  r.goodput = queries == 0
                  ? 0.0
                  : static_cast<double>(ok) / static_cast<double>(queries);
  r.stretch = stretch.count() == 0 ? 0.0 : stretch.median();

  // Queuing delay toward the saturated region (random source -> hot
  // host), the paths re-selection steers traffic away from.
  util::Samples queue;
  for (std::size_t q = 0; q < std::max<std::size_t>(queries / 2, 64); ++q) {
    const auto from = live[rng.next_u64(live.size())];
    const net::HostId to = hot[rng.next_u64(hot.size())];
    queue.add(
        system.traffic().queuing_delay_ms(system.ecan().node(from).host, to));
  }
  r.queue_mean_ms = queue.mean();
  r.queue_p99_ms = queue.percentile(99.0);

  r.max_utilization = system.traffic().max_link_utilization();
  r.saturated_links = system.traffic().saturated_link_count();
  r.messages = system.traffic().stats().messages;
  r.drops = system.traffic().stats().dropped;
  r.delayed = system.traffic().stats().delayed;
  r.congestion_drops = system.maps().stats().congestion_drops;
  r.dropped_notifications = system.pubsub().stats().dropped_notifications;
  return r;
}

void write_json(const std::string& path, const net::Topology& topology,
                std::size_t nodes, std::size_t hot_count, std::size_t queries,
                const std::vector<TrialResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"bench\": \"load_sweep\",\n"
      << "  \"seed\": " << bench::bench_seed() << ",\n"
      << "  \"host_count\": " << topology.host_count() << ",\n"
      << "  \"nodes\": " << nodes << ",\n"
      << "  \"hot_hosts\": " << hot_count << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"offered\": " << r.config.offered
        << ", \"loop\": " << (r.config.loop ? "true" : "false")
        << ", \"goodput\": " << r.goodput
        << ", \"queue_mean_ms\": " << r.queue_mean_ms
        << ", \"queue_p99_ms\": " << r.queue_p99_ms
        << ", \"stretch\": " << r.stretch
        << ", \"max_utilization\": " << r.max_utilization
        << ", \"saturated_links\": " << r.saturated_links
        << ", \"reselections\": " << r.reselections
        << ", \"load_notifications\": " << r.load_notifications
        << ", \"messages\": " << r.messages
        << ", \"drops\": " << r.drops
        << ", \"delayed\": " << r.delayed
        << ", \"congestion_drops\": " << r.congestion_drops
        << ", \"dropped_notifications\": " << r.dropped_notifications << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const auto bench_timer = bench::print_preamble(
      "Load sweep: goodput / queue delay / re-selection vs offered load");

  const std::uint64_t seed = bench::bench_seed();
  util::Rng topo_rng(seed);
  net::Topology topology = net::generate_transit_stub(
      bench::full_scale() ? net::tsk_large() : net::tsk_small(), topo_rng);
  net::assign_latencies(topology, net::LatencyModel::kManual, topo_rng);

  const auto nodes =
      static_cast<std::size_t>(util::env_int("LOAD_NODES", 1024));
  const std::size_t hot_count = std::max<std::size_t>(8, nodes / 64);
  const std::size_t queries =
      bench::full_scale() ? 2 * nodes
                          : (util::env_bool("LOAD_SMOKE") ? 256 : 1024);

  const std::vector<double> levels =
      util::env_bool("LOAD_SMOKE")
          ? std::vector<double>{0.0, 1.0, 2.0}
          : std::vector<double>{0.0, 0.25, 0.5, 1.0, 1.5, 2.0};
  std::vector<TrialConfig> configs;
  for (const bool loop : {false, true})
    for (const double offered : levels)
      configs.push_back(TrialConfig{offered, loop});

  std::printf("nodes=%zu hot_hosts=%zu queries=%zu levels=%zu "
              "(trials in parallel)\n",
              nodes, hot_count, queries, levels.size());

  // Same seed for both legs of a level: identical join sequence and
  // flows, the loop knobs are the only difference.
  const auto results = bench::run_trials_parallel(
      configs.size(), [&](std::size_t trial) {
        const auto& tc = configs[trial];
        const auto level_index = static_cast<std::uint64_t>(
            std::find(levels.begin(), levels.end(), tc.offered) -
            levels.begin());
        return run_trial(topology, tc, nodes, hot_count, queries,
                         seed + 1000 * (level_index + 1));
      });

  util::Table table({"offered", "loop", "goodput", "queue mean ms",
                     "queue p99 ms", "stretch", "max util", "alarms",
                     "reselect", "drops", "congestion"});
  for (const auto& r : results)
    table.add_row(
        {util::Table::num(r.config.offered, 2), r.config.loop ? "on" : "off",
         util::Table::num(r.goodput, 3), util::Table::num(r.queue_mean_ms, 2),
         util::Table::num(r.queue_p99_ms, 2), util::Table::num(r.stretch, 3),
         util::Table::num(r.max_utilization, 2),
         util::Table::integer(static_cast<long long>(r.load_notifications)),
         util::Table::integer(static_cast<long long>(r.reselections)),
         util::Table::integer(static_cast<long long>(r.drops)),
         util::Table::integer(static_cast<long long>(r.congestion_drops))});
  std::cout << table.to_string();

  // -- Gates ---------------------------------------------------------------
  std::size_t violations = 0;
  for (const bool loop : {false, true}) {
    const TrialResult* previous = nullptr;
    for (const auto& r : results) {
      if (r.config.loop != loop) continue;
      if (previous != nullptr) {
        // Goodput must not rise with offered load (small grace for the
        // seeded drop draws); queue delay must not fall.
        if (r.goodput > previous->goodput + 0.02) {
          std::fprintf(stderr,
                       "FAIL: goodput rose %.3f -> %.3f at offered %.2f "
                       "(loop %s)\n",
                       previous->goodput, r.goodput, r.config.offered,
                       loop ? "on" : "off");
          ++violations;
        }
        // 2% grace: past the utilization cap the M/M/1 term plateaus,
        // and saturation drops thin the measured control rates slightly.
        if (r.queue_mean_ms < previous->queue_mean_ms * 0.98) {
          std::fprintf(stderr,
                       "FAIL: queue delay fell %.3f -> %.3f at offered %.2f "
                       "(loop %s)\n",
                       previous->queue_mean_ms, r.queue_mean_ms,
                       r.config.offered, loop ? "on" : "off");
          ++violations;
        }
      }
      previous = &r;
    }
  }
  // The closed loop must act under saturation — QoS alarms fired and
  // re-selection ran — and recover goodput at one of the saturated
  // levels (>= the QoS threshold).
  double best_recovery = 0.0;
  bool loop_alarmed = false;
  for (const auto& on : results) {
    if (!on.config.loop || on.config.offered < 0.7) continue;
    if (on.load_notifications > 0 && on.reselections > 0) loop_alarmed = true;
    for (const auto& off : results)
      if (!off.config.loop && off.config.offered == on.config.offered)
        best_recovery = std::max(best_recovery, on.goodput - off.goodput);
  }
  if (!loop_alarmed) {
    std::fprintf(stderr,
                 "FAIL: saturation fired no kLoadExceeded re-selection\n");
    ++violations;
  }
  if (best_recovery <= 0.0) {
    std::fprintf(stderr,
                 "FAIL: loop-on never recovered goodput (best %+.3f)\n",
                 best_recovery);
    ++violations;
  }
  std::printf("\nbest goodput recovery (loop on - off, saturated): %+.3f\n",
              best_recovery);

  write_json(util::env_string("BENCH_JSON", "BENCH_load.json"), topology,
             nodes, hot_count, queries, results);

  std::cout << "\nReading: goodput falls and queue delay climbs as the hot\n"
               "links saturate; once utilization crosses the QoS threshold\n"
               "the loop-on leg re-selects representatives away from the\n"
               "hot hosts (reselect > 0) and claws back goodput relative\n"
               "to the loop-off leg at the same offered load.\n";
  return violations == 0 ? 0 : 1;
}
