// Introduction claim — Topologically-Aware CAN (geographic layout) skews
// the overlay: "for a typical 10,000-node Topologically-Aware CAN, [a few]%
// nodes can occupy 80-98% of the entire Cartesian space, and some nodes
// have to maintain [dozens of] neighbors."
//
// We build (a) a TACAN whose join bins follow each node's landmark
// ordering and (b) a uniform-layout CAN over the same hosts, and compare
// zone-volume and neighbor-count skew.
#include "common.hpp"

#include "overlay/tacan.hpp"

using namespace topo;

int main() {
  const auto bench_timer =
      bench::print_preamble("Intro claim: Topologically-Aware CAN imbalance");

  const std::uint64_t seed = bench::bench_seed();
  const auto overlay_nodes = static_cast<std::size_t>(util::env_int(
      "NODES", bench::full_scale() ? 10000 : 4096));
  const int landmark_count = 4;  // binning by full ordering: 4! = 24 bins

  bench::World world(net::tsk_large(), net::LatencyModel::kGtItmRandom,
                     landmark_count, seed);
  const std::size_t bins = proximity::factorial(landmark_count);

  util::Rng rng(seed + 1);
  overlay::CanNetwork tacan(2);
  overlay::CanNetwork uniform(2);
  for (std::size_t i = 0; i < overlay_nodes; ++i) {
    const auto host = static_cast<net::HostId>(
        rng.next_u64(world.topology.host_count()));
    const auto vector = world.landmarks->measure(*world.oracle, host);
    const auto order = world.landmarks->ordering(vector);
    const std::size_t bin = proximity::ordering_rank(order);
    overlay::join_binned(tacan, host, bin, bins, rng);
    uniform.join_random(host, rng);
  }

  const auto skewed = overlay::measure_imbalance(tacan);
  const auto balanced = overlay::measure_imbalance(uniform);

  util::Table table({"metric", "TACAN (geographic layout)",
                     "uniform layout (this paper)"});
  auto row = [&](const char* name, double a, double b, int precision) {
    table.add_row({name, util::Table::num(a, precision),
                   util::Table::num(b, precision)});
  };
  row("zone-volume gini", skewed.volume_gini, balanced.volume_gini, 3);
  row("space held by top 1% nodes", skewed.top1pct_volume,
      balanced.top1pct_volume, 3);
  row("space held by top 5% nodes", skewed.top5pct_volume,
      balanced.top5pct_volume, 3);
  row("space held by top 10% nodes", skewed.top10pct_volume,
      balanced.top10pct_volume, 3);
  row("mean neighbors", skewed.mean_neighbors, balanced.mean_neighbors, 2);
  row("p99 neighbors", skewed.p99_neighbors, balanced.p99_neighbors, 1);
  row("max neighbors", skewed.max_neighbors, balanced.max_neighbors, 0);
  std::cout << table.to_string();
  std::cout << "\nShape check (paper): under geographic layout a small\n"
               "fraction of nodes owns most of the space and some nodes\n"
               "carry many neighbors; uniform layout stays balanced.\n";
  return 0;
}
