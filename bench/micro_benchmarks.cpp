// Micro-benchmarks (google-benchmark) for the hot primitives: Hilbert
// curve transforms, Dijkstra / RTT oracle, CAN & eCAN routing, soft-state
// map operations.
//
// After the google-benchmark suite, two machine-readable suites track the
// perf trajectory across PRs:
//  * a scaling suite timing the parallel oracle primitives (warm-up,
//    latency lookup, probe_nearest) at 1/2/4/8 threads, written to
//    BENCH_parallel.json (path: BENCH_JSON; skip with BENCH_PARALLEL=0);
//  * an RTT engine comparison (hierarchical vs cached-row dijkstra: warm
//    cost, steady-state query cost, table footprint) on tsk-large, written
//    to BENCH_rtt_engine.json (path: BENCH_RTT_ENGINE_JSON; skip with
//    BENCH_RTT_ENGINE=0).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/chord_selectors.hpp"
#include "core/pastry_selectors.hpp"
#include "core/selectors.hpp"
#include "geom/hilbert.hpp"
#include "net/hierarchical_rtt_engine.hpp"
#include "net/latency.hpp"
#include "net/shortest_path.hpp"
#include "net/transit_stub.hpp"
#include "softstate/map_service.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace topo {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64(1000003));
}
BENCHMARK(BM_RngNextU64);

void BM_HilbertIndex(benchmark::State& state) {
  const auto dims = static_cast<int>(state.range(0));
  const auto bits = static_cast<int>(state.range(1));
  const geom::HilbertCurve curve(dims, bits);
  util::Rng rng(2);
  std::vector<std::uint32_t> coords(static_cast<std::size_t>(dims));
  for (auto& c : coords)
    c = static_cast<std::uint32_t>(rng.next_u64(1ULL << bits));
  for (auto _ : state) benchmark::DoNotOptimize(curve.index(coords));
}
BENCHMARK(BM_HilbertIndex)->Args({2, 8})->Args({15, 6})->Args({30, 8});

void BM_HilbertCoords(benchmark::State& state) {
  const auto dims = static_cast<int>(state.range(0));
  const auto bits = static_cast<int>(state.range(1));
  const geom::HilbertCurve curve(dims, bits);
  const util::BigUint index(0x123456789ABCDEFULL);
  for (auto _ : state) benchmark::DoNotOptimize(curve.coords(index));
}
BENCHMARK(BM_HilbertCoords)->Args({2, 8})->Args({15, 6})->Args({30, 8});

struct NetFixture {
  net::Topology topology;
  NetFixture() {
    util::Rng rng(3);
    topology = net::generate_transit_stub(net::tsk_large(), rng);
    net::assign_latencies(topology, net::LatencyModel::kGtItmRandom, rng);
  }
  static NetFixture& instance() {
    static NetFixture fixture;
    return fixture;
  }
};

void BM_Dijkstra10kHosts(benchmark::State& state) {
  const auto& topology = NetFixture::instance().topology;
  util::Rng rng(4);
  for (auto _ : state) {
    const auto source =
        static_cast<net::HostId>(rng.next_u64(topology.host_count()));
    benchmark::DoNotOptimize(net::dijkstra(topology, source));
  }
}
BENCHMARK(BM_Dijkstra10kHosts)->Unit(benchmark::kMillisecond);

void BM_DijkstraScratch10kHosts(benchmark::State& state) {
  const auto& topology = NetFixture::instance().topology;
  util::Rng rng(4);
  net::DijkstraScratch scratch;  // recycled buffers: no per-run allocation
  for (auto _ : state) {
    const auto source =
        static_cast<net::HostId>(rng.next_u64(topology.host_count()));
    benchmark::DoNotOptimize(net::dijkstra(topology, source, scratch));
  }
}
BENCHMARK(BM_DijkstraScratch10kHosts)->Unit(benchmark::kMillisecond);

void BM_OracleCachedLatency(benchmark::State& state) {
  const auto& topology = NetFixture::instance().topology;
  net::RttOracle oracle(topology);
  oracle.latency_ms(0, 1);  // warm
  util::Rng rng(5);
  for (auto _ : state) {
    const auto to =
        static_cast<net::HostId>(rng.next_u64(topology.host_count()));
    benchmark::DoNotOptimize(oracle.latency_ms(0, to));
  }
}
BENCHMARK(BM_OracleCachedLatency);

struct OverlayFixture {
  overlay::EcanNetwork ecan{2};
  OverlayFixture() {
    util::Rng rng(6);
    for (int i = 0; i < 4096; ++i)
      ecan.join_random(static_cast<net::HostId>(i), rng);
    core::RandomSelector selector{util::Rng(7)};
    ecan.build_all_tables(selector);
  }
  static OverlayFixture& instance() {
    static OverlayFixture fixture;
    return fixture;
  }
};

void BM_CanJoinLeave(benchmark::State& state) {
  overlay::CanNetwork can(2);
  util::Rng rng(8);
  for (int i = 0; i < 1024; ++i)
    can.join_random(static_cast<net::HostId>(i), rng);
  net::HostId next = 2048;
  for (auto _ : state) {
    const auto id = can.join_random(next++, rng);
    can.leave(id);
  }
}
BENCHMARK(BM_CanJoinLeave);

void BM_CanGreedyRoute4k(benchmark::State& state) {
  auto& ecan = OverlayFixture::instance().ecan;
  const auto live = ecan.live_nodes();
  util::Rng rng(9);
  for (auto _ : state) {
    const auto from = live[rng.next_u64(live.size())];
    benchmark::DoNotOptimize(
        ecan.route(from, geom::Point::random(2, rng)));
  }
}
BENCHMARK(BM_CanGreedyRoute4k);

void BM_EcanExpresswayRoute4k(benchmark::State& state) {
  auto& ecan = OverlayFixture::instance().ecan;
  const auto live = ecan.live_nodes();
  util::Rng rng(10);
  for (auto _ : state) {
    const auto from = live[rng.next_u64(live.size())];
    benchmark::DoNotOptimize(
        ecan.route_ecan(from, geom::Point::random(2, rng)));
  }
}
BENCHMARK(BM_EcanExpresswayRoute4k);

struct MapFixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;
  std::unique_ptr<overlay::EcanNetwork> ecan;
  std::unique_ptr<softstate::MapService> maps;
  std::vector<overlay::NodeId> nodes;
  std::vector<proximity::LandmarkVector> vectors;

  MapFixture() {
    util::Rng rng(11);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, 15, rng, {}));
    ecan = std::make_unique<overlay::EcanNetwork>(2);
    for (int i = 0; i < 1024; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      nodes.push_back(ecan->join_random(host, rng));
    }
    maps = std::make_unique<softstate::MapService>(*ecan, *landmarks,
                                                   softstate::MapConfig{});
    for (const auto id : nodes) {
      vectors.push_back(landmarks->measure(*oracle, ecan->node(id).host));
      maps->publish(id, vectors.back(), 0.0);
    }
  }
  static MapFixture& instance() {
    static MapFixture fixture;
    return fixture;
  }
};

void BM_MapPublish(benchmark::State& state) {
  auto& f = MapFixture::instance();
  util::Rng rng(12);
  for (auto _ : state) {
    const std::size_t i = rng.next_u64(f.nodes.size());
    benchmark::DoNotOptimize(
        f.maps->publish(f.nodes[i], f.vectors[i], 0.0));
  }
}
BENCHMARK(BM_MapPublish);

void BM_MapLookup(benchmark::State& state) {
  auto& f = MapFixture::instance();
  util::Rng rng(13);
  for (auto _ : state) {
    const std::size_t i = rng.next_u64(f.nodes.size());
    const auto id = f.nodes[i];
    const int level = std::max(1, f.ecan->node_level(id));
    if (f.ecan->node_level(id) < 1) continue;
    const auto cell = f.ecan->cell_of_node(id, level);
    benchmark::DoNotOptimize(
        f.maps->lookup(id, f.vectors[i], level, cell, 0.0));
  }
}
BENCHMARK(BM_MapLookup);

struct RingFixture {
  overlay::ChordNetwork chord{30};
  overlay::PastryNetwork pastry{32, 4};
  RingFixture() {
    util::Rng rng(14);
    core::ClassicFingerSelector fingers;
    core::FirstSlotSelector slots;
    for (int i = 0; i < 4096; ++i) {
      chord.join_random(static_cast<net::HostId>(i), rng);
      pastry.join_random(static_cast<net::HostId>(i), rng);
    }
    chord.build_all_fingers(fingers);
    pastry.build_all_tables(slots);
  }
  static RingFixture& instance() {
    static RingFixture fixture;
    return fixture;
  }
};

void BM_ChordRoute4k(benchmark::State& state) {
  auto& chord = RingFixture::instance().chord;
  const auto live = chord.live_nodes();
  util::Rng rng(15);
  for (auto _ : state) {
    const auto from = live[rng.next_u64(live.size())];
    benchmark::DoNotOptimize(
        chord.route(from, rng.next_u64(chord.ring_size())));
  }
}
BENCHMARK(BM_ChordRoute4k);

void BM_PastryRoute4k(benchmark::State& state) {
  auto& pastry = RingFixture::instance().pastry;
  const auto live = pastry.live_nodes();
  util::Rng rng(16);
  for (auto _ : state) {
    const auto from = live[rng.next_u64(live.size())];
    benchmark::DoNotOptimize(
        pastry.route(from, rng.next_u64(pastry.ring_size())));
  }
}
BENCHMARK(BM_PastryRoute4k);

// ---------------------------------------------------------------------------
// Thread-scaling suite: the parallel oracle primitives at 1/2/4/8 threads.
// Uses its own pools (not the global one) so each row measures exactly the
// thread count it reports, independent of the THREADS env var.

struct ParallelSample {
  unsigned threads = 0;
  double warm_ms = 0.0;             // wall-clock to warm kWarmSources rows
  double lookup_ns_per_op = 0.0;    // cached latency_ms, aggregate rate
  double probe_nearest_us_per_op = 0.0;
};

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double, std::milli> d =
      std::chrono::steady_clock::now() - start;
  return d.count();
}

ParallelSample run_parallel_sample(unsigned threads) {
  const auto& topology = NetFixture::instance().topology;
  constexpr std::size_t kWarmSources = 48;
  constexpr std::size_t kLookups = 200000;
  constexpr std::size_t kProbeCalls = 2000;
  constexpr std::size_t kCandidates = 8;

  util::ThreadPool pool(threads);
  ParallelSample sample;
  sample.threads = threads;

  // Pinned to the dijkstra engine: this suite measures the row-cache
  // machinery's thread scaling, which the hierarchical engine (the default
  // on this topology) bypasses entirely.
  net::RttOracle oracle(topology, net::RttEngineKind::kDijkstra);
  std::vector<net::HostId> sources(kWarmSources);
  util::Rng rng(17);
  for (auto& s : sources)
    s = static_cast<net::HostId>(rng.next_u64(topology.host_count()));

  auto start = std::chrono::steady_clock::now();
  oracle.warm(sources, pool);
  sample.warm_ms = elapsed_ms(start);

  // Cached lookups: every query hits a warmed row via either endpoint.
  start = std::chrono::steady_clock::now();
  pool.parallel_for(0, kLookups, 4096, [&](std::size_t i) {
    // Stateless per-index mix: cheaper than an Rng in a ns-scale loop.
    std::uint64_t s = 18 ^ i;
    const auto from = sources[i % sources.size()];
    const auto to = static_cast<net::HostId>(util::splitmix64(s) %
                                             topology.host_count());
    benchmark::DoNotOptimize(oracle.latency_ms(from, to));
  });
  sample.lookup_ns_per_op =
      elapsed_ms(start) * 1e6 / static_cast<double>(kLookups);

  // probe_nearest over small candidate sets drawn from the warmed sources.
  start = std::chrono::steady_clock::now();
  pool.parallel_for(0, kProbeCalls, 16, [&](std::size_t i) {
    auto probe_rng = util::rng_for_index(19, i);
    std::vector<net::HostId> candidates(kCandidates);
    for (auto& c : candidates)
      c = sources[probe_rng.next_u64(sources.size())];
    const auto from = static_cast<net::HostId>(
        probe_rng.next_u64(topology.host_count()));
    benchmark::DoNotOptimize(oracle.probe_nearest(from, candidates));
  });
  sample.probe_nearest_us_per_op =
      elapsed_ms(start) * 1e3 / static_cast<double>(kProbeCalls);
  return sample;
}

void run_parallel_suite() {
  const std::string path =
      util::env_string("BENCH_JSON", "BENCH_parallel.json");
  std::vector<ParallelSample> samples;
  std::printf("\n-- parallel oracle scaling (configured threads: %u) --\n",
              util::ThreadPool::configured_threads());
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    samples.push_back(run_parallel_sample(threads));
    const auto& s = samples.back();
    std::printf(
        "threads=%u  warm=%.1f ms  lookup=%.1f ns/op  "
        "probe_nearest=%.2f us/op\n",
        s.threads, s.warm_ms, s.lookup_ns_per_op, s.probe_nearest_us_per_op);
  }

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return;
  }
  const auto& topology = NetFixture::instance().topology;
  out << "{\n"
      << "  \"bench\": \"micro_benchmarks.parallel_oracle\",\n"
      << "  \"host_count\": " << topology.host_count() << ",\n"
      << "  \"warm_sources\": 48,\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    out << "    {\"threads\": " << s.threads
        << ", \"warm_ms\": " << s.warm_ms
        << ", \"latency_lookup_ns_per_op\": " << s.lookup_ns_per_op
        << ", \"probe_nearest_us_per_op\": " << s.probe_nearest_us_per_op
        << "}" << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

// ---------------------------------------------------------------------------
// RTT engine comparison: warm + query cost of the hierarchical transit-stub
// engine vs the cached-row Dijkstra engine on the tsk-large topology.
// Emits BENCH_rtt_engine.json (path: BENCH_RTT_ENGINE_JSON; skip with
// BENCH_RTT_ENGINE=0). FULL=1 scales the warmed-source set and query count.

struct RttEngineSample {
  std::string engine;
  double warm_ms = 0.0;          // dijkstra: row warming; hierarchical: build
  double query_ns_per_op = 0.0;  // steady-state query over the same workload
  std::size_t footprint_bytes = 0;
};

RttEngineSample measure_engine(net::RttOracle& oracle,
                               std::span<const net::HostId> sources,
                               std::size_t queries) {
  const auto& topology = oracle.topology();
  RttEngineSample sample;
  sample.engine = oracle.engine_name();

  // Warm phase. For the dijkstra engine this runs |sources| full-graph
  // Dijkstras across the pool; for the hierarchical engine everything was
  // precomputed at construction, so charge that build time instead.
  auto start = std::chrono::steady_clock::now();
  oracle.warm(sources, util::ThreadPool::global());
  sample.warm_ms = elapsed_ms(start);

  // Steady-state queries: identical deterministic workload for both
  // engines, sources drawn from the warmed set so the dijkstra engine is
  // measured on its cache-hit fast path.
  start = std::chrono::steady_clock::now();
  util::ThreadPool::global().parallel_for(0, queries, 4096, [&](std::size_t i) {
    std::uint64_t s = 20 ^ i;
    const auto from = sources[i % sources.size()];
    const auto to = static_cast<net::HostId>(util::splitmix64(s) %
                                             topology.host_count());
    benchmark::DoNotOptimize(oracle.latency_ms(from, to));
  });
  sample.query_ns_per_op =
      elapsed_ms(start) * 1e6 / static_cast<double>(queries);
  return sample;
}

void run_rtt_engine_suite() {
  const auto& topology = NetFixture::instance().topology;
  const bool full = util::env_bool("FULL");
  const std::size_t warm_count = full ? 2048 : 512;
  const std::size_t queries = full ? 4'000'000 : 1'000'000;
  const std::string path = util::env_string("BENCH_RTT_ENGINE_JSON",
                                            "BENCH_rtt_engine.json");

  std::vector<net::HostId> sources(warm_count);
  util::Rng rng(21);
  for (auto& s : sources)
    s = static_cast<net::HostId>(rng.next_u64(topology.host_count()));

  std::printf("\n-- RTT engine comparison (%s, %zu hosts, %zu warm sources, "
              "%zu queries) --\n",
              net::tsk_large().name.c_str(), topology.host_count(),
              warm_count, queries);

  net::RttOracle dijkstra(topology, net::RttEngineKind::kDijkstra);
  const RttEngineSample dj = [&] {
    auto s = measure_engine(dijkstra, sources, queries);
    s.footprint_bytes =
        dijkstra.cached_rows() * topology.host_count() * sizeof(double);
    return s;
  }();

  // The hierarchical engine precomputes in its constructor; time it as the
  // engine's warm cost (its warm() proper is a no-op).
  const auto hier_start = std::chrono::steady_clock::now();
  net::HierarchicalRttEngine hier_engine(topology);
  const double hier_build_ms = elapsed_ms(hier_start);
  net::RttOracle hierarchical(topology, net::RttEngineKind::kHierarchical);
  RttEngineSample hi = measure_engine(hierarchical, sources, queries);
  hi.warm_ms = hier_build_ms;
  hi.footprint_bytes = hier_engine.footprint_bytes();

  // Cross-check on a slice of the workload: the two engines must agree bit
  // for bit (the exactness property the test suite proves exhaustively).
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < 10'000; ++i) {
    std::uint64_t s = 20 ^ i;
    const auto from = sources[i % sources.size()];
    const auto to = static_cast<net::HostId>(util::splitmix64(s) %
                                             topology.host_count());
    if (dijkstra.latency_ms(from, to) != hierarchical.latency_ms(from, to))
      ++mismatches;
  }

  const double warm_speedup = dj.warm_ms / hi.warm_ms;
  for (const RttEngineSample& s : {dj, hi})
    std::printf("engine=%-12s warm=%9.1f ms  query=%6.1f ns/op  "
                "footprint=%.1f MB\n",
                s.engine.c_str(), s.warm_ms, s.query_ns_per_op,
                static_cast<double>(s.footprint_bytes) / 1e6);
  std::printf("warm speedup (dijkstra/hierarchical): %.1fx  "
              "core=%zu stubs=%zu  mismatches=%zu\n",
              warm_speedup, hier_engine.core_size(), hier_engine.stub_count(),
              mismatches);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"bench\": \"micro_benchmarks.rtt_engine\",\n"
      << "  \"topology\": \"" << net::tsk_large().name << "\",\n"
      << "  \"host_count\": " << topology.host_count() << ",\n"
      << "  \"warm_sources\": " << warm_count << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"threads\": " << util::ThreadPool::global().size() << ",\n"
      << "  \"core_size\": " << hier_engine.core_size() << ",\n"
      << "  \"stub_count\": " << hier_engine.stub_count() << ",\n"
      << "  \"mismatches\": " << mismatches << ",\n"
      << "  \"warm_speedup\": " << warm_speedup << ",\n"
      << "  \"engines\": [\n";
  const RttEngineSample* samples[] = {&dj, &hi};
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& s = *samples[i];
    out << "    {\"engine\": \"" << s.engine
        << "\", \"warm_ms\": " << s.warm_ms
        << ", \"query_ns_per_op\": " << s.query_ns_per_op
        << ", \"footprint_bytes\": " << s.footprint_bytes << "}"
        << (i == 0 ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace topo

int main(int argc, char** argv) {
  const auto bench_timer = topo::bench::print_preamble(
      "Micro-benchmarks: hot primitives + parallel oracle scaling");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (topo::util::env_bool("BENCH_PARALLEL", true)) {
    topo::run_parallel_suite();
  }
  if (topo::util::env_bool("BENCH_RTT_ENGINE", true)) {
    topo::run_rtt_engine_suite();
  }
  return 0;
}
