// Micro-benchmarks (google-benchmark) for the hot primitives: Hilbert
// curve transforms, Dijkstra / RTT oracle, CAN & eCAN routing, soft-state
// map operations.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/chord_selectors.hpp"
#include "core/pastry_selectors.hpp"
#include "core/selectors.hpp"
#include "geom/hilbert.hpp"
#include "net/latency.hpp"
#include "net/shortest_path.hpp"
#include "net/transit_stub.hpp"
#include "softstate/map_service.hpp"
#include "util/rng.hpp"

namespace topo {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64(1000003));
}
BENCHMARK(BM_RngNextU64);

void BM_HilbertIndex(benchmark::State& state) {
  const auto dims = static_cast<int>(state.range(0));
  const auto bits = static_cast<int>(state.range(1));
  const geom::HilbertCurve curve(dims, bits);
  util::Rng rng(2);
  std::vector<std::uint32_t> coords(static_cast<std::size_t>(dims));
  for (auto& c : coords)
    c = static_cast<std::uint32_t>(rng.next_u64(1ULL << bits));
  for (auto _ : state) benchmark::DoNotOptimize(curve.index(coords));
}
BENCHMARK(BM_HilbertIndex)->Args({2, 8})->Args({15, 6})->Args({30, 8});

void BM_HilbertCoords(benchmark::State& state) {
  const auto dims = static_cast<int>(state.range(0));
  const auto bits = static_cast<int>(state.range(1));
  const geom::HilbertCurve curve(dims, bits);
  const util::BigUint index(0x123456789ABCDEFULL);
  for (auto _ : state) benchmark::DoNotOptimize(curve.coords(index));
}
BENCHMARK(BM_HilbertCoords)->Args({2, 8})->Args({15, 6})->Args({30, 8});

struct NetFixture {
  net::Topology topology;
  NetFixture() {
    util::Rng rng(3);
    topology = net::generate_transit_stub(net::tsk_large(), rng);
    net::assign_latencies(topology, net::LatencyModel::kGtItmRandom, rng);
  }
  static NetFixture& instance() {
    static NetFixture fixture;
    return fixture;
  }
};

void BM_Dijkstra10kHosts(benchmark::State& state) {
  const auto& topology = NetFixture::instance().topology;
  util::Rng rng(4);
  for (auto _ : state) {
    const auto source =
        static_cast<net::HostId>(rng.next_u64(topology.host_count()));
    benchmark::DoNotOptimize(net::dijkstra(topology, source));
  }
}
BENCHMARK(BM_Dijkstra10kHosts)->Unit(benchmark::kMillisecond);

void BM_OracleCachedLatency(benchmark::State& state) {
  const auto& topology = NetFixture::instance().topology;
  net::RttOracle oracle(topology);
  oracle.latency_ms(0, 1);  // warm
  util::Rng rng(5);
  for (auto _ : state) {
    const auto to =
        static_cast<net::HostId>(rng.next_u64(topology.host_count()));
    benchmark::DoNotOptimize(oracle.latency_ms(0, to));
  }
}
BENCHMARK(BM_OracleCachedLatency);

struct OverlayFixture {
  overlay::EcanNetwork ecan{2};
  OverlayFixture() {
    util::Rng rng(6);
    for (int i = 0; i < 4096; ++i)
      ecan.join_random(static_cast<net::HostId>(i), rng);
    core::RandomSelector selector{util::Rng(7)};
    ecan.build_all_tables(selector);
  }
  static OverlayFixture& instance() {
    static OverlayFixture fixture;
    return fixture;
  }
};

void BM_CanJoinLeave(benchmark::State& state) {
  overlay::CanNetwork can(2);
  util::Rng rng(8);
  for (int i = 0; i < 1024; ++i)
    can.join_random(static_cast<net::HostId>(i), rng);
  net::HostId next = 2048;
  for (auto _ : state) {
    const auto id = can.join_random(next++, rng);
    can.leave(id);
  }
}
BENCHMARK(BM_CanJoinLeave);

void BM_CanGreedyRoute4k(benchmark::State& state) {
  auto& ecan = OverlayFixture::instance().ecan;
  const auto live = ecan.live_nodes();
  util::Rng rng(9);
  for (auto _ : state) {
    const auto from = live[rng.next_u64(live.size())];
    benchmark::DoNotOptimize(
        ecan.route(from, geom::Point::random(2, rng)));
  }
}
BENCHMARK(BM_CanGreedyRoute4k);

void BM_EcanExpresswayRoute4k(benchmark::State& state) {
  auto& ecan = OverlayFixture::instance().ecan;
  const auto live = ecan.live_nodes();
  util::Rng rng(10);
  for (auto _ : state) {
    const auto from = live[rng.next_u64(live.size())];
    benchmark::DoNotOptimize(
        ecan.route_ecan(from, geom::Point::random(2, rng)));
  }
}
BENCHMARK(BM_EcanExpresswayRoute4k);

struct MapFixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;
  std::unique_ptr<overlay::EcanNetwork> ecan;
  std::unique_ptr<softstate::MapService> maps;
  std::vector<overlay::NodeId> nodes;
  std::vector<proximity::LandmarkVector> vectors;

  MapFixture() {
    util::Rng rng(11);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, 15, rng, {}));
    ecan = std::make_unique<overlay::EcanNetwork>(2);
    for (int i = 0; i < 1024; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      nodes.push_back(ecan->join_random(host, rng));
    }
    maps = std::make_unique<softstate::MapService>(*ecan, *landmarks,
                                                   softstate::MapConfig{});
    for (const auto id : nodes) {
      vectors.push_back(landmarks->measure(*oracle, ecan->node(id).host));
      maps->publish(id, vectors.back(), 0.0);
    }
  }
  static MapFixture& instance() {
    static MapFixture fixture;
    return fixture;
  }
};

void BM_MapPublish(benchmark::State& state) {
  auto& f = MapFixture::instance();
  util::Rng rng(12);
  for (auto _ : state) {
    const std::size_t i = rng.next_u64(f.nodes.size());
    benchmark::DoNotOptimize(
        f.maps->publish(f.nodes[i], f.vectors[i], 0.0));
  }
}
BENCHMARK(BM_MapPublish);

void BM_MapLookup(benchmark::State& state) {
  auto& f = MapFixture::instance();
  util::Rng rng(13);
  for (auto _ : state) {
    const std::size_t i = rng.next_u64(f.nodes.size());
    const auto id = f.nodes[i];
    const int level = std::max(1, f.ecan->node_level(id));
    if (f.ecan->node_level(id) < 1) continue;
    const auto cell = f.ecan->cell_of_node(id, level);
    benchmark::DoNotOptimize(
        f.maps->lookup(id, f.vectors[i], level, cell, 0.0));
  }
}
BENCHMARK(BM_MapLookup);

struct RingFixture {
  overlay::ChordNetwork chord{30};
  overlay::PastryNetwork pastry{32, 4};
  RingFixture() {
    util::Rng rng(14);
    core::ClassicFingerSelector fingers;
    core::FirstSlotSelector slots;
    for (int i = 0; i < 4096; ++i) {
      chord.join_random(static_cast<net::HostId>(i), rng);
      pastry.join_random(static_cast<net::HostId>(i), rng);
    }
    chord.build_all_fingers(fingers);
    pastry.build_all_tables(slots);
  }
  static RingFixture& instance() {
    static RingFixture fixture;
    return fixture;
  }
};

void BM_ChordRoute4k(benchmark::State& state) {
  auto& chord = RingFixture::instance().chord;
  const auto live = chord.live_nodes();
  util::Rng rng(15);
  for (auto _ : state) {
    const auto from = live[rng.next_u64(live.size())];
    benchmark::DoNotOptimize(
        chord.route(from, rng.next_u64(chord.ring_size())));
  }
}
BENCHMARK(BM_ChordRoute4k);

void BM_PastryRoute4k(benchmark::State& state) {
  auto& pastry = RingFixture::instance().pastry;
  const auto live = pastry.live_nodes();
  util::Rng rng(16);
  for (auto _ : state) {
    const auto from = live[rng.next_u64(live.size())];
    benchmark::DoNotOptimize(
        pastry.route(from, rng.next_u64(pastry.ring_size())));
  }
}
BENCHMARK(BM_PastryRoute4k);

}  // namespace
}  // namespace topo

BENCHMARK_MAIN();
