// Figures 10-13 — routing stretch vs number of RTT measurements, for two
// landmark counts plus the optimal (infinite-probes) line, over the four
// (topology x latency-model) combinations:
//
//   Fig 10: tsk-large, GT-ITM latencies     Fig 11: tsk-large, manual
//   Fig 12: tsk-small, GT-ITM latencies     Fig 13: tsk-small, manual
//
// Paper shape: stretch falls as probes increase and approaches the optimal
// line; more landmarks help most with manually-set (regular) latencies and
// large backbones; tsk-small sits closer to its optimal because choosing a
// suboptimal route is cheaper in a small network.
#include "common.hpp"

using namespace topo;

namespace {

void run_figure(const std::string& label,
                const net::TransitStubConfig& preset,
                net::LatencyModel model) {
  const std::uint64_t seed = bench::bench_seed();
  const auto overlay_nodes = static_cast<std::size_t>(
      util::env_int("NODES", bench::full_scale() ? 4096 : 1024));
  const std::vector<int> landmark_counts = {10, 20};
  const std::vector<std::size_t> budgets = {1, 2, 5, 10, 15, 20, 30};

  util::Table table({"#RTTs", "landmarks=10", "landmarks=20", "optimal"});
  std::vector<std::vector<double>> stretch(
      budgets.size(), std::vector<double>(landmark_counts.size(), 0.0));
  double optimal = 0.0;

  // One shared (thread-safe) world per landmark count; each trial builds
  // its own overlay instance from a fixed seed, so the query workload is
  // identical for every budget and differences along a column are purely
  // due to selection quality — and the table is the same at any THREADS.
  std::vector<std::unique_ptr<bench::World>> worlds;
  for (const int landmarks : landmark_counts)
    worlds.push_back(
        std::make_unique<bench::World>(preset, model, landmarks, seed));

  struct TrialSpec {
    std::size_t li;
    std::size_t bi;                // == budgets.size() -> optimal line
    bench::SelectorKind kind;
    std::size_t budget;
    std::uint64_t trial_seed;
  };
  std::vector<TrialSpec> specs;
  for (std::size_t li = 0; li < landmark_counts.size(); ++li)
    for (std::size_t bi = 0; bi < budgets.size(); ++bi)
      specs.push_back({li, bi, bench::SelectorKind::kSoftState, budgets[bi],
                       seed + 11});
  specs.push_back(
      {0, budgets.size(), bench::SelectorKind::kOracle, 1, seed + 999});

  const auto means =
      bench::run_trials_parallel(specs.size(), [&](std::size_t trial) {
        const TrialSpec& spec = specs[trial];
        bench::World& world = *worlds[spec.li];
        bench::OverlayInstance instance =
            bench::build_overlay(world, overlay_nodes, seed + 7);
        return bench::run_stretch(world, instance, spec.kind, spec.budget,
                                  spec.trial_seed)
            .stretch.mean();
      });

  for (std::size_t trial = 0; trial < specs.size(); ++trial) {
    const TrialSpec& spec = specs[trial];
    if (spec.bi == budgets.size())
      optimal = means[trial];
    else
      stretch[spec.bi][spec.li] = means[trial];
  }

  for (std::size_t bi = 0; bi < budgets.size(); ++bi)
    table.add_row({util::Table::integer(static_cast<long long>(budgets[bi])),
                   util::Table::num(stretch[bi][0], 3),
                   util::Table::num(stretch[bi][1], 3),
                   util::Table::num(optimal, 3)});

  util::print_banner(std::cout, label);
  std::printf("overlay=%zu nodes, queries=%zu\n", overlay_nodes,
              2 * overlay_nodes);
  std::cout << table.to_string();
}

}  // namespace

int main() {
  const auto bench_timer = bench::print_preamble(
      "Figures 10-13: routing stretch vs #RTT measurements");
  run_figure("Figure 10: tsk-large, GT-ITM latencies", net::tsk_large(),
             net::LatencyModel::kGtItmRandom);
  run_figure("Figure 11: tsk-large, manual latencies", net::tsk_large(),
             net::LatencyModel::kManual);
  run_figure("Figure 12: tsk-small, GT-ITM latencies", net::tsk_small(),
             net::LatencyModel::kGtItmRandom);
  run_figure("Figure 13: tsk-small, manual latencies", net::tsk_small(),
             net::LatencyModel::kManual);
  std::cout << "\nShape check (paper): stretch decreases with #RTTs toward\n"
               "the optimal line; landmarks matter more on manual latencies\n"
               "and the large backbone; tsk-small is closer to optimal.\n";
  return 0;
}
