// Section 1 taxonomy — Castro et al. divide proximity exploitation into
// three techniques; the paper argues proximity-neighbor selection (PNS) is
// superior. We compare all three on identical workloads:
//
//   1. geographic layout   — node positions constrained by landmark
//                            ordering (Topologically-Aware CAN); random
//                            representatives, plain expressway routing;
//   2. proximity routing   — uniform layout, random representatives, each
//                            hop forwards to the lowest-RTT candidate that
//                            makes progress;
//   3. proximity-neighbor  — uniform layout, representatives selected
//      selection (PNS)       through the global soft-state (the paper);
//
// plus the no-proximity baseline and the PNS+proximity-routing combination.
#include "common.hpp"

#include "overlay/tacan.hpp"

using namespace topo;

int main() {
  const auto bench_timer = bench::print_preamble(
      "Section 1 taxonomy: layout vs proximity routing vs PNS");

  const std::uint64_t seed = bench::bench_seed();
  const auto n = static_cast<std::size_t>(
      util::env_int("NODES", bench::full_scale() ? 4096 : 1024));
  const std::size_t queries = 2 * n;

  util::Table table({"technique", "stretch", "logical hops",
                     "zone gini (balance)"});

  bench::World world(net::tsk_large(), net::LatencyModel::kGtItmRandom, 15,
                     seed);

  // --- Shared measurement helper over an eCAN --------------------------
  enum class RoutingMode { kPlain, kProximity };
  auto measure = [&](overlay::EcanNetwork& ecan, RoutingMode mode) {
    util::Rng rng(seed + 5);
    util::Samples stretch;
    util::Samples hops;
    const auto live = ecan.live_nodes();
    for (std::size_t q = 0; q < queries; ++q) {
      const auto from = live[rng.next_u64(live.size())];
      const geom::Point key = geom::Point::random(2, rng);
      const overlay::RouteResult route =
          mode == RoutingMode::kProximity
              ? ecan.route_ecan_proximity(from, key, *world.oracle)
              : ecan.route_ecan(from, key);
      if (!route.success || route.path.size() < 2) continue;
      const double direct = world.oracle->latency_ms(
          ecan.node(from).host, ecan.node(route.path.back()).host);
      if (direct <= 0.0) continue;
      stretch.add(
          sim::path_latency_ms(ecan, *world.oracle, route.path) / direct);
      hops.add(static_cast<double>(route.hops()));
    }
    return std::make_pair(stretch.mean(), hops.mean());
  };
  auto add_row = [&](const char* name, double stretch, double hops,
                     double gini) {
    table.add_row({name, util::Table::num(stretch, 3),
                   util::Table::num(hops, 2), util::Table::num(gini, 3)});
  };

  // Shared host sample so every technique sees the same node population.
  util::Rng host_rng(seed + 1);
  std::vector<net::HostId> hosts;
  for (std::size_t i = 0; i < n; ++i)
    hosts.push_back(static_cast<net::HostId>(
        host_rng.next_u64(world.topology.host_count())));

  // --- 0. no proximity at all ------------------------------------------
  {
    overlay::EcanNetwork ecan(2);
    util::Rng rng(seed + 2);
    for (const auto host : hosts) ecan.join_random(host, rng);
    core::RandomSelector selector{util::Rng(seed + 3)};
    ecan.build_all_tables(selector);
    const auto [stretch, hops] = measure(ecan, RoutingMode::kPlain);
    add_row("none (random everything)", stretch, hops,
            overlay::measure_imbalance(ecan).volume_gini);
  }

  // --- 1. geographic layout (Topologically-Aware CAN) ------------------
  {
    overlay::EcanNetwork ecan(2);
    util::Rng rng(seed + 2);
    const std::size_t bins = proximity::factorial(4);
    for (const auto host : hosts) {
      // Bin by the ordering of the 4 nearest-ranked landmarks.
      const auto vector = world.landmarks->measure(*world.oracle, host);
      std::vector<double> head(vector.begin(), vector.begin() + 4);
      proximity::LandmarkSet head_set(
          {world.landmarks->hosts().begin(),
           world.landmarks->hosts().begin() + 4},
          world.landmarks->config());
      const auto order = head_set.ordering(head);
      overlay::join_binned(ecan, host, proximity::ordering_rank(order), bins,
                           rng);
    }
    core::RandomSelector selector{util::Rng(seed + 3)};
    ecan.build_all_tables(selector);
    const auto [stretch, hops] = measure(ecan, RoutingMode::kPlain);
    add_row("geographic layout (TACAN)", stretch, hops,
            overlay::measure_imbalance(ecan).volume_gini);
  }

  // --- 2./3./combo over a uniform-layout soft-state overlay -------------
  {
    overlay::EcanNetwork ecan(2);
    util::Rng rng(seed + 2);
    std::vector<overlay::NodeId> nodes;
    for (const auto host : hosts) nodes.push_back(ecan.join_random(host, rng));
    softstate::MapService maps(ecan, *world.landmarks, {});
    core::VectorStore vectors;
    for (const auto id : nodes) {
      vectors[id] =
          world.landmarks->measure(*world.oracle, ecan.node(id).host);
      maps.publish(id, vectors[id], 0.0);
    }

    core::RandomSelector random_selector{util::Rng(seed + 3)};
    ecan.build_all_tables(random_selector);
    {
      const auto [stretch, hops] = measure(ecan, RoutingMode::kProximity);
      add_row("proximity routing", stretch, hops,
              overlay::measure_imbalance(ecan).volume_gini);
    }

    core::SoftStateSelector soft_selector(ecan, maps, *world.oracle, vectors,
                                          10, util::Rng(seed + 4));
    ecan.build_all_tables(soft_selector);
    {
      const auto [stretch, hops] = measure(ecan, RoutingMode::kPlain);
      add_row("PNS via global soft-state", stretch, hops,
              overlay::measure_imbalance(ecan).volume_gini);
    }
    {
      const auto [stretch, hops] = measure(ecan, RoutingMode::kProximity);
      add_row("PNS + proximity routing", stretch, hops,
              overlay::measure_imbalance(ecan).volume_gini);
    }
  }

  std::cout << table.to_string();
  std::cout << "\nShape check (paper): PNS dominates — geographic layout\n"
               "skews the space (gini) and proximity routing alone is\n"
               "limited by its candidate set (cheap hops, but more of\n"
               "them). Once PNS has made every table entry close, greedy\n"
               "latency-chasing adds hops without saving latency.\n";
  return 0;
}
