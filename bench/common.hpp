// Shared experiment drivers for the figure-reproduction benches.
//
// Every bench runs with no arguments at a scale that finishes in seconds to
// a couple of minutes; environment variables scale it to the paper's full
// setup:
//   FULL=1        paper-scale sweeps (10k-host topologies are always used;
//                 FULL raises overlay sizes and query counts)
//   SEED=n        alternate seed (printed by every bench)
//   THREADS=n     worker threads for the parallel sweeps (default: hardware
//                 concurrency; same SEED prints the same numbers at any n)
//   ORACLE_ROWS=n cap cached RTT-oracle rows (bounded-memory mode; 0 = off;
//                 only meaningful with the dijkstra engine)
//   RTT_ENGINE=s  latency backend: auto (default) | hierarchical | dijkstra.
//                 auto uses the hierarchical transit-stub engine on
//                 generated topologies; answers are bit-identical across
//                 engines, so every bench prints the same numbers either way
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/selectors.hpp"
#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "proximity/nn_search.hpp"
#include "sim/metrics.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace topo::bench {

inline std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(util::env_int("SEED", 42));
}

inline bool full_scale() { return util::env_bool("FULL"); }

inline unsigned bench_threads() { return util::ThreadPool::global().size(); }

/// Runs `fn(trial)` for every trial in [0, count) across the global thread
/// pool and returns the results in trial order. Each trial must be
/// self-contained (own RNGs seeded from the trial index, own overlay
/// instance); sharing a World is fine — the RTT oracle is thread-safe and
/// exact, so results are independent of interleaving and thread count.
template <typename Fn>
auto run_trials_parallel(std::size_t count, Fn&& fn) {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(!std::is_void_v<Result>,
                "trials must return their result (written by trial index)");
  std::vector<Result> results(count);
  util::ThreadPool::global().parallel_for(
      0, count, 1, [&](std::size_t trial) { results[trial] = fn(trial); });
  return results;
}

/// A topology + latency assignment + oracle + landmark set.
struct World {
  net::TransitStubConfig preset;
  net::LatencyModel latency_model;
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;

  World(const net::TransitStubConfig& preset_in, net::LatencyModel model,
        int landmark_count, std::uint64_t seed)
      : preset(preset_in), latency_model(model) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(preset, rng);
    net::assign_latencies(topology, model, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    // Long sweeps can bound the oracle's memory instead of clearing it at
    // hand-picked points (results are identical; see docs/performance.md).
    oracle->set_row_cap(
        static_cast<std::size_t>(util::env_int("ORACLE_ROWS", 0)));
    proximity::LandmarkConfig config;
    // Scale the landmark grid to the topology's latency regime.
    config.scale_ms =
        model == net::LatencyModel::kManual ? 80.0 : 350.0;
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, landmark_count, rng,
                                              config));
    warm_landmark_rows();
  }

  /// Pins the landmark hosts' Dijkstra rows so that measuring a landmark
  /// vector for ANY host is O(m) row lookups instead of one Dijkstra per
  /// host (the oracle resolves latency(from, to) via either endpoint's
  /// cached row). A no-op under the hierarchical engine, which has every
  /// pair precomputed already.
  void warm_landmark_rows() { oracle->warm(landmarks->hosts()); }

  std::string name() const {
    return preset.name + "/" + net::latency_model_name(latency_model);
  }
};

/// An eCAN built over `world` with published soft-state.
struct OverlayInstance {
  std::unique_ptr<overlay::EcanNetwork> ecan;
  std::unique_ptr<softstate::MapService> maps;
  core::VectorStore vectors;
  std::vector<overlay::NodeId> nodes;
};

inline OverlayInstance build_overlay(World& world, std::size_t n,
                                     std::uint64_t seed,
                                     softstate::MapConfig map_config = {}) {
  OverlayInstance instance;
  util::Rng rng(seed);
  instance.ecan = std::make_unique<overlay::EcanNetwork>(2);
  for (std::size_t i = 0; i < n; ++i) {
    const auto host = static_cast<net::HostId>(
        rng.next_u64(world.topology.host_count()));
    instance.nodes.push_back(instance.ecan->join_random(host, rng));
  }
  instance.maps = std::make_unique<softstate::MapService>(
      *instance.ecan, *world.landmarks, map_config);
  for (const auto id : instance.nodes) {
    instance.vectors[id] = world.landmarks->measure(
        *world.oracle, instance.ecan->node(id).host);
    instance.maps->publish(id, instance.vectors[id], 0.0);
  }
  return instance;
}

enum class SelectorKind { kRandom, kSoftState, kOracle };

inline const char* selector_name(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kRandom: return "random";
    case SelectorKind::kSoftState: return "lmk+rtt";
    case SelectorKind::kOracle: return "optimal";
  }
  return "?";
}

inline std::unique_ptr<overlay::RepresentativeSelector> make_selector(
    World& world, OverlayInstance& instance, SelectorKind kind,
    std::size_t rtt_budget, std::uint64_t seed) {
  switch (kind) {
    case SelectorKind::kRandom:
      return std::make_unique<core::RandomSelector>(util::Rng(seed));
    case SelectorKind::kOracle:
      return std::make_unique<core::OracleSelector>(*instance.ecan,
                                                    *world.oracle);
    case SelectorKind::kSoftState:
      return std::make_unique<core::SoftStateSelector>(
          *instance.ecan, *instance.maps, *world.oracle, instance.vectors,
          rtt_budget, util::Rng(seed));
  }
  return nullptr;
}

/// Builds tables with the selector and measures routing stretch with
/// 2N queries ("measurements are made for twice the number of nodes").
inline sim::RoutingSample run_stretch(World& world, OverlayInstance& instance,
                                      SelectorKind kind,
                                      std::size_t rtt_budget,
                                      std::uint64_t seed,
                                      std::size_t queries = 0) {
  const auto selector =
      make_selector(world, instance, kind, rtt_budget, seed + 1);
  instance.ecan->build_all_tables(*selector);
  if (queries == 0) queries = 2 * instance.nodes.size();
  util::Rng rng(seed + 2);
  return sim::measure_ecan_routing(*instance.ecan, *world.oracle, queries,
                                   rng);
}

/// Peak resident set size of this process in bytes, from getrusage
/// (Linux reports ru_maxrss in KiB). Monotone over the process lifetime.
inline std::size_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

/// RAII peak-RSS probe: writes the process peak RSS observed by the end of
/// the enclosing scope into `out_bytes`. Peak RSS is monotone, so the value
/// is an upper bound for the scope — and exact for the phase whose working
/// set is the largest so far (the usual case in a sweep over growing n).
class ScopedRssSampler {
 public:
  explicit ScopedRssSampler(std::size_t& out_bytes) : out_(&out_bytes) {}
  ScopedRssSampler(const ScopedRssSampler&) = delete;
  ScopedRssSampler& operator=(const ScopedRssSampler&) = delete;
  ~ScopedRssSampler() { *out_ = peak_rss_bytes(); }

 private:
  std::size_t* out_;
};

/// Prints a closing banner with the bench's total wall-clock and peak RSS
/// when it goes out of scope, so speedups from THREADS and memory
/// footprints are visible in every bench log.
class ScopedBenchTimer {
 public:
  ScopedBenchTimer() : start_(std::chrono::steady_clock::now()) {}
  ScopedBenchTimer(const ScopedBenchTimer&) = delete;
  ScopedBenchTimer& operator=(const ScopedBenchTimer&) = delete;
  ~ScopedBenchTimer() {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    std::printf(
        "\n== total wall-clock: %.2f s (THREADS=%u) peak-rss=%.1f MiB ==\n",
        elapsed.count(), bench_threads(),
        static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Opening banner; hold the returned timer in main so the closing banner
/// reports the bench's wall-clock.
[[nodiscard]] inline ScopedBenchTimer print_preamble(
    const std::string& title) {
  util::print_banner(std::cout, title);
  std::printf("seed=%llu scale=%s threads=%u\n",
              static_cast<unsigned long long>(bench_seed()),
              full_scale() ? "FULL (paper)" : "default (use FULL=1)",
              bench_threads());
  return {};
}

}  // namespace topo::bench
