// Figure 2 — "ecan compared with CAN with different d".
//
// Logical routing hops of plain CAN with dimensionality d = 2..5 versus a
// 2-dimensional eCAN (expressways, curve "EXP" in the paper), as the
// overlay grows from 1K to 8K nodes. The paper's shape: every CAN curve
// grows as N^(1/d); the eCAN curve grows ~log N and sits far below them.
#include "common.hpp"

int main() {
  using namespace topo;
  const auto bench_timer = bench::print_preamble(
      "Figure 2: logical hops, CAN d=2..5 vs eCAN d=2 (EXP)");

  const std::uint64_t seed = bench::bench_seed();
  std::vector<std::size_t> sizes = {1024, 2048, 4096};
  if (bench::full_scale()) sizes.push_back(8192);

  util::Table table({"nodes", "CAN d=2", "CAN d=3", "CAN d=4", "CAN d=5",
                     "EXP (eCAN d=2)"});

  // Every (overlay size, configuration) cell is an independent overlay
  // build + query workload, so the grid fans out across the pool. Column
  // order: CAN d=2..5 then eCAN; cell seeds match the historical serial
  // sweep, so the table is identical at any THREADS.
  constexpr std::size_t kConfigs = 5;  // CAN d=2..5, then EXP (eCAN d=2)
  const auto cells = bench::run_trials_parallel(
      sizes.size() * kConfigs, [&](std::size_t cell) {
        const std::size_t n = sizes[cell / kConfigs];
        const std::size_t config = cell % kConfigs;
        util::Samples hops;
        if (config < 4) {
          // Plain CAN at d = 2..5. Logical hops only: no topology needed,
          // but we keep the same query discipline as the rest of the paper
          // (2N random lookups from random sources).
          const std::size_t dims = config + 2;
          util::Rng rng(seed + dims);
          overlay::CanNetwork can(dims);
          for (std::size_t i = 0; i < n; ++i)
            can.join_random(static_cast<net::HostId>(i), rng);
          const auto live = can.live_nodes();
          for (std::size_t q = 0; q < 2 * n; ++q) {
            const auto from = live[rng.next_u64(live.size())];
            const auto route =
                can.route(from, geom::Point::random(dims, rng));
            if (route.success) hops.add(static_cast<double>(route.hops()));
          }
        } else {
          // eCAN d=2 with expressway tables (selection policy does not
          // matter for hop counts; use random).
          util::Rng rng(seed + 99);
          overlay::EcanNetwork ecan(2);
          for (std::size_t i = 0; i < n; ++i)
            ecan.join_random(static_cast<net::HostId>(i), rng);
          core::RandomSelector selector{util::Rng(seed + 100)};
          ecan.build_all_tables(selector);
          const auto live = ecan.live_nodes();
          for (std::size_t q = 0; q < 2 * n; ++q) {
            const auto from = live[rng.next_u64(live.size())];
            const auto route =
                ecan.route_ecan(from, geom::Point::random(2, rng));
            if (route.success) hops.add(static_cast<double>(route.hops()));
          }
        }
        return hops.mean();
      });

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<std::string> row = {
        util::Table::integer(static_cast<long long>(sizes[si]))};
    for (std::size_t config = 0; config < kConfigs; ++config)
      row.push_back(util::Table::num(cells[si * kConfigs + config], 2));
    table.add_row(std::move(row));
  }

  std::cout << table.to_string();
  std::cout << "\nShape check (paper): EXP << CAN d=2 and grows ~log N; CAN\n"
               "curves drop with d but all grow polynomially.\n";
  return 0;
}
