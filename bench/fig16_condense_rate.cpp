// Figure 16 — effect of the map condense rate: entries per node (dashed
// line in the paper) and routing stretch (solid line) as the map's
// footprint within its hosting zone varies.
//
// Paper shape: spreading the map over more of the zone cuts entries/node
// roughly linearly, while stretch stays flat as long as roughly a few tens
// of entries remain per hosting node ("as long as there are about [X]
// entries on each node, the performance impact is negligible").
#include "common.hpp"

using namespace topo;

int main() {
  const auto bench_timer =
      bench::print_preamble("Figure 16: map condense rate");

  const std::uint64_t seed = bench::bench_seed();
  const auto overlay_nodes = static_cast<std::size_t>(
      util::env_int("NODES", bench::full_scale() ? 4096 : 1024));

  // tsk-large with manual latencies, as in the paper's Figure 16.
  bench::World world(net::tsk_large(), net::LatencyModel::kManual, 15, seed);

  // The sweep: condense_rate is the fraction of the hosting zone's volume
  // the map occupies. Small rate = concentrated map (many entries/node);
  // rate 1 with more map_bits = maximally spread. The paper's "reduction
  // rate" axis corresponds to increasing spread left to right.
  struct Config {
    double condense_rate;
    int map_bits;
  };
  const std::vector<Config> sweep = {
      {0.015625, 2}, {0.0625, 3}, {0.25, 4}, {1.0, 4}, {1.0, 6}, {1.0, 8}};

  util::Table table({"spread (condense_rate x bits)", "map entries/node",
                     "max entries/node", "stretch"});
  for (const Config& config : sweep) {
    softstate::MapConfig map_config;
    map_config.condense_rate = config.condense_rate;
    map_config.map_bits = config.map_bits;
    map_config.lookup_ring_ttl = 4;  // condensed maps need the ring search
    bench::OverlayInstance instance =
        bench::build_overlay(world, overlay_nodes, seed + 1, map_config);
    const auto sample =
        bench::run_stretch(world, instance, bench::SelectorKind::kSoftState,
                           10, seed + 3);
    char label[48];
    std::snprintf(label, sizeof(label), "%.4g x %d bits",
                  config.condense_rate, config.map_bits);
    // Entries per *hosting* node: nodes actually storing map pieces.
    std::size_t hosting = 0;
    for (const auto id : instance.nodes)
      if (instance.maps->store_size(id) > 0) ++hosting;
    const double entries_per_hosting =
        hosting == 0 ? 0.0
                     : static_cast<double>(instance.maps->total_entries()) /
                           static_cast<double>(hosting);
    table.add_row({label, util::Table::num(entries_per_hosting, 1),
                   util::Table::integer(static_cast<long long>(
                       instance.maps->max_entries_per_node())),
                   util::Table::num(sample.stretch.mean(), 3)});
    world.oracle->clear_cache();
    world.warm_landmark_rows();
  }
  std::cout << table.to_string();
  std::cout << "\nShape check (paper): entries/node falls as the map spreads;\n"
               "stretch stays roughly flat until pieces become too sparse.\n";
  return 0;
}
