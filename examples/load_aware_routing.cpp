// Load-aware neighbor selection — the paper's Section 6: nodes publish
// load and capacity alongside proximity; neighbors are chosen by trading
// network distance against utilization, and QoS subscriptions re-select
// when the chosen neighbor saturates.
//
//   $ ./build/examples/load_aware_routing
#include <cstdio>

#include "core/soft_state_overlay.hpp"
#include "net/latency.hpp"
#include "net/transit_stub.hpp"

int main() {
  using namespace topo;

  util::Rng rng(17);
  net::Topology topology =
      net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(topology, net::LatencyModel::kManual, rng);

  core::SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 12;
  config.load_weight = 4.0;     // a saturated node looks 5x farther
  config.load_threshold = 0.8;  // notify when a neighbor crosses 80%
  core::SoftStateOverlay overlay(topology, config);

  // Heterogeneous fleet: a few beefy nodes, many constrained ones.
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 80; ++i) {
    const auto id = overlay.join(
        static_cast<net::HostId>(rng.next_u64(topology.host_count())));
    overlay.set_capacity(id, i % 10 == 0 ? 10.0 : 1.0);
    nodes.push_back(id);
  }

  // The load probe models measured utilization. Start idle.
  std::vector<double> load(nodes.size(), 0.1);
  overlay.set_load_probe([&](overlay::NodeId id) {
    for (std::size_t i = 0; i < nodes.size(); ++i)
      if (nodes[i] == id) return load[i];
    return 0.0;
  });

  auto count_table_refs = [&](overlay::NodeId target) {
    std::size_t refs = 0;
    for (const auto id : overlay.ecan().live_nodes()) {
      const int levels = overlay.ecan().node_level(id);
      for (int h = 1; h <= levels; ++h)
        for (std::size_t dim = 0; dim < 2; ++dim)
          for (int dir = 0; dir < 2; ++dir)
            if (overlay.ecan().table_entry(id, h, dim, dir) == target)
              ++refs;
    }
    return refs;
  };

  // Pick a node that several tables point at, then saturate it.
  overlay::NodeId hotspot = nodes[0];
  std::size_t best_refs = 0;
  for (const auto id : nodes) {
    const std::size_t refs = count_table_refs(id);
    if (refs > best_refs) {
      best_refs = refs;
      hotspot = id;
    }
  }
  std::printf("hotspot node %u is referenced by %zu expressway entries\n",
              hotspot, best_refs);

  // Saturate it and republish (in a deployment the periodic republish
  // carries the fresh load figure; we force one for determinism).
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (nodes[i] == hotspot) load[i] = 0.97;
  const auto notifications_before =
      overlay.pubsub().stats().notifications;
  overlay.republish_now(hotspot);

  const std::size_t refs_after = count_table_refs(hotspot);
  std::printf(
      "after publishing load=0.97: %llu QoS notifications fired,\n"
      "references to the hotspot dropped %zu -> %zu\n",
      static_cast<unsigned long long>(overlay.pubsub().stats().notifications -
                                      notifications_before),
      best_refs, refs_after);

  std::printf(
      "\nSubscribers watching the hotspot were notified that it crossed\n"
      "their 80%% threshold and re-selected using the load-aware score\n"
      "rtt * (1 + %.0f * load/capacity); distant-but-idle neighbors now\n"
      "carry the traffic (Section 6 of the paper).\n",
      config.load_weight);
  return 0;
}
