// Quickstart — the public API in one page.
//
// Builds a small simulated internet, brings up a topology-aware overlay
// with global soft-state, and shows the effect on routing latency.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/soft_state_overlay.hpp"
#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "sim/metrics.hpp"

int main() {
  using namespace topo;

  // 1. A simulated physical network: GT-ITM-style transit-stub topology
  //    (~126 hosts here; use net::tsk_large() for the paper's 10k).
  util::Rng rng(7);
  net::Topology topology =
      net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(topology, net::LatencyModel::kManual, rng);
  std::printf("topology: %zu hosts, %zu links\n", topology.host_count(),
              topology.link_count());

  // 2. The topology-aware overlay. The config mirrors the paper's Table 2:
  //    landmark count, RTT probe budget, map condense rate, soft-state TTL.
  core::SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 10;
  core::SoftStateOverlay overlay(topology, config);

  // 3. Nodes join: each measures its landmark vector, takes a random zone,
  //    publishes its proximity record into the global soft-state, selects
  //    physically-close expressway neighbors through the maps, and
  //    subscribes for changes.
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 100; ++i)
    nodes.push_back(overlay.join(
        static_cast<net::HostId>(rng.next_u64(topology.host_count()))));
  std::printf("overlay: %zu nodes, %zu soft-state entries, %zu subs\n",
              overlay.ecan().size(), overlay.maps().total_entries(),
              overlay.pubsub().active_subscriptions());

  // 4. The DHT itself: keys are points in the unit square; values live at
  //    the key's owner and reach it over topology-aware expressways.
  const geom::Point key = geom::Point::random(2, rng);
  const overlay::RouteResult route =
      overlay.put(nodes[0], key, "hello overlay");
  std::printf("put %s: %zu overlay hops, stored at node %u\n",
              key.to_string().c_str(), route.hops(), route.path.back());
  std::printf("get from another node: \"%s\"\n",
              overlay.get(nodes[50], key).value_or("<missing>").c_str());

  // 5. Measure the routing stretch (path latency / direct latency).
  util::Rng measure_rng(99);
  const sim::RoutingSample sample = sim::measure_ecan_routing(
      overlay.ecan(), overlay.oracle(), 200, measure_rng);
  std::printf("stretch over 200 random lookups: mean %.2f, p90 %.2f\n",
              sample.stretch.mean(), sample.stretch.percentile(90));

  // 6. Soft-state in action: advance virtual time; records are republished
  //    before their TTL expires, so the maps stay warm.
  overlay.run_for(120'000.0);  // 2 virtual minutes
  std::printf("after 2 virtual minutes: %zu entries (%llu republishes)\n",
              overlay.maps().total_entries(),
              static_cast<unsigned long long>(overlay.stats().republishes));

  // 7. Graceful departure scrubs the maps; a crash decays via TTL instead.
  overlay.leave(nodes[1]);
  overlay.crash(nodes[2]);
  std::printf("after 1 leave + 1 crash: %zu nodes alive, lookups still ok: %s\n",
              overlay.ecan().size(),
              overlay.lookup(nodes[0], geom::Point::random(2, rng)).success
                  ? "yes"
                  : "no");
  return 0;
}
