// Nearest-peer discovery — the paper's Section 4 workload as an
// application: a client wants the physically closest member of a service
// (think: CDN edge selection, game-server matchmaking, mirror selection).
//
// Compares three strategies a real deployment could use:
//   * probe-everything (ground truth, O(n) RTT measurements),
//   * expanding-ring search over the overlay (the pre-paper baseline),
//   * landmark clustering + a handful of RTT probes (the paper).
//
//   $ ./build/examples/nearest_peer_discovery
#include <cstdio>
#include <limits>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "proximity/nn_search.hpp"
#include "util/rng.hpp"

int main() {
  using namespace topo;

  util::Rng rng(11);
  net::Topology topology =
      net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(topology, net::LatencyModel::kGtItmRandom, rng);
  net::RttOracle oracle(topology);

  // The service: 40 replica hosts scattered over the network, each having
  // measured its landmark vector against 8 shared landmarks.
  const proximity::LandmarkSet landmarks =
      proximity::LandmarkSet::choose_random(topology, 8, rng, {});
  proximity::ProximityDatabase replicas;
  for (int i = 0; i < 40; ++i) {
    const auto host =
        static_cast<net::HostId>(rng.next_u64(topology.host_count()));
    replicas.push_back(
        proximity::ProximityRecord{host, landmarks.measure(oracle, host)});
  }

  // An overlay of all hosts, for the expanding-ring baseline.
  overlay::CanNetwork can(2);
  for (net::HostId h = 0; h < topology.host_count(); ++h)
    can.join_random(h, rng);

  std::printf("%-10s %-28s %-28s %-22s\n", "client", "probe-everything",
              "expanding-ring (10 probes)", "lmk+rtt (10 probes)");
  for (int c = 0; c < 5; ++c) {
    const auto client =
        static_cast<net::HostId>(rng.next_u64(topology.host_count()));

    // Ground truth: probe every replica.
    net::HostId best_host = net::kInvalidHost;
    double best_rtt = std::numeric_limits<double>::infinity();
    for (const auto& replica : replicas) {
      const double rtt = oracle.latency_ms(client, replica.host);
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best_host = replica.host;
      }
    }

    // Expanding-ring search with the same probe budget as the hybrid.
    const auto ring_curve = proximity::ers_best_rtt_curve(
        can, oracle, client, can.live_nodes()[rng.next_u64(can.size())], 10,
        rng);

    // The paper: rank replicas by landmark-vector distance, probe top 10.
    const auto client_vector = landmarks.measure(oracle, client);
    const auto hybrid = proximity::hybrid_nn_search(oracle, client,
                                                    client_vector, replicas,
                                                    10);

    std::printf(
        "host %-5u %8.2f ms (40 probes)      %8.2f ms                  "
        "%8.2f ms (host %u)\n",
        client, best_rtt, ring_curve.back(), hybrid.rtt_ms, hybrid.host);
    (void)best_host;
  }
  std::printf(
      "\nThe hybrid column tracks ground truth at a quarter of the probes;\n"
      "the expanding ring, probing blindly, usually lands far away.\n");
  return 0;
}
