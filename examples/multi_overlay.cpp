// One proximity substrate, three overlays — the paper's generality claim
// as a demo: the same landmark infrastructure and the same global
// soft-state idea drive proximity-neighbor selection on eCAN (Cartesian
// zones), Chord (successor ring) and Pastry (prefix routing).
//
//   $ ./build/examples/multi_overlay
#include <cstdio>

#include "core/chord_selectors.hpp"
#include "core/pastry_selectors.hpp"
#include "core/selectors.hpp"
#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "sim/metrics.hpp"
#include "softstate/chord_maps.hpp"
#include "softstate/map_service.hpp"
#include "softstate/pastry_maps.hpp"

int main() {
  using namespace topo;

  util::Rng rng(23);
  net::Topology topology =
      net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(topology, net::LatencyModel::kGtItmRandom, rng);
  net::RttOracle oracle(topology);

  // One landmark set shared by every overlay: each node measures its RTT
  // vector once and reuses it everywhere.
  const auto landmarks =
      proximity::LandmarkSet::choose_random(topology, 8, rng, {});
  oracle.warm(landmarks.hosts());

  const std::size_t n = 200;
  std::vector<net::HostId> hosts;
  for (std::size_t i = 0; i < n; ++i)
    hosts.push_back(
        static_cast<net::HostId>(rng.next_u64(topology.host_count())));

  std::printf("%-8s %-22s %-22s\n", "overlay", "random/classic stretch",
              "soft-state PNS stretch");

  // ---- eCAN ------------------------------------------------------------
  {
    overlay::EcanNetwork ecan(2);
    std::vector<overlay::NodeId> nodes;
    for (const auto host : hosts) nodes.push_back(ecan.join_random(host, rng));
    softstate::MapService maps(ecan, landmarks, {});
    core::VectorStore vectors;
    for (const auto id : nodes) {
      vectors[id] = landmarks.measure(oracle, ecan.node(id).host);
      maps.publish(id, vectors[id], 0.0);
    }
    core::RandomSelector random{util::Rng(1)};
    ecan.build_all_tables(random);
    util::Rng m1(2);
    const double baseline =
        sim::measure_ecan_routing(ecan, oracle, 300, m1).stretch.mean();
    core::SoftStateSelector soft(ecan, maps, oracle, vectors, 10,
                                 util::Rng(3));
    ecan.build_all_tables(soft);
    util::Rng m2(2);
    const double pns =
        sim::measure_ecan_routing(ecan, oracle, 300, m2).stretch.mean();
    std::printf("%-8s %-22.3f %-22.3f\n", "eCAN", baseline, pns);
  }

  // ---- Chord -----------------------------------------------------------
  {
    overlay::ChordNetwork chord(24);
    std::vector<overlay::NodeId> nodes;
    for (const auto host : hosts)
      nodes.push_back(chord.join_random(host, rng));
    core::ClassicFingerSelector classic;
    chord.build_all_fingers(classic);
    softstate::ChordMapService maps(chord, landmarks);
    core::ChordVectorStore vectors;
    for (const auto id : nodes) {
      vectors[id] = landmarks.measure(oracle, chord.node(id).host);
      maps.publish(id, vectors[id], 0.0);
    }
    auto measure = [&] {
      util::Rng m(4);
      util::Samples stretch;
      const auto live = chord.live_nodes();
      for (int q = 0; q < 300; ++q) {
        const auto from = live[m.next_u64(live.size())];
        const auto route = chord.route(from, m.next_u64(chord.ring_size()));
        if (!route.success || route.path.size() < 2) continue;
        double path = 0.0;
        for (std::size_t i = 1; i < route.path.size(); ++i)
          path += oracle.latency_ms(chord.node(route.path[i - 1]).host,
                                    chord.node(route.path[i]).host);
        const double direct = oracle.latency_ms(
            chord.node(from).host, chord.node(route.path.back()).host);
        if (direct > 0.0) stretch.add(path / direct);
      }
      return stretch.mean();
    };
    const double baseline = measure();
    core::SoftStateFingerSelector soft(chord, maps, oracle, vectors, 16,
                                       util::Rng(5));
    chord.build_all_fingers(soft);
    std::printf("%-8s %-22.3f %-22.3f\n", "Chord", baseline, measure());
  }

  // ---- Pastry ----------------------------------------------------------
  {
    overlay::PastryNetwork pastry(24, 4);
    std::vector<overlay::NodeId> nodes;
    for (const auto host : hosts)
      nodes.push_back(pastry.join_random(host, rng));
    core::FirstSlotSelector first;
    pastry.build_all_tables(first);
    softstate::PastryMapService maps(pastry, landmarks);
    core::PastryVectorStore vectors;
    for (const auto id : nodes) {
      vectors[id] = landmarks.measure(oracle, pastry.node(id).host);
      maps.publish(id, vectors[id], 0.0);
    }
    auto measure = [&] {
      util::Rng m(6);
      util::Samples stretch;
      const auto live = pastry.live_nodes();
      for (int q = 0; q < 300; ++q) {
        const auto from = live[m.next_u64(live.size())];
        const auto route =
            pastry.route(from, m.next_u64(pastry.ring_size()));
        if (!route.success || route.path.size() < 2) continue;
        double path = 0.0;
        for (std::size_t i = 1; i < route.path.size(); ++i)
          path += oracle.latency_ms(pastry.node(route.path[i - 1]).host,
                                    pastry.node(route.path[i]).host);
        const double direct = oracle.latency_ms(
            pastry.node(from).host, pastry.node(route.path.back()).host);
        if (direct > 0.0) stretch.add(path / direct);
      }
      return stretch.mean();
    };
    const double baseline = measure();
    core::SoftStateSlotSelector soft(pastry, maps, oracle, vectors, 10,
                                     util::Rng(7));
    pastry.build_all_tables(soft);
    std::printf("%-8s %-22.3f %-22.3f\n", "Pastry", baseline, measure());
  }

  std::printf(
      "\nEvery overlay keeps its own structure (zones / ring / prefixes);\n"
      "the landmark vectors, landmark numbers and soft-state maps are the\n"
      "same machinery throughout — 'generic for overlay networks such as\n"
      "Pastry, Chord, and eCAN, where there exists flexibility in\n"
      "selecting routing neighbors' (paper, conclusion).\n");
  return 0;
}
