// Churn & maintenance — the paper's Section 5.2 machinery as a running
// system: nodes join and leave continuously; soft-state TTLs, republish
// timers, publish/subscribe notifications and lazy repair keep the overlay
// topology-aware without any global sweep.
//
//   $ ./build/examples/churn_maintenance
#include <cstdio>

#include "core/soft_state_overlay.hpp"
#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "sim/metrics.hpp"

int main() {
  using namespace topo;

  util::Rng rng(13);
  net::Topology topology =
      net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(topology, net::LatencyModel::kManual, rng);

  core::SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 8;
  config.map.ttl_ms = 30'000.0;           // 30 s soft-state lifetime
  config.republish_interval_ms = 10'000.0; // refreshed every 10 s
  core::SoftStateOverlay overlay(topology, config);

  std::vector<overlay::NodeId> live;
  for (int i = 0; i < 80; ++i)
    live.push_back(overlay.join(
        static_cast<net::HostId>(rng.next_u64(topology.host_count()))));

  // Measure through the facade's lookup: real traffic repairs broken
  // expressway entries on first use (the paper's reactive maintenance).
  auto report = [&](const char* phase) {
    util::Rng measure_rng(1234);  // same workload every epoch
    util::Samples stretch;
    for (int q = 0; q < 150; ++q) {
      const auto from = live[measure_rng.next_u64(live.size())];
      const geom::Point key = geom::Point::random(2, measure_rng);
      const overlay::RouteResult route = overlay.lookup(from, key);
      if (!route.success || route.path.size() < 2) continue;
      const double direct = overlay.oracle().latency_ms(
          overlay.ecan().node(from).host,
          overlay.ecan().node(route.path.back()).host);
      if (direct <= 0.0) continue;
      stretch.add(sim::path_latency_ms(overlay.ecan(), overlay.oracle(),
                                       route.path) /
                  direct);
    }
    sim::RoutingSample sample;
    sample.stretch = stretch;
    std::printf(
        "%-28s nodes=%-4zu entries=%-5zu stretch=%.2f reselections=%llu "
        "notifications=%llu lazy-repairs=%llu\n",
        phase, overlay.ecan().size(), overlay.maps().total_entries(),
        sample.stretch.mean(),
        static_cast<unsigned long long>(overlay.stats().reselections),
        static_cast<unsigned long long>(
            overlay.pubsub().stats().notifications),
        static_cast<unsigned long long>(overlay.ecan().lazy_repairs()));
  };
  report("initial");

  // Epoch 1: heavy churn. Half graceful departures, half crashes; new
  // nodes replace them. Virtual time advances so timers run.
  for (int round = 0; round < 40; ++round) {
    const std::size_t pick = rng.next_u64(live.size());
    if (rng.next_bool(0.5))
      overlay.leave(live[pick]);
    else
      overlay.crash(live[pick]);
    live.erase(live.begin() + static_cast<long>(pick));
    live.push_back(overlay.join(
        static_cast<net::HostId>(rng.next_u64(topology.host_count()))));
    overlay.run_for(1'000.0);
  }
  report("after churn (40 swaps)");

  // Epoch 2: quiet period — republish keeps records alive, crashed nodes'
  // stale records time out, pub/sub has already patched tables.
  overlay.run_for(60'000.0);
  report("after 60 s quiet");

  // Epoch 3: mass crash of a quarter of the network, then recovery.
  for (int i = 0; i < 20; ++i) {
    const std::size_t pick = rng.next_u64(live.size());
    overlay.crash(live[pick]);
    live.erase(live.begin() + static_cast<long>(pick));
  }
  report("right after 20 crashes");
  overlay.run_for(60'000.0);
  report("60 s later (decayed)");

  std::printf(
      "\nThe stretch stays near its pre-churn level throughout: departures\n"
      "are scrubbed proactively (leave) or decay via TTL (crash), watchers\n"
      "are notified to re-select, and routing repairs entries on first\n"
      "use. No global sweep ever runs.\n");
  return 0;
}
