// Regression tests for the edge-triggered kLoadExceeded watch: a
// representative stuck above the threshold must notify exactly once, stay
// silent across republishes while the overload persists, and only re-arm
// after its utilization drops below the hysteresis band.
#include "pubsub/pubsub.hpp"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::pubsub {
namespace {

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;
  std::unique_ptr<overlay::EcanNetwork> ecan;
  std::unique_ptr<softstate::MapService> maps;
  std::unique_ptr<PubSubService> pubsub;
  std::vector<overlay::NodeId> nodes;
  std::unordered_map<overlay::NodeId, proximity::LandmarkVector> vectors;
  std::vector<std::pair<overlay::NodeId, Notification>> received;

  explicit Fixture(std::uint64_t seed, std::size_t overlay_nodes = 64) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, 6, rng, {}));
    ecan = std::make_unique<overlay::EcanNetwork>(2);
    for (std::size_t i = 0; i < overlay_nodes; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      nodes.push_back(ecan->join_random(host, rng));
    }
    maps = std::make_unique<softstate::MapService>(*ecan, *landmarks,
                                                   softstate::MapConfig{});
    pubsub = std::make_unique<PubSubService>(*ecan, *maps);
    pubsub->set_handler(
        [this](overlay::NodeId subscriber, const Notification& n) {
          received.emplace_back(subscriber, n);
        });
    for (const auto id : nodes)
      vectors[id] = landmarks->measure(*oracle, ecan->node(id).host);
  }

  /// Subscribes `subscriber` to `watched`'s level-1 map with a load watch
  /// only (the closer-candidate predicate is pinned off).
  SubscriptionId watch_load(overlay::NodeId subscriber,
                            overlay::NodeId watched, double threshold,
                            double hysteresis = 0.1) {
    Subscription s;
    s.subscriber = subscriber;
    s.vector = vectors[subscriber];
    s.level = 1;
    s.cell_key = ecan->pack_cell(1, ecan->cell_of_node(watched, 1));
    s.watched = watched;
    s.load_threshold = threshold;
    s.load_hysteresis = hysteresis;
    s.current_best_distance = 0.0;  // nothing can be closer
    return pubsub->subscribe(std::move(s));
  }

  void publish_load(overlay::NodeId node, double load, sim::Time now) {
    maps->publish(node, vectors[node], now, load, /*capacity=*/1.0);
  }

  std::size_t load_notifications() const {
    std::size_t count = 0;
    for (const auto& [subscriber, n] : received)
      if (n.reason == Notification::Reason::kLoadExceeded) ++count;
    return count;
  }
};

TEST(PubSubLoadEdge, ConstantOverloadNotifiesExactlyOnce) {
  Fixture f(1);
  const auto subscriber = f.nodes[0];
  const auto watched = f.nodes[1];
  if (f.ecan->node_level(watched) < 1) GTEST_SKIP();
  f.watch_load(subscriber, watched, 0.8);

  // The load crosses the threshold and *stays* there: four republishes,
  // one notification (the level-triggered bug re-fired on every one).
  for (int round = 0; round < 4; ++round)
    f.publish_load(watched, 0.9, static_cast<sim::Time>(round));
  EXPECT_EQ(f.load_notifications(), 1u);
}

TEST(PubSubLoadEdge, InBandDipDoesNotRearm) {
  Fixture f(2);
  const auto subscriber = f.nodes[0];
  const auto watched = f.nodes[1];
  if (f.ecan->node_level(watched) < 1) GTEST_SKIP();
  f.watch_load(subscriber, watched, 0.8, /*hysteresis=*/0.1);

  f.publish_load(watched, 0.9, 0.0);
  ASSERT_EQ(f.load_notifications(), 1u);
  // Dip into the hysteresis band (re-arm point is 0.8 * 0.9 = 0.72): the
  // alarm stays latched, so climbing back over the threshold is silent.
  f.publish_load(watched, 0.75, 1.0);
  f.publish_load(watched, 0.9, 2.0);
  EXPECT_EQ(f.load_notifications(), 1u);
}

TEST(PubSubLoadEdge, DropBelowBandRearms) {
  Fixture f(3);
  const auto subscriber = f.nodes[0];
  const auto watched = f.nodes[1];
  if (f.ecan->node_level(watched) < 1) GTEST_SKIP();
  f.watch_load(subscriber, watched, 0.8, /*hysteresis=*/0.1);

  f.publish_load(watched, 0.9, 0.0);
  ASSERT_EQ(f.load_notifications(), 1u);
  // Recovery below the band re-arms; the next crossing fires again.
  f.publish_load(watched, 0.5, 1.0);
  EXPECT_EQ(f.load_notifications(), 1u);
  f.publish_load(watched, 0.95, 2.0);
  EXPECT_EQ(f.load_notifications(), 2u);
}

TEST(PubSubLoadEdge, MovingWatchToNewRepresentativeRearms) {
  Fixture f(4);
  const auto subscriber = f.nodes[0];
  const auto watched = f.nodes[1];
  const auto replacement = f.nodes[2];
  if (f.ecan->node_level(watched) < 1) GTEST_SKIP();
  const SubscriptionId id = f.watch_load(subscriber, watched, 0.8);

  f.publish_load(watched, 0.9, 0.0);
  ASSERT_EQ(f.load_notifications(), 1u);

  // Re-selecting the *same* representative keeps the alarm latched: a
  // still-saturated rep with no alternative must not notify in a loop.
  f.pubsub->update_watch(id, watched, 0.0);
  f.publish_load(watched, 0.9, 1.0);
  EXPECT_EQ(f.load_notifications(), 1u);

  // Moving to a different representative starts a fresh watch; if the
  // old rep's cell also hosts the new one, its overload fires once.
  f.pubsub->update_watch(id, replacement, 0.0);
  ASSERT_NE(f.pubsub->find(id), nullptr);
  EXPECT_FALSE(f.pubsub->find(id)->load_alarmed);
}

}  // namespace
}  // namespace topo::pubsub
