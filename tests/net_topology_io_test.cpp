#include "net/topology_io.hpp"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::net {
namespace {

Topology sample_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  Topology t = generate_transit_stub(tsk_tiny(), rng);
  assign_latencies(t, LatencyModel::kGtItmRandom, rng);
  return t;
}

TEST(TopologyIo, RoundTripPreservesEverything) {
  const Topology original = sample_topology(1);
  std::stringstream buffer;
  save_topology(original, buffer);
  const Topology loaded = load_topology(buffer);

  ASSERT_EQ(loaded.host_count(), original.host_count());
  ASSERT_EQ(loaded.link_count(), original.link_count());
  for (HostId h = 0; h < original.host_count(); ++h) {
    EXPECT_EQ(loaded.host(h).kind, original.host(h).kind);
    EXPECT_EQ(loaded.host(h).transit_domain, original.host(h).transit_domain);
    EXPECT_EQ(loaded.host(h).stub_domain, original.host(h).stub_domain);
  }
  for (std::size_t i = 0; i < original.link_count(); ++i) {
    EXPECT_EQ(loaded.links()[i].a, original.links()[i].a);
    EXPECT_EQ(loaded.links()[i].b, original.links()[i].b);
    EXPECT_EQ(loaded.links()[i].link_class, original.links()[i].link_class);
    EXPECT_DOUBLE_EQ(loaded.links()[i].latency_ms,
                     original.links()[i].latency_ms);
  }
  EXPECT_TRUE(loaded.is_connected());
}

TEST(TopologyIo, CommentsAndBlankLinesIgnored) {
  const Topology original = sample_topology(2);
  std::stringstream buffer;
  buffer << "# a comment\n\n";
  save_topology(original, buffer);
  const Topology loaded = load_topology(buffer);
  EXPECT_EQ(loaded.host_count(), original.host_count());
}

TEST(TopologyIo, RejectsMissingHeader) {
  std::stringstream buffer("hosts 0\nlinks 0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, RejectsTruncatedHosts) {
  std::stringstream buffer("topo-overlay-topology v1\nhosts 3\nh 0 0 -1\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, RejectsBadLinkEndpoints) {
  std::stringstream buffer(
      "topo-overlay-topology v1\n"
      "hosts 2\nh 0 0 -1\nh 1 0 0\n"
      "links 1\nl 0 5 2 1.0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, RejectsSelfLink) {
  std::stringstream buffer(
      "topo-overlay-topology v1\n"
      "hosts 2\nh 0 0 -1\nh 1 0 0\n"
      "links 1\nl 1 1 2 1.0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, RejectsNegativeLatency) {
  std::stringstream buffer(
      "topo-overlay-topology v1\n"
      "hosts 2\nh 0 0 -1\nh 1 0 0\n"
      "links 1\nl 0 1 2 -5\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, RejectsBadLinkClass) {
  std::stringstream buffer(
      "topo-overlay-topology v1\n"
      "hosts 2\nh 0 0 -1\nh 1 0 0\n"
      "links 1\nl 0 1 9 1.0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, FileRoundTrip) {
  const Topology original = sample_topology(3);
  const std::string path = ::testing::TempDir() + "/topo_io_test.topo";
  save_topology_file(original, path);
  const Topology loaded = load_topology_file(path);
  EXPECT_EQ(loaded.host_count(), original.host_count());
  EXPECT_EQ(loaded.link_count(), original.link_count());
}

TEST(TopologyIo, MissingFileThrows) {
  EXPECT_THROW(load_topology_file("/nonexistent/nope.topo"),
               std::runtime_error);
}

TEST(TopologyIo, EmptyTopologyRoundTrips) {
  Topology empty;
  empty.freeze();
  std::stringstream buffer;
  save_topology(empty, buffer);
  const Topology loaded = load_topology(buffer);
  EXPECT_EQ(loaded.host_count(), 0u);
  EXPECT_EQ(loaded.link_count(), 0u);
}

}  // namespace
}  // namespace topo::net
