#include "net/topology_io.hpp"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/rtt_engine.hpp"
#include "net/transit_stub.hpp"

namespace topo::net {
namespace {

Topology sample_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  Topology t = generate_transit_stub(tsk_tiny(), rng);
  assign_latencies(t, LatencyModel::kGtItmRandom, rng);
  return t;
}

TEST(TopologyIo, RoundTripPreservesEverything) {
  const Topology original = sample_topology(1);
  std::stringstream buffer;
  save_topology(original, buffer);
  const Topology loaded = load_topology(buffer);

  ASSERT_EQ(loaded.host_count(), original.host_count());
  ASSERT_EQ(loaded.link_count(), original.link_count());
  for (HostId h = 0; h < original.host_count(); ++h) {
    EXPECT_EQ(loaded.host(h).kind, original.host(h).kind);
    EXPECT_EQ(loaded.host(h).transit_domain, original.host(h).transit_domain);
    EXPECT_EQ(loaded.host(h).stub_domain, original.host(h).stub_domain);
    EXPECT_EQ(loaded.host(h).gateway, original.host(h).gateway);
  }
  for (std::size_t i = 0; i < original.link_count(); ++i) {
    EXPECT_EQ(loaded.links()[i].a, original.links()[i].a);
    EXPECT_EQ(loaded.links()[i].b, original.links()[i].b);
    EXPECT_EQ(loaded.links()[i].link_class, original.links()[i].link_class);
    EXPECT_DOUBLE_EQ(loaded.links()[i].latency_ms,
                     original.links()[i].latency_ms);
  }
  EXPECT_TRUE(loaded.is_connected());
}

TEST(TopologyIo, CommentsAndBlankLinesIgnored) {
  const Topology original = sample_topology(2);
  std::stringstream buffer;
  buffer << "# a comment\n\n";
  save_topology(original, buffer);
  const Topology loaded = load_topology(buffer);
  EXPECT_EQ(loaded.host_count(), original.host_count());
}

TEST(TopologyIo, RejectsMissingHeader) {
  std::stringstream buffer("hosts 0\nlinks 0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, RejectsTruncatedHosts) {
  std::stringstream buffer("topo-overlay-topology v1\nhosts 3\nh 0 0 -1\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, RejectsBadLinkEndpoints) {
  std::stringstream buffer(
      "topo-overlay-topology v1\n"
      "hosts 2\nh 0 0 -1\nh 1 0 0\n"
      "links 1\nl 0 5 2 1.0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, RejectsSelfLink) {
  std::stringstream buffer(
      "topo-overlay-topology v1\n"
      "hosts 2\nh 0 0 -1\nh 1 0 0\n"
      "links 1\nl 1 1 2 1.0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, RejectsNegativeLatency) {
  std::stringstream buffer(
      "topo-overlay-topology v1\n"
      "hosts 2\nh 0 0 -1\nh 1 0 0\n"
      "links 1\nl 0 1 2 -5\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, RejectsBadLinkClass) {
  std::stringstream buffer(
      "topo-overlay-topology v1\n"
      "hosts 2\nh 0 0 -1\nh 1 0 0\n"
      "links 1\nl 0 1 9 1.0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, FileRoundTrip) {
  const Topology original = sample_topology(3);
  const std::string path = ::testing::TempDir() + "/topo_io_test.topo";
  save_topology_file(original, path);
  const Topology loaded = load_topology_file(path);
  EXPECT_EQ(loaded.host_count(), original.host_count());
  EXPECT_EQ(loaded.link_count(), original.link_count());
}

TEST(TopologyIo, MissingFileThrows) {
  EXPECT_THROW(load_topology_file("/nonexistent/nope.topo"),
               std::runtime_error);
}

TEST(TopologyIo, SavesV2WithGatewayFlags) {
  const Topology original = sample_topology(4);
  std::stringstream buffer;
  save_topology(original, buffer);
  std::string header;
  std::getline(buffer, header);
  EXPECT_EQ(header, "topo-overlay-topology v2");
}

// Gateway flags survive serialization, so a loaded topology qualifies for
// the hierarchical RTT engine exactly like the generated original.
TEST(TopologyIo, RoundTripKeepsHierarchyMetadata) {
  util::Rng rng(5);
  TransitStubConfig config = tsk_tiny();
  config.stub_multihome_probability = 0.5;  // some two-gateway stubs
  Topology original = generate_transit_stub(config, rng);
  assign_latencies(original, LatencyModel::kGtItmRandom, rng);
  ASSERT_TRUE(topology_supports_hierarchy(original));

  std::stringstream buffer;
  save_topology(original, buffer);
  const Topology loaded = load_topology(buffer);
  EXPECT_TRUE(topology_supports_hierarchy(loaded));
  std::size_t gateways = 0;
  for (HostId h = 0; h < loaded.host_count(); ++h) {
    EXPECT_EQ(loaded.host(h).gateway, original.host(h).gateway);
    if (loaded.host(h).gateway) ++gateways;
  }
  EXPECT_GT(gateways, 0u);
}

// v1 files predate the gateway column; the loader re-derives the flags
// from the kTransitStub links, so old files keep working unchanged.
TEST(TopologyIo, LoadsV1WithDerivedGatewayFlags) {
  std::stringstream buffer(
      "topo-overlay-topology v1\n"
      "hosts 3\n"
      "h 0 0 -1\n"   // transit
      "h 1 0 0\n"    // stub, gateway (access link below)
      "h 1 0 0\n"    // stub, interior
      "links 2\n"
      "l 0 1 2 1.5\n"
      "l 1 2 3 1.0\n");
  const Topology loaded = load_topology(buffer);
  EXPECT_FALSE(loaded.host(0).gateway);
  EXPECT_TRUE(loaded.host(1).gateway);
  EXPECT_FALSE(loaded.host(2).gateway);
  EXPECT_TRUE(topology_supports_hierarchy(loaded));
}

TEST(TopologyIo, RejectsV2GatewayFlagContradictingLinks) {
  // Host 2 claims to be a gateway but carries no access link.
  std::stringstream buffer(
      "topo-overlay-topology v2\n"
      "hosts 3\n"
      "h 0 0 -1 0\n"
      "h 1 0 0 1\n"
      "h 1 0 0 1\n"
      "links 2\n"
      "l 0 1 2 1.5\n"
      "l 1 2 3 1.0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, RejectsV2HostLineWithoutGatewayField) {
  std::stringstream buffer(
      "topo-overlay-topology v2\n"
      "hosts 1\n"
      "h 0 0 -1\n"
      "links 0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIo, EmptyTopologyRoundTrips) {
  Topology empty;
  empty.freeze();
  std::stringstream buffer;
  save_topology(empty, buffer);
  const Topology loaded = load_topology(buffer);
  EXPECT_EQ(loaded.host_count(), 0u);
  EXPECT_EQ(loaded.link_count(), 0u);
}

}  // namespace
}  // namespace topo::net
