// Partition-heal soak: a full SoftStateOverlay with a quarter of its stub
// domains partitioned off for several simulated minutes of republish and
// retry traffic, then healed. Asserts the robustness-plane claims: the
// system inside AND outside the partition keeps operating in degraded
// mode (no hard failures, fallbacks instead), the fault accounting stays
// consistent, and after the heal the soft-state maps and lookup success
// converge back to the fault-free steady state within a couple of TTLs.
//
// Runs under the `soak` ctest label (and in the TSan preset).
#include <gtest/gtest.h>

#include "core/soft_state_overlay.hpp"
#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::core {
namespace {

struct PartitionFixture {
  net::Topology topology;
  std::unique_ptr<SoftStateOverlay> system;
  std::vector<overlay::NodeId> nodes;
  util::Rng rng{0};

  explicit PartitionFixture(std::uint64_t seed, std::size_t n) : rng(seed) {
    util::Rng topo_rng(seed + 1);
    topology = net::generate_transit_stub(net::tsk_tiny(), topo_rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, topo_rng);

    SystemConfig config;
    config.landmark_count = 8;
    config.rtt_budget = 6;
    config.map.ttl_ms = 45'000.0;
    config.map.replicas = 3;
    config.republish_interval_ms = 15'000.0;
    config.retry.max_attempts = 3;
    config.seed = seed + 2;
    system = std::make_unique<SoftStateOverlay>(topology, config);
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(join_one());
  }

  overlay::NodeId join_one() {
    net::HostId host = 0;
    do {
      host = static_cast<net::HostId>(rng.next_u64(topology.host_count()));
    } while (system->faults().host_crashed(host));
    return system->join(host);
  }

  /// Lookup success rate over random queries from non-crashed sources.
  double lookup_success(std::size_t queries) {
    std::size_t issued = 0;
    std::size_t ok = 0;
    const auto live = system->ecan().live_nodes();
    for (std::size_t q = 0; q < queries; ++q) {
      const auto from = live[rng.next_u64(live.size())];
      if (system->faults().host_crashed(system->ecan().node(from).host))
        continue;
      ++issued;
      if (system->lookup(from, geom::Point::random(2, rng)).success) ++ok;
    }
    return issued == 0 ? 0.0
                       : static_cast<double>(ok) / static_cast<double>(issued);
  }
};

TEST(PartitionHealSoak, DegradesUnderPartitionAndConvergesAfterHeal) {
  PartitionFixture f(1, 128);
  auto& system = *f.system;

  const double baseline = f.lookup_success(200);
  EXPECT_GT(baseline, 0.99);

  // -- Partition phase: a quarter of the stubs cut off, with loss -------
  system.selector().reset_fallback_stats();
  system.faults().mutable_config().message_loss = 0.1;
  const auto cut = system.faults().partition_stub_fraction(0.25);
  ASSERT_FALSE(cut.empty());

  // Five simulated minutes of republish + retry traffic with fresh joins
  // arriving through the degraded plane, checked every 30 s.
  for (int checkpoint = 0; checkpoint < 10; ++checkpoint) {
    f.nodes.push_back(f.join_one());
    ASSERT_NE(f.nodes.back(), overlay::kInvalidNode)
        << "join hard-failed under partition at checkpoint " << checkpoint;
    system.run_for(30'000.0);
    ASSERT_TRUE(system.maps().check_placement_invariant())
        << "placement invariant broken at t=" << system.events().now();
  }

  // Degraded, not dead: cross-partition queries fail but intra-side ones
  // keep working, and the fault accounting shows the machinery engaged.
  const double under_partition = f.lookup_success(200);
  EXPECT_GT(under_partition, 0.0);
  const auto& maps_stats = system.maps().stats();
  EXPECT_GT(maps_stats.lost_messages + maps_stats.blocked_publishes, 0u);
  EXPECT_GT(maps_stats.publish_retries, 0u);
  EXPECT_GT(system.faults().stats().partition_blocked, 0u);

  // -- Heal: loss off, partitions healed ---------------------------------
  system.faults().mutable_config().message_loss = 0.0;
  system.faults().heal_all_partitions();
  EXPECT_FALSE(system.faults().active());

  // Two TTLs + two republish periods: decay scrubs what the partition
  // stranded, republish refills every live node's records.
  system.run_for(2.0 * system.config().map.ttl_ms +
                 2.0 * system.config().republish_interval_ms);

  ASSERT_TRUE(system.maps().check_placement_invariant());
  ASSERT_TRUE(system.ecan().check_membership_index());
  const double healed = f.lookup_success(200);
  EXPECT_GT(healed, 0.99);

  // Steady state again: replicas * one record per live node per level.
  std::size_t clean = 0;
  for (const auto id : system.ecan().live_nodes())
    clean += static_cast<std::size_t>(system.ecan().node_level(id));
  const auto replicas =
      static_cast<std::size_t>(system.config().map.replicas);
  EXPECT_GE(system.maps().total_entries(), clean);
  EXPECT_LE(system.maps().total_entries(), clean * replicas);
}

TEST(PartitionHealSoak, RepeatedPartitionCyclesStayStable) {
  PartitionFixture f(2, 96);
  auto& system = *f.system;

  for (int cycle = 0; cycle < 3; ++cycle) {
    const auto cut = system.faults().partition_stub_fraction(0.25);
    ASSERT_FALSE(cut.empty());
    system.run_for(60'000.0);
    ASSERT_TRUE(system.maps().check_placement_invariant())
        << "cycle " << cycle;
    system.faults().heal_all_partitions();
    system.run_for(60'000.0);
  }

  system.run_for(2.0 * system.config().map.ttl_ms);
  ASSERT_TRUE(system.maps().check_placement_invariant());
  EXPECT_GT(f.lookup_success(100), 0.99);
}

}  // namespace
}  // namespace topo::core
