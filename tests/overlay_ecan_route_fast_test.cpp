// The scratch fast path of EcanNetwork::route_ecan must be observably
// identical to route_ecan_reference (the pre-fast-path implementation,
// kept verbatim): same hop sequence, same success flag, same
// broken-entry accounting — on clean networks, after churn, and with
// dead table entries left behind by departed nodes. The scale bench's
// seed-comparison mode relies on this equivalence: it measures the two
// routers as *costs* of the same routing function.
#include "overlay/ecan.hpp"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace topo::overlay {
namespace {

class FirstMemberSelector final : public RepresentativeSelector {
 public:
  NodeId select(NodeId, int, const geom::Zone&,
                std::span<const NodeId> members) override {
    return members.front();
  }
};

std::unique_ptr<EcanNetwork> build(std::size_t n, util::Rng& rng,
                                   std::size_t dims = 2) {
  auto ecan = std::make_unique<EcanNetwork>(dims);
  for (net::HostId h = 0; h < n; ++h) ecan->join_random(h, rng);
  return ecan;
}

geom::Point random_point(std::size_t dims, util::Rng& rng) {
  geom::Point p(dims);
  for (std::size_t d = 0; d < dims; ++d) p[d] = rng.next_double();
  return p;
}

/// Routes (from, target) through both implementations and requires
/// identical hop sequences and identical broken-entry deltas.
void expect_routes_identical(const EcanNetwork& ecan, NodeId from,
                             const geom::Point& target,
                             RouteScratch& scratch) {
  const std::uint64_t broken_before = ecan.broken_entry_encounters();
  const RouteResult reference = ecan.route_ecan_reference(from, target);
  const std::uint64_t broken_reference =
      ecan.broken_entry_encounters() - broken_before;

  const std::uint64_t fast_before = ecan.broken_entry_encounters();
  const bool fast_success = ecan.route_ecan(from, target, scratch);
  const std::uint64_t broken_fast =
      ecan.broken_entry_encounters() - fast_before;

  ASSERT_EQ(fast_success, reference.success);
  ASSERT_EQ(scratch.path, reference.path);
  ASSERT_EQ(broken_fast, broken_reference);
}

TEST(EcanRouteFast, MatchesReferenceOnStaticNetwork) {
  for (const std::size_t dims : {2ul, 3ul}) {
    util::Rng rng(17 + dims);
    auto ecan_ptr = build(256, rng, dims);
    EcanNetwork& ecan = *ecan_ptr;
    FirstMemberSelector selector;
    ecan.build_all_tables(selector);

    const auto live = ecan.live_nodes();
    RouteScratch scratch;
    for (int trial = 0; trial < 400; ++trial) {
      const NodeId from = live[rng.next_u64(live.size())];
      const geom::Point target = random_point(dims, rng);
      expect_routes_identical(ecan, from, target, scratch);
    }
  }
}

TEST(EcanRouteFast, MatchesReferenceWithDeadTableEntries) {
  util::Rng rng(23);
  auto ecan_ptr = build(300, rng);
  EcanNetwork& ecan = *ecan_ptr;
  FirstMemberSelector selector;
  ecan.build_all_tables(selector);

  // Departures *after* table construction: untouched tables now hold dead
  // representatives, so routes exercise the broken-entry skip path.
  std::vector<NodeId> live = ecan.live_nodes();
  for (int i = 0; i < 60; ++i) {
    const std::size_t pick = rng.next_u64(live.size());
    ecan.leave(live[pick]);
    live.erase(live.begin() + static_cast<long>(pick));
  }

  RouteScratch scratch;
  std::uint64_t broken_total = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const NodeId from = live[rng.next_u64(live.size())];
    const geom::Point target = random_point(2, rng);
    const std::uint64_t before = ecan.broken_entry_encounters();
    expect_routes_identical(ecan, from, target, scratch);
    broken_total += ecan.broken_entry_encounters() - before;
  }
  // The scenario must actually exercise dead entries to mean anything.
  EXPECT_GT(broken_total, 0u);
}

TEST(EcanRouteFast, MatchesReferenceUnderChurn) {
  util::Rng rng(31);
  EcanNetwork ecan(2);
  FirstMemberSelector selector;
  std::vector<NodeId> live;
  net::HostId next_host = 0;
  RouteScratch scratch;
  for (int step = 0; step < 240; ++step) {
    if (live.size() < 8 || rng.next_bool(0.6)) {
      live.push_back(ecan.join_random(next_host++, rng));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      ecan.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (step % 20 == 19) {
      // Tables rebuilt mid-churn: the flat fast-path tables and the cell
      // cache must agree with what the reference derives from zones.
      ecan.build_all_tables(selector);
      ASSERT_TRUE(ecan.check_membership_index()) << "step " << step;
      for (int trial = 0; trial < 20; ++trial) {
        const NodeId from = live[rng.next_u64(live.size())];
        const geom::Point target = random_point(2, rng);
        expect_routes_identical(ecan, from, target, scratch);
      }
    }
  }
}

TEST(EcanRouteFast, ScratchReusedAcrossCalls) {
  util::Rng rng(41);
  auto ecan_ptr = build(128, rng);
  EcanNetwork& ecan = *ecan_ptr;
  FirstMemberSelector selector;
  ecan.build_all_tables(selector);

  const auto live = ecan.live_nodes();
  RouteScratch scratch;
  // Warm the scratch, then verify a later route fully replaces its
  // contents (the fast path clears before appending).
  ASSERT_TRUE(ecan.route_ecan(live[0], random_point(2, rng), scratch));
  const NodeId from = live[rng.next_u64(live.size())];
  const geom::Point target = random_point(2, rng);
  const RouteResult reference = ecan.route_ecan_reference(from, target);
  ASSERT_TRUE(ecan.route_ecan(from, target, scratch));
  EXPECT_EQ(scratch.path, reference.path);
  EXPECT_EQ(scratch.path.front(), from);
}

}  // namespace
}  // namespace topo::overlay
