// RTT engine selection + the hierarchical engine's exactness guarantee.
//
// The load-bearing property: HierarchicalRttEngine must agree with plain
// full-graph Dijkstra *bit for bit* — not approximately — on every pair,
// across seeds, presets, latency models and multi-homing settings. Link
// weights are quantized to the 2^-20 ms grid, so both engines' path sums
// are exact doubles and operator== is the right comparison; any difference
// at all means the transit-stub decomposition is wrong.
#include "net/rtt_engine.hpp"

#include <gtest/gtest.h>

#include "net/dijkstra_rtt_engine.hpp"
#include "net/hierarchical_rtt_engine.hpp"
#include "net/latency.hpp"
#include "net/rtt_oracle.hpp"
#include "net/shortest_path.hpp"
#include "net/transit_stub.hpp"
#include "util/thread_pool.hpp"

namespace topo::net {
namespace {

Topology make_topology(const TransitStubConfig& config, std::uint64_t seed,
                       LatencyModel model) {
  util::Rng rng(seed);
  Topology t = generate_transit_stub(config, rng);
  assign_latencies(t, model, rng);
  return t;
}

/// Bit-for-bit comparison of every pair in [0, hosts) x [0, hosts) between
/// the hierarchical engine and reference Dijkstra rows.
void expect_all_pairs_identical(const Topology& t) {
  HierarchicalRttEngine engine(t);
  DijkstraScratch scratch;
  for (HostId from = 0; from < t.host_count(); ++from) {
    const auto reference = dijkstra(t, from, scratch);
    for (HostId to = 0; to < t.host_count(); ++to) {
      if (from == to) continue;
      ASSERT_EQ(engine.latency_ms(from, to), reference[to])
          << "pair (" << from << ", " << to << ")";
    }
  }
}

// -- Kind parsing ----------------------------------------------------------

TEST(RttEngineKind, ParsesKnownNames) {
  EXPECT_EQ(rtt_engine_kind_from_string("auto"), RttEngineKind::kAuto);
  EXPECT_EQ(rtt_engine_kind_from_string("dijkstra"), RttEngineKind::kDijkstra);
  EXPECT_EQ(rtt_engine_kind_from_string("hierarchical"),
            RttEngineKind::kHierarchical);
}

TEST(RttEngineKind, UnknownNameFallsBackToAuto) {
  EXPECT_EQ(rtt_engine_kind_from_string("warp-drive"), RttEngineKind::kAuto);
}

TEST(RttEngineKind, NamesRoundTrip) {
  for (const auto kind : {RttEngineKind::kAuto, RttEngineKind::kDijkstra,
                          RttEngineKind::kHierarchical})
    EXPECT_EQ(rtt_engine_kind_from_string(rtt_engine_kind_name(kind)), kind);
}

// -- Metadata validation & engine selection --------------------------------

TEST(RttEngineSelection, GeneratedTopologiesSupportHierarchy) {
  for (const double multihome : {0.0, 0.3, 1.0}) {
    TransitStubConfig config = tsk_tiny();
    config.stub_multihome_probability = multihome;
    const Topology t = make_topology(config, 7, LatencyModel::kGtItmRandom);
    EXPECT_TRUE(topology_supports_hierarchy(t)) << "multihome " << multihome;
  }
}

TEST(RttEngineSelection, AutoPicksHierarchicalWithMetadata) {
  const Topology t =
      make_topology(tsk_tiny(), 8, LatencyModel::kGtItmRandom);
  const auto engine = make_rtt_engine(t, RttEngineKind::kAuto);
  EXPECT_STREQ(engine->name(), "hierarchical");
}

TEST(RttEngineSelection, ExplicitKindsAreHonoredWithMetadata) {
  const Topology t =
      make_topology(tsk_tiny(), 9, LatencyModel::kGtItmRandom);
  EXPECT_STREQ(make_rtt_engine(t, RttEngineKind::kDijkstra)->name(),
               "dijkstra");
  EXPECT_STREQ(make_rtt_engine(t, RttEngineKind::kHierarchical)->name(),
               "hierarchical");
}

/// A connected graph with no transit-stub annotations at all: every host
/// claims stub domain -1, which the validator must reject so kAuto (and an
/// explicit kHierarchical request) land on the Dijkstra fallback.
Topology metadata_free_topology() {
  Topology t;
  for (int i = 0; i < 8; ++i) t.add_host(HostInfo{});
  for (HostId a = 0; a + 1 < 8; ++a)
    t.add_link(a, a + 1, LinkClass::kIntraStub);
  t.add_link(0, 7, LinkClass::kIntraStub);
  t.freeze();
  for (std::size_t i = 0; i < t.link_count(); ++i)
    t.mutable_link(i).latency_ms = 1.0 + static_cast<double>(i);
  return t;
}

TEST(RttEngineSelection, MetadataFreeTopologyFallsBackToDijkstra) {
  const Topology t = metadata_free_topology();
  EXPECT_FALSE(topology_supports_hierarchy(t));
  EXPECT_STREQ(make_rtt_engine(t, RttEngineKind::kAuto)->name(), "dijkstra");
  // An explicit hierarchical request degrades (with a warning), not dies.
  EXPECT_STREQ(make_rtt_engine(t, RttEngineKind::kHierarchical)->name(),
               "dijkstra");
}

TEST(RttEngineSelection, CrossDomainStubLinkDisqualifies) {
  // Two single-host "stub domains" wired to each other and to a transit
  // node; the stub-stub link crosses domains, breaking the decomposition.
  Topology t;
  t.add_host(HostInfo{HostKind::kTransit, 0, -1});
  t.add_host(HostInfo{HostKind::kStub, 0, 0});
  t.add_host(HostInfo{HostKind::kStub, 0, 1});
  t.add_link(0, 1, LinkClass::kTransitStub);
  t.add_link(0, 2, LinkClass::kTransitStub);
  t.add_link(1, 2, LinkClass::kIntraStub);
  t.freeze();
  EXPECT_FALSE(topology_supports_hierarchy(t));
}

TEST(RttEngineSelection, UndeclaredAccessLinkDisqualifies) {
  // A stub-transit link not classed kTransitStub never marks its gateway,
  // so the metadata is inconsistent with the links.
  Topology t;
  t.add_host(HostInfo{HostKind::kTransit, 0, -1});
  t.add_host(HostInfo{HostKind::kStub, 0, 0});
  t.add_link(0, 1, LinkClass::kIntraStub);
  t.freeze();
  EXPECT_FALSE(topology_supports_hierarchy(t));
}

// -- Exactness: bit-for-bit vs full-graph Dijkstra -------------------------

TEST(HierarchicalRttEngine, ExactOnTinyPresetAcrossSeedsAndModels) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const auto model :
         {LatencyModel::kGtItmRandom, LatencyModel::kManual}) {
      const Topology t = make_topology(tsk_tiny(), seed, model);
      SCOPED_TRACE(testing::Message() << "seed " << seed << " model "
                                      << static_cast<int>(model));
      expect_all_pairs_identical(t);
    }
  }
}

TEST(HierarchicalRttEngine, ExactUnderMultihoming) {
  // Multi-homed stubs create multiple gateways per domain and
  // out-and-back-through-core shortest paths — the hard cases.
  for (const double multihome : {0.3, 1.0}) {
    for (const std::uint64_t seed : {11u, 12u}) {
      TransitStubConfig config = tsk_tiny();
      config.stub_multihome_probability = multihome;
      const Topology t =
          make_topology(config, seed, LatencyModel::kGtItmRandom);
      SCOPED_TRACE(testing::Message()
                   << "multihome " << multihome << " seed " << seed);
      expect_all_pairs_identical(t);
    }
  }
}

/// Full-scale presets are too big for all-pairs in a unit test; sample
/// sources and verify the full row bit-for-bit against Dijkstra.
void expect_sampled_rows_identical(const Topology& t, std::uint64_t seed) {
  HierarchicalRttEngine engine(t);
  DijkstraScratch scratch;
  auto rng = util::Rng(seed);
  for (int s = 0; s < 6; ++s) {
    const auto from = static_cast<HostId>(rng.next_u64(t.host_count()));
    const auto reference = dijkstra(t, from, scratch);
    for (HostId to = 0; to < t.host_count(); ++to) {
      if (from == to) continue;
      ASSERT_EQ(engine.latency_ms(from, to), reference[to])
          << "pair (" << from << ", " << to << ")";
    }
  }
}

TEST(HierarchicalRttEngine, ExactOnFullScalePresets) {
  for (const double multihome : {0.0, 0.3}) {
    TransitStubConfig large = tsk_large();
    large.stub_multihome_probability = multihome;
    expect_sampled_rows_identical(
        make_topology(large, 5, LatencyModel::kGtItmRandom), 105);

    TransitStubConfig small = tsk_small();
    small.stub_multihome_probability = multihome;
    expect_sampled_rows_identical(
        make_topology(small, 6, LatencyModel::kManual), 106);
  }
}

TEST(HierarchicalRttEngine, AgreesWithDijkstraEngineThroughInterface) {
  const Topology t = make_topology(tsk_tiny(), 42, LatencyModel::kGtItmRandom);
  const auto hier = make_rtt_engine(t, RttEngineKind::kHierarchical);
  const auto dijk = make_rtt_engine(t, RttEngineKind::kDijkstra);
  auto rng = util::Rng(99);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<HostId>(rng.next_u64(t.host_count()));
    const auto b = static_cast<HostId>(rng.next_u64(t.host_count()));
    if (a == b) continue;
    ASSERT_EQ(hier->latency_ms(a, b), dijk->latency_ms(a, b))
        << "pair (" << a << ", " << b << ")";
  }
}

// -- Facade behaviour on the hierarchical engine ---------------------------

TEST(RttOracleHierarchical, FacadeSemanticsHold) {
  const Topology t = make_topology(tsk_tiny(), 50, LatencyModel::kGtItmRandom);
  RttOracle oracle(t, RttEngineKind::kHierarchical);
  EXPECT_STREQ(oracle.engine_name(), "hierarchical");

  // Self queries are zero; probes count; no Dijkstra rows exist.
  EXPECT_DOUBLE_EQ(oracle.latency_ms(3, 3), 0.0);
  oracle.probe_rtt(0, 1);
  oracle.probe_rtt(1, 2);
  EXPECT_EQ(oracle.probe_count(), 2u);
  EXPECT_EQ(oracle.dijkstra_runs(), 0u);
  EXPECT_EQ(oracle.cached_rows(), 0u);

  // Row-cache knobs and warm() are benign no-ops.
  oracle.set_row_cap(4);
  EXPECT_EQ(oracle.row_cap(), 0u);
  const std::vector<HostId> sources = {0, 1, 2};
  oracle.warm(sources);
  EXPECT_EQ(oracle.dijkstra_runs(), 0u);
  oracle.clear_cache();

  // Symmetry survives the facade.
  EXPECT_EQ(oracle.latency_ms(1, 20), oracle.latency_ms(20, 1));
}

TEST(RttOracleHierarchical, NearestMatchesDijkstraOracle) {
  const Topology t = make_topology(tsk_tiny(), 51, LatencyModel::kGtItmRandom);
  RttOracle hier(t, RttEngineKind::kHierarchical);
  RttOracle dijk(t, RttEngineKind::kDijkstra);
  const std::vector<HostId> candidates = {5, 17, 42, 77, 103};
  for (HostId from = 0; from < t.host_count(); from += 13)
    EXPECT_EQ(hier.nearest(from, candidates), dijk.nearest(from, candidates));
}

TEST(HierarchicalRttEngine, IntrospectionIsSane) {
  const Topology t = make_topology(tsk_tiny(), 52, LatencyModel::kGtItmRandom);
  HierarchicalRttEngine engine(t);
  const std::size_t transit = t.hosts_of_kind(HostKind::kTransit).size();
  // Core = transit nodes + gateways; single-homed tsk_tiny has one gateway
  // per stub domain, multi-homing can only add more.
  EXPECT_GE(engine.core_size(), transit + engine.stub_count());
  EXPECT_GT(engine.stub_count(), 0u);
  EXPECT_GT(engine.footprint_bytes(), 0u);
  EXPECT_GE(engine.build_ms(), 0.0);
}

}  // namespace
}  // namespace topo::net
