#include "overlay/tacan.hpp"

#include <gtest/gtest.h>

namespace topo::overlay {
namespace {

TEST(Tacan, BinnedJoinLandsInSlice) {
  CanNetwork can(2);
  util::Rng rng(1);
  // Fill bins 0..3 of 4 and check every node's zone-defining point.
  for (std::size_t bin = 0; bin < 4; ++bin) {
    for (net::HostId h = 0; h < 8; ++h) {
      const NodeId id = join_binned(can, bin * 8 + h, bin, 4, rng);
      const geom::Zone& zone = can.node(id).zone;
      // The zone (after splits) must at least intersect the slice.
      EXPECT_LT(zone.lo(0), (static_cast<double>(bin) + 1) / 4.0);
      EXPECT_GT(zone.hi(0), static_cast<double>(bin) / 4.0);
    }
  }
  EXPECT_TRUE(can.check_invariants());
}

TEST(Tacan, UniformJoinIsBalanced) {
  CanNetwork can(2);
  util::Rng rng(3);
  for (net::HostId h = 0; h < 512; ++h) can.join_random(h, rng);
  const ImbalanceReport report = measure_imbalance(can);
  // Uniform random joins: top 1% of nodes hold a small share of space.
  EXPECT_LT(report.top1pct_volume, 0.10);
  EXPECT_LT(report.volume_gini, 0.75);
}

TEST(Tacan, ClusteredJoinIsSkewedVersusUniform) {
  util::Rng rng(5);
  // Geographic layout: 90% of nodes fall into one of 2 tiny bins out of
  // 64, mimicking landmark-ordering clustering.
  CanNetwork clustered(2);
  for (net::HostId h = 0; h < 512; ++h) {
    const std::size_t bin =
        rng.next_bool(0.9) ? rng.next_u64(2) : rng.next_u64(64);
    join_binned(clustered, h, bin, 64, rng);
  }
  CanNetwork uniform(2);
  for (net::HostId h = 0; h < 512; ++h) uniform.join_random(h, rng);

  const ImbalanceReport skewed = measure_imbalance(clustered);
  const ImbalanceReport balanced = measure_imbalance(uniform);
  EXPECT_GT(skewed.volume_gini, balanced.volume_gini);
  EXPECT_GT(skewed.top5pct_volume, balanced.top5pct_volume);
  // The intro's claim, qualitatively: a small elite holds most space.
  EXPECT_GT(skewed.top10pct_volume, 0.5);
}

TEST(Tacan, EmptyNetworkReport) {
  CanNetwork can(2);
  const ImbalanceReport report = measure_imbalance(can);
  EXPECT_EQ(report.volume_gini, 0.0);
  EXPECT_EQ(report.max_neighbors, 0.0);
}

TEST(Tacan, NeighborStatsPopulated) {
  CanNetwork can(2);
  util::Rng rng(7);
  for (net::HostId h = 0; h < 128; ++h) can.join_random(h, rng);
  const ImbalanceReport report = measure_imbalance(can);
  EXPECT_GT(report.mean_neighbors, 2.0);
  EXPECT_GE(report.max_neighbors, report.p99_neighbors);
  EXPECT_GE(report.p99_neighbors, report.mean_neighbors);
}

}  // namespace
}  // namespace topo::overlay
