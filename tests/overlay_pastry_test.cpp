#include "overlay/pastry.hpp"

#include <algorithm>
#include <set>

#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace topo::overlay {
namespace {

class FirstSlot final : public RoutingSlotSelector {
 public:
  NodeId select(NodeId, int, int,
                std::span<const NodeId> candidates) override {
    return candidates.front();
  }
};

TEST(Pastry, DigitExtraction) {
  PastryNetwork pastry(16, 4);
  EXPECT_EQ(pastry.digits(), 4);
  EXPECT_EQ(pastry.base(), 16);
  const PastryId id = 0xA3F0;
  EXPECT_EQ(pastry.digit(id, 0), 0xA);
  EXPECT_EQ(pastry.digit(id, 1), 0x3);
  EXPECT_EQ(pastry.digit(id, 2), 0xF);
  EXPECT_EQ(pastry.digit(id, 3), 0x0);
}

TEST(Pastry, SharedPrefixDigits) {
  PastryNetwork pastry(16, 4);
  EXPECT_EQ(pastry.shared_prefix_digits(0xA3F0, 0xA3F0), 4);
  EXPECT_EQ(pastry.shared_prefix_digits(0xA3F0, 0xA3F1), 3);
  EXPECT_EQ(pastry.shared_prefix_digits(0xA3F0, 0xA400), 1);
  EXPECT_EQ(pastry.shared_prefix_digits(0xA3F0, 0xA3C0), 2);
  EXPECT_EQ(pastry.shared_prefix_digits(0xA3F0, 0xB3F0), 0);
}

TEST(Pastry, SlotRange) {
  PastryNetwork pastry(16, 4);
  // Row 0, column 7: ids starting with digit 7.
  auto [lo0, hi0] = pastry.slot_range(0xA3F0, 0, 7);
  EXPECT_EQ(lo0, 0x7000u);
  EXPECT_EQ(hi0, 0x8000u);
  // Row 1 of 0xA3F0, column 5: ids 0xA5xx.
  auto [lo1, hi1] = pastry.slot_range(0xA3F0, 1, 5);
  EXPECT_EQ(lo1, 0xA500u);
  EXPECT_EQ(hi1, 0xA600u);
  // Deepest row.
  auto [lo3, hi3] = pastry.slot_range(0xA3F0, 3, 0xC);
  EXPECT_EQ(lo3, 0xA3FCu);
  EXPECT_EQ(hi3, 0xA3FDu);
}

TEST(Pastry, NumericallyClosestWithWrapAndTies) {
  PastryNetwork pastry(8, 4);
  const NodeId a = pastry.join(0, 10);
  const NodeId b = pastry.join(1, 250);
  EXPECT_EQ(pastry.numerically_closest(5), a);
  EXPECT_EQ(pastry.numerically_closest(253), b);
  EXPECT_EQ(pastry.numerically_closest(1), b);  // wrap: 250 is 7 away, 10 is 9
  EXPECT_EQ(pastry.numerically_closest(2), a);  // tie (8 vs 8): lower id wins
  // Tie at 130: distances 120 each; lower id wins.
  EXPECT_EQ(pastry.numerically_closest(130), a);
}

TEST(Pastry, LeafSetIsRingNeighbors) {
  PastryNetwork pastry(8, 4, /*leaf_set_half=*/2);
  std::vector<NodeId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(pastry.join(static_cast<net::HostId>(i),
                              static_cast<PastryId>(i * 32)));
  const auto leaves = pastry.leaf_set(ids[0]);  // id 0
  // Two successors (32, 64) and two predecessors (224, 192).
  std::set<PastryId> leaf_ids;
  for (const auto n : leaves) leaf_ids.insert(pastry.node(n).id);
  EXPECT_EQ(leaf_ids, (std::set<PastryId>{32, 64, 192, 224}));
}

TEST(Pastry, LeafSetTinyRing) {
  PastryNetwork pastry(8, 4, 4);
  const NodeId a = pastry.join(0, 10);
  EXPECT_TRUE(pastry.leaf_set(a).empty());
  const NodeId b = pastry.join(1, 200);
  const auto leaves = pastry.leaf_set(a);
  EXPECT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0], b);
}

TEST(Pastry, BuildTablesRespectRegions) {
  PastryNetwork pastry(16, 2);
  util::Rng rng(3);
  for (int i = 0; i < 128; ++i)
    pastry.join_random(static_cast<net::HostId>(i), rng);
  FirstSlot selector;
  pastry.build_all_tables(selector);
  EXPECT_TRUE(pastry.check_invariants());
}

TEST(Pastry, RoutingReachesNumericallyClosest) {
  PastryNetwork pastry(24, 4);
  util::Rng rng(5);
  for (int i = 0; i < 256; ++i)
    pastry.join_random(static_cast<net::HostId>(i), rng);
  FirstSlot selector;
  pastry.build_all_tables(selector);
  const auto live = pastry.live_nodes();
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId from = live[rng.next_u64(live.size())];
    const PastryId key = rng.next_u64(pastry.ring_size());
    const RouteResult route = pastry.route(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), pastry.numerically_closest(key));
  }
}

TEST(Pastry, RoutingIsLogarithmic) {
  PastryNetwork pastry(32, 4);
  util::Rng rng(7);
  for (int i = 0; i < 1024; ++i)
    pastry.join_random(static_cast<net::HostId>(i), rng);
  FirstSlot selector;
  pastry.build_all_tables(selector);
  const auto live = pastry.live_nodes();
  util::Samples hops;
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId from = live[rng.next_u64(live.size())];
    const RouteResult route =
        pastry.route(from, rng.next_u64(pastry.ring_size()));
    ASSERT_TRUE(route.success);
    hops.add(static_cast<double>(route.hops()));
  }
  // log16(1024) = 2.5 expected; generous bound.
  EXPECT_LT(hops.mean(), 5.0);
}

TEST(Pastry, RoutingSurvivesDeadSlots) {
  PastryNetwork pastry(24, 4);
  util::Rng rng(9);
  for (int i = 0; i < 256; ++i)
    pastry.join_random(static_cast<net::HostId>(i), rng);
  FirstSlot selector;
  pastry.build_all_tables(selector);
  auto live = pastry.live_nodes();
  rng.shuffle(live);
  for (int i = 0; i < 64; ++i)
    pastry.leave(live[static_cast<std::size_t>(i)]);
  const auto survivors = pastry.live_nodes();
  int delivered = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const NodeId from = survivors[rng.next_u64(survivors.size())];
    if (pastry.route(from, rng.next_u64(pastry.ring_size())).success)
      ++delivered;
  }
  EXPECT_EQ(delivered, 100);
  EXPECT_GT(pastry.broken_slot_encounters(), 0u);
}

TEST(Pastry, RefreshSlotReplacesDeadEntry) {
  PastryNetwork pastry(16, 2);
  util::Rng rng(11);
  for (int i = 0; i < 96; ++i)
    pastry.join_random(static_cast<net::HostId>(i), rng);
  FirstSlot selector;
  pastry.build_all_tables(selector);
  for (const NodeId n : pastry.live_nodes()) {
    for (int row = 0; row < pastry.digits(); ++row) {
      for (int column = 0; column < pastry.base(); ++column) {
        const NodeId entry = pastry.table_entry(n, row, column);
        if (entry == kInvalidNode || entry == n) continue;
        pastry.leave(entry);
        pastry.refresh_slot(n, row, column, selector);
        EXPECT_NE(pastry.table_entry(n, row, column), entry);
        return;
      }
    }
  }
  FAIL() << "no filled slot found";
}

TEST(Pastry, SingleNodeDelivery) {
  PastryNetwork pastry(16, 4);
  const NodeId only = pastry.join(0, 0x1234);
  const RouteResult route = pastry.route(only, 0xFFFF);
  EXPECT_TRUE(route.success);
  EXPECT_EQ(route.hops(), 0u);
}

TEST(Pastry, OwnDigitColumnStaysEmpty) {
  PastryNetwork pastry(16, 4);
  util::Rng rng(13);
  for (int i = 0; i < 64; ++i)
    pastry.join_random(static_cast<net::HostId>(i), rng);
  FirstSlot selector;
  pastry.build_all_tables(selector);
  for (const NodeId n : pastry.live_nodes()) {
    const PastryId id = pastry.node(n).id;
    for (int row = 0; row < pastry.digits(); ++row)
      EXPECT_EQ(pastry.table_entry(n, row, pastry.digit(id, row)),
                kInvalidNode);
  }
}

}  // namespace
}  // namespace topo::overlay
