// End-to-end tests of the Chord dynamic facade: the full soft-state
// lifecycle (join/publish/select, republish vs TTL, graceful leave vs
// crash, reactive finger repair) on the ring overlay.
#include "core/chord_overlay.hpp"

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "util/stats.hpp"

namespace topo::core {
namespace {

net::Topology make_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  net::Topology t = net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(t, net::LatencyModel::kManual, rng);
  return t;
}

ChordSystemConfig small_config() {
  ChordSystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 12;
  return config;
}

TEST(ChordOverlay, JoinPublishesAndBuildsFingers) {
  const net::Topology t = make_topology(1);
  ChordSoftStateOverlay system(t, small_config());
  util::Rng rng(10);
  for (int i = 0; i < 64; ++i)
    system.join(static_cast<net::HostId>(rng.next_u64(t.host_count())));
  EXPECT_EQ(system.chord().size(), 64u);
  EXPECT_EQ(system.maps().total_entries(), 64u);  // one ring record each
  EXPECT_EQ(system.stats().joins, 64u);
  EXPECT_TRUE(system.chord().check_ring_consistency());
}

TEST(ChordOverlay, LookupsReachResponsibleNode) {
  const net::Topology t = make_topology(2);
  ChordSoftStateOverlay system(t, small_config());
  util::Rng rng(20);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 80; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  for (int trial = 0; trial < 80; ++trial) {
    const auto from = nodes[rng.next_u64(nodes.size())];
    const auto key = rng.next_u64(system.chord().ring_size());
    const overlay::RouteResult route = system.lookup(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), system.chord().successor_of(key));
  }
}

TEST(ChordOverlay, JoinMigratesResponsibility) {
  const net::Topology t = make_topology(3);
  ChordSoftStateOverlay system(t, small_config());
  util::Rng rng(30);
  for (int i = 0; i < 64; ++i)
    system.join(static_cast<net::HostId>(rng.next_u64(t.host_count())));
  // Every record must sit on the successor of its key.
  std::size_t verified = 0;
  for (const auto id : system.chord().live_nodes()) {
    const auto vector_it = system.vectors().find(id);
    ASSERT_NE(vector_it, system.vectors().end());
    const auto key = system.maps().key_of(
        system.landmarks().landmark_number(vector_it->second));
    EXPECT_GT(system.maps().store_size(system.chord().successor_of(key)), 0u);
    ++verified;
  }
  EXPECT_EQ(verified, 64u);
}

TEST(ChordOverlay, GracefulLeaveHandsStateOver) {
  const net::Topology t = make_topology(4);
  ChordSoftStateOverlay system(t, small_config());
  util::Rng rng(40);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 48; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  const std::size_t entries_before = system.maps().total_entries();
  const auto victim = nodes[7];
  const std::size_t hosted = system.maps().store_size(victim);
  system.leave(victim);
  EXPECT_FALSE(system.chord().alive(victim));
  // Its own record is scrubbed; the records it hosted survive elsewhere.
  EXPECT_EQ(system.maps().total_entries(), entries_before - 1);
  EXPECT_EQ(system.maps().store_size(victim), 0u);
  (void)hosted;
  // Routing still delivers.
  for (int trial = 0; trial < 20; ++trial) {
    const auto from = nodes[rng.next_u64(nodes.size())];
    if (!system.chord().alive(from)) continue;
    EXPECT_TRUE(
        system.lookup(from, rng.next_u64(system.chord().ring_size()))
            .success);
  }
}

TEST(ChordOverlay, CrashLosesHostedStateButSystemRecovers) {
  const net::Topology t = make_topology(5);
  ChordSystemConfig config = small_config();
  config.ttl_ms = 10'000.0;
  config.republish_interval_ms = 2'000.0;
  ChordSoftStateOverlay system(t, config);
  util::Rng rng(50);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 64; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  rng.shuffle(nodes);
  for (int i = 0; i < 16; ++i) system.crash(nodes[static_cast<std::size_t>(i)]);
  // Lookups deliver throughout (repairing fingers lazily)...
  for (int trial = 0; trial < 40; ++trial) {
    const auto from = nodes[16 + rng.next_u64(nodes.size() - 16)];
    ASSERT_TRUE(
        system.lookup(from, rng.next_u64(system.chord().ring_size()))
            .success);
  }
  // ...and after a republish cycle the lost records are restored for all
  // survivors (48 alive nodes -> >= 48 records).
  system.run_for(3'000.0);
  EXPECT_GE(system.maps().total_entries(), 48u);
  EXPECT_EQ(system.stats().crashes, 16u);
}

TEST(ChordOverlay, RepublishKeepsRecordsAliveDecayWithout) {
  const net::Topology t = make_topology(6);
  ChordSystemConfig config = small_config();
  config.ttl_ms = 1'000.0;
  config.republish_interval_ms = 400.0;
  ChordSoftStateOverlay system(t, config);
  util::Rng rng(60);
  for (int i = 0; i < 32; ++i)
    system.join(static_cast<net::HostId>(rng.next_u64(t.host_count())));
  system.run_for(5'000.0);
  EXPECT_GT(system.maps().total_entries(), 0u);
  EXPECT_GT(system.stats().republishes, 0u);

  ChordSystemConfig decay = small_config();
  decay.ttl_ms = 1'000.0;
  decay.republish_interval_ms = 1e12;
  ChordSoftStateOverlay decaying(t, decay);
  util::Rng rng2(61);
  for (int i = 0; i < 32; ++i)
    decaying.join(static_cast<net::HostId>(rng2.next_u64(t.host_count())));
  decaying.run_for(2'000.0);
  EXPECT_EQ(decaying.maps().total_entries(), 0u);
}

TEST(ChordOverlay, HeavyChurnStaysConsistent) {
  const net::Topology t = make_topology(7);
  ChordSystemConfig config = small_config();
  config.ttl_ms = 20'000.0;
  config.republish_interval_ms = 5'000.0;
  ChordSoftStateOverlay system(t, config);
  util::Rng rng(70);
  std::vector<overlay::NodeId> live;
  for (int step = 0; step < 250; ++step) {
    const double dice = rng.next_double();
    if (live.size() < 8 || dice < 0.5) {
      live.push_back(system.join(
          static_cast<net::HostId>(rng.next_u64(t.host_count()))));
    } else if (dice < 0.75) {
      const std::size_t pick = rng.next_u64(live.size());
      system.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      system.crash(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    system.run_for(100.0);
    if (step % 50 == 49) {
      ASSERT_TRUE(system.chord().check_ring_consistency()) << "step " << step;
      ASSERT_TRUE(system.maps().check_placement_invariant()) << "step " << step;
      const auto from = live[rng.next_u64(live.size())];
      ASSERT_TRUE(
          system.lookup(from, rng.next_u64(system.chord().ring_size()))
              .success);
    }
  }
  EXPECT_EQ(system.chord().size(), live.size());
}

TEST(ChordOverlay, LastNodeLeaveIsClean) {
  const net::Topology t = make_topology(8);
  ChordSoftStateOverlay system(t, small_config());
  const auto only = system.join(0);
  system.leave(only);
  EXPECT_EQ(system.chord().size(), 0u);
  EXPECT_EQ(system.maps().total_entries(), 0u);
}

}  // namespace
}  // namespace topo::core
