#include "net/rtt_oracle.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/shortest_path.hpp"
#include "net/transit_stub.hpp"

namespace topo::net {
namespace {

Topology tiny_with_latencies(std::uint64_t seed) {
  util::Rng rng(seed);
  Topology t = generate_transit_stub(tsk_tiny(), rng);
  assign_latencies(t, LatencyModel::kGtItmRandom, rng);
  return t;
}

// Tests that assert row-cache semantics (dijkstra_runs / cached_rows /
// eviction) construct with an explicit kDijkstra: under the default kAuto
// a generated transit-stub topology selects the hierarchical engine,
// which has no rows to count. Engine-agnostic behaviour (probe counting,
// noise, nearest) keeps the default constructor on purpose.

TEST(RttOracle, MatchesDijkstra) {
  const Topology t = tiny_with_latencies(1);
  RttOracle oracle(t);
  const auto reference = dijkstra(t, 0);
  for (HostId h = 0; h < t.host_count(); h += 7)
    EXPECT_NEAR(oracle.latency_ms(0, h), reference[h], 1e-9);
}

TEST(RttOracle, SelfLatencyZeroWithoutDijkstra) {
  const Topology t = tiny_with_latencies(2);
  RttOracle oracle(t, RttEngineKind::kDijkstra);
  EXPECT_DOUBLE_EQ(oracle.latency_ms(5, 5), 0.0);
  EXPECT_EQ(oracle.dijkstra_runs(), 0u);
}

TEST(RttOracle, Symmetry) {
  const Topology t = tiny_with_latencies(3);
  RttOracle oracle(t);
  EXPECT_NEAR(oracle.latency_ms(1, 20), oracle.latency_ms(20, 1), 1e-9);
}

TEST(RttOracle, CachesRowsPerSource) {
  const Topology t = tiny_with_latencies(4);
  RttOracle oracle(t, RttEngineKind::kDijkstra);
  oracle.latency_ms(0, 1);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
  oracle.latency_ms(0, 2);
  oracle.latency_ms(0, 3);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);  // same source: cached
  // Reverse direction reuses the cached row of the destination.
  oracle.latency_ms(9, 0);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
  oracle.latency_ms(9, 10);
  EXPECT_EQ(oracle.dijkstra_runs(), 2u);
}

// Regression: the pre-rewrite oracle did two hash lookups before falling
// back to building `from`'s row; the flat slot table must keep the
// either-endpoint-cached semantics — querying (to, from) after (from, to)
// is served from the existing row, with no extra Dijkstra.
TEST(RttOracle, ReverseQueryReusesCachedRow) {
  const Topology t = tiny_with_latencies(12);
  RttOracle oracle(t, RttEngineKind::kDijkstra);
  const double forward = oracle.latency_ms(3, 47);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
  EXPECT_DOUBLE_EQ(oracle.latency_ms(47, 3), forward);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
  EXPECT_EQ(oracle.cached_rows(), 1u);
}

TEST(RttOracle, BoundedModeEvictsOldestUnpinnedRow) {
  const Topology t = tiny_with_latencies(13);
  RttOracle oracle(t, RttEngineKind::kDijkstra);
  oracle.set_row_cap(2);
  const double d01 = oracle.latency_ms(0, 1);
  oracle.latency_ms(10, 1);
  oracle.latency_ms(20, 1);  // over cap: row 0 (oldest) is evicted
  EXPECT_EQ(oracle.cached_rows(), 2u);
  EXPECT_EQ(oracle.dijkstra_runs(), 3u);
  // Values stay exact — the evicted row is simply recomputed.
  EXPECT_DOUBLE_EQ(oracle.latency_ms(0, 1), d01);
  EXPECT_EQ(oracle.dijkstra_runs(), 4u);
}

TEST(RttOracle, BoundedModeNeverEvictsPinnedRows) {
  const Topology t = tiny_with_latencies(14);
  RttOracle oracle(t, RttEngineKind::kDijkstra);
  oracle.set_row_cap(2);
  const std::vector<HostId> pinned = {0, 1};
  oracle.warm(pinned);
  EXPECT_EQ(oracle.dijkstra_runs(), 2u);
  for (HostId h = 10; h < 20; ++h) oracle.latency_ms(h, 5);
  // Warmed rows survived the churn: querying them adds no Dijkstra runs.
  const auto runs = oracle.dijkstra_runs();
  oracle.latency_ms(0, 9);
  oracle.latency_ms(1, 9);
  EXPECT_EQ(oracle.dijkstra_runs(), runs);
}

TEST(RttOracle, ClearCacheForcesRecompute) {
  const Topology t = tiny_with_latencies(5);
  RttOracle oracle(t, RttEngineKind::kDijkstra);
  oracle.latency_ms(0, 1);
  oracle.clear_cache();
  oracle.latency_ms(0, 1);
  EXPECT_EQ(oracle.dijkstra_runs(), 2u);
}

TEST(RttOracle, ProbeCounting) {
  const Topology t = tiny_with_latencies(6);
  RttOracle oracle(t);
  EXPECT_EQ(oracle.probe_count(), 0u);
  oracle.probe_rtt(0, 1);
  EXPECT_EQ(oracle.probe_count(), 1u);
  oracle.latency_ms(0, 2);  // simulator bookkeeping: not counted
  EXPECT_EQ(oracle.probe_count(), 1u);
  const std::vector<HostId> candidates = {1, 2, 3, 4};
  oracle.probe_nearest(0, candidates);
  EXPECT_EQ(oracle.probe_count(), 5u);
  oracle.reset_probe_count();
  EXPECT_EQ(oracle.probe_count(), 0u);
}

TEST(RttOracle, NearestPicksTrueMinimum) {
  const Topology t = tiny_with_latencies(7);
  RttOracle oracle(t);
  const std::vector<HostId> candidates = {10, 20, 30, 40, 50};
  const HostId best = oracle.nearest(0, candidates);
  ASSERT_NE(best, kInvalidHost);
  for (const HostId c : candidates)
    EXPECT_LE(oracle.latency_ms(0, best), oracle.latency_ms(0, c));
}

TEST(RttOracle, NearestOfEmptyIsInvalid) {
  const Topology t = tiny_with_latencies(8);
  RttOracle oracle(t);
  EXPECT_EQ(oracle.nearest(0, {}), kInvalidHost);
}

TEST(RttOracle, MeasurementNoiseAffectsProbesOnly) {
  const Topology t = tiny_with_latencies(10);
  RttOracle oracle(t);
  const double truth = oracle.latency_ms(0, 50);
  oracle.set_measurement_noise(0.25, 99);
  // Bookkeeping stays exact.
  EXPECT_DOUBLE_EQ(oracle.latency_ms(0, 50), truth);
  // Probes jitter within the configured band and are not constant.
  double lo = truth;
  double hi = truth;
  for (int i = 0; i < 200; ++i) {
    const double sample = oracle.probe_rtt(0, 50);
    EXPECT_GE(sample, truth * 0.75 - 1e-9);
    EXPECT_LE(sample, truth * 1.25 + 1e-9);
    lo = std::min(lo, sample);
    hi = std::max(hi, sample);
  }
  EXPECT_LT(lo, truth * 0.99);
  EXPECT_GT(hi, truth * 1.01);
  EXPECT_DOUBLE_EQ(oracle.measurement_noise(), 0.25);
}

TEST(RttOracle, ProbeNearestUsesNoisyReadings) {
  const Topology t = tiny_with_latencies(11);
  RttOracle oracle(t);
  oracle.set_measurement_noise(0.9, 7);  // extreme noise
  const std::vector<HostId> candidates = {10, 20, 30, 40, 50};
  // With heavy noise the noisy argmin must disagree with the true argmin
  // at least once over repeated trials.
  const HostId truth = oracle.nearest(0, candidates);
  bool disagreed = false;
  for (int i = 0; i < 50 && !disagreed; ++i)
    disagreed = oracle.probe_nearest(0, candidates) != truth;
  EXPECT_TRUE(disagreed);
}

TEST(RttOracle, WarmPrecomputesRows) {
  const Topology t = tiny_with_latencies(9);
  RttOracle oracle(t, RttEngineKind::kDijkstra);
  const std::vector<HostId> sources = {0, 1, 2};
  oracle.warm(sources);
  EXPECT_EQ(oracle.dijkstra_runs(), 3u);
  oracle.latency_ms(1, 50);
  EXPECT_EQ(oracle.dijkstra_runs(), 3u);
}

}  // namespace
}  // namespace topo::net
