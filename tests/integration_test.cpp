// Miniature end-to-end versions of the paper's experiments: each test runs
// the same pipeline as the corresponding bench, at unit-test scale, and
// asserts the qualitative result the paper reports.
#include <memory>

#include <gtest/gtest.h>

#include "core/selectors.hpp"
#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "proximity/nn_search.hpp"
#include "sim/metrics.hpp"

namespace topo {
namespace {

struct World {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;

  World(std::uint64_t seed, net::LatencyModel model, int landmark_count) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, model, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    proximity::LandmarkConfig config;
    config.scale_ms = model == net::LatencyModel::kManual ? 60.0 : 300.0;
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, landmark_count, rng,
                                              config));
  }
};

/// Builds an eCAN of `n` members, tables selected by `selector_kind`
/// ("random" | "soft" | "oracle"), and measures stretch.
struct OverlayRun {
  std::unique_ptr<overlay::EcanNetwork> ecan;
  std::unique_ptr<softstate::MapService> maps;
  core::VectorStore vectors;
  sim::RoutingSample sample;
};

OverlayRun run_overlay(World& world, std::size_t n,
                       const std::string& selector_kind,
                       std::size_t rtt_budget, std::uint64_t seed,
                       std::size_t queries = 300) {
  OverlayRun run;
  util::Rng rng(seed);
  run.ecan = std::make_unique<overlay::EcanNetwork>(2);
  std::vector<overlay::NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    const auto host = static_cast<net::HostId>(
        rng.next_u64(world.topology.host_count()));
    nodes.push_back(run.ecan->join_random(host, rng));
  }
  run.maps = std::make_unique<softstate::MapService>(
      *run.ecan, *world.landmarks, softstate::MapConfig{});
  for (const auto id : nodes) {
    run.vectors[id] =
        world.landmarks->measure(*world.oracle, run.ecan->node(id).host);
    run.maps->publish(id, run.vectors[id], 0.0);
  }
  std::unique_ptr<overlay::RepresentativeSelector> selector;
  if (selector_kind == "random") {
    selector = std::make_unique<core::RandomSelector>(util::Rng(seed + 1));
  } else if (selector_kind == "oracle") {
    selector =
        std::make_unique<core::OracleSelector>(*run.ecan, *world.oracle);
  } else {
    selector = std::make_unique<core::SoftStateSelector>(
        *run.ecan, *run.maps, *world.oracle, run.vectors, rtt_budget,
        util::Rng(seed + 1));
  }
  run.ecan->build_all_tables(*selector);
  util::Rng measure_rng(seed + 2);
  run.sample =
      sim::measure_ecan_routing(*run.ecan, *world.oracle, queries, measure_rng);
  return run;
}

TEST(Integration, Fig2Shape_EcanBeatsCanOnLogicalHops) {
  World world(1, net::LatencyModel::kManual, 8);
  util::Rng rng(10);
  overlay::EcanNetwork ecan(2);
  for (int i = 0; i < 512; ++i)
    ecan.join_random(
        static_cast<net::HostId>(rng.next_u64(world.topology.host_count())),
        rng);
  core::RandomSelector selector{util::Rng(11)};
  ecan.build_all_tables(selector);
  util::Rng m1(12);
  util::Rng m2(12);
  const auto ecan_sample = sim::measure_ecan_routing(ecan, *world.oracle, 200, m1);
  const auto can_sample = sim::measure_can_routing(ecan, *world.oracle, 200, m2);
  EXPECT_LT(ecan_sample.logical_hops.mean(),
            0.5 * can_sample.logical_hops.mean());
}

TEST(Integration, Fig3Shape_HybridBeatsErsPerProbe) {
  World world(2, net::LatencyModel::kManual, 10);
  util::Rng rng(20);
  overlay::CanNetwork can(2);
  for (net::HostId h = 0; h < world.topology.host_count(); ++h)
    can.join_random(h, rng);
  proximity::ProximityDatabase database;
  for (net::HostId h = 0; h < world.topology.host_count(); h += 2)
    database.push_back(proximity::ProximityRecord{
        h, world.landmarks->measure(*world.oracle, h)});

  double hybrid_stretch = 0.0;
  double ers_stretch = 0.0;
  int queries = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const auto query = static_cast<net::HostId>(
        1 + 2 * rng.next_u64(world.topology.host_count() / 2 - 1));
    const auto qv = world.landmarks->measure(*world.oracle, query);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& record : database)
      best = std::min(best, world.oracle->latency_ms(query, record.host));
    if (best <= 0.0) continue;
    const auto hybrid =
        proximity::hybrid_nn_search(*world.oracle, query, qv, database, 10);
    const auto start = can.live_nodes()[rng.next_u64(can.size())];
    const auto ers = proximity::ers_best_rtt_curve(can, *world.oracle, query,
                                                   start, 10, rng);
    hybrid_stretch += hybrid.rtt_ms / best;
    ers_stretch += ers.back() / best;
    ++queries;
  }
  ASSERT_GT(queries, 5);
  EXPECT_LE(hybrid_stretch, ers_stretch);
}

TEST(Integration, Fig10Shape_MoreProbesReduceStretch) {
  World world(3, net::LatencyModel::kManual, 10);
  const double stretch_1 =
      run_overlay(world, 192, "soft", 1, 30).sample.stretch.mean();
  const double stretch_16 =
      run_overlay(world, 192, "soft", 16, 30).sample.stretch.mean();
  const double optimal =
      run_overlay(world, 192, "oracle", 1, 30).sample.stretch.mean();
  EXPECT_LE(stretch_16, stretch_1 + 0.05);
  // "Optimal" is per-hop optimal (the closest member per cell), which is
  // not path-optimal; at this tiny scale the soft-state pick can land
  // slightly below it, so only assert it is in the same neighborhood.
  EXPECT_LE(optimal, stretch_16 + 0.3);
}

TEST(Integration, Fig14Shape_GlobalStateBeatsRandom) {
  World world(4, net::LatencyModel::kManual, 10);
  const double soft =
      run_overlay(world, 256, "soft", 10, 40).sample.stretch.mean();
  const double random =
      run_overlay(world, 256, "random", 10, 40).sample.stretch.mean();
  EXPECT_LT(soft, random);
}

TEST(Integration, OptimalGapExistsVersusShortestPath) {
  // Section 5.4's first gap: even oracle-optimal neighbor selection pays a
  // stretch > 1 for meeting the overlay's structural constraint.
  World world(5, net::LatencyModel::kManual, 10);
  const auto run = run_overlay(world, 256, "oracle", 1, 50);
  EXPECT_GT(run.sample.stretch.mean(), 1.05);
}

TEST(Integration, GtItmLatenciesAreHarder) {
  // The paper: landmark clustering differentiates regular (manual)
  // latencies better, so stretch approximates optimal more closely there.
  World manual_world(6, net::LatencyModel::kManual, 10);
  World gtitm_world(6, net::LatencyModel::kGtItmRandom, 10);
  const double manual_gap =
      run_overlay(manual_world, 192, "soft", 10, 60).sample.stretch.mean() /
      run_overlay(manual_world, 192, "oracle", 1, 60).sample.stretch.mean();
  const double gtitm_gap =
      run_overlay(gtitm_world, 192, "soft", 10, 61).sample.stretch.mean() /
      run_overlay(gtitm_world, 192, "oracle", 1, 61).sample.stretch.mean();
  // Both gaps are >= ~1; the manual one should not be dramatically worse.
  EXPECT_LT(manual_gap, gtitm_gap + 0.5);
}

}  // namespace
}  // namespace topo
