#include "overlay/can.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace topo::overlay {
namespace {

geom::Point make_point(double x, double y) {
  geom::Point p(2);
  p[0] = x;
  p[1] = y;
  return p;
}

TEST(Can, FirstJoinOwnsWholeSpace) {
  CanNetwork can(2);
  const NodeId id = can.join(0, make_point(0.3, 0.3));
  EXPECT_EQ(can.size(), 1u);
  EXPECT_DOUBLE_EQ(can.node(id).zone.volume(), 1.0);
  EXPECT_TRUE(can.node(id).neighbors.empty());
}

TEST(Can, SecondJoinSplitsInHalf) {
  CanNetwork can(2);
  const NodeId a = can.join(0, make_point(0.1, 0.1));
  const NodeId b = can.join(1, make_point(0.9, 0.9));
  EXPECT_DOUBLE_EQ(can.node(a).zone.volume(), 0.5);
  EXPECT_DOUBLE_EQ(can.node(b).zone.volume(), 0.5);
  // The joiner takes the half containing its point.
  EXPECT_TRUE(can.node(b).zone.contains(make_point(0.9, 0.9)));
  EXPECT_TRUE(can.node(a).zone.contains(make_point(0.1, 0.1)));
  // They are each other's neighbors.
  EXPECT_EQ(can.node(a).neighbors, std::vector<NodeId>{b});
  EXPECT_EQ(can.node(b).neighbors, std::vector<NodeId>{a});
}

TEST(Can, OwnerOfFindsCorrectZone) {
  CanNetwork can(2);
  util::Rng rng(3);
  std::vector<NodeId> nodes;
  for (net::HostId h = 0; h < 50; ++h)
    nodes.push_back(can.join_random(h, rng));
  for (int trial = 0; trial < 200; ++trial) {
    const geom::Point p = geom::Point::random(2, rng);
    const NodeId owner = can.owner_of(p);
    EXPECT_TRUE(can.node(owner).zone.contains(p));
  }
}

TEST(Can, InvariantsAfterJoins) {
  CanNetwork can(2);
  util::Rng rng(5);
  for (net::HostId h = 0; h < 64; ++h) {
    can.join_random(h, rng);
    if (h % 16 == 15) {
      EXPECT_TRUE(can.check_invariants());
    }
  }
  EXPECT_TRUE(can.check_invariants());
}

TEST(Can, RoutingReachesOwner) {
  CanNetwork can(2);
  util::Rng rng(7);
  for (net::HostId h = 0; h < 100; ++h) can.join_random(h, rng);
  const auto live = can.live_nodes();
  for (int trial = 0; trial < 100; ++trial) {
    const NodeId from = live[rng.next_u64(live.size())];
    const geom::Point key = geom::Point::random(2, rng);
    const RouteResult route = can.route(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.front(), from);
    EXPECT_EQ(route.path.back(), can.owner_of(key));
    // Path steps are actual neighbor links.
    for (std::size_t i = 1; i < route.path.size(); ++i) {
      const auto& neighbors = can.node(route.path[i - 1]).neighbors;
      EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), route.path[i]),
                neighbors.end());
    }
  }
}

TEST(Can, RouteToOwnKeyIsZeroHops) {
  CanNetwork can(2);
  util::Rng rng(9);
  for (net::HostId h = 0; h < 20; ++h) can.join_random(h, rng);
  const NodeId node = can.live_nodes()[0];
  const RouteResult route = can.route(node, can.node(node).zone.center());
  EXPECT_TRUE(route.success);
  EXPECT_EQ(route.hops(), 0u);
}

TEST(Can, LeaveWithLeafBuddyMerges) {
  CanNetwork can(2);
  const NodeId a = can.join(0, make_point(0.1, 0.1));
  const NodeId b = can.join(1, make_point(0.9, 0.9));
  const auto report = can.leave(b);
  EXPECT_EQ(report.taker, a);
  EXPECT_EQ(report.moved, kInvalidNode);
  EXPECT_DOUBLE_EQ(can.node(a).zone.volume(), 1.0);
  EXPECT_FALSE(can.alive(b));
  EXPECT_TRUE(can.check_invariants());
}

TEST(Can, LeaveLastNodeEmptiesNetwork) {
  CanNetwork can(2);
  const NodeId a = can.join(0, make_point(0.5, 0.5));
  can.leave(a);
  EXPECT_EQ(can.size(), 0u);
  EXPECT_TRUE(can.empty());
  // The network is reusable afterwards.
  const NodeId b = can.join(1, make_point(0.2, 0.2));
  EXPECT_DOUBLE_EQ(can.node(b).zone.volume(), 1.0);
}

TEST(Can, LeaveWithDeepBuddyUsesHandoff) {
  CanNetwork can(2);
  util::Rng rng(11);
  // Build an intentionally unbalanced tree: many nodes in one corner.
  const NodeId first = can.join(0, make_point(0.9, 0.9));
  for (net::HostId h = 1; h < 20; ++h) {
    geom::Point p = geom::Point::random(2, rng);
    p[0] *= 0.25;  // crowd the left edge
    p[1] *= 0.25;
    can.join(h, p);
  }
  // Departure of the big-zone node requires a deepest-buddy handoff.
  const auto report = can.leave(first);
  EXPECT_NE(report.taker, kInvalidNode);
  EXPECT_TRUE(can.check_invariants());
}

TEST(Can, ChurnPropertyInvariantsHold) {
  util::Rng rng(13);
  CanNetwork can(2);
  std::vector<NodeId> live;
  net::HostId next_host = 0;
  for (int step = 0; step < 400; ++step) {
    const bool join = live.size() < 4 || rng.next_bool(0.6);
    if (join) {
      live.push_back(can.join_random(next_host++, rng));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      can.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (step % 50 == 49) {
      ASSERT_TRUE(can.check_invariants()) << step;
    }
  }
  EXPECT_TRUE(can.check_invariants());
  EXPECT_EQ(can.size(), live.size());
}

TEST(Can, ChurnRoutingStillWorks) {
  util::Rng rng(17);
  CanNetwork can(3);  // exercise a higher dimension
  std::vector<NodeId> live;
  net::HostId next_host = 0;
  for (int step = 0; step < 200; ++step) {
    if (live.size() < 4 || rng.next_bool(0.55)) {
      live.push_back(can.join_random(next_host++, rng));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      can.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId from = live[rng.next_u64(live.size())];
    const geom::Point key = geom::Point::random(3, rng);
    const RouteResult route = can.route(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), can.owner_of(key));
  }
}

TEST(Can, GreedyNextHopMakesProgress) {
  CanNetwork can(2);
  util::Rng rng(19);
  for (net::HostId h = 0; h < 60; ++h) can.join_random(h, rng);
  for (int trial = 0; trial < 100; ++trial) {
    const auto live = can.live_nodes();
    const NodeId from = live[rng.next_u64(live.size())];
    const geom::Point key = geom::Point::random(2, rng);
    if (can.node(from).zone.contains(key)) continue;
    const NodeId next = can.greedy_next_hop(from, key);
    ASSERT_NE(next, kInvalidNode);
    EXPECT_LT(can.node(next).zone.distance_to(key),
              can.node(from).zone.distance_to(key));
  }
}

TEST(Can, HigherDimensionalJoinAndRoute) {
  for (std::size_t dims : {1UL, 4UL, 5UL}) {
    CanNetwork can(dims);
    util::Rng rng(21 + dims);
    for (net::HostId h = 0; h < 40; ++h) can.join_random(h, rng);
    EXPECT_TRUE(can.check_invariants());
    const auto live = can.live_nodes();
    const RouteResult route =
        can.route(live[0], geom::Point::random(dims, rng));
    EXPECT_TRUE(route.success);
  }
}

TEST(Can, NodeIdsAreStableAcrossDepartures) {
  CanNetwork can(2);
  util::Rng rng(23);
  const NodeId a = can.join_random(0, rng);
  const NodeId b = can.join_random(1, rng);
  const NodeId c = can.join_random(2, rng);
  can.leave(b);
  EXPECT_TRUE(can.alive(a));
  EXPECT_FALSE(can.alive(b));
  EXPECT_TRUE(can.alive(c));
  const NodeId d = can.join_random(3, rng);
  EXPECT_NE(d, b);  // ids never reused
}

}  // namespace
}  // namespace topo::overlay
