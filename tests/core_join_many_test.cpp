// join_many ≡ N × join: the batched join fast path must leave the system
// in exactly the state an equivalent sequence of scalar joins produces —
// zones, routing tables, map contents, subscriptions, and every stat —
// across seeds, RTT engines, fault-plane on/off, and measurement noise.
#include "core/soft_state_overlay.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::core {
namespace {

net::Topology make_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  net::Topology t = net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(t, net::LatencyModel::kManual, rng);
  return t;
}

std::vector<net::HostId> wave_hosts(const net::Topology& t,
                                    std::uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  std::vector<net::HostId> hosts;
  hosts.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    hosts.push_back(static_cast<net::HostId>(rng.next_u64(t.host_count())));
  return hosts;
}

/// Full-precision, order-independent dump of everything a join touches.
std::string snapshot(SoftStateOverlay& s) {
  std::ostringstream out;
  out.precision(17);
  const auto& ecan = s.ecan();

  // Zones + expressway tables per live node.
  for (overlay::NodeId id = 0; id < ecan.slot_count(); ++id) {
    if (!ecan.alive(id)) continue;
    out << "node " << id << " host " << ecan.node(id).host << " zone";
    for (std::size_t d = 0; d < ecan.dims(); ++d)
      out << ' ' << ecan.node(id).zone.lo(d) << ' '
          << ecan.node(id).zone.hi(d);
    const int levels = ecan.node_level(id);
    out << " levels " << levels << " table";
    for (int h = 1; h <= levels; ++h)
      for (std::size_t dim = 0; dim < ecan.dims(); ++dim)
        for (int dir = 0; dir < 2; ++dir)
          out << ' ' << ecan.table_entry(id, h, dim, dir);
    out << '\n';
  }

  // Map contents, sorted for container-order independence.
  std::vector<std::string> entries;
  s.maps().for_each_entry(
      [&](overlay::NodeId owner, const softstate::StoredEntry& stored) {
        std::ostringstream line;
        line.precision(17);
        line << "entry owner " << owner << " level " << stored.level
             << " cell " << stored.cell_key << " node " << stored.entry.node
             << " host " << stored.entry.host << " num "
             << stored.entry.landmark_number.low64() << ' '
             << stored.entry.landmark_number.to_unit(64) << " load "
             << stored.entry.load << " cap " << stored.entry.capacity
             << " t " << stored.entry.published_at << ' '
             << stored.entry.expires_at << " vec";
        for (const double v : stored.entry.vector) line << ' ' << v;
        entries.push_back(line.str());
      });
  std::sort(entries.begin(), entries.end());
  for (const std::string& line : entries) out << line << '\n';

  // Subscription table, sorted by id (ids are assigned in protocol order,
  // so they match across equivalent runs).
  std::vector<std::string> subs;
  s.pubsub().for_each_subscription(
      [&](pubsub::SubscriptionId id, const pubsub::Subscription& sub) {
        std::ostringstream line;
        line.precision(17);
        line << "sub " << id << " by " << sub.subscriber << " level "
             << sub.level << " cell " << sub.cell_key << " watched "
             << sub.watched << " best " << sub.current_best_distance;
        subs.push_back(line.str());
      });
  std::sort(subs.begin(), subs.end());
  for (const std::string& line : subs) out << line << '\n';

  // Every counter the join protocol moves.
  const SystemStats& st = s.stats();
  out << "sys " << st.joins << ' ' << st.reselections << ' '
      << st.republishes << '\n';
  const auto& ms = s.maps().stats();
  out << "maps " << ms.publishes << ' ' << ms.lookups << ' '
      << ms.route_hops << ' ' << ms.expired_entries << ' '
      << ms.lazy_deletions << ' ' << ms.lost_messages << ' '
      << ms.failed_routes << ' ' << ms.publish_messages << ' '
      << ms.blocked_publishes << '\n';
  const auto& ps = s.pubsub().stats();
  out << "pubsub " << ps.subscriptions << ' ' << ps.notifications << ' '
      << ps.route_hops << ' ' << ps.predicate_evaluations << ' '
      << ps.dropped_notifications << '\n';
  out << "probes " << s.oracle().probe_count() << '\n';
  return out.str();
}

struct Variant {
  std::uint64_t seed;
  net::RttEngineKind engine;
  bool faults;
  double noise;
};

class JoinManyEquivalence : public ::testing::TestWithParam<Variant> {};

SystemConfig variant_config(const Variant& v) {
  SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 8;
  config.seed = v.seed;
  config.rtt_engine = v.engine;
  if (v.faults) {
    config.fault.message_loss = 0.05;
    config.fault.publish_loss = 0.05;
  }
  return config;
}

TEST_P(JoinManyEquivalence, WaveMatchesScalarSequence) {
  const Variant v = GetParam();
  const net::Topology t = make_topology(v.seed);
  const auto hosts = wave_hosts(t, v.seed * 31 + 7, 96);

  SoftStateOverlay scalar(t, variant_config(v));
  SoftStateOverlay batched(t, variant_config(v));
  if (v.noise > 0.0) {
    scalar.oracle().set_measurement_noise(v.noise, 77);
    batched.oracle().set_measurement_noise(v.noise, 77);
  }

  std::vector<overlay::NodeId> scalar_ids;
  scalar_ids.reserve(hosts.size());
  for (const net::HostId host : hosts) scalar_ids.push_back(scalar.join(host));

  JoinWaveStats ws;
  const std::vector<overlay::NodeId> batched_ids =
      batched.join_many(hosts, &ws);

  EXPECT_EQ(batched_ids, scalar_ids);
  EXPECT_EQ(ws.wave_size, hosts.size());
  EXPECT_EQ(ws.bulk_measured, v.noise == 0.0);
  EXPECT_EQ(snapshot(batched), snapshot(scalar));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, JoinManyEquivalence,
    ::testing::Values(
        Variant{1, net::RttEngineKind::kDijkstra, false, 0.0},
        Variant{2, net::RttEngineKind::kDijkstra, true, 0.0},
        Variant{3, net::RttEngineKind::kHierarchical, false, 0.0},
        Variant{4, net::RttEngineKind::kHierarchical, true, 0.0},
        Variant{5, net::RttEngineKind::kDijkstra, false, 0.2},
        Variant{6, net::RttEngineKind::kHierarchical, true, 0.2}));

TEST(JoinMany, WaveOnExistingOverlayMatchesScalar) {
  // join_many must compose with prior scalar joins (non-empty overlay) and
  // with waves issued back to back.
  const net::Topology t = make_topology(9);
  SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 8;
  config.seed = 9;
  const auto hosts = wave_hosts(t, 100, 80);

  SoftStateOverlay scalar(t, config);
  SoftStateOverlay batched(t, config);
  for (std::size_t i = 0; i < 16; ++i) {
    scalar.join(hosts[i]);
    batched.join(hosts[i]);
  }
  const std::span<const net::HostId> rest(hosts.data() + 16,
                                          hosts.size() - 16);
  for (const net::HostId host : rest) scalar.join(host);
  // Two half waves: arena reuse across waves must not leak state.
  batched.join_many(rest.subspan(0, rest.size() / 2));
  batched.join_many(rest.subspan(rest.size() / 2));

  EXPECT_EQ(snapshot(batched), snapshot(scalar));
}

TEST(JoinMany, EmptyWaveIsANoOp) {
  const net::Topology t = make_topology(11);
  SystemConfig config;
  config.landmark_count = 8;
  config.seed = 11;
  SoftStateOverlay system(t, config);
  JoinWaveStats ws;
  ws.wave_size = 123;  // must be overwritten
  EXPECT_TRUE(system.join_many({}, &ws).empty());
  EXPECT_EQ(ws.wave_size, 0u);
  EXPECT_EQ(system.stats().joins, 0u);
}

}  // namespace
}  // namespace topo::core
