#include "geom/hilbert.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace topo::geom {
namespace {

using util::BigUint;

/// |a - b| for grid coordinates.
std::uint32_t diff(std::uint32_t a, std::uint32_t b) {
  return a > b ? a - b : b - a;
}

class HilbertParam
    : public ::testing::TestWithParam<std::pair<int, int>> {};  // dims, bits

TEST_P(HilbertParam, BijectiveOverWholeGrid) {
  const auto [dims, bits] = GetParam();
  const HilbertCurve curve(dims, bits);
  const std::uint64_t total = 1ULL << (dims * bits);
  std::set<std::vector<std::uint32_t>> seen;
  for (std::uint64_t i = 0; i < total; ++i) {
    const auto coords = curve.coords(BigUint(i));
    ASSERT_EQ(coords.size(), static_cast<std::size_t>(dims));
    for (const auto c : coords) ASSERT_LT(c, 1u << bits);
    ASSERT_TRUE(seen.insert(coords).second) << "duplicate at index " << i;
    // Round trip.
    ASSERT_EQ(curve.index(coords).low64(), i);
  }
  EXPECT_EQ(seen.size(), total);
}

TEST_P(HilbertParam, ConsecutiveIndicesAreGridAdjacent) {
  // The defining Hilbert property: each curve step moves exactly one cell
  // along exactly one axis.
  const auto [dims, bits] = GetParam();
  const HilbertCurve curve(dims, bits);
  const std::uint64_t total = 1ULL << (dims * bits);
  auto previous = curve.coords(BigUint(0));
  for (std::uint64_t i = 1; i < total; ++i) {
    const auto current = curve.coords(BigUint(i));
    std::uint32_t manhattan = 0;
    for (int d = 0; d < dims; ++d)
      manhattan += diff(current[static_cast<std::size_t>(d)],
                        previous[static_cast<std::size_t>(d)]);
    ASSERT_EQ(manhattan, 1u) << "step " << i;
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGrids, HilbertParam,
                         ::testing::Values(std::make_pair(1, 4),
                                           std::make_pair(2, 1),
                                           std::make_pair(2, 2),
                                           std::make_pair(2, 4),
                                           std::make_pair(2, 6),
                                           std::make_pair(3, 2),
                                           std::make_pair(3, 4),
                                           std::make_pair(4, 2),
                                           std::make_pair(5, 2)),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param.first) +
                                  "b" + std::to_string(info.param.second);
                         });

TEST(Hilbert, HighDimensionalRoundTrip) {
  // Landmark-space scale: 30 dims x 8 bits = 240-bit indices.
  const HilbertCurve curve(30, 8);
  util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint32_t> coords(30);
    for (auto& c : coords)
      c = static_cast<std::uint32_t>(rng.next_u64(256));
    const BigUint index = curve.index(coords);
    EXPECT_EQ(curve.coords(index), coords);
  }
}

TEST(Hilbert, IndexBitsAccounting) {
  EXPECT_EQ(HilbertCurve(2, 6).index_bits(), 12);
  EXPECT_EQ(HilbertCurve(30, 8).index_bits(), 240);
  EXPECT_EQ(HilbertCurve(2, 6).dims(), 2);
  EXPECT_EQ(HilbertCurve(2, 6).bits(), 6);
}

TEST(Hilbert, LocalityForward) {
  // Close indices -> close cells. Quantified: for the 2-d curve, cells
  // within index distance k are within Euclidean distance O(sqrt(k)).
  const HilbertCurve curve(2, 8);
  util::Rng rng(7);
  const std::uint64_t total = 1ULL << 16;
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t i = rng.next_u64(total - 16);
    const std::uint64_t j = i + 1 + rng.next_u64(15);  // within 16 steps
    const auto a = curve.coords(BigUint(i));
    const auto b = curve.coords(BigUint(j));
    const double dx = diff(a[0], b[0]);
    const double dy = diff(a[1], b[1]);
    const double euclid = std::sqrt(dx * dx + dy * dy);
    // Index distance <= 16 -> cell distance <= 16 trivially, but the curve
    // does far better; assert the non-trivial bound 3*sqrt(k+1).
    EXPECT_LE(euclid, 3.0 * std::sqrt(static_cast<double>(j - i) + 1.0));
  }
}

TEST(Hilbert, LocalityBeatsRowMajorOnAverage) {
  // Average cell distance of consecutive index pairs: the Hilbert curve is
  // always 1; row-major order jumps rows (distance ~2^bits at row ends).
  const int bits = 5;
  const HilbertCurve curve(2, bits);
  const std::uint64_t total = 1ULL << (2 * bits);
  double hilbert_total = 0.0;
  double rowmajor_total = 0.0;
  const std::uint32_t width = 1u << bits;
  for (std::uint64_t i = 0; i + 1 < total; ++i) {
    const auto a = curve.coords(BigUint(i));
    const auto b = curve.coords(BigUint(i + 1));
    hilbert_total += diff(a[0], b[0]) + diff(a[1], b[1]);
    const std::uint32_t ax = static_cast<std::uint32_t>(i) % width;
    const std::uint32_t ay = static_cast<std::uint32_t>(i) / width;
    const std::uint32_t bx = static_cast<std::uint32_t>(i + 1) % width;
    const std::uint32_t by = static_cast<std::uint32_t>(i + 1) / width;
    rowmajor_total += diff(ax, bx) + diff(ay, by);
  }
  EXPECT_LT(hilbert_total, rowmajor_total);
  EXPECT_DOUBLE_EQ(hilbert_total, static_cast<double>(total - 1));
}

TEST(Hilbert, IndexManyMatchesScalarIndex) {
  // Random (dims, bits) pairs across the whole supported range — up to the
  // 256-bit BigUint index limit — with random wave sizes.
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int dims = 1 + static_cast<int>(rng.next_u64(30));
    const int max_bits = std::min(32, 256 / dims);
    const int bits = 1 + static_cast<int>(rng.next_u64(
                             static_cast<std::uint64_t>(max_bits)));
    const HilbertCurve curve(dims, bits);
    const std::size_t n = 1 + rng.next_u64(17);
    std::vector<std::uint32_t> tuples(n * static_cast<std::size_t>(dims));
    for (auto& c : tuples)
      c = static_cast<std::uint32_t>(rng.next_u64(1ULL << bits));

    std::vector<std::uint32_t> arena = tuples;  // index_many clobbers it
    std::vector<BigUint> bulk(n);
    curve.index_many(arena, bulk);
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const std::uint32_t> coords(
          tuples.data() + i * static_cast<std::size_t>(dims),
          static_cast<std::size_t>(dims));
      ASSERT_EQ(bulk[i], curve.index(coords))
          << "dims=" << dims << " bits=" << bits << " tuple=" << i;
    }
  }
}

TEST(Hilbert, ScratchIndexOverloadMatchesAndAllowsAliasing) {
  util::Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const int dims = 1 + static_cast<int>(rng.next_u64(12));
    const int bits = 1 + static_cast<int>(rng.next_u64(8));
    const HilbertCurve curve(dims, bits);
    std::vector<std::uint32_t> coords(static_cast<std::size_t>(dims));
    for (auto& c : coords)
      c = static_cast<std::uint32_t>(rng.next_u64(1ULL << bits));
    const BigUint expected = curve.index(coords);

    std::vector<std::uint32_t> scratch(static_cast<std::size_t>(dims));
    EXPECT_EQ(curve.index(coords, scratch), expected);
    // Exact aliasing: the caller's buffer doubles as the working copy.
    std::vector<std::uint32_t> aliased = coords;
    EXPECT_EQ(curve.index(aliased, aliased), expected);
  }
}

TEST(Hilbert, IndexManyHandlesEmptyWave) {
  const HilbertCurve curve(3, 4);
  curve.index_many({}, {});  // must not touch anything
}

TEST(Hilbert, OriginMapsToIndexZero) {
  for (int dims : {1, 2, 3, 5}) {
    const HilbertCurve curve(dims, 4);
    const std::vector<std::uint32_t> origin(
        static_cast<std::size_t>(dims), 0);
    EXPECT_EQ(curve.index(origin), BigUint::zero());
  }
}

}  // namespace
}  // namespace topo::geom
