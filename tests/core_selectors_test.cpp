#include "core/selectors.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::core {
namespace {

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;
  std::unique_ptr<overlay::EcanNetwork> ecan;
  std::unique_ptr<softstate::MapService> maps;
  VectorStore vectors;
  std::vector<overlay::NodeId> nodes;

  explicit Fixture(std::uint64_t seed, std::size_t overlay_nodes = 128) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, 8, rng, {}));
    ecan = std::make_unique<overlay::EcanNetwork>(2);
    for (std::size_t i = 0; i < overlay_nodes; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      nodes.push_back(ecan->join_random(host, rng));
    }
    maps = std::make_unique<softstate::MapService>(*ecan, *landmarks,
                                                   softstate::MapConfig{});
    for (const auto id : nodes) {
      vectors[id] = landmarks->measure(*oracle, ecan->node(id).host);
      maps->publish(id, vectors[id], 0.0);
    }
  }

  /// A (node, level, cell, members) tuple to select against.
  struct Scenario {
    overlay::NodeId for_node;
    int level;
    geom::Zone cell;
    std::vector<overlay::NodeId> members;
  };

  std::optional<Scenario> find_scenario() {
    for (const auto id : nodes) {
      const int levels = ecan->node_level(id);
      for (int h = 1; h <= levels; ++h) {
        const auto my_cell = ecan->cell_of_node(id, h);
        for (std::size_t dim = 0; dim < 2; ++dim) {
          const auto adj = ecan->adjacent_cell(my_cell, h, dim, 1);
          const auto members = ecan->members_of_cell(h, adj);
          if (members.size() >= 4) {
            return Scenario{id, h, ecan->cell_zone(h, adj),
                            {members.begin(), members.end()}};
          }
        }
      }
    }
    return std::nullopt;
  }
};

TEST(RandomSelector, PicksAMember) {
  Fixture f(1);
  const auto scenario = f.find_scenario();
  ASSERT_TRUE(scenario.has_value());
  RandomSelector selector{util::Rng(99)};
  std::set<overlay::NodeId> picks;
  for (int trial = 0; trial < 50; ++trial) {
    const auto pick = selector.select(scenario->for_node, scenario->level,
                                      scenario->cell, scenario->members);
    EXPECT_NE(std::find(scenario->members.begin(), scenario->members.end(),
                        pick),
              scenario->members.end());
    picks.insert(pick);
  }
  EXPECT_GT(picks.size(), 1u);  // actually random
}

TEST(OracleSelector, PicksPhysicallyClosestMember) {
  Fixture f(2);
  const auto scenario = f.find_scenario();
  ASSERT_TRUE(scenario.has_value());
  OracleSelector selector(*f.ecan, *f.oracle);
  const auto pick = selector.select(scenario->for_node, scenario->level,
                                    scenario->cell, scenario->members);
  const net::HostId from = f.ecan->node(scenario->for_node).host;
  for (const auto member : scenario->members)
    EXPECT_LE(f.oracle->latency_ms(from, f.ecan->node(pick).host),
              f.oracle->latency_ms(from, f.ecan->node(member).host));
}

TEST(SoftStateSelector, SelectionComesFromMapsAndProbesCount) {
  Fixture f(3);
  const auto scenario = f.find_scenario();
  ASSERT_TRUE(scenario.has_value());
  SoftStateSelector selector(*f.ecan, *f.maps, *f.oracle, f.vectors, 5,
                             util::Rng(7));
  f.oracle->reset_probe_count();
  const auto pick = selector.select(scenario->for_node, scenario->level,
                                    scenario->cell, scenario->members);
  EXPECT_NE(pick, overlay::kInvalidNode);
  const SelectionInfo& info = selector.last_selection();
  EXPECT_LE(info.probes, 5u);
  if (!info.fell_back_to_random) {
    EXPECT_EQ(f.oracle->probe_count(), info.probes);
    EXPECT_GT(info.candidates, 0u);
  }
}

TEST(SoftStateSelector, LargeBudgetApproachesOracle) {
  Fixture f(4, 256);
  OracleSelector oracle_selector(*f.ecan, *f.oracle);
  SoftStateSelector soft(*f.ecan, *f.maps, *f.oracle, f.vectors, 64,
                         util::Rng(11));
  int oracle_wins = 0;
  int checked = 0;
  for (const auto id : f.nodes) {
    const int levels = f.ecan->node_level(id);
    if (levels < 1) continue;
    const auto my_cell = f.ecan->cell_of_node(id, 1);
    const auto adj = f.ecan->adjacent_cell(my_cell, 1, 0, 1);
    const auto members = f.ecan->members_of_cell(1, adj);
    if (members.size() < 2) continue;
    const geom::Zone cell = f.ecan->cell_zone(1, adj);
    const auto best = oracle_selector.select(id, 1, cell, members);
    const auto soft_pick = soft.select(id, 1, cell, members);
    const net::HostId from = f.ecan->node(id).host;
    const double best_rtt =
        f.oracle->latency_ms(from, f.ecan->node(best).host);
    const double soft_rtt =
        f.oracle->latency_ms(from, f.ecan->node(soft_pick).host);
    if (soft_rtt > best_rtt + 1e-9) ++oracle_wins;
    ++checked;
    if (checked >= 40) break;
  }
  ASSERT_GT(checked, 10);
  // With a huge budget (larger than max_return=32) the soft-state pick is
  // the best of the returned candidates; allow a minority of losses from
  // the max_return cap.
  EXPECT_LT(oracle_wins, checked / 2);
}

TEST(SoftStateSelector, NoVectorFallsBackToRandom) {
  Fixture f(5);
  const auto scenario = f.find_scenario();
  ASSERT_TRUE(scenario.has_value());
  VectorStore empty;
  SoftStateSelector selector(*f.ecan, *f.maps, *f.oracle, empty, 5,
                             util::Rng(13));
  const auto pick = selector.select(scenario->for_node, scenario->level,
                                    scenario->cell, scenario->members);
  EXPECT_NE(pick, overlay::kInvalidNode);
  EXPECT_TRUE(selector.last_selection().fell_back_to_random);
}

TEST(SoftStateSelector, DeadCandidateTriggersLazyDeletion) {
  Fixture f(6, 256);
  SoftStateSelector selector(*f.ecan, *f.maps, *f.oracle, f.vectors, 8,
                             util::Rng(17));
  // Kill a node but leave its record in the maps (crash semantics).
  const auto scenario = f.find_scenario();
  ASSERT_TRUE(scenario.has_value());
  const overlay::NodeId victim = scenario->members[0];
  f.ecan->leave(victim);
  const auto members_now =
      f.ecan->members_of_cell(scenario->level,
                              f.ecan->cell_of_point(scenario->cell.center(),
                                                    scenario->level));
  if (members_now.empty()) GTEST_SKIP();
  const auto lazy_before = f.maps->stats().lazy_deletions;
  // Run selections until the stale record is encountered.
  for (int trial = 0; trial < 20; ++trial) {
    selector.select(scenario->for_node, scenario->level, scenario->cell,
                    members_now);
    if (f.maps->stats().lazy_deletions > lazy_before) break;
  }
  SUCCEED();  // main assertion: no crash handing out dead candidates
}

TEST(LoadAwareSelector, AvoidsOverloadedCloseNode) {
  Fixture f(7, 256);
  const auto scenario = f.find_scenario();
  ASSERT_TRUE(scenario.has_value());
  const net::HostId from = f.ecan->node(scenario->for_node).host;
  // Find the physically closest member and overload it in the maps.
  OracleSelector oracle_selector(*f.ecan, *f.oracle);
  const auto closest = oracle_selector.select(
      scenario->for_node, scenario->level, scenario->cell, scenario->members);
  f.maps->publish(closest, f.vectors[closest], 0.0, /*load=*/100.0,
                  /*capacity=*/1.0);

  LoadAwareSelector selector(*f.ecan, *f.maps, *f.oracle, f.vectors, 16,
                             /*load_weight=*/10.0, util::Rng(19));
  const auto pick = selector.select(scenario->for_node, scenario->level,
                                    scenario->cell, scenario->members);
  if (!selector.last_selection().fell_back_to_random &&
      selector.last_selection().probes > 1) {
    EXPECT_NE(pick, closest);
  }
  (void)from;
}

}  // namespace
}  // namespace topo::core
