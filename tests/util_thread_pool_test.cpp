#include "util/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace topo::util {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), 7,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, RespectsBeginOffsetAndEmptyRange) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.parallel_for(10, 25, 4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 15);
  pool.parallel_for(5, 5, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 15);
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  // No workers: the caller runs every chunk itself, in index order.
  pool.parallel_for(0, 8, 2,
                    [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  const std::vector<int> expected = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  // The determinism contract: per-index results (with per-index RNG
  // streams) are identical at any pool size.
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(256);
    pool.parallel_for(0, out.size(), 3, [&](std::size_t i) {
      auto rng = rng_for_index(1234, i);
      out[i] = rng.next_u64(1'000'000);
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ThreadPool, RngForIndexIsDeterministicAndDecorrelated) {
  auto a = rng_for_index(7, 0);
  auto b = rng_for_index(7, 0);
  EXPECT_EQ(a.next_u64(1ull << 62), b.next_u64(1ull << 62));
  // Adjacent indices must not produce the same stream.
  auto c = rng_for_index(7, 1);
  EXPECT_NE(rng_for_index(7, 0).next_u64(1ull << 62),
            c.next_u64(1ull << 62));
}

TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t) {
    // Nested use of the *same* pool must not deadlock: the inner caller
    // participates in its own range even when every worker is busy.
    pool.parallel_for(0, 16, 4, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(0, 10000, 1,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The failing chunk abandons the remainder of the range.
  EXPECT_LT(ran.load(), 10000);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for(0, 64, 8,
                                    [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace topo::util
