#include "proximity/variants.hpp"

#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::proximity {
namespace {

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<LandmarkSet> landmarks;
  ProximityDatabase database;

  explicit Fixture(std::uint64_t seed, int landmark_count = 12) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kGtItmRandom, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<LandmarkSet>(LandmarkSet::choose_random(
        topology, landmark_count, rng, LandmarkConfig{}));
    for (net::HostId h = 1; h < topology.host_count(); h += 4)
      database.push_back(ProximityRecord{h, landmarks->measure(*oracle, h)});
  }

  double true_nearest(net::HostId query) const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& record : database)
      if (record.host != query)
        best = std::min(best, oracle->latency_ms(query, record.host));
    return best;
  }
};

TEST(GroupedNnSearch, RespectsBudgetAndFindsValidHost) {
  Fixture f(1);
  const net::HostId query = 0;
  const LandmarkVector qv = f.landmarks->measure(*f.oracle, query);
  const NnResult result =
      grouped_nn_search(*f.oracle, query, qv, f.database, 3, 9);
  EXPECT_NE(result.host, net::kInvalidHost);
  EXPECT_LE(result.probes, 9u);
  EXPECT_GE(result.rtt_ms, f.true_nearest(query));
}

TEST(GroupedNnSearch, SingleGroupEqualsHybrid) {
  Fixture f(2);
  const net::HostId query = 11;
  const LandmarkVector qv = f.landmarks->measure(*f.oracle, query);
  const NnResult grouped =
      grouped_nn_search(*f.oracle, query, qv, f.database, 1, 8);
  const NnResult hybrid =
      hybrid_nn_search(*f.oracle, query, qv, f.database, 8);
  EXPECT_DOUBLE_EQ(grouped.rtt_ms, hybrid.rtt_ms);
}

TEST(GroupedNnSearch, MoreGroupsThanLandmarksClamps) {
  Fixture f(3, 4);
  const LandmarkVector qv = f.landmarks->measure(*f.oracle, 0);
  const NnResult result =
      grouped_nn_search(*f.oracle, 0, qv, f.database, 100, 5);
  EXPECT_NE(result.host, net::kInvalidHost);
}

TEST(HierarchicalNnSearch, RespectsBudget) {
  Fixture f(4);
  const net::HostId query = 21;
  const LandmarkVector qv = f.landmarks->measure(*f.oracle, query);
  const NnResult result = hierarchical_nn_search(*f.oracle, query, qv,
                                                 f.database, 4, 30, 10);
  EXPECT_NE(result.host, net::kInvalidHost);
  EXPECT_LE(result.probes, 10u);
}

TEST(HierarchicalNnSearch, LargePreselectConvergesToHybrid) {
  Fixture f(5);
  const net::HostId query = 33;
  const LandmarkVector qv = f.landmarks->measure(*f.oracle, query);
  // Preselecting the whole database and re-ranking with the full vector is
  // exactly the hybrid ranking.
  const NnResult hierarchical = hierarchical_nn_search(
      *f.oracle, query, qv, f.database, 4, f.database.size(), 12);
  const NnResult hybrid =
      hybrid_nn_search(*f.oracle, query, qv, f.database, 12);
  EXPECT_DOUBLE_EQ(hierarchical.rtt_ms, hybrid.rtt_ms);
}

TEST(SvdNnSearch, RespectsBudgetAndFindsValidHost) {
  Fixture f(6);
  const net::HostId query = 42;
  const LandmarkVector qv = f.landmarks->measure(*f.oracle, query);
  const NnResult result =
      svd_nn_search(*f.oracle, query, qv, f.database, 4, 10);
  EXPECT_NE(result.host, net::kInvalidHost);
  EXPECT_LE(result.probes, 10u);
}

TEST(SvdNnSearch, TinyDatabaseFallsBack) {
  Fixture f(7);
  ProximityDatabase tiny(f.database.begin(), f.database.begin() + 3);
  const LandmarkVector qv = f.landmarks->measure(*f.oracle, 0);
  const NnResult result = svd_nn_search(*f.oracle, 0, qv, tiny, 4, 5);
  EXPECT_NE(result.host, net::kInvalidHost);
}

TEST(SvdNnSearch, EmptyDatabase) {
  Fixture f(8);
  const LandmarkVector qv = f.landmarks->measure(*f.oracle, 0);
  const NnResult result = svd_nn_search(*f.oracle, 0, qv, {}, 4, 5);
  EXPECT_EQ(result.host, net::kInvalidHost);
  EXPECT_EQ(result.probes, 0u);
}

TEST(Variants, AllVariantsReasonableVersusOptimal) {
  // None of the variants should be wildly worse than plain hybrid on the
  // same budget (they are refinements, not regressions), averaged over
  // queries.
  Fixture f(9);
  util::Rng rng(90);
  double hybrid_total = 0.0;
  double grouped_total = 0.0;
  double hierarchical_total = 0.0;
  double svd_total = 0.0;
  const std::size_t budget = 8;
  for (int trial = 0; trial < 15; ++trial) {
    const auto query =
        static_cast<net::HostId>(rng.next_u64(f.topology.host_count()));
    const LandmarkVector qv = f.landmarks->measure(*f.oracle, query);
    hybrid_total +=
        hybrid_nn_search(*f.oracle, query, qv, f.database, budget).rtt_ms;
    grouped_total +=
        grouped_nn_search(*f.oracle, query, qv, f.database, 3, budget).rtt_ms;
    hierarchical_total +=
        hierarchical_nn_search(*f.oracle, query, qv, f.database, 4, 40, budget)
            .rtt_ms;
    svd_total +=
        svd_nn_search(*f.oracle, query, qv, f.database, 5, budget).rtt_ms;
  }
  EXPECT_LT(grouped_total, 3.0 * hybrid_total + 1.0);
  EXPECT_LT(hierarchical_total, 3.0 * hybrid_total + 1.0);
  EXPECT_LT(svd_total, 3.0 * hybrid_total + 1.0);
}

}  // namespace
}  // namespace topo::proximity
