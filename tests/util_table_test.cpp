#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "util/flags.hpp"
#include "util/logging.hpp"

namespace topo::util {
namespace {

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string out = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every line has the same length (alignment).
  std::istringstream stream(out);
  std::string line;
  std::getline(stream, line);
  const std::size_t width = line.size();
  while (std::getline(stream, line)) EXPECT_EQ(line.size(), width);
}

TEST(Table, TsvRendering) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.to_tsv(), "a\tb\tc\n1\t2\t3\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::integer(-42), "-42");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Banner, Format) {
  std::ostringstream out;
  print_banner(out, "Figure 2");
  EXPECT_EQ(out.str(), "\n== Figure 2 ==\n");
}

TEST(Flags, EnvIntParsing) {
  unsetenv("TO_TEST_FLAG");
  EXPECT_EQ(env_int("TO_TEST_FLAG", 7), 7);
  setenv("TO_TEST_FLAG", "42", 1);
  EXPECT_EQ(env_int("TO_TEST_FLAG", 7), 42);
  setenv("TO_TEST_FLAG", "not-a-number", 1);
  EXPECT_EQ(env_int("TO_TEST_FLAG", 7), 7);
  setenv("TO_TEST_FLAG", "-13", 1);
  EXPECT_EQ(env_int("TO_TEST_FLAG", 7), -13);
  unsetenv("TO_TEST_FLAG");
}

TEST(Flags, EnvDoubleParsing) {
  unsetenv("TO_TEST_FLAG");
  EXPECT_DOUBLE_EQ(env_double("TO_TEST_FLAG", 0.5), 0.5);
  setenv("TO_TEST_FLAG", "2.75", 1);
  EXPECT_DOUBLE_EQ(env_double("TO_TEST_FLAG", 0.5), 2.75);
  unsetenv("TO_TEST_FLAG");
}

TEST(Flags, EnvBoolParsing) {
  unsetenv("TO_TEST_FLAG");
  EXPECT_FALSE(env_bool("TO_TEST_FLAG"));
  EXPECT_TRUE(env_bool("TO_TEST_FLAG", true));
  setenv("TO_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_bool("TO_TEST_FLAG"));
  setenv("TO_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_bool("TO_TEST_FLAG", true));
  setenv("TO_TEST_FLAG", "false", 1);
  EXPECT_FALSE(env_bool("TO_TEST_FLAG", true));
  unsetenv("TO_TEST_FLAG");
}

TEST(Flags, EnvStringParsing) {
  unsetenv("TO_TEST_FLAG");
  EXPECT_EQ(env_string("TO_TEST_FLAG", "dflt"), "dflt");
  setenv("TO_TEST_FLAG", "hello", 1);
  EXPECT_EQ(env_string("TO_TEST_FLAG", "dflt"), "hello");
  unsetenv("TO_TEST_FLAG");
}

TEST(Logging, LevelGate) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  TO_LOG_ERROR("this must not crash %d", 42);
  set_log_level(LogLevel::kDebug);
  TO_LOG_DEBUG("visible at debug %s", "ok");
  set_log_level(old);
  SUCCEED();
}

}  // namespace
}  // namespace topo::util
