#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30.0, [&] { order.push_back(3); });
  q.schedule_at(10.0, [&] { order.push_back(1); });
  q.schedule_at(20.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10.0, [&] { ++fired; });
  q.schedule_at(20.0, [&] { ++fired; });
  q.schedule_at(20.000001, [&] { ++fired; });
  q.run_until(20.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 20.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  int chain = 0;
  std::function<void()> tick = [&] {
    if (++chain < 5) q.schedule_in(10.0, tick);
  };
  q.schedule_in(10.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(chain, 5);
}

TEST(EventQueue, ScheduleInUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(50.0, [&] {
    q.schedule_in(25.0, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 75.0);
}

// Regression guard for the heap extraction rewrite: the old
// implementation moved out of priority_queue::top() through a const_cast,
// so pop() re-heapified around an item that had been mutated in place.
// This stress mix (random times, FIFO ties, reentrant scheduling from
// callbacks) pins the exact delivery contract the engine relies on.
TEST(EventQueue, StressedInterleavedSchedulingKeepsContract) {
  EventQueue q;
  util::Rng rng(99);
  struct Fired {
    Time at;
    int tag;
  };
  std::vector<Fired> fired;
  int scheduled = 0;

  std::function<void(int)> emit = [&](int depth) {
    const int tag = scheduled++;
    // Coarse time grid so same-time ties are frequent.
    const Time delay = static_cast<double>(rng.next_u64(16)) * 10.0;
    q.schedule_in(delay, [&, tag, depth] {
      fired.push_back(Fired{q.now(), tag});
      if (depth > 0 && rng.next_bool(0.7)) emit(depth - 1);
      if (depth > 1 && rng.next_bool(0.3)) emit(depth - 2);
    });
  };
  for (int i = 0; i < 200; ++i) emit(3);
  q.run_all();

  ASSERT_EQ(static_cast<int>(fired.size()), scheduled);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    // Time never goes backwards...
    ASSERT_LE(fired[i - 1].at, fired[i].at);
    // ...and same-time events fire in scheduling order (FIFO), except
    // that a callback may schedule *new* work at the current time, which
    // lands after everything already queued for that instant.
    if (fired[i - 1].at == fired[i].at && fired[i - 1].tag < 200 &&
        fired[i].tag < 200) {
      ASSERT_LT(fired[i - 1].tag, fired[i].tag);
    }
  }
}

TEST(EventQueue, CallbackMayClearPendingEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10.0, [&] {
    ++fired;
    q.clear();
  });
  q.schedule_at(20.0, [&] { ++fired; });
  q.schedule_at(30.0, [&] { ++fired; });
  q.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10.0, [&] { ++fired; });
  q.clear();
  q.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.pending(), 0u);
}

struct MetricsFixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<overlay::EcanNetwork> ecan;

  explicit MetricsFixture(std::uint64_t seed) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    ecan = std::make_unique<overlay::EcanNetwork>(2);
    for (int i = 0; i < 100; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      ecan->join_random(host, rng);
    }
  }
};

TEST(Metrics, PathLatencySumsHops) {
  MetricsFixture f(1);
  const auto live = f.ecan->live_nodes();
  const std::vector<overlay::NodeId> path = {live[0], live[1], live[2]};
  const double expected =
      f.oracle->latency_ms(f.ecan->node(live[0]).host,
                           f.ecan->node(live[1]).host) +
      f.oracle->latency_ms(f.ecan->node(live[1]).host,
                           f.ecan->node(live[2]).host);
  EXPECT_DOUBLE_EQ(path_latency_ms(*f.ecan, *f.oracle, path), expected);
  const std::vector<overlay::NodeId> single = {live[0]};
  EXPECT_DOUBLE_EQ(path_latency_ms(*f.ecan, *f.oracle, single), 0.0);
}

TEST(Metrics, StretchAtLeastOne) {
  MetricsFixture f(2);
  util::Rng rng(20);
  const RoutingSample sample =
      measure_can_routing(*f.ecan, *f.oracle, 100, rng);
  EXPECT_EQ(sample.failures, 0u);
  ASSERT_GT(sample.stretch.count(), 0u);
  EXPECT_GE(sample.stretch.min(), 1.0 - 1e-9);  // paths can't beat direct
}

TEST(Metrics, EcanRoutingSampleWorks) {
  MetricsFixture f(3);
  util::Rng rng(30);
  const RoutingSample sample =
      measure_ecan_routing(*f.ecan, *f.oracle, 100, rng);
  EXPECT_EQ(sample.failures, 0u);
  EXPECT_GT(sample.logical_hops.mean(), 0.0);
}

}  // namespace
}  // namespace topo::sim
