#include "core/soft_state_overlay.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "sim/metrics.hpp"

namespace topo::core {
namespace {

net::Topology make_topology(std::uint64_t seed,
                            net::LatencyModel model =
                                net::LatencyModel::kManual) {
  util::Rng rng(seed);
  net::Topology t = net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(t, model, rng);
  return t;
}

SystemConfig small_config() {
  SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 8;
  return config;
}

TEST(SoftStateOverlay, JoinPublishesAndBuildsTables) {
  const net::Topology t = make_topology(1);
  SoftStateOverlay system(t, small_config());
  util::Rng rng(10);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 64; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  EXPECT_EQ(system.ecan().size(), 64u);
  EXPECT_GT(system.maps().total_entries(), 0u);
  EXPECT_EQ(system.vectors().size(), 64u);
  EXPECT_GT(system.pubsub().active_subscriptions(), 0u);
  EXPECT_EQ(system.stats().joins, 64u);
}

TEST(SoftStateOverlay, LookupsSucceedAndReachOwner) {
  const net::Topology t = make_topology(2);
  SoftStateOverlay system(t, small_config());
  util::Rng rng(20);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 100; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  for (int trial = 0; trial < 100; ++trial) {
    const auto from = nodes[rng.next_u64(nodes.size())];
    const geom::Point key = geom::Point::random(2, rng);
    const overlay::RouteResult route = system.lookup(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), system.ecan().owner_of(key));
  }
}

TEST(SoftStateOverlay, GracefulLeaveScrubsEverything) {
  const net::Topology t = make_topology(3);
  SoftStateOverlay system(t, small_config());
  util::Rng rng(30);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 48; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  const auto victim = nodes[10];
  system.leave(victim);
  EXPECT_FALSE(system.ecan().alive(victim));
  // The victim's records are gone from every map.
  // (Publishing under its id again would be a protocol violation.)
  EXPECT_EQ(system.vectors().count(victim), 0u);
  // Routing still works.
  for (int trial = 0; trial < 30; ++trial) {
    const auto from = nodes[rng.next_u64(nodes.size())];
    if (!system.ecan().alive(from)) continue;
    EXPECT_TRUE(system.lookup(from, geom::Point::random(2, rng)).success);
  }
  EXPECT_EQ(system.stats().leaves, 1u);
}

TEST(SoftStateOverlay, CrashLeavesStaleStateButRoutingRecovers) {
  const net::Topology t = make_topology(4);
  SoftStateOverlay system(t, small_config());
  util::Rng rng(40);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 80; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  // Crash a quarter of the network.
  rng.shuffle(nodes);
  for (int i = 0; i < 20; ++i) system.crash(nodes[static_cast<std::size_t>(i)]);
  // All lookups still deliver (repairing entries lazily as they go).
  for (int trial = 0; trial < 60; ++trial) {
    const auto from =
        nodes[20 + rng.next_u64(nodes.size() - 20)];
    const overlay::RouteResult route =
        system.lookup(from, geom::Point::random(2, rng));
    ASSERT_TRUE(route.success);
  }
  EXPECT_EQ(system.stats().crashes, 20u);
}

TEST(SoftStateOverlay, RepublishRefreshesTtl) {
  const net::Topology t = make_topology(5);
  SystemConfig config = small_config();
  config.map.ttl_ms = 1000.0;
  config.republish_interval_ms = 400.0;
  SoftStateOverlay system(t, config);
  util::Rng rng(50);
  for (int i = 0; i < 32; ++i)
    system.join(static_cast<net::HostId>(rng.next_u64(t.host_count())));
  const std::size_t entries = system.maps().total_entries();
  EXPECT_GT(entries, 0u);
  // Advance well past several TTLs: republishing keeps entries alive.
  system.run_for(5000.0);
  EXPECT_GT(system.maps().total_entries(), 0u);
  EXPECT_GT(system.stats().republishes, 0u);
}

TEST(SoftStateOverlay, WithoutRepublishEntriesDecay) {
  const net::Topology t = make_topology(6);
  SystemConfig config = small_config();
  config.map.ttl_ms = 1000.0;
  config.republish_interval_ms = 1e12;  // effectively never
  SoftStateOverlay system(t, config);
  util::Rng rng(60);
  for (int i = 0; i < 32; ++i)
    system.join(static_cast<net::HostId>(rng.next_u64(t.host_count())));
  system.run_for(2000.0);
  EXPECT_EQ(system.maps().total_entries(), 0u);
}

TEST(SoftStateOverlay, PubSubDrivesReselectionOnBetterJoin) {
  const net::Topology t = make_topology(7);
  SystemConfig config = small_config();
  config.closer_margin = 1.0;  // any strictly-closer candidate triggers
  SoftStateOverlay system(t, config);
  util::Rng rng(70);
  for (int i = 0; i < 96; ++i)
    system.join(static_cast<net::HostId>(rng.next_u64(t.host_count())));
  // Joins after subscriptions exist will publish records; closer ones
  // trigger re-selection.
  EXPECT_GT(system.stats().reselections, 0u);
}

TEST(SoftStateOverlay, StretchBeatsRandomBaseline) {
  // The headline result, miniaturized: soft-state neighbor selection beats
  // random selection on routing stretch over the same topology and joins.
  const net::Topology t = make_topology(8);
  util::Rng join_rng(80);
  std::vector<net::HostId> hosts;
  for (int i = 0; i < 128; ++i)
    hosts.push_back(
        static_cast<net::HostId>(join_rng.next_u64(t.host_count())));

  SoftStateOverlay system(t, small_config());
  for (const auto host : hosts) system.join(host);
  util::Rng measure_rng(81);
  const sim::RoutingSample soft = sim::measure_ecan_routing(
      system.ecan(), system.oracle(), 400, measure_rng);

  // Baseline: identical joins, random representative selection.
  overlay::EcanNetwork random_ecan(2);
  util::Rng baseline_rng(80);  // same join point sequence? different object
  util::Rng rng2(82);
  for (const auto host : hosts) random_ecan.join_random(host, baseline_rng);
  RandomSelector random_selector{util::Rng(83)};
  random_ecan.build_all_tables(random_selector);
  net::RttOracle oracle2(t);
  util::Rng measure_rng2(81);
  const sim::RoutingSample random_sample =
      sim::measure_ecan_routing(random_ecan, oracle2, 400, measure_rng2);
  (void)rng2;

  ASSERT_GT(soft.stretch.count(), 100u);
  ASSERT_GT(random_sample.stretch.count(), 100u);
  EXPECT_LT(soft.stretch.mean(), random_sample.stretch.mean());
}

TEST(SoftStateOverlay, LoadAwareConfigurationRuns) {
  const net::Topology t = make_topology(9);
  SystemConfig config = small_config();
  config.load_weight = 5.0;
  config.load_threshold = 0.8;
  SoftStateOverlay system(t, config);
  util::Rng rng(90);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 48; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  // Publish high load for one node and republish everyone.
  system.set_load_probe([&](overlay::NodeId id) {
    return id == nodes[0] ? 0.95 : 0.1;
  });
  for (const auto id : nodes) system.republish_now(id);
  // Load-exceeded notifications may fire; the system stays consistent.
  for (int trial = 0; trial < 20; ++trial) {
    EXPECT_TRUE(
        system.lookup(nodes[rng.next_u64(nodes.size())],
                      geom::Point::random(2, rng))
            .success);
  }
}

TEST(SoftStateOverlay, WorksInThreeDimensions) {
  // The whole stack is dimension-generic: run the end-to-end system on a
  // 3-d eCAN (the paper picks its dimensionality for fault tolerance).
  const net::Topology t = make_topology(11);
  SystemConfig config = small_config();
  config.dims = 3;
  SoftStateOverlay system(t, config);
  util::Rng rng(110);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 64; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  EXPECT_TRUE(system.ecan().check_invariants());
  EXPECT_TRUE(system.maps().check_placement_invariant());
  for (int trial = 0; trial < 40; ++trial) {
    const auto from = nodes[rng.next_u64(nodes.size())];
    const geom::Point key = geom::Point::random(3, rng);
    const overlay::RouteResult route = system.lookup(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), system.ecan().owner_of(key));
  }
  // DHT storage works in 3-d too.
  const geom::Point key = geom::Point::random(3, rng);
  system.put(nodes[0], key, "3d");
  EXPECT_EQ(*system.get(nodes[1], key), "3d");
}

TEST(SoftStateOverlay, HeavyChurnEndToEnd) {
  const net::Topology t = make_topology(10);
  SystemConfig config = small_config();
  config.map.ttl_ms = 10'000.0;
  config.republish_interval_ms = 2'000.0;
  SoftStateOverlay system(t, config);
  util::Rng rng(100);
  std::vector<overlay::NodeId> live;
  for (int step = 0; step < 300; ++step) {
    const double dice = rng.next_double();
    if (live.size() < 8 || dice < 0.5) {
      live.push_back(system.join(
          static_cast<net::HostId>(rng.next_u64(t.host_count()))));
    } else if (dice < 0.75) {
      const std::size_t pick = rng.next_u64(live.size());
      system.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      system.crash(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    system.run_for(100.0);
    if (step % 60 == 59) {
      ASSERT_TRUE(system.ecan().check_invariants()) << "step " << step;
      ASSERT_TRUE(system.ecan().check_membership_index()) << "step " << step;
      ASSERT_TRUE(system.maps().check_placement_invariant()) << "step " << step;
      const auto from = live[rng.next_u64(live.size())];
      ASSERT_TRUE(
          system.lookup(from, geom::Point::random(2, rng)).success);
    }
  }
}

}  // namespace
}  // namespace topo::core
