#include "net/graph.hpp"

#include <algorithm>

#include <gtest/gtest.h>

namespace topo::net {
namespace {

Topology triangle() {
  Topology t;
  const HostId a = t.add_host({HostKind::kTransit, 0, -1});
  const HostId b = t.add_host({HostKind::kStub, 0, 0});
  const HostId c = t.add_host({HostKind::kStub, 0, 0});
  t.add_link(a, b, LinkClass::kTransitStub);
  t.add_link(b, c, LinkClass::kIntraStub);
  t.add_link(c, a, LinkClass::kTransitStub);
  t.freeze();
  return t;
}

TEST(Topology, HostAndLinkCounts) {
  const Topology t = triangle();
  EXPECT_EQ(t.host_count(), 3u);
  EXPECT_EQ(t.link_count(), 3u);
}

TEST(Topology, AdjacencyIsSymmetric) {
  const Topology t = triangle();
  for (HostId u = 0; u < t.host_count(); ++u) {
    for (const auto& nb : t.neighbors(u)) {
      const auto back = t.neighbors(nb.host);
      const bool found =
          std::any_of(back.begin(), back.end(),
                      [&](const Topology::Neighbor& n) { return n.host == u; });
      EXPECT_TRUE(found) << "edge " << u << "<->" << nb.host;
    }
  }
}

TEST(Topology, NeighborDegrees) {
  const Topology t = triangle();
  for (HostId u = 0; u < 3; ++u) EXPECT_EQ(t.neighbors(u).size(), 2u);
}

TEST(Topology, LinkIndexRoundTrip) {
  const Topology t = triangle();
  for (HostId u = 0; u < t.host_count(); ++u) {
    for (const auto& nb : t.neighbors(u)) {
      const Link& link = t.links()[nb.link_index];
      EXPECT_TRUE((link.a == u && link.b == nb.host) ||
                  (link.b == u && link.a == nb.host));
    }
  }
}

TEST(Topology, HostInfoPreserved) {
  const Topology t = triangle();
  EXPECT_EQ(t.host(0).kind, HostKind::kTransit);
  EXPECT_EQ(t.host(1).kind, HostKind::kStub);
  EXPECT_EQ(t.host(1).stub_domain, 0);
  EXPECT_EQ(t.host(0).stub_domain, -1);
}

TEST(Topology, HostsOfKind) {
  const Topology t = triangle();
  EXPECT_EQ(t.hosts_of_kind(HostKind::kTransit).size(), 1u);
  EXPECT_EQ(t.hosts_of_kind(HostKind::kStub).size(), 2u);
}

TEST(Topology, ConnectivityDetection) {
  Topology t;
  const HostId a = t.add_host({});
  const HostId b = t.add_host({});
  t.add_host({});  // isolated
  t.add_link(a, b, LinkClass::kIntraStub);
  t.freeze();
  EXPECT_FALSE(t.is_connected());
  EXPECT_TRUE(triangle().is_connected());
}

TEST(Topology, EmptyIsConnected) {
  Topology t;
  t.freeze();
  EXPECT_TRUE(t.is_connected());
}

TEST(Topology, MutableLinkLatency) {
  Topology t = triangle();
  t.mutable_link(0).latency_ms = 12.5;
  EXPECT_DOUBLE_EQ(t.link_latency(0), 12.5);
}

}  // namespace
}  // namespace topo::net
