#include "sim/lifecycle.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace topo::sim {
namespace {

/// In-memory system double: tracks liveness and records every hook call
/// with its virtual timestamp.
struct FakeSystem final : LifecycleHooks {
  explicit FakeSystem(const EventQueue& clock) : clock(&clock) {}

  overlay::NodeId spawn_node() override {
    if (reject_spawns) return overlay::kInvalidNode;
    const overlay::NodeId id = next_id++;
    alive_set.insert(id);
    return id;
  }
  void graceful_leave(overlay::NodeId id) override {
    alive_set.erase(id);
    leaves.push_back(id);
  }
  void crash_node(overlay::NodeId id) override {
    alive_set.erase(id);
    crashes.push_back(id);
  }
  void republish(overlay::NodeId id) override {
    republish_times[id].push_back(clock->now());
  }
  std::size_t expire(Time now) override {
    sweep_times.push_back(now);
    return entries_per_sweep;
  }
  bool alive(overlay::NodeId id) const override {
    return alive_set.count(id) != 0;
  }

  const EventQueue* clock;
  overlay::NodeId next_id = 0;
  bool reject_spawns = false;
  std::size_t entries_per_sweep = 0;
  std::unordered_set<overlay::NodeId> alive_set;
  std::vector<overlay::NodeId> leaves;
  std::vector<overlay::NodeId> crashes;
  std::unordered_map<overlay::NodeId, std::vector<Time>> republish_times;
  std::vector<Time> sweep_times;
};

LifecycleConfig quiet_config() {
  LifecycleConfig config;
  config.republish_interval_ms = 1'000.0;
  config.republish_jitter = 0.2;
  config.expiry_sweep_interval_ms = 0.0;  // off unless a test wants it
  return config;
}

overlay::NodeId add_node(FakeSystem& system, LifecycleEngine& engine) {
  const overlay::NodeId id = system.next_id++;
  system.alive_set.insert(id);
  engine.adopt(id);
  return id;
}

TEST(LifecycleEngine, RepublishCadenceIsJitteredAndBounded) {
  LifecycleConfig config = quiet_config();
  EventQueue queue;
  FakeSystem system(queue);
  LifecycleEngine engine(system, config, &queue);
  const auto id = add_node(system, engine);

  engine.run_for(20'000.0);
  const auto& times = system.republish_times[id];
  // ~20 periods of ~1000 ms each; jitter makes the count inexact.
  EXPECT_GE(times.size(), 15u);
  EXPECT_LE(times.size(), 26u);
  // First firing is staggered within one full period.
  EXPECT_LE(times.front(), config.republish_interval_ms);
  // Every subsequent gap obeys interval * (1 +/- jitter).
  for (std::size_t i = 1; i < times.size(); ++i) {
    const Time gap = times[i] - times[i - 1];
    EXPECT_GE(gap, config.republish_interval_ms *
                       (1.0 - config.republish_jitter) - 1e-9);
    EXPECT_LE(gap, config.republish_interval_ms *
                       (1.0 + config.republish_jitter) + 1e-9);
  }
  EXPECT_EQ(engine.stats().republishes, times.size());
}

TEST(LifecycleEngine, FirstFiringsAreDesynchronized) {
  LifecycleConfig config = quiet_config();
  config.republish_jitter = 0.0;  // only the bootstrap stagger remains
  EventQueue queue;
  FakeSystem system(queue);
  LifecycleEngine engine(system, config, &queue);
  for (int i = 0; i < 32; ++i) add_node(system, engine);

  engine.run_for(config.republish_interval_ms);
  std::unordered_set<Time> first_firings;
  for (const auto& [id, times] : system.republish_times) {
    (void)id;
    ASSERT_FALSE(times.empty());
    first_firings.insert(times.front());
  }
  // A lockstep bootstrap would collapse these to one timestamp.
  EXPECT_GT(first_firings.size(), 16u);
}

TEST(LifecycleEngine, RepublishChainStopsAfterDeparture) {
  LifecycleConfig config = quiet_config();
  config.republish_jitter = 0.0;
  EventQueue queue;
  FakeSystem system(queue);
  LifecycleEngine engine(system, config, &queue);
  const auto id = add_node(system, engine);

  engine.run_for(3'500.0);
  const std::size_t before = system.republish_times[id].size();
  EXPECT_GE(before, 3u);
  system.alive_set.erase(id);  // departs outside the engine
  engine.run_for(10'000.0);
  EXPECT_EQ(system.republish_times[id].size(), before);
}

TEST(LifecycleEngine, ExpirySweepsRunOnCadenceAndAccumulate) {
  LifecycleConfig config = quiet_config();
  config.expiry_sweep_interval_ms = 500.0;
  EventQueue queue;
  FakeSystem system(queue);
  system.entries_per_sweep = 3;
  LifecycleEngine engine(system, config, &queue);

  engine.run_for(5'000.0);
  EXPECT_EQ(system.sweep_times.size(), 10u);
  for (std::size_t i = 0; i < system.sweep_times.size(); ++i)
    EXPECT_DOUBLE_EQ(system.sweep_times[i],
                     500.0 * static_cast<double>(i + 1));
  EXPECT_EQ(engine.stats().expiry_sweeps, 10u);
  EXPECT_EQ(engine.stats().swept_entries, 30u);
}

TEST(LifecycleEngine, PoissonChurnGrowsAndShrinksThePopulation) {
  LifecycleConfig config = quiet_config();
  config.join_rate_hz = 2.0;
  config.departure_rate_hz = 1.0;
  config.crash_fraction = 0.5;
  config.min_population = 4;
  config.seed = 7;
  EventQueue queue;
  FakeSystem system(queue);
  LifecycleEngine engine(system, config, &queue);
  for (int i = 0; i < 16; ++i) add_node(system, engine);

  engine.run_for(60'000.0);  // one simulated minute
  // Expected ~120 joins and ~60 departures; allow wide Poisson slack.
  EXPECT_GT(engine.stats().joins, 80u);
  EXPECT_LT(engine.stats().joins, 170u);
  const std::uint64_t departures =
      engine.stats().graceful_leaves + engine.stats().crashes;
  EXPECT_GT(departures, 35u);
  EXPECT_LT(departures, 95u);
  // Both departure flavors occur.
  EXPECT_GT(engine.stats().graceful_leaves, 0u);
  EXPECT_GT(engine.stats().crashes, 0u);
  // Engine bookkeeping matches the system's notion of liveness.
  EXPECT_EQ(engine.population(), system.alive_set.size());
  for (const auto id : engine.live()) EXPECT_TRUE(system.alive(id));
}

TEST(LifecycleEngine, ChurnIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    LifecycleConfig config = quiet_config();
    config.join_rate_hz = 1.0;
    config.departure_rate_hz = 1.0;
    config.seed = seed;
    EventQueue queue;
    FakeSystem system(queue);
    LifecycleEngine engine(system, config, &queue);
    for (int i = 0; i < 8; ++i) add_node(system, engine);
    engine.run_for(30'000.0);
    return std::tuple(engine.stats().joins, engine.stats().graceful_leaves,
                      engine.stats().crashes, engine.stats().republishes);
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(LifecycleEngine, MinPopulationFloorSuppressesDepartures) {
  LifecycleConfig config = quiet_config();
  config.join_rate_hz = 0.0;
  config.departure_rate_hz = 20.0;  // aggressive drain
  config.min_population = 6;
  EventQueue queue;
  FakeSystem system(queue);
  LifecycleEngine engine(system, config, &queue);
  for (int i = 0; i < 12; ++i) add_node(system, engine);

  engine.run_for(30'000.0);
  EXPECT_EQ(engine.population(), config.min_population);
  EXPECT_EQ(system.alive_set.size(), config.min_population);
  EXPECT_GT(engine.stats().suppressed_departures, 0u);
}

TEST(LifecycleEngine, SetChurnZeroCancelsPendingArrivals) {
  LifecycleConfig config = quiet_config();
  config.join_rate_hz = 5.0;
  config.departure_rate_hz = 5.0;
  EventQueue queue;
  FakeSystem system(queue);
  LifecycleEngine engine(system, config, &queue);
  for (int i = 0; i < 8; ++i) add_node(system, engine);

  engine.run_for(10'000.0);
  const auto joins = engine.stats().joins;
  const auto departures =
      engine.stats().graceful_leaves + engine.stats().crashes;
  EXPECT_GT(joins + departures, 0u);

  engine.set_churn(0.0, 0.0);
  engine.run_for(60'000.0);
  EXPECT_EQ(engine.stats().joins, joins);
  EXPECT_EQ(engine.stats().graceful_leaves + engine.stats().crashes,
            departures);
  // Maintenance keeps running after churn stops.
  EXPECT_GT(engine.stats().republishes, 0u);
}

TEST(LifecycleEngine, RejectedSpawnsAreCountedNotAdopted) {
  LifecycleConfig config = quiet_config();
  config.join_rate_hz = 5.0;
  EventQueue queue;
  FakeSystem system(queue);
  system.reject_spawns = true;
  LifecycleEngine engine(system, config, &queue);

  engine.run_for(10'000.0);
  EXPECT_EQ(engine.stats().joins, 0u);
  EXPECT_GT(engine.stats().rejected_joins, 0u);
  EXPECT_EQ(engine.population(), 0u);
}

TEST(LifecycleEngine, CrashFractionExtremesSelectOneFlavor) {
  for (const double fraction : {0.0, 1.0}) {
    LifecycleConfig config = quiet_config();
    config.departure_rate_hz = 5.0;
    config.crash_fraction = fraction;
    config.min_population = 0;
    EventQueue queue;
    FakeSystem system(queue);
    LifecycleEngine engine(system, config, &queue);
    for (int i = 0; i < 16; ++i) add_node(system, engine);
    engine.run_for(20'000.0);
    if (fraction == 0.0) {
      EXPECT_GT(engine.stats().graceful_leaves, 0u);
      EXPECT_EQ(engine.stats().crashes, 0u);
    } else {
      EXPECT_EQ(engine.stats().graceful_leaves, 0u);
      EXPECT_GT(engine.stats().crashes, 0u);
    }
  }
}

}  // namespace
}  // namespace topo::sim
