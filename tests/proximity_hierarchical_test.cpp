#include "proximity/hierarchical.hpp"

#include <limits>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::proximity {
namespace {

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<HierarchicalLandmarks> landmarks;
  std::vector<HierarchicalLandmarks::Record> database;

  explicit Fixture(std::uint64_t seed) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<HierarchicalLandmarks>(
        HierarchicalLandmarks::build(topology, 6, 3, rng));
    for (net::HostId h = 1; h < topology.host_count(); h += 3)
      database.push_back(HierarchicalLandmarks::Record{
          h, landmarks->measure(*oracle, h)});
  }
};

TEST(HierarchicalLandmarks, BuildsBothTiers) {
  Fixture f(1);
  EXPECT_EQ(f.landmarks->global_count(), 6);
  EXPECT_EQ(f.landmarks->regions(), 3);  // tsk-tiny has 3 transit domains
  for (int r = 0; r < f.landmarks->regions(); ++r) {
    const auto& locals = f.landmarks->local_landmarks(r);
    EXPECT_EQ(locals.size(), 3u);
    // Local landmarks really live in their region.
    for (const auto host : locals)
      EXPECT_EQ(f.topology.host(host).transit_domain, r);
  }
}

TEST(HierarchicalLandmarks, GlobalTierPrefersTransitNodes) {
  Fixture f(2);
  int transit = 0;
  for (const auto host : f.landmarks->global_landmarks())
    if (f.topology.host(host).kind == net::HostKind::kTransit) ++transit;
  // tsk-tiny has 6 transit nodes and we asked for 6 globals.
  EXPECT_EQ(transit, 6);
}

TEST(HierarchicalLandmarks, MeasureCostsBothTiers) {
  Fixture f(3);
  f.oracle->reset_probe_count();
  const auto vector = f.landmarks->measure(*f.oracle, 10);
  EXPECT_EQ(vector.global.size(), 6u);
  EXPECT_EQ(vector.local.size(), 3u);
  EXPECT_EQ(f.oracle->probe_count(), 9u);
  EXPECT_EQ(vector.region, f.topology.host(10).transit_domain);
}

TEST(HierarchicalLandmarks, SearchRespectsBudgetAndFindsValidHost) {
  Fixture f(4);
  const net::HostId query = 0;
  const auto qv = f.landmarks->measure(*f.oracle, query);
  const NnResult result =
      f.landmarks->search(*f.oracle, query, qv, f.database, 20, 8);
  EXPECT_NE(result.host, net::kInvalidHost);
  EXPECT_LE(result.probes, 8u);
}

TEST(HierarchicalLandmarks, FullBudgetOverPreselectionFindsItsBest) {
  Fixture f(5);
  const net::HostId query = 9;  // not in the database (db hosts are 1 mod 3)
  const auto qv = f.landmarks->measure(*f.oracle, query);
  const std::size_t preselect = 15;
  const NnResult result = f.landmarks->search(*f.oracle, query, qv,
                                              f.database, preselect,
                                              preselect);
  // Probing the whole preselection returns the true best within it.
  EXPECT_EQ(result.probes, preselect);
  EXPECT_GT(result.rtt_ms, 0.0);
}

TEST(HierarchicalLandmarks, SameRegionCandidatesProbedFirst) {
  Fixture f(6);
  // A query whose region has database entries: with budget 1, the probed
  // candidate must be from the query's own region (if the preselection
  // contains any).
  for (net::HostId query = 0; query < 40; query += 5) {
    const auto qv = f.landmarks->measure(*f.oracle, query);
    bool region_in_db = false;
    for (const auto& record : f.database)
      if (record.vector.region == qv.region) region_in_db = true;
    if (!region_in_db) continue;
    const NnResult result = f.landmarks->search(
        *f.oracle, query, qv, f.database, f.database.size(), 1);
    ASSERT_NE(result.host, net::kInvalidHost);
    EXPECT_EQ(f.topology.host(result.host).transit_domain, qv.region);
    return;
  }
  GTEST_SKIP() << "no region with database entries found";
}

TEST(HierarchicalLandmarks, CompetitiveWithFlatHybrid) {
  // On same total probe overhead, the two-tier search should be in the
  // same quality class as the flat hybrid (both find near-optimal with a
  // moderate budget on a small network).
  Fixture f(7);
  util::Rng rng(70);
  // Flat baseline: 9 flat landmarks (same measurement cost as 6+3).
  const auto flat = LandmarkSet::choose_random(f.topology, 9, rng, {});
  ProximityDatabase flat_db;
  for (net::HostId h = 1; h < f.topology.host_count(); h += 3)
    flat_db.push_back(ProximityRecord{h, flat.measure(*f.oracle, h)});

  double hier_total = 0.0;
  double flat_total = 0.0;
  int queries = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const auto query =
        static_cast<net::HostId>(rng.next_u64(f.topology.host_count()));
    double best = std::numeric_limits<double>::infinity();
    for (const auto& record : f.database)
      if (record.host != query)
        best = std::min(best, f.oracle->latency_ms(query, record.host));
    if (best <= 0.0) continue;
    const auto hq = f.landmarks->measure(*f.oracle, query);
    const auto hier =
        f.landmarks->search(*f.oracle, query, hq, f.database, 20, 8);
    const auto fq = flat.measure(*f.oracle, query);
    const auto plain = hybrid_nn_search(*f.oracle, query, fq, flat_db, 8);
    hier_total += f.oracle->latency_ms(query, hier.host) / best;
    flat_total += f.oracle->latency_ms(query, plain.host) / best;
    ++queries;
  }
  ASSERT_GT(queries, 10);
  EXPECT_LT(hier_total / queries, 2.0 * flat_total / queries + 0.5);
}

}  // namespace
}  // namespace topo::proximity
