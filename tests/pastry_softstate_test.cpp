#include "core/pastry_selectors.hpp"
#include "softstate/pastry_maps.hpp"

#include <memory>

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo {
namespace {

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;
  std::unique_ptr<overlay::PastryNetwork> pastry;
  std::unique_ptr<softstate::PastryMapService> maps;
  core::PastryVectorStore vectors;
  std::vector<overlay::NodeId> nodes;

  explicit Fixture(std::uint64_t seed, std::size_t n = 160) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, 8, rng, {}));
    pastry = std::make_unique<overlay::PastryNetwork>(24, 4);
    core::FirstSlotSelector first;
    for (std::size_t i = 0; i < n; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      nodes.push_back(pastry->join_random(host, rng));
    }
    pastry->build_all_tables(first);
    maps = std::make_unique<softstate::PastryMapService>(*pastry, *landmarks);
    for (const auto id : nodes) {
      vectors[id] = landmarks->measure(*oracle, pastry->node(id).host);
      maps->publish(id, vectors[id], 0.0);
    }
  }
};

TEST(PastryMaps, PositionStaysInRegionAndPreservesOrder) {
  Fixture f(1);
  const int bits = f.landmarks->number_bits();
  const auto small = util::BigUint(1) << (bits - 6);
  const auto large = util::BigUint(40) << (bits - 6);
  const auto p1 = f.maps->position_in(small, 0x100000, 0x200000);
  const auto p2 = f.maps->position_in(large, 0x100000, 0x200000);
  EXPECT_GE(p1, 0x100000u);
  EXPECT_LT(p1, 0x200000u);
  EXPECT_LT(p1, p2);
}

TEST(PastryMaps, PublishCreatesOneEntryPerRow) {
  Fixture f(2);
  // Each node publishes into publish_rows maps (4 by default).
  EXPECT_EQ(f.maps->total_entries(), f.nodes.size() * 4);
}

TEST(PastryMaps, RepublishReplaces) {
  Fixture f(3);
  const std::size_t before = f.maps->total_entries();
  f.maps->publish(f.nodes[0], f.vectors[f.nodes[0]], 50.0);
  EXPECT_EQ(f.maps->total_entries(), before);
}

TEST(PastryMaps, LookupReturnsRegionMembersSorted) {
  Fixture f(4, 256);
  const auto querier = f.nodes[0];
  // Row-0 region of some other digit: a populated top-level region.
  const auto id = f.pastry->node(querier).id;
  const int own = f.pastry->digit(id, 0);
  const int other = own == 0 ? 1 : 0;
  const auto [lo, hi] = f.pastry->slot_range(id, 0, other);
  const auto entries =
      f.maps->lookup(querier, f.vectors[querier], 1, lo, hi, 0.0);
  ASSERT_FALSE(entries.empty());
  for (const auto& entry : entries) {
    EXPECT_GE(f.pastry->node(entry.node).id, lo);
    EXPECT_LT(f.pastry->node(entry.node).id, hi);
  }
  for (std::size_t i = 1; i < entries.size(); ++i)
    EXPECT_LE(proximity::vector_distance(entries[i - 1].vector,
                                         f.vectors[querier]),
              proximity::vector_distance(entries[i].vector,
                                         f.vectors[querier]) +
                  1e-12);
}

TEST(PastryMaps, TtlExpiryAndLazyDeletion) {
  Fixture f(5);
  EXPECT_GT(f.maps->total_entries(), 0u);
  f.maps->expire_before(1e9);
  EXPECT_EQ(f.maps->total_entries(), 0u);
}

TEST(PastryMaps, RemoveEverywhere) {
  Fixture f(6);
  const auto victim = f.nodes[2];
  f.maps->remove_everywhere(victim);
  const auto id = f.pastry->node(f.nodes[0]).id;
  const int own = f.pastry->digit(id, 0);
  for (int column = 0; column < f.pastry->base(); ++column) {
    if (column == own) continue;
    const auto [lo, hi] = f.pastry->slot_range(id, 0, column);
    for (const auto& entry :
         f.maps->lookup(f.nodes[0], f.vectors[f.nodes[0]], 1, lo, hi, 0.0))
      EXPECT_NE(entry.node, victim);
  }
}

TEST(PastryMaps, RehomeAfterOwnerDeparture) {
  Fixture f(7);
  overlay::NodeId owner = overlay::kInvalidNode;
  for (const auto id : f.nodes)
    if (f.maps->store_size(id) > 0) {
      owner = id;
      break;
    }
  ASSERT_NE(owner, overlay::kInvalidNode);
  f.pastry->leave(owner);
  f.maps->rehome_from(owner);
  EXPECT_EQ(f.maps->store_size(owner), 0u);
}

TEST(PastrySelectors, OraclePicksClosest) {
  Fixture f(8, 256);
  core::OracleSlotSelector selector(*f.pastry, *f.oracle);
  for (const auto n : f.nodes) {
    const auto id = f.pastry->node(n).id;
    const int own = f.pastry->digit(id, 0);
    const int other = own == 0 ? 1 : 0;
    const auto [lo, hi] = f.pastry->slot_range(id, 0, other);
    auto candidates = f.pastry->nodes_in_range(lo, hi);
    if (candidates.size() < 3) continue;
    const auto pick = selector.select(n, 0, other, candidates);
    const net::HostId from = f.pastry->node(n).host;
    for (const auto c : candidates)
      EXPECT_LE(f.oracle->latency_ms(from, f.pastry->node(pick).host),
                f.oracle->latency_ms(from, f.pastry->node(c).host));
    return;
  }
  GTEST_SKIP();
}

TEST(PastrySelectors, SoftStateTablesValidAndRoutingWorks) {
  Fixture f(9, 256);
  core::SoftStateSlotSelector selector(*f.pastry, *f.maps, *f.oracle,
                                       f.vectors, 10, util::Rng(90));
  f.pastry->build_all_tables(selector);
  EXPECT_TRUE(f.pastry->check_invariants());
  util::Rng rng(91);
  const auto live = f.pastry->live_nodes();
  for (int trial = 0; trial < 50; ++trial) {
    const auto from = live[rng.next_u64(live.size())];
    const auto key = rng.next_u64(f.pastry->ring_size());
    const auto route = f.pastry->route(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), f.pastry->numerically_closest(key));
  }
}

TEST(PastrySelectors, SoftStateImprovesStretchOverFirst) {
  Fixture f(10, 256);

  auto measure = [&](overlay::RoutingSlotSelector& selector) {
    f.pastry->build_all_tables(selector);
    util::Rng rng(101);
    util::Samples stretch;
    const auto live = f.pastry->live_nodes();
    for (int q = 0; q < 400; ++q) {
      const auto from = live[rng.next_u64(live.size())];
      const auto key = rng.next_u64(f.pastry->ring_size());
      const auto route = f.pastry->route(from, key);
      if (!route.success || route.path.size() < 2) continue;
      double path_latency = 0.0;
      for (std::size_t i = 1; i < route.path.size(); ++i)
        path_latency += f.oracle->latency_ms(
            f.pastry->node(route.path[i - 1]).host,
            f.pastry->node(route.path[i]).host);
      const double direct = f.oracle->latency_ms(
          f.pastry->node(from).host, f.pastry->node(route.path.back()).host);
      if (direct <= 0.0) continue;
      stretch.add(path_latency / direct);
    }
    return stretch.mean();
  };

  core::FirstSlotSelector first;
  core::SoftStateSlotSelector soft(*f.pastry, *f.maps, *f.oracle, f.vectors,
                                   16, util::Rng(102));
  const double first_stretch = measure(first);
  const double soft_stretch = measure(soft);
  EXPECT_LT(soft_stretch, first_stretch);
}

}  // namespace
}  // namespace topo
