// Parameterized end-to-end sweep of the SoftStateOverlay facade across
// maintenance configurations: with/without subscriptions, short/long TTLs,
// lossy/lossless publishes. In every configuration, churn must leave the
// system consistent and delivering.
#include <string>

#include <gtest/gtest.h>

#include "core/soft_state_overlay.hpp"
#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::core {
namespace {

struct ConfigParam {
  const char* name;
  bool subscribe;
  double ttl_ms;
  double republish_ms;
  double publish_loss;
  double load_weight;
};

class SystemConfigSweep : public ::testing::TestWithParam<ConfigParam> {};

TEST_P(SystemConfigSweep, ChurnStaysConsistentAndDelivers) {
  const ConfigParam& p = GetParam();

  util::Rng topo_rng(11);
  net::Topology topology =
      net::generate_transit_stub(net::tsk_tiny(), topo_rng);
  net::assign_latencies(topology, net::LatencyModel::kManual, topo_rng);

  SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 6;
  config.subscribe_on_join = p.subscribe;
  config.map.ttl_ms = p.ttl_ms;
  config.republish_interval_ms = p.republish_ms;
  config.load_weight = p.load_weight;
  SoftStateOverlay system(topology, config);
  if (p.publish_loss > 0.0) system.maps().inject_faults(p.publish_loss, 7);

  util::Rng rng(17);
  std::vector<overlay::NodeId> live;
  for (int i = 0; i < 48; ++i)
    live.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(topology.host_count()))));

  for (int step = 0; step < 120; ++step) {
    const double dice = rng.next_double();
    if (live.size() < 12 || dice < 0.45) {
      live.push_back(system.join(
          static_cast<net::HostId>(rng.next_u64(topology.host_count()))));
    } else if (dice < 0.72) {
      const std::size_t pick = rng.next_u64(live.size());
      system.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      system.crash(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    system.run_for(200.0);
  }

  EXPECT_TRUE(system.ecan().check_invariants());
  EXPECT_TRUE(system.ecan().check_membership_index());
  EXPECT_TRUE(system.maps().check_placement_invariant());
  for (int trial = 0; trial < 25; ++trial) {
    const auto from = live[rng.next_u64(live.size())];
    const overlay::RouteResult route =
        system.lookup(from, geom::Point::random(2, rng));
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(),
              system.ecan().owner_of(
                  system.ecan().node(route.path.back()).zone.center()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SystemConfigSweep,
    ::testing::Values(
        ConfigParam{"pubsub_long_ttl", true, 60'000.0, 20'000.0, 0.0, 0.0},
        ConfigParam{"pubsub_short_ttl", true, 2'000.0, 600.0, 0.0, 0.0},
        ConfigParam{"no_pubsub", false, 60'000.0, 20'000.0, 0.0, 0.0},
        ConfigParam{"lossy_publishes", true, 10'000.0, 2'000.0, 0.3, 0.0},
        ConfigParam{"load_aware", true, 60'000.0, 20'000.0, 0.0, 4.0},
        ConfigParam{"decay_only", false, 3'000.0, 1e12, 0.0, 0.0}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace topo::core
