#include "geom/zone.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace topo::geom {
namespace {

Point make_point(double x, double y) {
  Point p(2);
  p[0] = x;
  p[1] = y;
  return p;
}

TEST(Zone, WholeSpace) {
  const Zone whole = Zone::whole(2);
  EXPECT_DOUBLE_EQ(whole.volume(), 1.0);
  EXPECT_TRUE(whole.contains(make_point(0.0, 0.999)));
  EXPECT_DOUBLE_EQ(whole.side(0), 1.0);
}

TEST(Zone, HalfOpenContainment) {
  const auto [lo, hi] = Zone::whole(1).split(0);
  Point boundary(1);
  boundary[0] = 0.5;
  EXPECT_FALSE(lo.contains(boundary));
  EXPECT_TRUE(hi.contains(boundary));
}

TEST(Zone, SplitHalvesVolumeExactly) {
  Zone z = Zone::whole(3);
  for (int i = 0; i < 20; ++i) {
    const auto [a, b] = z.split(z.longest_dim());
    EXPECT_DOUBLE_EQ(a.volume() + b.volume(), z.volume());
    EXPECT_DOUBLE_EQ(a.volume(), b.volume());
    z = i % 2 == 0 ? a : b;
  }
}

TEST(Zone, LongestDimRotates) {
  Zone z = Zone::whole(2);
  EXPECT_EQ(z.longest_dim(), 0u);  // tie -> lowest
  z = z.split(0).first;
  EXPECT_EQ(z.longest_dim(), 1u);
  z = z.split(1).first;
  EXPECT_EQ(z.longest_dim(), 0u);
}

TEST(Zone, ZoneContainsZone) {
  const Zone whole = Zone::whole(2);
  const auto [left, right] = whole.split(0);
  EXPECT_TRUE(whole.contains(left));
  EXPECT_TRUE(whole.contains(right));
  EXPECT_FALSE(left.contains(whole));
  EXPECT_FALSE(left.contains(right));
  EXPECT_TRUE(left.contains(left));
}

TEST(Zone, CenterInsideZone) {
  const auto [left, right] = Zone::whole(2).split(0);
  EXPECT_TRUE(left.contains(left.center()));
  EXPECT_TRUE(right.contains(right.center()));
  EXPECT_DOUBLE_EQ(left.center()[0], 0.25);
}

TEST(Zone, CanNeighborSharedFace) {
  const auto [left, right] = Zone::whole(2).split(0);
  EXPECT_TRUE(left.is_can_neighbor(right));
  EXPECT_TRUE(right.is_can_neighbor(left));
}

TEST(Zone, CanNeighborAcrossWrap) {
  // Quarters along x: [0,0.25) and [0.75,1) abut through the seam.
  const auto [half_lo, half_hi] = Zone::whole(2).split(0);
  const auto first = half_lo.split(0).first;    // [0, 0.25)
  const auto last = half_hi.split(0).second;    // [0.75, 1)
  EXPECT_TRUE(first.is_can_neighbor(last));
}

TEST(Zone, CornerOnlyContactIsNotNeighbor) {
  // Diagonal quadrants touch at a corner only (abut in both dims).
  const auto [left, right] = Zone::whole(2).split(0);
  const auto bottom_left = left.split(1).first;
  const auto top_right = right.split(1).second;
  EXPECT_FALSE(bottom_left.is_can_neighbor(top_right));
}

TEST(Zone, SelfIsNotNeighbor) {
  const auto [left, right] = Zone::whole(2).split(0);
  EXPECT_FALSE(left.is_can_neighbor(left));
  (void)right;
}

TEST(Zone, TwoZoneWrapBothSidesStillOneAxis) {
  // With only two halves, they abut both directly and across the seam —
  // still neighbors (abutting count is per-axis, not per-face).
  const auto [lo, hi] = Zone::whole(1).split(0);
  EXPECT_TRUE(lo.is_can_neighbor(hi));
}

TEST(Zone, DistanceToInsideIsZero) {
  const auto [left, right] = Zone::whole(2).split(0);
  (void)right;
  EXPECT_DOUBLE_EQ(left.distance_to(make_point(0.1, 0.5)), 0.0);
}

TEST(Zone, DistanceToStraightGap) {
  const auto quarter =
      Zone::whole(2).split(0).first.split(1).first;  // [0,.5)x[0,.5)
  EXPECT_NEAR(quarter.distance_to(make_point(0.75, 0.25)), 0.25, 1e-12);
}

TEST(Zone, DistanceToUsesWrap) {
  const auto quarter =
      Zone::whole(2).split(0).first.split(1).first;  // [0,.5)x[0,.5)
  // x=0.95 is 0.05 from lo=0 through the seam, not 0.45 from hi=0.5.
  EXPECT_NEAR(quarter.distance_to(make_point(0.95, 0.25)), 0.05, 1e-12);
}

TEST(Zone, DistanceToDiagonal) {
  const auto quarter =
      Zone::whole(2).split(0).first.split(1).first;
  const double d = quarter.distance_to(make_point(0.6, 0.6));
  EXPECT_NEAR(d, std::sqrt(0.01 + 0.01), 1e-12);
}

TEST(GridCoord, BasicBuckets) {
  EXPECT_EQ(grid_coord(0.0, 2), 0u);
  EXPECT_EQ(grid_coord(0.24, 2), 0u);
  EXPECT_EQ(grid_coord(0.25, 2), 1u);
  EXPECT_EQ(grid_coord(0.99, 2), 3u);
  EXPECT_EQ(grid_coord(0.7, 0), 0u);  // level 0: one cell
}

TEST(GridCoord, NeverReturnsOutOfRange) {
  // Floating-point edge just under 1.0.
  EXPECT_EQ(grid_coord(std::nextafter(1.0, 0.0), 4), 15u);
}

TEST(Zone, GridCellContaining) {
  const Zone cell = Zone::grid_cell_containing(make_point(0.3, 0.8), 2);
  EXPECT_DOUBLE_EQ(cell.lo(0), 0.25);
  EXPECT_DOUBLE_EQ(cell.hi(0), 0.5);
  EXPECT_DOUBLE_EQ(cell.lo(1), 0.75);
  EXPECT_DOUBLE_EQ(cell.hi(1), 1.0);
  EXPECT_TRUE(cell.contains(make_point(0.3, 0.8)));
}

TEST(Zone, GridCellLevelZeroIsWhole) {
  const Zone cell = Zone::grid_cell_containing(make_point(0.3, 0.8), 0);
  EXPECT_DOUBLE_EQ(cell.volume(), 1.0);
}

TEST(Zone, ToStringMentionsBounds) {
  const auto [left, right] = Zone::whole(2).split(0);
  (void)right;
  EXPECT_NE(left.to_string().find("0.5000"), std::string::npos);
}

}  // namespace
}  // namespace topo::geom
