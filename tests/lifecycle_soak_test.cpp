// Lifecycle soak: a full SoftStateOverlay under the event-driven
// maintenance loop (jittered republish, expiry sweeps, Poisson churn with
// graceful leaves AND crashes) for several simulated minutes. Asserts the
// invariants the paper's soft-state argument rests on: every stored
// record sits on the current owner of its position at all times, the map
// population stays bounded while nodes come and go, and once churn stops
// the maps converge back to exactly one fresh record per live node per
// level.
//
// Runs under the `soak` ctest label (and in the TSan preset).
#include "core/lifecycle_adapter.hpp"

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::core {
namespace {

struct SoakFixture {
  net::Topology topology;
  std::unique_ptr<SoftStateOverlay> system;
  std::unique_ptr<LifecycleRuntime> runtime;

  explicit SoakFixture(std::uint64_t seed, std::size_t initial_nodes,
                       sim::LifecycleConfig lifecycle) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);

    SystemConfig config;
    config.landmark_count = 8;
    config.rtt_budget = 6;
    config.map.ttl_ms = 45'000.0;
    config.auto_republish = false;  // the engine owns the refresh timers
    config.seed = seed + 1;
    system = std::make_unique<SoftStateOverlay>(topology, config);

    lifecycle.seed = seed + 2;
    runtime = std::make_unique<LifecycleRuntime>(
        *system, topology.host_count(), lifecycle);
    for (std::size_t i = 0; i < initial_nodes; ++i)
      runtime->engine().adopt(system->join(
          static_cast<net::HostId>(rng.next_u64(topology.host_count()))));
  }

  /// One fresh record per live node per enclosing level: the clean-state
  /// map population.
  std::size_t clean_entry_count() const {
    std::size_t total = 0;
    for (const auto id : system->ecan().live_nodes())
      total += static_cast<std::size_t>(system->ecan().node_level(id));
    return total;
  }
};

TEST(LifecycleSoak, InvariantsHoldThroughChurnAndRecovery) {
  sim::LifecycleConfig lifecycle;
  lifecycle.republish_interval_ms = 15'000.0;
  lifecycle.republish_jitter = 0.2;
  lifecycle.expiry_sweep_interval_ms = 5'000.0;
  lifecycle.join_rate_hz = 0.5;
  lifecycle.departure_rate_hz = 0.5;
  lifecycle.crash_fraction = 0.5;
  lifecycle.min_population = 24;
  SoakFixture f(1, 96, lifecycle);
  auto& engine = f.runtime->engine();

  // -- Churn phase: ten simulated minutes, checked every 30 s ----------
  for (int checkpoint = 0; checkpoint < 20; ++checkpoint) {
    engine.run_for(30'000.0);
    ASSERT_TRUE(f.system->maps().check_placement_invariant())
        << "placement invariant broken at t=" << engine.now() << " ms";
    // Bounded population: live records plus at most one TTL's worth of
    // not-yet-decayed records of departed nodes.
    const double ttl_departures =
        lifecycle.departure_rate_hz * f.system->config().map.ttl_ms / 1000.0;
    const std::size_t bound =
        f.clean_entry_count() +
        static_cast<std::size_t>(3.0 * ttl_departures) *
            static_cast<std::size_t>(f.system->ecan().max_level());
    ASSERT_LE(f.system->maps().total_entries(), bound)
        << "map population unbounded at t=" << engine.now() << " ms";
  }

  // Churn actually exercised both departure flavors and the repair loop.
  EXPECT_GT(engine.stats().joins, 100u);
  EXPECT_GT(engine.stats().graceful_leaves, 50u);
  EXPECT_GT(engine.stats().crashes, 50u);
  EXPECT_GT(engine.stats().republishes, 0u);
  EXPECT_GT(engine.stats().expiry_sweeps, 100u);
  EXPECT_GT(f.system->maps().stats().rehomed_entries, 0u);
  EXPECT_GT(f.system->pubsub().stats().notifications, 0u);
  EXPECT_GT(f.system->stats().reselections, 0u)
      << "pub/sub never drove a re-probe-and-rewire";

  // -- Recovery phase: churn stops, decay + republish converge ---------
  engine.set_churn(0.0, 0.0);
  engine.run_for(2.0 * f.system->config().map.ttl_ms +
                 2.0 * lifecycle.republish_interval_ms);

  ASSERT_TRUE(f.system->maps().check_placement_invariant());
  ASSERT_TRUE(f.system->ecan().check_membership_index());
  // Records of departed nodes have fully decayed; every live node's
  // republish refilled its records (routing losses would show up in
  // failed_routes — a healthy post-churn overlay has none).
  const std::size_t clean = f.clean_entry_count();
  EXPECT_EQ(f.system->maps().total_entries(), clean);

  // The overlay still routes: every lookup ends at the key's owner.
  util::Rng rng(99);
  const auto live = f.system->ecan().live_nodes();
  for (int q = 0; q < 50; ++q) {
    const auto from = live[rng.next_u64(live.size())];
    const geom::Point key = geom::Point::random(2, rng);
    const auto route = f.system->lookup(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), f.system->ecan().owner_of(key));
  }
}

TEST(LifecycleSoak, CrashOnlyChurnRecoversByLazyRepairAndDecay) {
  sim::LifecycleConfig lifecycle;
  lifecycle.republish_interval_ms = 15'000.0;
  lifecycle.expiry_sweep_interval_ms = 5'000.0;
  lifecycle.join_rate_hz = 0.25;
  lifecycle.departure_rate_hz = 0.25;
  lifecycle.crash_fraction = 1.0;  // no proactive scrub ever
  lifecycle.min_population = 16;
  SoakFixture f(2, 64, lifecycle);
  auto& engine = f.runtime->engine();

  engine.run_for(5 * 60'000.0);
  EXPECT_GT(engine.stats().crashes, 25u);
  EXPECT_EQ(engine.stats().graceful_leaves, 0u);
  ASSERT_TRUE(f.system->maps().check_placement_invariant());

  engine.set_churn(0.0, 0.0);
  engine.run_for(2.0 * f.system->config().map.ttl_ms +
                 2.0 * lifecycle.republish_interval_ms);
  // TTL decay alone has scrubbed every crashed node's records.
  EXPECT_EQ(f.system->maps().total_entries(), f.clean_entry_count());
  ASSERT_TRUE(f.system->maps().check_placement_invariant());
}

}  // namespace
}  // namespace topo::core
