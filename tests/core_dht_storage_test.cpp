// Application-level DHT storage on the facade: put/get semantics and
// object migration through joins, graceful leaves and crashes — the
// "administration-free and fault-tolerant storage space that maps keys to
// values" the paper's introduction describes.
#include "core/soft_state_overlay.hpp"

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::core {
namespace {

net::Topology make_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  net::Topology t = net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(t, net::LatencyModel::kManual, rng);
  return t;
}

SystemConfig small_config() {
  SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 8;
  return config;
}

struct Fixture {
  net::Topology topology;
  std::unique_ptr<SoftStateOverlay> system;
  std::vector<overlay::NodeId> nodes;
  util::Rng rng{99};

  explicit Fixture(std::uint64_t seed, int n = 48) : topology(make_topology(seed)) {
    system = std::make_unique<SoftStateOverlay>(topology, small_config());
    for (int i = 0; i < n; ++i)
      nodes.push_back(system->join(
          static_cast<net::HostId>(rng.next_u64(topology.host_count()))));
  }

  overlay::NodeId any_node() { return nodes[rng.next_u64(nodes.size())]; }
};

TEST(DhtStorage, PutThenGetRoundTrips) {
  Fixture f(1);
  const geom::Point key = geom::Point::random(2, f.rng);
  const auto route = f.system->put(f.any_node(), key, "hello");
  ASSERT_TRUE(route.success);
  EXPECT_EQ(route.path.back(), f.system->ecan().owner_of(key));
  const auto value = f.system->get(f.any_node(), key);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "hello");
  EXPECT_EQ(f.system->total_objects(), 1u);
}

TEST(DhtStorage, PutOverwrites) {
  Fixture f(2);
  const geom::Point key = geom::Point::random(2, f.rng);
  f.system->put(f.any_node(), key, "v1");
  f.system->put(f.any_node(), key, "v2");
  EXPECT_EQ(*f.system->get(f.any_node(), key), "v2");
  EXPECT_EQ(f.system->total_objects(), 1u);
}

TEST(DhtStorage, MissingKeyIsEmpty) {
  Fixture f(3);
  EXPECT_FALSE(
      f.system->get(f.any_node(), geom::Point::random(2, f.rng)).has_value());
}

TEST(DhtStorage, GetFromAnyNodeFindsObject) {
  Fixture f(4);
  const geom::Point key = geom::Point::random(2, f.rng);
  f.system->put(f.nodes[0], key, "shared");
  for (const auto from : f.nodes)
    EXPECT_EQ(*f.system->get(from, key), "shared");
}

TEST(DhtStorage, ObjectsFollowZoneSplitsOnJoin) {
  Fixture f(5, 24);
  std::vector<geom::Point> keys;
  for (int i = 0; i < 40; ++i) {
    keys.push_back(geom::Point::random(2, f.rng));
    f.system->put(f.any_node(), keys.back(),
                  "value" + std::to_string(i));
  }
  // New joins split zones; every object must remain retrievable and live
  // on its key's current owner.
  for (int i = 0; i < 24; ++i)
    f.nodes.push_back(f.system->join(
        static_cast<net::HostId>(f.rng.next_u64(f.topology.host_count()))));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto value = f.system->get(f.any_node(), keys[i]);
    ASSERT_TRUE(value.has_value()) << "key " << i;
    EXPECT_EQ(*value, "value" + std::to_string(i));
  }
}

TEST(DhtStorage, ObjectsSurviveGracefulLeaves) {
  Fixture f(6);
  std::vector<geom::Point> keys;
  for (int i = 0; i < 30; ++i) {
    keys.push_back(geom::Point::random(2, f.rng));
    f.system->put(f.any_node(), keys.back(), std::to_string(i));
  }
  for (int i = 0; i < 20; ++i) {
    const std::size_t pick = f.rng.next_u64(f.nodes.size());
    f.system->leave(f.nodes[pick]);
    f.nodes.erase(f.nodes.begin() + static_cast<long>(pick));
  }
  EXPECT_EQ(f.system->total_objects(), 30u);
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(*f.system->get(f.any_node(), keys[i]), std::to_string(i));
}

TEST(DhtStorage, CrashLosesOnlyTheCrashedNodesObjects) {
  Fixture f(7);
  std::vector<geom::Point> keys;
  for (int i = 0; i < 40; ++i) {
    keys.push_back(geom::Point::random(2, f.rng));
    f.system->put(f.any_node(), keys.back(), std::to_string(i));
  }
  // Crash the node hosting the most objects.
  overlay::NodeId victim = f.nodes[0];
  for (const auto id : f.nodes)
    if (f.system->object_count(id) > f.system->object_count(victim))
      victim = id;
  const std::size_t lost = f.system->object_count(victim);
  ASSERT_GT(lost, 0u);
  f.system->crash(victim);
  std::erase(f.nodes, victim);
  EXPECT_EQ(f.system->total_objects(), 40u - lost);
  // Everything else is still retrievable.
  std::size_t found = 0;
  for (const auto& key : keys)
    if (f.system->get(f.any_node(), key).has_value()) ++found;
  EXPECT_EQ(found, 40u - lost);
}

TEST(DhtStorage, ChurnKeepsObjectsAtCurrentOwners) {
  Fixture f(8);
  std::vector<geom::Point> keys;
  for (int i = 0; i < 25; ++i) {
    keys.push_back(geom::Point::random(2, f.rng));
    f.system->put(f.any_node(), keys.back(), std::to_string(i));
  }
  for (int step = 0; step < 60; ++step) {
    if (f.nodes.size() < 10 || f.rng.next_bool(0.55)) {
      f.nodes.push_back(f.system->join(static_cast<net::HostId>(
          f.rng.next_u64(f.topology.host_count()))));
    } else {
      const std::size_t pick = f.rng.next_u64(f.nodes.size());
      f.system->leave(f.nodes[pick]);  // graceful only: objects must survive
      f.nodes.erase(f.nodes.begin() + static_cast<long>(pick));
    }
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    // Placement invariant: the object sits exactly at its key's owner.
    const auto owner = f.system->ecan().owner_of(keys[i]);
    const auto value = f.system->get(f.any_node(), keys[i]);
    ASSERT_TRUE(value.has_value()) << "key " << i;
    EXPECT_GT(f.system->object_count(owner), 0u);
  }
  EXPECT_EQ(f.system->total_objects(), keys.size());
}

}  // namespace
}  // namespace topo::core
